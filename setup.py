"""Legacy installer shim.

``pyproject.toml`` is the source of truth; this file exists so the
package installs in constrained environments where PEP 517 build
isolation cannot fetch ``wheel`` (offline CI, air-gapped machines):

    python setup.py develop        # editable without build isolation
    pip install -e . --no-build-isolation
"""

from setuptools import setup

setup()
