"""Encoder/decoder tests: hostname conventions round-trip through DRoP."""

import random

import pytest

from repro.dns import (
    GROUND_TRUTH_CONVENTIONS,
    DomainConvention,
    DropEngine,
    HintDictionary,
    HintKind,
    HostnameFactory,
)
from repro.geo import Gazetteer
from repro.net import ASRole, AutonomousSystem, parse_address
from repro.topology import PoP, Router


@pytest.fixture(scope="module")
def gazetteer():
    return Gazetteer.default()


@pytest.fixture(scope="module")
def hints(gazetteer):
    return HintDictionary(gazetteer)


@pytest.fixture(scope="module")
def factory(hints):
    return HostnameFactory(hints)


@pytest.fixture(scope="module")
def engine(hints):
    return DropEngine.with_ground_truth_rules(hints)


def router_in(gazetteer, domain, city_name, country, router_id=23):
    autonomous_system = AutonomousSystem(
        asn=64496,
        name="test",
        role=ASRole.TRANSIT,
        home_country=country,
        registered_country=country,
        domain=domain,
    )
    city = gazetteer.match(city_name, country)
    return Router(router_id=router_id, pop=PoP(autonomous_system, city))


ADDR = parse_address("203.0.113.7")


class TestConventionShapes:
    def test_ntt_style(self, gazetteer, factory):
        router = router_in(gazetteer, "ntt.net", "Dallas", "US")
        name = factory.hostname_for(router, ADDR, random.Random(1))
        assert name.endswith(".us.bb.gin.ntt.net")
        assert "dllstx" in name

    def test_cogent_style(self, gazetteer, factory):
        router = router_in(gazetteer, "cogentco.com", "Montreal", "CA")
        name = factory.hostname_for(router, ADDR, random.Random(1))
        assert ".atlas.cogentco.com" in name
        assert "ymq" in name

    def test_belwue_style(self, gazetteer, factory):
        router = router_in(gazetteer, "belwue.de", "Stuttgart", "DE")
        name = factory.hostname_for(router, ADDR, random.Random(1))
        assert name.startswith("kr-stuttgart")

    def test_no_domain_yields_none(self, gazetteer, factory):
        router = router_in(gazetteer, None, "Dallas", "US")
        assert factory.hostname_for(router, ADDR, random.Random(1)) is None

    def test_pool_hostname_has_no_city_token(self, factory):
        name = factory.generic_pool_hostname(ADDR, "pool.example.com")
        assert name == "host-203-0-113-7.pool.example.com"


@pytest.mark.parametrize(
    "domain,city_name,country",
    [
        ("ntt.net", "Dallas", "US"),
        ("ntt.net", "Tokyo", "JP"),
        ("cogentco.com", "Frankfurt", "DE"),
        ("cogentco.com", "Washington", "US"),
        ("seabone.net", "Milan", "IT"),
        ("seabone.net", "Istanbul", "TR"),
        ("pnap.net", "Seattle", "US"),
        ("peak10.net", "Charlotte", "US"),
        ("digitalwest.net", "San Luis Obispo", "US"),
        ("belwue.de", "Karlsruhe", "DE"),
    ],
)
class TestRoundTrip:
    def test_encode_then_decode_recovers_city(
        self, gazetteer, factory, engine, domain, city_name, country
    ):
        router = router_in(gazetteer, domain, city_name, country)
        rng = random.Random(99)
        for serial in range(5):
            address = parse_address(int(ADDR) + serial)
            hostname = factory.hostname_for(router, address, rng)
            decoded = engine.decode(hostname)
            assert decoded is not None, hostname
            assert decoded.city == gazetteer.match(city_name, country)


class TestDecoder:
    def test_unknown_domain_yields_none(self, engine):
        assert engine.decode("core1.fra1.example.org") is None

    def test_ground_truth_engine_ignores_generic_transit(self, gazetteer, factory, engine):
        router = router_in(gazetteer, "rt1.de.example.net", "Berlin", "DE")
        hostname = factory.hostname_for(router, ADDR, random.Random(1))
        assert engine.decode(hostname) is None

    def test_all_rules_engine_decodes_generic_transit(self, gazetteer, factory, hints):
        router = router_in(gazetteer, "rt1.de.example.net", "Berlin", "DE")
        hostname = factory.hostname_for(router, ADDR, random.Random(1))
        engine = DropEngine.with_all_rules(hints)
        engine.add_rule(DomainConvention("rt1.de.example.net", HintKind.CITYNAME, -1))
        assert engine.decode(hostname).city.name == "Berlin"

    def test_bad_token_yields_none(self, engine):
        assert engine.decode("ae-1.r01.zzzzzz01.us.bb.gin.ntt.net") is None

    def test_numeric_only_label_yields_none(self, engine):
        assert engine.decode("ae-1.r01.99.us.bb.gin.ntt.net") is None

    def test_bare_domain_yields_none(self, engine):
        assert engine.decode("ntt.net") is None

    def test_trailing_dot_and_case_tolerated(self, gazetteer, factory, engine):
        router = router_in(gazetteer, "ntt.net", "Dallas", "US")
        hostname = factory.hostname_for(router, ADDR, random.Random(1))
        assert engine.decode(hostname.upper() + ".") is not None

    def test_geolocate_shortcut(self, gazetteer, factory, engine):
        router = router_in(gazetteer, "peak10.net", "Atlanta", "US")
        hostname = factory.hostname_for(router, ADDR, random.Random(1))
        assert engine.geolocate(hostname).name == "Atlanta"
        assert engine.geolocate("nonsense.example.org") is None

    def test_domains_lists_rules(self, engine):
        assert set(engine.domains) == set(GROUND_TRUTH_CONVENTIONS)

    def test_kind_expected(self, engine):
        assert engine.kind_expected("ntt.net") is HintKind.CLLI
        assert engine.kind_expected("example.org") is None

    def test_invalid_chunk_rejected(self):
        with pytest.raises(ValueError):
            DomainConvention("x.net", HintKind.IATA, 0, chunk="middle")

    def test_eurocore_hostnames_carry_no_hints(self, gazetteer, factory, hints):
        router = router_in(gazetteer, "eurocore.example.net", "Vienna", "AT")
        hostname = factory.hostname_for(router, ADDR, random.Random(1))
        engine = DropEngine.with_all_rules(hints)
        assert engine.decode(hostname) is None

    def test_city_override_encodes_other_city(self, gazetteer, factory, engine):
        # The stale-hostname mechanism of §3.1.
        router = router_in(gazetteer, "ntt.net", "Dallas", "US")
        miami = gazetteer.match("Miami", "US")
        hostname = factory.hostname_for(
            router, ADDR, random.Random(1), city_override=miami
        )
        assert engine.decode(hostname).city == miami
