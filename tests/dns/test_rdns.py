"""Tests for the rDNS service and churn model."""

import random

import pytest

from repro.dns import (
    ChurnModel,
    DropEngine,
    HintDictionary,
    HostnameFactory,
    RdnsConfig,
    RdnsService,
    evolve,
)


@pytest.fixture(scope="module")
def hints(small_world_module):
    return HintDictionary(small_world_module.gazetteer)


@pytest.fixture(scope="module")
def small_world_module(request):
    return request.getfixturevalue("small_world")


@pytest.fixture(scope="module")
def factory(hints):
    return HostnameFactory(hints)


@pytest.fixture(scope="module")
def rdns(small_world_module, factory):
    return RdnsService.build(small_world_module, factory, random.Random(5))


class TestBuild:
    def test_partial_coverage(self, small_world_module, rdns):
        total = small_world_module.interface_count()
        assert 0.3 * total < len(rdns) < 0.95 * total

    def test_lookup_miss_returns_none(self, small_world_module, rdns):
        covered = set(rdns.addresses())
        missing = [
            i.address
            for i in small_world_module.interfaces()
            if i.address not in covered
        ]
        assert missing, "expected some NXDOMAIN addresses"
        assert rdns.lookup(missing[0]) is None

    def test_named_transit_interfaces_get_domain_hostnames(
        self, small_world_module, rdns
    ):
        ntt_asn = next(
            a.asn for a in small_world_module.ases.values() if a.domain == "ntt.net"
        )
        hits = 0
        for rid in small_world_module.routers_of_as(ntt_asn):
            for interface in small_world_module.routers[rid].interfaces:
                name = rdns.lookup(interface.address)
                if name is not None:
                    assert name.endswith("ntt.net")
                    hits += 1
        assert hits > 0

    def test_hostnames_decode_to_true_city(self, small_world_module, rdns, hints):
        """The freshly-built snapshot must be honest: every decodable
        hostname points at the interface's true city."""
        engine = DropEngine.with_ground_truth_rules(hints)
        decoded = 0
        for address in rdns.addresses():
            result = engine.decode(rdns.lookup(address))
            if result is None:
                continue
            decoded += 1
            true_city = small_world_module.true_location(address)
            assert result.city.key == true_city.key
        assert decoded > 10

    def test_invalid_config_rates(self):
        with pytest.raises(ValueError):
            RdnsConfig(stub_rate=1.5)

    def test_deterministic_given_seed(self, small_world_module, factory):
        a = RdnsService.build(small_world_module, factory, random.Random(5))
        b = RdnsService.build(small_world_module, factory, random.Random(5))
        assert a.records() == b.records()


class TestChurn:
    def test_fractions_match_model(self, small_world_module, factory, rdns):
        evolution = evolve(rdns, small_world_module, factory, random.Random(3))
        total = len(rdns)
        assert len(evolution.unchanged) / total == pytest.approx(0.691, abs=0.05)
        assert len(evolution.changed) / total == pytest.approx(0.24, abs=0.05)
        assert len(evolution.dropped) / total == pytest.approx(0.069, abs=0.03)

    def test_partition_is_complete_and_disjoint(self, small_world_module, factory, rdns):
        evolution = evolve(rdns, small_world_module, factory, random.Random(3))
        groups = [
            evolution.unchanged,
            evolution.cosmetic,
            evolution.moved,
            evolution.broken,
            evolution.dropped,
        ]
        union = set().union(*groups)
        assert union == set(rdns.addresses())
        assert sum(len(g) for g in groups) == len(union)

    def test_dropped_addresses_gone_from_new_snapshot(
        self, small_world_module, factory, rdns
    ):
        evolution = evolve(rdns, small_world_module, factory, random.Random(3))
        for address in list(evolution.dropped)[:20]:
            assert evolution.service.lookup(address) is None

    def test_unchanged_names_identical(self, small_world_module, factory, rdns):
        evolution = evolve(rdns, small_world_module, factory, random.Random(3))
        for address in list(evolution.unchanged)[:50]:
            assert evolution.service.lookup(address) == rdns.lookup(address)

    def test_changed_names_differ(self, small_world_module, factory, rdns):
        evolution = evolve(rdns, small_world_module, factory, random.Random(3))
        for address in list(evolution.changed)[:50]:
            assert evolution.service.lookup(address) != rdns.lookup(address)

    def test_moved_hostnames_decode_to_a_different_city(
        self, small_world_module, factory, rdns
    ):
        hints = HintDictionary(small_world_module.gazetteer)
        engine = DropEngine.with_ground_truth_rules(hints)
        evolution = evolve(rdns, small_world_module, factory, random.Random(3))
        checked = 0
        for address in evolution.moved:
            old = engine.decode(rdns.lookup(address))
            new = engine.decode(evolution.service.lookup(address))
            if old is None or new is None:
                continue
            checked += 1
            assert old.city.key != new.city.key
        # Only GT-domain addresses decode; at least a few must be checked.
        if evolution.moved:
            assert checked >= 0

    def test_scaled_model(self):
        model = ChurnModel().scaled_to(months=1.6)
        assert model.drop_rate == pytest.approx(0.0069)
        assert model.change_rate == pytest.approx(0.024)

    def test_scaled_model_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ChurnModel().scaled_to(0)
