"""Tests for the location-hint dictionary."""

import pytest

from repro.dns import HintDictionary, HintKind, city_slug
from repro.geo import Gazetteer


@pytest.fixture(scope="module")
def gazetteer():
    return Gazetteer.default()


@pytest.fixture(scope="module")
def hints(gazetteer):
    return HintDictionary(gazetteer)


class TestCuratedCodes:
    def test_dallas_clli_matches_paper_example(self, gazetteer, hints):
        # The paper's worked example: dllstx09 → Dallas, TX (§3.1).
        dallas = gazetteer.match("Dallas", "US")
        assert hints.clli(dallas) == "dllstx"

    def test_miami_clli_matches_paper_example(self, gazetteer, hints):
        miami = gazetteer.match("Miami", "US")
        assert hints.clli(miami) == "miamfl"

    def test_real_iata_codes(self, gazetteer, hints):
        assert hints.iata(gazetteer.match("Dallas", "US")) == "dfw"
        assert hints.iata(gazetteer.match("Frankfurt", "DE")) == "fra"
        assert hints.iata(gazetteer.match("Amsterdam", "NL")) == "ams"
        assert hints.iata(gazetteer.match("Montreal", "CA")) == "ymq"


class TestUniqueness:
    def test_iata_tokens_unique(self, gazetteer, hints):
        tokens = [hints.iata(city) for city in gazetteer]
        assert len(tokens) == len(set(tokens))

    def test_clli_tokens_unique(self, gazetteer, hints):
        tokens = [hints.clli(city) for city in gazetteer]
        assert len(tokens) == len(set(tokens))

    def test_iata_tokens_are_three_lowercase_letters_or_salted(self, gazetteer, hints):
        for city in gazetteer:
            token = hints.iata(city)
            assert len(token) == 3
            assert token == token.lower()


class TestRoundTrip:
    def test_every_city_decodes_from_its_iata(self, gazetteer, hints):
        for city in gazetteer:
            assert hints.decode(hints.iata(city), HintKind.IATA) == city

    def test_every_city_decodes_from_its_clli(self, gazetteer, hints):
        for city in gazetteer:
            assert hints.decode(hints.clli(city), HintKind.CLLI) == city

    def test_cityname_decoding(self, gazetteer, hints):
        dallas = gazetteer.match("Dallas", "US")
        assert hints.decode("dallas", HintKind.CITYNAME) == dallas

    def test_decode_case_insensitive(self, gazetteer, hints):
        assert hints.decode("DFW", HintKind.IATA) == gazetteer.match("Dallas", "US")

    def test_unknown_token_returns_none(self, hints):
        assert hints.decode("zzz9", HintKind.IATA) is None
        assert hints.decode("", HintKind.CLLI) is None

    def test_token_dispatch(self, gazetteer, hints):
        city = gazetteer.match("Berlin", "DE")
        assert hints.token(city, HintKind.IATA) == hints.iata(city)
        assert hints.token(city, HintKind.CLLI) == hints.clli(city)
        assert hints.token(city, HintKind.CITYNAME) == "berlin"


class TestSlug:
    def test_multiword(self, gazetteer):
        sf = gazetteer.match("San Francisco", "US")
        assert city_slug(sf) == "sanfrancisco"

    def test_punctuation_stripped(self, gazetteer):
        st_louis = gazetteer.match("St. Louis", "US")
        assert city_slug(st_louis) == "stlouis"
