"""The log-bucketed quantile histogram behind every registry series."""

import math
import random

import pytest

from repro.obs.quantiles import (
    BUCKET_BOUNDS,
    GROWTH_FACTOR,
    BucketHistogram,
    Histogram,
)


class TestBucketTable:
    def test_bounds_grow_geometrically(self):
        ratios = [b / a for a, b in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:])]
        assert all(ratio == pytest.approx(GROWTH_FACTOR) for ratio in ratios)

    def test_bounds_cover_microseconds_to_gigaseconds(self):
        assert BUCKET_BOUNDS[0] <= 1e-6
        assert BUCKET_BOUNDS[-1] >= 1e9


class TestSummaryCompatibility:
    def test_to_dict_matches_plain_histogram_exactly(self):
        # The run manifest snapshots to_dict(); the bucketed subclass
        # must stay byte-compatible with the pre-quantile format.
        plain, bucketed = Histogram(), BucketHistogram()
        for value in (24, 0.5, 1000.0, 24):
            plain.observe(value)
            bucketed.observe(value)
        assert bucketed.to_dict() == plain.to_dict()

    def test_empty_to_dict_is_count_zero(self):
        assert BucketHistogram().to_dict() == {"count": 0}

    def test_observe_many_matches_repeated_observe(self):
        many, repeated = BucketHistogram(), BucketHistogram()
        many.observe_many(7.0, 5)
        for _ in range(5):
            repeated.observe(7.0)
        assert many.to_dict() == repeated.to_dict()
        assert many.cumulative_buckets() == repeated.cumulative_buckets()


class TestQuantiles:
    def test_empty_histogram_answers_zero(self):
        assert BucketHistogram().quantile(0.5) == 0.0

    def test_extremes_are_exact(self):
        histogram = BucketHistogram()
        for value in (3.7, 12.0, 99.5):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 3.7
        assert histogram.quantile(1.0) == 99.5

    def test_single_value_every_quantile_is_that_value(self):
        histogram = BucketHistogram()
        histogram.observe(42.0)
        for q in (0.1, 0.5, 0.9, 0.999):
            assert histogram.quantile(q) == pytest.approx(42.0)

    def test_uniform_distribution_within_bucket_error(self):
        # 1.5x geometric buckets bound the relative error at 50% of the
        # true value in the worst case; a uniform sample sits well inside.
        rng = random.Random(2016)
        histogram = BucketHistogram()
        values = [rng.uniform(1.0, 100.0) for _ in range(5000)]
        for value in values:
            histogram.observe(value)
        values.sort()
        for q in (0.5, 0.9, 0.99):
            exact = values[int(q * len(values))]
            assert histogram.quantile(q) == pytest.approx(exact, rel=0.5)

    def test_estimates_clamped_to_observed_range(self):
        histogram = BucketHistogram()
        for _ in range(100):
            histogram.observe(5.0)
        for q in (0.001, 0.5, 0.999):
            assert 5.0 <= histogram.quantile(q) <= 5.0

    def test_quantiles_dict_shape(self):
        histogram = BucketHistogram()
        histogram.observe(1.0)
        assert set(histogram.quantiles()) == {"p50", "p90", "p99", "p999"}


class TestExposition:
    def test_cumulative_buckets_are_monotone_and_end_at_count(self):
        rng = random.Random(7)
        histogram = BucketHistogram()
        for _ in range(500):
            histogram.observe(rng.expovariate(0.1))
        pairs = histogram.cumulative_buckets()
        bounds = [bound for bound, _ in pairs]
        counts = [count for _, count in pairs]
        assert bounds == sorted(bounds)
        assert counts == sorted(counts)
        assert math.isinf(bounds[-1])
        assert counts[-1] == histogram.count == 500

    def test_only_changed_buckets_emitted(self):
        histogram = BucketHistogram()
        histogram.observe(1.0)
        pairs = histogram.cumulative_buckets()
        # one populated bucket plus the terminal +Inf — never ~90 rows
        assert len(pairs) == 2

    def test_exposition_carries_count_sum_buckets(self):
        histogram = BucketHistogram()
        histogram.observe(2.0)
        histogram.observe(4.0)
        exposition = histogram.exposition()
        assert exposition["count"] == 2
        assert exposition["sum"] == pytest.approx(6.0)
        assert exposition["buckets"][-1] == (math.inf, 2)
