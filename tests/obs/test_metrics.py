"""Tests for the metrics registry and its hot-path integrations."""

import threading

import pytest

from repro.geo.rir import RIR
from repro.geodb.database import GeoDatabase, single_prefix
from repro.geodb.record import GeoRecord
from repro.net.registry import (
    DelegationRegistry,
    TeamCymruWhois,
    UnallocatedAddressError,
)
from repro.obs.metrics import Histogram, MetricsRegistry


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        metrics = MetricsRegistry()
        metrics.inc("geodb.lookups")
        metrics.inc("geodb.lookups", 2)
        assert metrics.counter("geodb.lookups") == 3

    def test_labels_split_series_and_total_sums_them(self):
        metrics = MetricsRegistry()
        metrics.inc("geodb.lookups", database="A")
        metrics.inc("geodb.lookups", database="B")
        metrics.inc("geodb.lookups", database="B")
        assert metrics.counter("geodb.lookups", database="A") == 1
        assert metrics.counter("geodb.lookups", database="B") == 2
        assert metrics.counter_total("geodb.lookups") == 3

    def test_families_are_name_prefixes(self):
        metrics = MetricsRegistry()
        metrics.inc("geodb.lookups")
        metrics.inc("whois.queries")
        metrics.observe("scenario.latency", 1.0)
        assert metrics.families() == ("geodb", "scenario", "whois")

    def test_histogram_summary(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(2.0)
        summary = histogram.to_dict()
        assert summary["min"] == 1.0 and summary["max"] == 3.0

    def test_snapshot_label_rendering(self):
        metrics = MetricsRegistry()
        metrics.inc("geodb.lookups", database="X")
        metrics.observe("geodb.prefix_length", 24, database="X")
        assert metrics.counters_snapshot() == {"geodb.lookups{database=X}": 1}
        assert "geodb.prefix_length{database=X}" in metrics.histograms_snapshot()

    def test_render_empty(self):
        assert "no metrics" in MetricsRegistry().render()

    def test_histograms_snapshot_quantiles_opt_in(self):
        metrics = MetricsRegistry()
        metrics.observe("serve.latency_ms", 2.0)
        # Default shape stays byte-compatible with the run manifest.
        default = metrics.histograms_snapshot()["serve.latency_ms"]
        assert default == {"count": 1, "sum": 2.0, "min": 2.0, "max": 2.0, "mean": 2.0}
        enriched = metrics.histograms_snapshot(quantiles=True)["serve.latency_ms"]
        assert {"p50", "p90", "p99", "p999"} <= set(enriched)


class TestInspectionRace:
    """Regression for the snapshot-vs-insert race: every read path must
    lock (or copy under the lock), or a /statusz scrape during handler
    inserts raises ``RuntimeError: dictionary changed size``."""

    def test_snapshots_survive_concurrent_fresh_series_inserts(self):
        metrics = MetricsRegistry()
        stop = threading.Event()
        failures: list[BaseException] = []

        def writer():
            # Fresh label values every time: each inc/observe inserts a
            # new dict key, forcing resizes under the readers.
            i = 0
            while not stop.is_set():
                i += 1
                metrics.inc("race.counter", series=i)
                metrics.observe("race.histogram", float(i), series=i)
                metrics.cell("race.cells", series=i)

        def reader():
            try:
                while not stop.is_set():
                    metrics.families()
                    metrics.counters_snapshot()
                    metrics.histograms_snapshot()
                    metrics.counter_total("race.counter")
                    metrics.counter_series()
                    metrics.histogram_series()
                    len(metrics)
            except BaseException as exc:  # noqa: BLE001 - the regression
                failures.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(2)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        timer = threading.Timer(1.0, stop.set)
        timer.start()
        for thread in threads:
            thread.join(timeout=30)
        timer.cancel()
        assert not failures


class TestCounterCells:
    def test_cell_feeds_every_registered_name(self):
        metrics = MetricsRegistry()
        cell = metrics.cell("serve.lookups", "plane.hits")
        for _ in range(4):
            cell.add()
        assert metrics.counter("serve.lookups") == 4
        assert metrics.counter("plane.hits") == 4

    def test_cell_and_inc_merge_exactly(self):
        metrics = MetricsRegistry()
        cell = metrics.cell("serve.lookups")
        cell.add(3)
        metrics.inc("serve.lookups", 2)
        assert metrics.counter("serve.lookups") == 5
        assert metrics.counter_total("serve.lookups") == 5
        assert metrics.counters_snapshot()["serve.lookups"] == 5
        assert "serve" in metrics.families()

    def test_cells_with_labels_split_series(self):
        metrics = MetricsRegistry()
        metrics.cell("plane.hits", shard="a").add(2)
        metrics.cell("plane.hits", shard="b").add(1)
        assert metrics.counter("plane.hits", shard="a") == 2
        assert metrics.counter_total("plane.hits") == 3

    def test_cell_requires_a_name(self):
        with pytest.raises(ValueError):
            MetricsRegistry().cell()

    def test_concurrent_cell_adds_are_exact(self):
        metrics = MetricsRegistry()
        cell = metrics.cell("serve.lookups", "plane.hits")
        per_thread, threads = 5000, 8

        def worker():
            for _ in range(per_thread):
                cell.add()

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert metrics.counter("serve.lookups") == per_thread * threads
        assert metrics.counter("plane.hits") == per_thread * threads


class TestWindowTracking:
    def test_matching_incs_feed_the_window(self):
        metrics = MetricsRegistry()
        window = metrics.track_window("requests", "serve.requests")
        metrics.inc("serve.requests", endpoint="lookup")
        metrics.inc("serve.requests", endpoint="batch")
        assert window.total() == 2

    def test_label_filter_excludes_introspection_traffic(self):
        metrics = MetricsRegistry()
        window = metrics.track_window(
            "requests", "serve.requests", endpoint_class="serving"
        )
        metrics.inc("serve.requests", endpoint="lookup", endpoint_class="serving")
        metrics.inc(
            "serve.requests", endpoint="statusz", endpoint_class="introspection"
        )
        assert window.total() == 1

    def test_alias_registration_is_idempotent(self):
        metrics = MetricsRegistry()
        first = metrics.track_window("requests", "serve.requests")
        second = metrics.track_window("requests", "serve.requests")
        assert first is second

    def test_windows_snapshot_lists_aliases(self):
        metrics = MetricsRegistry()
        metrics.track_window("requests", "serve.requests")
        metrics.inc("serve.requests")
        snapshot = metrics.windows_snapshot((10, 60))
        assert snapshot["requests"]["10s"]["total"] == 1.0
        assert metrics.window("requests") is not None
        assert metrics.window("missing") is None


@pytest.fixture()
def tiny_database() -> GeoDatabase:
    record = GeoRecord(country="US", city="Denver", latitude=39.7, longitude=-105.0)
    return GeoDatabase("Tiny", [single_prefix("10.0.0.0/24", record)])


class TestGeoDatabaseCounters:
    def test_lookups_and_misses_accumulate(self, tiny_database):
        metrics = MetricsRegistry()
        tiny_database.attach_metrics(metrics)
        assert tiny_database.lookup("10.0.0.1") is not None
        assert tiny_database.lookup("10.0.0.2") is not None
        assert tiny_database.lookup("192.168.0.1") is None
        assert metrics.counter("geodb.lookups", database="Tiny") == 3
        assert metrics.counter("geodb.misses", database="Tiny") == 1
        assert (
            metrics.counter("geodb.resolution", database="Tiny", resolution="city")
            == 2
        )

    def test_prefix_length_histogram(self, tiny_database):
        metrics = MetricsRegistry()
        tiny_database.attach_metrics(metrics)
        tiny_database.lookup("10.0.0.1")
        summary = metrics.histograms_snapshot()["geodb.prefix_length{database=Tiny}"]
        assert summary == {"count": 1, "sum": 24, "min": 24, "max": 24, "mean": 24}

    def test_unattached_database_records_nothing(self, tiny_database):
        # The default state: no registry, no counting, same answers.
        assert tiny_database.lookup("10.0.0.1") is not None
        metrics = MetricsRegistry()
        assert len(metrics) == 0

    def test_detach_restores_uninstrumented_path(self, tiny_database):
        metrics = MetricsRegistry()
        tiny_database.attach_metrics(metrics)
        tiny_database.lookup("10.0.0.1")
        tiny_database.attach_metrics(None)
        tiny_database.lookup("10.0.0.1")
        assert metrics.counter("geodb.lookups", database="Tiny") == 1


class TestWhoisCounters:
    def test_queries_and_unallocated(self):
        registry = DelegationRegistry()
        delegation = registry.allocate(
            RIR.ARIN, asn=65000, registered_country="us", organization="ExampleNet"
        )
        metrics = MetricsRegistry()
        whois = TeamCymruWhois(registry, metrics=metrics)
        whois.lookup(delegation.prefix.network_address)
        with pytest.raises(UnallocatedAddressError):
            whois.lookup("203.0.113.1")
        assert metrics.counter("whois.queries") == 2
        assert metrics.counter("whois.unallocated") == 1

    def test_bulk_lookup_counts_each_query(self):
        registry = DelegationRegistry()
        delegation = registry.allocate(
            RIR.ARIN, asn=65000, registered_country="us", organization="ExampleNet"
        )
        metrics = MetricsRegistry()
        whois = TeamCymruWhois(registry)
        whois.attach_metrics(metrics)
        base = int(delegation.prefix.network_address)
        whois.bulk_lookup([base, base + 1, base + 2])
        assert metrics.counter("whois.queries") == 3
        assert metrics.counter("whois.bulk_queries") == 1


class TestCallbackGauges:
    def test_gauges_read_live_state_at_scrape_time(self):
        metrics = MetricsRegistry()
        state = {"value": 1.0}
        metrics.register_gauge("serve.generation_id", lambda: state["value"])
        assert metrics.gauges_snapshot() == {"serve.generation_id": 1.0}
        state["value"] = 7.0
        assert metrics.gauges_snapshot() == {"serve.generation_id": 7.0}

    def test_labels_split_gauge_series(self):
        metrics = MetricsRegistry()
        metrics.register_gauge("pool.size", lambda: 3.0, pool="read")
        metrics.register_gauge("pool.size", lambda: 5.0, pool="write")
        snapshot = metrics.gauges_snapshot()
        assert snapshot["pool.size{pool=read}"] == 3.0
        assert snapshot["pool.size{pool=write}"] == 5.0

    def test_reregistering_replaces_the_callback(self):
        metrics = MetricsRegistry()
        metrics.register_gauge("serve.generation_id", lambda: 1.0)
        metrics.register_gauge("serve.generation_id", lambda: 2.0)
        assert metrics.gauges_snapshot() == {"serve.generation_id": 2.0}

    def test_a_raising_callback_is_skipped_not_fatal(self):
        metrics = MetricsRegistry()
        metrics.register_gauge("bad.gauge", lambda: 1 / 0)
        metrics.register_gauge("good.gauge", lambda: 4.0)
        assert metrics.gauges_snapshot() == {"good.gauge": 4.0}

    def test_callbacks_run_outside_the_registry_lock(self):
        """A gauge whose callback touches the registry again must not
        deadlock a scrape — the engine's gauges read locked state."""
        metrics = MetricsRegistry()
        metrics.register_gauge(
            "meta.counter_count", lambda: float(len(metrics))
        )
        assert "meta.counter_count" in metrics.gauges_snapshot()

    def test_gauges_count_toward_len_and_families(self):
        metrics = MetricsRegistry()
        metrics.register_gauge("serve.generation_age_s", lambda: 0.5)
        assert len(metrics) == 1
        assert "serve" in metrics.families()
