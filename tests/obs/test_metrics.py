"""Tests for the metrics registry and its hot-path integrations."""

import pytest

from repro.geo.rir import RIR
from repro.geodb.database import GeoDatabase, single_prefix
from repro.geodb.record import GeoRecord
from repro.net.registry import (
    DelegationRegistry,
    TeamCymruWhois,
    UnallocatedAddressError,
)
from repro.obs.metrics import Histogram, MetricsRegistry


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        metrics = MetricsRegistry()
        metrics.inc("geodb.lookups")
        metrics.inc("geodb.lookups", 2)
        assert metrics.counter("geodb.lookups") == 3

    def test_labels_split_series_and_total_sums_them(self):
        metrics = MetricsRegistry()
        metrics.inc("geodb.lookups", database="A")
        metrics.inc("geodb.lookups", database="B")
        metrics.inc("geodb.lookups", database="B")
        assert metrics.counter("geodb.lookups", database="A") == 1
        assert metrics.counter("geodb.lookups", database="B") == 2
        assert metrics.counter_total("geodb.lookups") == 3

    def test_families_are_name_prefixes(self):
        metrics = MetricsRegistry()
        metrics.inc("geodb.lookups")
        metrics.inc("whois.queries")
        metrics.observe("scenario.latency", 1.0)
        assert metrics.families() == ("geodb", "scenario", "whois")

    def test_histogram_summary(self):
        histogram = Histogram()
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(2.0)
        summary = histogram.to_dict()
        assert summary["min"] == 1.0 and summary["max"] == 3.0

    def test_snapshot_label_rendering(self):
        metrics = MetricsRegistry()
        metrics.inc("geodb.lookups", database="X")
        metrics.observe("geodb.prefix_length", 24, database="X")
        assert metrics.counters_snapshot() == {"geodb.lookups{database=X}": 1}
        assert "geodb.prefix_length{database=X}" in metrics.histograms_snapshot()

    def test_render_empty(self):
        assert "no metrics" in MetricsRegistry().render()


@pytest.fixture()
def tiny_database() -> GeoDatabase:
    record = GeoRecord(country="US", city="Denver", latitude=39.7, longitude=-105.0)
    return GeoDatabase("Tiny", [single_prefix("10.0.0.0/24", record)])


class TestGeoDatabaseCounters:
    def test_lookups_and_misses_accumulate(self, tiny_database):
        metrics = MetricsRegistry()
        tiny_database.attach_metrics(metrics)
        assert tiny_database.lookup("10.0.0.1") is not None
        assert tiny_database.lookup("10.0.0.2") is not None
        assert tiny_database.lookup("192.168.0.1") is None
        assert metrics.counter("geodb.lookups", database="Tiny") == 3
        assert metrics.counter("geodb.misses", database="Tiny") == 1
        assert (
            metrics.counter("geodb.resolution", database="Tiny", resolution="city")
            == 2
        )

    def test_prefix_length_histogram(self, tiny_database):
        metrics = MetricsRegistry()
        tiny_database.attach_metrics(metrics)
        tiny_database.lookup("10.0.0.1")
        summary = metrics.histograms_snapshot()["geodb.prefix_length{database=Tiny}"]
        assert summary == {"count": 1, "sum": 24, "min": 24, "max": 24, "mean": 24}

    def test_unattached_database_records_nothing(self, tiny_database):
        # The default state: no registry, no counting, same answers.
        assert tiny_database.lookup("10.0.0.1") is not None
        metrics = MetricsRegistry()
        assert len(metrics) == 0

    def test_detach_restores_uninstrumented_path(self, tiny_database):
        metrics = MetricsRegistry()
        tiny_database.attach_metrics(metrics)
        tiny_database.lookup("10.0.0.1")
        tiny_database.attach_metrics(None)
        tiny_database.lookup("10.0.0.1")
        assert metrics.counter("geodb.lookups", database="Tiny") == 1


class TestWhoisCounters:
    def test_queries_and_unallocated(self):
        registry = DelegationRegistry()
        delegation = registry.allocate(
            RIR.ARIN, asn=65000, registered_country="us", organization="ExampleNet"
        )
        metrics = MetricsRegistry()
        whois = TeamCymruWhois(registry, metrics=metrics)
        whois.lookup(delegation.prefix.network_address)
        with pytest.raises(UnallocatedAddressError):
            whois.lookup("203.0.113.1")
        assert metrics.counter("whois.queries") == 2
        assert metrics.counter("whois.unallocated") == 1

    def test_bulk_lookup_counts_each_query(self):
        registry = DelegationRegistry()
        delegation = registry.allocate(
            RIR.ARIN, asn=65000, registered_country="us", organization="ExampleNet"
        )
        metrics = MetricsRegistry()
        whois = TeamCymruWhois(registry)
        whois.attach_metrics(metrics)
        base = int(delegation.prefix.network_address)
        whois.bulk_lookup([base, base + 1, base + 2])
        assert metrics.counter("whois.queries") == 3
        assert metrics.counter("whois.bulk_queries") == 1
