"""Tests for tracing spans: nesting, timing, the no-op default."""

import time

from repro.obs.span import NOOP_TRACER, NoopTracer, Tracer, render_span_tree


class TestSpanNesting:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner-1"):
                pass
            with tracer.span("inner-2"):
                with tracer.span("leaf"):
                    pass
        assert [root.name for root in tracer.roots] == ["outer"]
        outer = tracer.roots[0]
        assert [child.name for child in outer.children] == ["inner-1", "inner-2"]
        assert [child.name for child in outer.children[1].children] == ["leaf"]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [root.name for root in tracer.roots] == ["a", "b"]

    def test_find_searches_the_whole_forest(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("needle"):
                pass
        assert tracer.find("needle").name == "needle"
        assert tracer.find("missing") is None


class TestSpanTiming:
    def test_duration_monotonic_and_contains_children(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                time.sleep(0.01)
        parent, = tracer.roots
        child, = parent.children
        assert child.duration >= 0.01
        # A parent's wall-time covers the wall-time of its children.
        assert parent.duration >= child.duration
        assert parent.closed and child.closed

    def test_duration_frozen_after_close(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        span = tracer.roots[0]
        first = span.duration
        time.sleep(0.005)
        assert span.duration == first


class TestSpanAttributes:
    def test_count_and_set_round_trip_to_dict(self):
        tracer = Tracer()
        with tracer.span("stage", seed=7) as span:
            span.count(42)
            span.set(databases=4)
        node = tracer.roots[0].to_dict()
        assert node["name"] == "stage"
        assert node["items"] == 42
        assert node["attributes"] == {"seed": 7, "databases": 4}
        assert node["duration_s"] >= 0

    def test_listener_fires_on_close_with_depth(self):
        seen = []
        tracer = Tracer(listener=lambda span, depth: seen.append((span.name, depth)))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        # Children close before their parents, at greater depth.
        assert seen == [("inner", 1), ("outer", 0)]


class TestNoopTracer:
    def test_noop_records_nothing(self):
        tracer = NoopTracer()
        with tracer.span("anything", key="value") as span:
            span.count(10)
            span.set(more=1)
        assert tracer.roots == ()
        assert tracer.to_dict() == []
        assert tracer.find("anything") is None

    def test_noop_is_shared_and_disabled(self):
        assert NOOP_TRACER.enabled is False
        assert NOOP_TRACER.span("a") is NOOP_TRACER.span("b")

    def test_real_tracer_is_enabled(self):
        assert Tracer().enabled is True


class TestRenderSpanTree:
    def test_render_shows_all_spans_and_shares(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("stage-a") as span:
                span.count(3)
            with tracer.span("stage-b"):
                pass
        text = render_span_tree(tracer.roots[0])
        lines = text.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("root")
        assert "100.0%" in lines[0]
        assert "stage-a" in lines[1] and "items=3" in lines[1]
        assert "stage-b" in lines[2]
        assert all("ms" in line for line in lines)
