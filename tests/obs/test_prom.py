"""Prometheus exposition: renderer output and the strict validator.

The validator is the satellite contract: every ``/metricsz`` line must
parse (HELP/TYPE pairs, escaped labels, monotone ``_bucket`` counts,
``+Inf`` == ``_count``) — and the validator itself must actually catch
each violation class, or the round-trip test proves nothing.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import render_prometheus, validate_exposition


@pytest.fixture()
def registry():
    metrics = MetricsRegistry()
    metrics.inc("serve.lookups", 5)
    metrics.inc("serve.requests", endpoint="lookup", status=200)
    metrics.inc("serve.requests", endpoint="batch", status=400)
    for value in (0.2, 1.2, 3.4, 50.0):
        metrics.observe("serve.latency_ms", value, endpoint="lookup")
    metrics.track_window("requests", "serve.requests")
    metrics.inc("serve.requests", endpoint="lookup", status=200)
    return metrics


class TestRenderer:
    def test_output_validates(self, registry):
        assert validate_exposition(render_prometheus(registry)) == []

    def test_counters_become_total_families(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE repro_serve_lookups_total counter" in text
        assert "repro_serve_lookups_total 5" in text
        assert (
            'repro_serve_requests_total{endpoint="batch",status="400"} 1' in text
        )

    def test_histograms_expose_buckets_sum_count_and_quantiles(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE repro_serve_latency_ms histogram" in text
        assert 'repro_serve_latency_ms_bucket{endpoint="lookup",le="+Inf"} 4' in text
        assert 'repro_serve_latency_ms_count{endpoint="lookup"} 4' in text
        assert "# TYPE repro_serve_latency_ms_p50 gauge" in text
        assert "# TYPE repro_serve_latency_ms_p99 gauge" in text

    def test_windows_become_rate_gauges(self, registry):
        text = render_prometheus(registry)
        assert "# TYPE repro_window_per_s gauge" in text
        assert 'window="requests"' in text

    def test_label_values_are_escaped(self):
        metrics = MetricsRegistry()
        metrics.inc("serve.requests", endpoint='we"ird\\path\nx')
        text = render_prometheus(metrics)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert validate_exposition(text) == []

    def test_metric_names_are_sanitised(self):
        metrics = MetricsRegistry()
        metrics.inc("serve.weird-name")
        text = render_prometheus(metrics)
        assert "repro_serve_weird_name_total" in text
        assert validate_exposition(text) == []

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert validate_exposition("") == []


def one_error(text):
    errors = validate_exposition(text)
    assert errors, "expected a validation error"
    return errors[0]


class TestValidator:
    def test_sample_without_type_is_an_error(self):
        assert "no preceding TYPE" in one_error("some_metric 1\n")

    def test_type_without_help_is_an_error(self):
        assert "without HELP" in one_error("# TYPE x counter\nx 1\n")

    def test_unparseable_sample_is_an_error(self):
        text = "# HELP x help\n# TYPE x counter\nx one\n"
        assert "unparseable" in one_error(text)

    def test_malformed_label_is_an_error(self):
        text = '# HELP x help\n# TYPE x counter\nx{a=unquoted} 1\n'
        assert "label" in one_error(text)

    def test_duplicate_series_is_an_error(self):
        text = "# HELP x help\n# TYPE x counter\nx 1\nx 2\n"
        assert "duplicate series" in one_error(text)

    def test_negative_counter_is_an_error(self):
        text = "# HELP x help\n# TYPE x counter\nx -1\n"
        assert "negative" in one_error(text)

    def test_nonmonotone_buckets_are_an_error(self):
        text = (
            "# HELP h help\n# TYPE h histogram\n"
            'h_bucket{le="1"} 5\nh_bucket{le="2"} 3\nh_bucket{le="+Inf"} 5\n'
            "h_sum 9\nh_count 5\n"
        )
        assert "counts decrease" in one_error(text)

    def test_inf_bucket_must_equal_count(self):
        text = (
            "# HELP h help\n# TYPE h histogram\n"
            'h_bucket{le="1"} 2\nh_bucket{le="+Inf"} 2\n'
            "h_sum 2\nh_count 3\n"
        )
        assert "+Inf bucket" in one_error(text)

    def test_missing_inf_bucket_is_an_error(self):
        text = (
            "# HELP h help\n# TYPE h histogram\n"
            'h_bucket{le="1"} 2\nh_sum 2\nh_count 2\n'
        )
        assert "+Inf" in one_error(text)

    def test_histogram_missing_count_is_an_error(self):
        text = (
            "# HELP h help\n# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 2\nh_sum 2\n'
        )
        assert "_count" in one_error(text)

    def test_missing_trailing_newline_is_an_error(self):
        text = "# HELP x help\n# TYPE x counter\nx 1"
        assert "newline" in one_error(text)

    def test_valid_multi_series_histogram_passes(self):
        text = (
            "# HELP h help\n# TYPE h histogram\n"
            'h_bucket{vendor="A",le="1"} 1\nh_bucket{vendor="A",le="+Inf"} 2\n'
            'h_sum{vendor="A"} 3\nh_count{vendor="A"} 2\n'
            'h_bucket{vendor="B",le="+Inf"} 1\n'
            'h_sum{vendor="B"} 0.5\nh_count{vendor="B"} 1\n'
        )
        assert validate_exposition(text) == []


class TestGauges:
    def test_gauges_render_as_gauge_families(self):
        metrics = MetricsRegistry()
        metrics.inc("serve.lookups")
        metrics.register_gauge("serve.generation_id", lambda: 42.0)
        metrics.register_gauge("pool.size", lambda: 3.0, pool="read")
        text = render_prometheus(metrics)
        assert validate_exposition(text) == []
        assert "# TYPE repro_serve_generation_id gauge" in text
        assert "repro_serve_generation_id 42" in text
        assert 'repro_pool_size{pool="read"} 3' in text
        # Gauges are not counters: no _total suffix on the family.
        assert "repro_serve_generation_id_total" not in text

    def test_scrape_reflects_the_latest_value(self):
        metrics = MetricsRegistry()
        state = {"generation": 1.0}
        metrics.register_gauge("serve.generation_id", lambda: state["generation"])
        assert "repro_serve_generation_id 1" in render_prometheus(metrics)
        state["generation"] = 2.0
        assert "repro_serve_generation_id 2" in render_prometheus(metrics)

    def test_a_raising_gauge_never_breaks_the_exposition(self):
        metrics = MetricsRegistry()
        metrics.inc("serve.lookups")
        metrics.register_gauge("bad.gauge", lambda: 1 / 0)
        text = render_prometheus(metrics)
        assert validate_exposition(text) == []
        assert "bad_gauge" not in text
