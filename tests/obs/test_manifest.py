"""Tests for the run manifest: assembly, JSON round-trip, pipeline glue."""

import json

from repro.obs.manifest import RunManifest, manifest_from_json, sha256_digest
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Tracer


def _traced_run() -> Tracer:
    tracer = Tracer()
    with tracer.span("run") as run:
        run.set(databases=2)
        with tracer.span("coverage") as span:
            span.count(10)
        with tracer.span("accuracy"):
            pass
    return tracer


class TestManifestAssembly:
    def test_build_collects_spans_counters_and_config(self):
        tracer = _traced_run()
        metrics = MetricsRegistry()
        metrics.inc("geodb.lookups", 5, database="A")
        metrics.inc("whois.queries", 2)
        metrics.inc("scenario.probes", 70)
        manifest = RunManifest.build(
            config={"seed": 3, "scale": 0.05, "city_range_km": 40.0},
            spans=tracer.roots,
            metrics=metrics,
            digests={"summary_sha256": sha256_digest("report")},
        )
        assert manifest.config["seed"] == 3
        assert manifest.counter_families == ("geodb", "scenario", "whois")
        assert manifest.counters["whois.queries"] == 2
        assert manifest.stage_names() == ("run", "coverage", "accuracy")
        assert len(manifest.digests["summary_sha256"]) == 64

    def test_build_without_metrics(self):
        manifest = RunManifest.build(config={}, spans=_traced_run().roots)
        assert manifest.counters == {}
        assert manifest.counter_families == ()


class TestManifestRoundTrip:
    def test_json_reproduces_the_span_tree(self):
        tracer = _traced_run()
        manifest = RunManifest.build(config={"seed": 1}, spans=tracer.roots)
        payload = json.loads(manifest.to_json())
        assert payload["spans"] == [tracer.roots[0].to_dict()]
        names = [child["name"] for child in payload["spans"][0]["children"]]
        assert names == ["coverage", "accuracy"]

    def test_from_json_round_trips_exactly(self):
        metrics = MetricsRegistry()
        metrics.inc("geodb.lookups", database="A")
        metrics.observe("geodb.prefix_length", 24, database="A")
        manifest = RunManifest.build(
            config={"seed": 1, "scale": 0.1},
            spans=_traced_run().roots,
            metrics=metrics,
            digests={"summary_sha256": "ab" * 32},
        )
        restored = manifest_from_json(manifest.to_json())
        assert restored == manifest

    def test_digest_is_stable(self):
        assert sha256_digest("x") == sha256_digest("x")
        assert sha256_digest("x") != sha256_digest("y")


class TestPipelineManifest:
    def test_instrumented_run_attaches_manifest(self, small_scenario):
        from repro.core.pipeline import RouterGeolocationStudy

        tracer = Tracer()
        metrics = MetricsRegistry()
        try:
            result = RouterGeolocationStudy.from_scenario(
                small_scenario, tracer=tracer, metrics=metrics
            ).run()
        finally:
            # The scenario fixture is session-scoped and shared: detach the
            # registry so later tests see uninstrumented databases again.
            for database in small_scenario.databases.values():
                database.attach_metrics(None)
            small_scenario.internet.whois.attach_metrics(None)
        manifest = result.manifest
        assert manifest is not None
        stages = manifest.stage_names()
        for stage in (
            "run", "coverage", "consistency", "city_range", "table1",
            "accuracy_overall", "accuracy_by_rir", "accuracy_by_country",
            "accuracy_by_source", "arin_case_study", "recommendations",
        ):
            assert stage in stages
        assert {"geodb", "whois"} <= set(manifest.counter_families)
        assert manifest.config["seed"] == small_scenario.config.seed
        assert manifest.config["city_range_km"] == 40.0
        # The digests certify the rendered reports.
        assert manifest.digests["summary_sha256"] == sha256_digest(
            result.render_summary()
        )

    def test_uninstrumented_run_has_no_manifest(self, study_result):
        assert study_result.manifest is None
