"""Per-request traces: span rows, path attribution, the slow-trace ring."""

import pytest

from repro.obs.reqtrace import (
    DEFAULT_MAX_SPANS,
    RequestTrace,
    TraceRing,
    new_trace_id,
)


class TestTraceIds:
    def test_minted_ids_are_16_hex_chars(self):
        trace_id = new_trace_id()
        assert len(trace_id) == 16
        int(trace_id, 16)  # hex or raise

    def test_client_supplied_id_is_honoured(self):
        trace = RequestTrace("lookup", trace_id="client-abc.123")
        assert trace.trace_id == "client-abc.123"

    def test_missing_id_is_minted(self):
        assert RequestTrace("lookup").trace_id != RequestTrace("lookup").trace_id


class TestSpanRecording:
    def test_begin_end_builds_a_nested_tree(self):
        trace = RequestTrace("lookup")
        root = trace.begin("resolve", address="10.0.0.1")
        trace.add("probe:A", 1.5, parent=root, ok=True)
        trace.add("probe:B", 0.5, parent=root, ok=False)
        trace.end(root, degraded=True)
        trace.finish(status=200)
        tree = trace.to_dict()
        assert tree["endpoint"] == "lookup"
        assert tree["status"] == 200
        (resolve,) = tree["spans"]
        assert resolve["name"] == "resolve"
        assert resolve["attrs"]["degraded"] is True
        assert [span["name"] for span in resolve["children"]] == [
            "probe:A",
            "probe:B",
        ]
        assert resolve["children"][0]["duration_ms"] == 1.5

    def test_span_cap_drops_and_counts(self):
        trace = RequestTrace("batch", max_spans=3)
        for i in range(10):
            assert trace.begin(f"span{i}") == (i if i < 3 else -2)
        assert trace.span_count() == 3
        assert trace.dropped_spans == 7
        assert trace.to_dict()["dropped_spans"] == 7

    def test_end_of_a_dropped_span_is_a_noop(self):
        trace = RequestTrace("batch", max_spans=1)
        trace.begin("kept")
        dropped = trace.begin("dropped")
        trace.end(dropped)  # must not raise or touch the kept span

    def test_default_cap_bounds_huge_batches(self):
        trace = RequestTrace("batch")
        for _ in range(10_000):
            trace.add("lookup", 0.001)
        assert trace.span_count() == DEFAULT_MAX_SPANS

    def test_finish_freezes_duration(self):
        trace = RequestTrace("lookup")
        trace.finish(status=503)
        first = trace.duration_ms
        trace.finish()
        assert trace.duration_ms == first
        assert trace.status == 503


class TestPathAttribution:
    def test_single_path_sticks(self):
        trace = RequestTrace("lookup")
        trace.note_path("plane")
        trace.note_path("plane")
        assert trace.path == "plane"

    def test_heterogeneous_batch_is_mixed(self):
        trace = RequestTrace("batch")
        trace.note_path("cache")
        trace.note_path("live")
        assert trace.path == "mixed"


def finished(duration_ms, endpoint="lookup"):
    trace = RequestTrace(endpoint)
    trace.duration_ms = duration_ms
    trace.status = 200
    return trace


class TestTraceRing:
    def test_keeps_the_n_slowest(self):
        ring = TraceRing(capacity=3)
        for duration in (5.0, 1.0, 9.0, 2.0, 7.0, 3.0):
            ring.record(finished(duration))
        durations = [trace["duration_ms"] for trace in ring.slowest()]
        assert durations == [9.0, 7.0, 5.0]

    def test_slowest_is_sorted_descending(self):
        ring = TraceRing(capacity=8)
        for duration in (1.0, 4.0, 2.0):
            ring.record(finished(duration))
        durations = [trace["duration_ms"] for trace in ring.slowest()]
        assert durations == sorted(durations, reverse=True)

    def test_stale_traces_are_evicted(self):
        ring = TraceRing(capacity=4, max_age_s=60.0)
        old = finished(1000.0)
        old._mono -= 3600.0  # started an hour ago
        ring.record(old)
        ring.record(finished(1.0))
        durations = [trace["duration_ms"] for trace in ring.slowest()]
        assert durations == [1.0]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TraceRing(capacity=0)

    def test_clear_empties_the_ring(self):
        ring = TraceRing(capacity=2)
        ring.record(finished(1.0))
        ring.clear()
        assert len(ring) == 0 and ring.slowest() == []
