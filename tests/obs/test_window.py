"""Rolling-window rates: the per-second ring buffer behind /statusz."""

import threading

import pytest

from repro.obs.window import RollingWindow


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


class TestRollingWindow:
    def test_counts_land_in_the_current_second(self, clock):
        window = RollingWindow(60, clock=clock)
        window.add()
        window.add(2.0)
        assert window.total(1) == 3.0

    def test_events_age_out_of_the_query_span(self, clock):
        window = RollingWindow(60, clock=clock)
        window.add(5.0)
        clock.tick(9)
        window.add(1.0)
        assert window.total(10) == 6.0
        clock.tick(5)  # the first burst is now 14s old
        assert window.total(10) == 1.0
        clock.tick(60)
        assert window.total(60) == 0.0

    def test_slot_reuse_after_wraparound(self, clock):
        # Second t and t+horizon share a ring slot; the stale value must
        # be reclaimed, not added to.
        window = RollingWindow(10, clock=clock)
        window.add(100.0)
        clock.tick(10)
        window.add(1.0)
        assert window.total(10) == 1.0

    def test_query_span_clamped_to_horizon(self, clock):
        window = RollingWindow(10, clock=clock)
        window.add(4.0)
        assert window.total(9999) == 4.0
        assert window.rate(20) == pytest.approx(4.0 / 10)

    def test_rate_divides_by_span(self, clock):
        window = RollingWindow(60, clock=clock)
        for _ in range(30):
            clock.tick(1)
            window.add()
        assert window.rate(10) == pytest.approx(1.0)

    def test_snapshot_shape(self, clock):
        window = RollingWindow(60, clock=clock)
        window.add(3.0)
        snapshot = window.snapshot((10, 60))
        assert snapshot == {
            "10s": {"total": 3.0, "per_s": 0.3},
            "60s": {"total": 3.0, "per_s": 0.05},
        }

    def test_memory_is_bounded_by_the_horizon(self, clock):
        window = RollingWindow(5, clock=clock)
        for _ in range(1000):
            clock.tick(1)
            window.add()
        assert len(window._counts) == 5
        assert window.total() == 5.0

    def test_rejects_nonpositive_horizon(self):
        with pytest.raises(ValueError):
            RollingWindow(0)

    def test_concurrent_adds_are_not_lost(self):
        # Real clock: all adds land within the same few seconds, so the
        # full-horizon total must reconcile exactly.
        window = RollingWindow(60)
        per_thread, threads = 2000, 8

        def worker():
            for _ in range(per_thread):
                window.add()

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert window.total() == per_thread * threads
