"""Tests for synthetic-Internet construction."""

import random

import networkx as nx
import pytest

from repro.geo import RIR, rir_for_country
from repro.net import ASRole
from repro.topology import (
    GROUND_TRUTH_DOMAIN_SPECS,
    TopologyBuilder,
    TopologyConfig,
)


class TestConfig:
    def test_scaled_shrinks_counts(self):
        cfg = TopologyConfig(seed=1).scaled(0.1)
        assert cfg.named_transit_routers == max(60, round(1600 * 0.1))
        assert all(v >= 1 for v in cfg.transit_per_rir.values())

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            TopologyConfig().scaled(0)

    def test_ground_truth_specs_cover_the_seven_domains(self):
        domains = {spec.domain for spec in GROUND_TRUTH_DOMAIN_SPECS}
        assert domains == {
            "belwue.de", "cogentco.com", "digitalwest.net", "ntt.net",
            "peak10.net", "seabone.net", "pnap.net",
        }


class TestBuiltWorld:
    def test_graph_is_connected(self, small_world):
        assert nx.is_connected(small_world.graph)

    def test_deterministic_given_seed(self, small_config):
        again = TopologyBuilder(small_config).build()
        rebuilt = {
            (r.router_id, r.city.name, r.autonomous_system.asn)
            for r in again.routers.values()
        }
        first = TopologyBuilder(small_config).build()
        original = {
            (r.router_id, r.city.name, r.autonomous_system.asn)
            for r in first.routers.values()
        }
        assert rebuilt == original

    def test_every_interface_resolves_to_its_router(self, small_world):
        for interface in small_world.interfaces()[:200]:
            router = small_world.router_of(interface.address)
            assert interface in router.interfaces

    def test_interfaces_outnumber_routers(self, small_world):
        # The paper's dataset has ~3.4 interfaces per router; our fabric
        # must produce a clearly >1 ratio for alias resolution to matter.
        ratio = small_world.interface_count() / len(small_world.routers)
        assert ratio > 1.5

    def test_interface_addresses_unique(self, small_world):
        addresses = [i.address for i in small_world.interfaces()]
        assert len(addresses) == len(set(addresses))

    def test_all_interfaces_inside_their_as_delegations(self, small_world):
        for interface in small_world.interfaces()[:300]:
            router = small_world.router_of(interface.address)
            delegation = small_world.registry.lookup(interface.address)
            assert delegation.asn == router.autonomous_system.asn

    def test_delegation_rir_follows_registered_country(self, small_world):
        for delegation in small_world.registry.delegations():
            assert delegation.rir is rir_for_country(delegation.registered_country)

    def test_ground_truth_domains_exist(self, small_world):
        domains = {a.domain for a in small_world.ases.values() if a.domain}
        assert "cogentco.com" in domains
        assert "ntt.net" in domains
        assert "belwue.de" in domains

    def test_multinationals_have_routers_abroad(self, small_world):
        # Cogent-like ASes must deploy outside their registered country —
        # the raw material of the §5.2.3 ARIN bias.
        cogent = next(
            a for a in small_world.ases.values() if a.domain == "cogentco.com"
        )
        countries = {
            small_world.routers[rid].city.country
            for rid in small_world.routers_of_as(cogent.asn)
        }
        assert "US" in countries
        assert len(countries) > 3

    def test_stub_ases_are_single_city(self, small_world):
        for autonomous_system in small_world.ases.values():
            if autonomous_system.role is ASRole.STUB:
                cities = {
                    small_world.routers[rid].city.key
                    for rid in small_world.routers_of_as(autonomous_system.asn)
                }
                assert len(cities) == 1

    def test_every_rir_has_infrastructure(self, small_world):
        rirs = {
            rir_for_country(r.city.country) for r in small_world.routers.values()
        }
        assert rirs == set(RIR)

    def test_home_router_for_interface_is_owner(self, small_world):
        interface = small_world.interfaces()[5]
        assert (
            small_world.home_router_for(interface.address)
            == small_world.router_of(interface.address).router_id
        )

    def test_home_router_for_nonfinterface_is_in_holding_as(self, small_world):
        delegation = small_world.registry.delegations()[0]
        from repro.net import nth_address

        # Probe a few addresses; each must home on a router of the AS.
        for offset in (0, 100, 1000):
            address = nth_address(delegation.prefix, offset % delegation.prefix.num_addresses)
            if small_world.is_interface(address):
                continue
            router_id = small_world.home_router_for(address)
            router = small_world.routers[router_id]
            assert router.autonomous_system.asn == delegation.asn

    def test_edge_interface_belongs_to_target_router(self, small_world):
        u, v = next(iter(small_world.graph.edges()))
        address = small_world.edge_interface(u, v)
        assert small_world.router_of(address).router_id == v
        other = small_world.edge_interface(v, u)
        assert small_world.router_of(other).router_id == u

    def test_describe_mentions_counts(self, small_world):
        text = small_world.describe()
        assert "routers" in text and "interfaces" in text
