"""Tests for valley-free policy routing."""

import random

import networkx as nx
import pytest

from repro.topology import (
    RelationshipError,
    TracerouteEngine,
    is_valley_free,
    relationship_census,
    valley_free_paths,
)


def toy_graph():
    """A classic valley topology:

        T1 --peer-- T2          (tier-1 clique)
        /             \\
      M1 (c2p up)     M2        (mid-tier providers)
      /                 \\
     S1                 S2      (stubs)

    plus a direct S1–S2 peer link that must never be used for transit
    beyond the two stubs themselves.
    """
    graph = nx.Graph()
    links = [
        ("S1", "M1", "c2p", "M1"),
        ("M1", "T1", "c2p", "T1"),
        ("T1", "T2", "peer", None),
        ("M2", "T2", "c2p", "T2"),
        ("S2", "M2", "c2p", "M2"),
        ("S1", "S2", "peer", None),
    ]
    for u, v, rel, provider in links:
        graph.add_edge(u, v, rel_type=rel, provider=provider, latency_ms=1.0)
    return graph


class TestToyTopology:
    def test_stub_reaches_stub_via_peer_shortcut(self):
        paths = valley_free_paths(toy_graph(), "S1")
        assert paths["S2"] == ["S1", "S2"]

    def test_uphill_peer_downhill(self):
        graph = toy_graph()
        graph.remove_edge("S1", "S2")
        paths = valley_free_paths(graph, "S1")
        assert paths["S2"] == ["S1", "M1", "T1", "T2", "M2", "S2"]
        assert is_valley_free(graph, paths["S2"])

    def test_no_transit_through_stub_peering(self):
        """M1 must not reach M2 down through S1 and across the stub
        peering — that would be a valley."""
        graph = toy_graph()
        graph.remove_edge("T1", "T2")  # sever the legitimate route
        paths = valley_free_paths(graph, "M1")
        assert "M2" not in paths  # no policy-compliant route remains
        valley = ["M1", "S1", "S2", "M2"]
        assert not is_valley_free(graph, valley)

    def test_provider_reaches_customers(self):
        paths = valley_free_paths(toy_graph(), "T1")
        assert paths["S1"] == ["T1", "M1", "S1"]

    def test_two_peer_links_forbidden(self):
        graph = nx.Graph()
        graph.add_edge("A", "B", rel_type="peer", provider=None, latency_ms=1.0)
        graph.add_edge("B", "C", rel_type="peer", provider=None, latency_ms=1.0)
        paths = valley_free_paths(graph, "A")
        assert "B" in paths
        assert "C" not in paths
        assert not is_valley_free(graph, ["A", "B", "C"])

    def test_internal_edges_keep_phase(self):
        graph = nx.Graph()
        graph.add_edge("A", "A2", rel_type="internal", provider=None, latency_ms=1.0)
        graph.add_edge("A2", "B", rel_type="peer", provider=None, latency_ms=1.0)
        graph.add_edge("B", "B2", rel_type="internal", provider=None, latency_ms=1.0)
        paths = valley_free_paths(graph, "A")
        assert paths["B2"] == ["A", "A2", "B", "B2"]

    def test_missing_annotation_raises(self):
        graph = nx.Graph()
        graph.add_edge("A", "B", latency_ms=1.0)
        with pytest.raises(RelationshipError):
            valley_free_paths(graph, "A")

    def test_unknown_relationship_raises(self):
        graph = nx.Graph()
        graph.add_edge("A", "B", rel_type="sibling", latency_ms=1.0)
        with pytest.raises(RelationshipError):
            valley_free_paths(graph, "A")


class TestBuiltWorld:
    def test_every_link_annotated(self, small_world):
        census = relationship_census(small_world.graph)
        assert "missing" not in census
        assert census.get("internal", 0) > 0
        assert census.get("c2p", 0) > 0
        assert census.get("peer", 0) > 0

    def test_policy_paths_are_valley_free(self, small_world):
        source = next(iter(sorted(small_world.routers)))
        paths = valley_free_paths(small_world.graph, source)
        sample = sorted(paths)[:: max(1, len(paths) // 60)]
        for destination in sample:
            assert is_valley_free(small_world.graph, paths[destination])

    def test_policy_reachability_is_high(self, small_world):
        """Tier-1s peer densely enough that policy routing reaches almost
        everything (the real Internet's default-free zone property)."""
        source = next(
            rid
            for rid, router in sorted(small_world.routers.items())
            if not router.autonomous_system.is_transit
        )
        paths = valley_free_paths(small_world.graph, source)
        assert len(paths) > 0.9 * len(small_world.routers)

    def test_policy_paths_never_shorter_than_latency_paths(self, small_world):
        """Policy can only restrict choice, so path cost never improves."""
        source = next(iter(sorted(small_world.routers)))
        policy = valley_free_paths(small_world.graph, source)
        free = nx.single_source_dijkstra_path_length(
            small_world.graph, source, weight="latency_ms"
        )

        def cost(path):
            return sum(
                small_world.graph.edges[u, v]["latency_ms"]
                for u, v in zip(path, path[1:])
            )

        for destination in sorted(policy)[:: max(1, len(policy) // 50)]:
            assert cost(policy[destination]) >= free[destination] - 1e-9


class TestEngineIntegration:
    def test_engine_rejects_unknown_mode(self, small_world):
        with pytest.raises(ValueError):
            TracerouteEngine(small_world, random.Random(1), routing="hot-potato")

    def test_policy_traces_work(self, small_world):
        engine = TracerouteEngine(
            small_world, random.Random(4), hop_loss_rate=0.0, routing="valley-free"
        )
        target = small_world.interfaces()[100].address
        result = engine.trace(0, target)
        if result.reached:
            routers = [
                small_world.router_of(h.address).router_id for h in result.hops
            ]
            path = [0] + [r for i, r in enumerate(routers) if i == 0 or routers[i - 1] != r]
            assert is_valley_free(small_world.graph, path)

    def test_policy_and_latency_modes_can_differ(self, small_world):
        latency = TracerouteEngine(
            small_world, random.Random(4), hop_loss_rate=0.0, routing="latency"
        )
        policy = TracerouteEngine(
            small_world, random.Random(4), hop_loss_rate=0.0, routing="valley-free"
        )
        source = next(
            rid
            for rid, router in sorted(small_world.routers.items())
            if not router.autonomous_system.is_transit
        )
        differing = 0
        for interface in small_world.interfaces()[::97]:
            path_a = latency.paths_from(source).get(
                small_world.router_of(interface.address).router_id
            )
            path_b = policy.paths_from(source).get(
                small_world.router_of(interface.address).router_id
            )
            if path_b is not None and path_a != path_b:
                differing += 1
        assert differing > 0  # policy actually constrains routing
