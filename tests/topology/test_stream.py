"""StreamedWorld invariants and the streamed serving build."""

from __future__ import annotations

from ipaddress import IPv4Address

import pytest

from repro.geodb.generator import StreamingSnapshotGenerator
from repro.geodb.vendors import GENERATED_PROFILES, IP2LOCATION_LITE
from repro.scenario.build import build_scale_tier
from repro.serve.index import CompiledIndex
from repro.topology.stream import StreamTierConfig, StreamedWorld


@pytest.fixture(scope="module")
def world() -> StreamedWorld:
    return StreamedWorld.build(StreamTierConfig(seed=5, interfaces=20_000))


class TestStreamedWorld:
    def test_exact_interface_count(self, world):
        assert world.interface_count == 20_000
        assert sum(1 for view in world.iter_blocks() for _ in view.addresses) == 20_000

    def test_deterministic_build(self, world):
        again = StreamedWorld.build(StreamTierConfig(seed=5, interfaces=20_000))
        assert list(world._run_starts) == list(again._run_starts)
        assert list(world._run_lengths) == list(again._run_lengths)
        assert list(world._run_cities) == list(again._run_cities)
        assert world.ases.keys() == again.ases.keys()

    def test_seed_changes_the_world(self, world):
        other = StreamedWorld.build(StreamTierConfig(seed=6, interfaces=20_000))
        assert list(world._run_starts) != list(other._run_starts)

    def test_blocks_ascend_and_stay_within_their_slash24(self, world):
        previous = -1
        for view in world.iter_blocks():
            block = int(view.network.network_address) >> 8
            assert block > previous
            previous = block
            assert view.network.prefixlen == 24
            for address in view.addresses:
                assert int(address) >> 8 == block

    def test_majority_city_is_the_plurality(self, world):
        for view in world.iter_blocks():
            counts: dict = {}
            for address in view.addresses:
                city = world.true_location(address)
                counts[city.key] = counts.get(city.key, 0) + 1
            best = max(counts.values())
            assert counts[view.majority.key] == best

    def test_true_location_consistent_with_registry_and_ases(self, world):
        for address in world.sample_addresses(300):
            city = world.true_location(address)
            delegation = world.registry.lookup(IPv4Address(address))
            holder = world.ases[delegation.asn]
            assert city.country in holder.footprint_countries
            assert delegation.registered_country == holder.registered_country

    def test_off_plan_addresses_rejected(self, world):
        probe = int(IPv4Address("240.0.0.1"))
        assert not world.is_interface(probe)
        with pytest.raises(KeyError, match="not a router interface"):
            world.true_location(probe)

    def test_sample_addresses_sorted_interfaces(self, world):
        sample = world.sample_addresses(257)
        assert sample == sorted(sample)
        assert len(set(sample)) == 257
        assert all(world.is_interface(address) for address in sample)
        with pytest.raises(ValueError, match="positive"):
            world.sample_addresses(0)

    def test_role_mix(self, world):
        roles = [holder.is_transit for holder in world.ases.values()]
        assert any(roles) and not all(roles)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="interfaces"):
            StreamTierConfig(interfaces=0)
        with pytest.raises(ValueError, match="mean_as_interfaces"):
            StreamTierConfig(mean_as_interfaces=10)
        with pytest.raises(ValueError, match="transit_fraction"):
            StreamTierConfig(transit_fraction=1.5)

    def test_describe_inventory(self, world):
        text = world.describe()
        assert "20000 interfaces" in text
        assert "ASes" in text


class TestStreamedGeneration:
    def test_streaming_generator_emits_sorted_entries(self, world):
        generator = StreamingSnapshotGenerator(world, seed=99)
        previous = (-1, -1)
        count = 0
        for entry in generator.iter_entries(IP2LOCATION_LITE):
            key = (int(entry.prefix.network_address), entry.prefix.prefixlen)
            assert key >= previous
            previous = key
            count += 1
        assert count > 0

    def test_full_coverage_vendor_covers_every_interface(self, world):
        generator = StreamingSnapshotGenerator(world, seed=99)
        index = CompiledIndex.compile_entries(
            IP2LOCATION_LITE.name, generator.iter_entries(IP2LOCATION_LITE)
        )
        for address in world.sample_addresses(200):
            assert index.probe(address) is not None

    def test_generation_deterministic(self, world):
        first = list(
            StreamingSnapshotGenerator(world, seed=3).iter_entries(IP2LOCATION_LITE)
        )
        second = list(
            StreamingSnapshotGenerator(world, seed=3).iter_entries(IP2LOCATION_LITE)
        )
        assert first == second


class TestBuildScaleTier:
    def test_small_tier_builds_the_full_serving_stack(self):
        tier = build_scale_tier(interfaces=12_000, seed=7)
        assert tier.world.interface_count == 12_000
        assert len(tier.indexes) == len(GENERATED_PROFILES) + 1
        assert tier.plane.interval_count > 0
        stats = tier.stats
        for key in (
            "interfaces",
            "ases",
            "delegations",
            "blocks",
            "vendors",
            "plane_intervals",
            "phases_s",
            "peak_rss_kb",
        ):
            assert key in stats, key
        assert stats["peak_rss_kb"] > 0

    def test_tier_is_deterministic(self):
        first = build_scale_tier(interfaces=8_000, seed=3)
        second = build_scale_tier(interfaces=8_000, seed=3)
        for name in first.indexes:
            starts_a, answers_a, entries_a, records_a = first.indexes[name].parts()
            starts_b, answers_b, entries_b, records_b = second.indexes[name].parts()
            assert starts_a == starts_b
            assert answers_a == answers_b
            assert entries_a == entries_b
            assert records_a == records_b
