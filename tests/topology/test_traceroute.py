"""Tests for the traceroute engine."""

import random

import pytest

from repro.net import UnallocatedAddressError, nth_address, parse_address
from repro.topology import TracerouteEngine, propagation_rtt_ms


@pytest.fixture()
def engine(small_world):
    return TracerouteEngine(small_world, random.Random(3), hop_loss_rate=0.0)


def any_two_routers(world):
    ids = sorted(world.routers)
    return ids[0], ids[len(ids) // 2]


class TestTrace:
    def test_trace_to_interface_reaches_it(self, small_world, engine):
        src, _ = any_two_routers(small_world)
        target = small_world.interfaces()[-1].address
        result = engine.trace(src, target)
        assert result.reached
        assert result.hops[-1].address == target

    def test_hop_rtts_monotone_nondecreasing(self, small_world, engine):
        src, _ = any_two_routers(small_world)
        target = small_world.interfaces()[len(small_world.interfaces()) // 2].address
        result = engine.trace(src, target)
        rtts = [hop.rtt_ms for hop in result.hops if hop.rtt_ms is not None]
        assert rtts == sorted(rtts)

    def test_hop_rtt_bounds_true_distance(self, small_world, engine):
        """Every hop's RTT must be at least the propagation time to that
        hop's true location — the invariant RTT-proximity relies on."""
        src, _ = any_two_routers(small_world)
        origin = small_world.routers[src].city.location
        for interface in small_world.interfaces()[::199]:
            result = engine.trace(src, interface.address)
            for hop in result.hops:
                if hop.address is None:
                    continue
                true_city = small_world.router_of(hop.address).city
                direct = origin.distance_km(true_city.location)
                assert hop.rtt_ms >= propagation_rtt_ms(direct) - 1e-6

    def test_hops_are_ingress_interfaces(self, small_world, engine):
        src, _ = any_two_routers(small_world)
        target = small_world.interfaces()[10].address
        result = engine.trace(src, target)
        # Consecutive hops belong to consecutive routers along a real path.
        routers = [small_world.router_of(h.address).router_id for h in result.hops]
        for a, b in zip(routers, routers[1:]):
            if a != b:  # final self-hop repeats the router
                assert small_world.graph.has_edge(a, b)

    def test_unrouted_target_raises(self, engine):
        with pytest.raises(UnallocatedAddressError):
            engine.trace(0, parse_address("192.0.2.1"))

    def test_trace_or_none_swallows_unrouted(self, engine):
        assert engine.trace_or_none(0, parse_address("192.0.2.1")) is None

    def test_unreached_for_non_interface_address(self, small_world, engine):
        delegation = small_world.registry.delegations()[3]
        for offset in range(delegation.prefix.num_addresses):
            address = nth_address(delegation.prefix, offset)
            if not small_world.is_interface(address):
                result = engine.trace(0, address)
                assert not result.reached
                break

    def test_loss_rate_produces_stars(self, small_world):
        lossy = TracerouteEngine(small_world, random.Random(5), hop_loss_rate=0.5)
        target = small_world.interfaces()[200].address
        stars = 0
        for _ in range(30):
            result = lossy.trace(1, target)
            stars += sum(1 for hop in result.hops if not hop.responded)
        assert stars > 0

    def test_invalid_loss_rate(self, small_world):
        with pytest.raises(ValueError):
            TracerouteEngine(small_world, random.Random(0), hop_loss_rate=1.0)

    def test_path_cache_reused(self, small_world, engine):
        src, _ = any_two_routers(small_world)
        engine.trace(src, small_world.interfaces()[0].address)
        first = engine.paths_from(src)
        engine.trace(src, small_world.interfaces()[1].address)
        assert engine.paths_from(src) is first

    def test_ttls_sequential(self, small_world, engine):
        result = engine.trace(0, small_world.interfaces()[50].address)
        assert [hop.ttl for hop in result.hops] == list(range(1, len(result.hops) + 1))
