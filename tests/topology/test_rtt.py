"""Tests for the RTT model — the physics behind RTT-proximity."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.topology import FIBER_KM_PER_MS, RttModel, max_distance_km, propagation_rtt_ms


class TestPropagation:
    def test_fifty_km_is_half_millisecond(self):
        # The exact inversion the paper states in §2.3.2.
        assert propagation_rtt_ms(50.0) == pytest.approx(0.5)

    def test_max_distance_inverse(self):
        assert max_distance_km(0.5) == pytest.approx(50.0)

    def test_one_ms_is_one_hundred_km(self):
        # Giotsas et al.'s 1 ms threshold → 100 km (§3.1).
        assert max_distance_km(1.0) == pytest.approx(100.0)

    @given(st.floats(0, 20000, allow_nan=False))
    def test_roundtrip(self, d):
        assert max_distance_km(propagation_rtt_ms(d)) == pytest.approx(d, abs=1e-9)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            propagation_rtt_ms(-1)
        with pytest.raises(ValueError):
            max_distance_km(-0.1)


class TestRttModel:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RttModel(inflation_mean=0.9)
        with pytest.raises(ValueError):
            RttModel(noise_ms=-1)

    @given(
        st.floats(0, 10000, allow_nan=False),
        st.integers(0, 2**31),
    )
    def test_samples_never_beat_light(self, distance, seed):
        """The one-sided bound that makes RTT-proximity sound: a sampled
        RTT can never imply the endpoints are farther apart than they are."""
        model = RttModel()
        rtt = model.sample_rtt_ms(distance, random.Random(seed))
        assert rtt >= propagation_rtt_ms(distance) - 1e-12
        assert max_distance_km(rtt) >= distance - 1e-9

    def test_minimum_floor_for_zero_distance(self):
        model = RttModel(min_rtt_ms=0.05, noise_ms=0.0)
        rtt = model.sample_rtt_ms(0.0, random.Random(1))
        assert rtt >= 0.05

    def test_short_links_can_stay_under_half_millisecond(self):
        # Same-metro hops must be able to satisfy the 0.5 ms threshold,
        # otherwise the RTT-proximity ground truth would be empty.
        model = RttModel()
        rng = random.Random(42)
        samples = [model.sample_rtt_ms(4.0, rng) for _ in range(500)]
        assert sum(1 for s in samples if s <= 0.5) > 100

    def test_long_links_always_exceed_threshold(self):
        model = RttModel()
        rng = random.Random(42)
        assert all(model.sample_rtt_ms(500.0, rng) > 0.5 for _ in range(100))

    def test_link_latency_deterministic_and_positive(self):
        model = RttModel()
        assert model.link_latency_ms(100.0) == model.link_latency_ms(100.0) > 0

    def test_link_latency_monotone_in_distance(self):
        model = RttModel()
        assert model.link_latency_ms(10) < model.link_latency_ms(100) < model.link_latency_ms(1000)
