"""Property tests: valley-free Dijkstra vs brute-force enumeration."""

import itertools

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.topology import is_valley_free, valley_free_paths

REL_TYPES = ("internal", "peer", "c2p")


@st.composite
def annotated_graphs(draw):
    """Small random graphs with random relationship annotations."""
    n = draw(st.integers(3, 7))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    possible_edges = list(itertools.combinations(range(n), 2))
    count = draw(st.integers(n - 1, len(possible_edges)))
    chosen = draw(
        st.lists(
            st.sampled_from(possible_edges),
            min_size=count,
            max_size=count,
            unique=True,
        )
    )
    for u, v in chosen:
        rel = draw(st.sampled_from(REL_TYPES))
        provider = draw(st.sampled_from([u, v])) if rel == "c2p" else None
        weight = draw(st.integers(1, 9))
        graph.add_edge(u, v, rel_type=rel, provider=provider, latency_ms=float(weight))
    return graph


def brute_force(graph: nx.Graph, source: int) -> dict[int, float]:
    """Cheapest valley-free simple path per destination, by enumeration.

    Valley-free walks over a finite graph that revisit a node can always
    be shortened to a simple path with the same validity (dropping a loop
    never invalidates the phase sequence), so simple-path enumeration is a
    sound reference for cost.
    """
    best: dict[int, float] = {source: 0.0}
    for destination in graph.nodes:
        if destination == source:
            continue
        cheapest = None
        for path in nx.all_simple_paths(graph, source, destination):
            if not is_valley_free(graph, path):
                continue
            cost = sum(
                graph.edges[u, v]["latency_ms"] for u, v in zip(path, path[1:])
            )
            if cheapest is None or cost < cheapest:
                cheapest = cost
        if cheapest is not None:
            best[destination] = cheapest
    return best


@given(annotated_graphs())
@settings(max_examples=60, deadline=None)
def test_dijkstra_matches_brute_force(graph):
    source = 0
    paths = valley_free_paths(graph, source)
    reference = brute_force(graph, source)

    # Same reachable set.
    assert set(paths) == set(reference)

    for destination, path in paths.items():
        # Every returned path is itself valley-free and starts/ends right.
        assert path[0] == source and path[-1] == destination
        assert is_valley_free(graph, path)
        # And matches the brute-force optimum cost.
        cost = sum(graph.edges[u, v]["latency_ms"] for u, v in zip(path, path[1:]))
        assert cost == reference[destination]


@given(annotated_graphs())
@settings(max_examples=40, deadline=None)
def test_policy_reachability_subset_of_unconstrained(graph):
    source = 0
    policy = set(valley_free_paths(graph, source))
    free = set(nx.single_source_dijkstra_path_length(graph, source, weight="latency_ms"))
    assert policy <= free
