"""Tests for Ark-style monitors and topology collection."""

import random

import pytest

from repro.topology import (
    AliasResolver,
    collect_topology,
    place_monitors,
    random_routed_address,
)


class TestMonitors:
    def test_monitor_count(self, small_world):
        monitors = place_monitors(small_world, 8, random.Random(1))
        assert len(monitors) == 8

    def test_monitor_ids_unique(self, small_world):
        monitors = place_monitors(small_world, 12, random.Random(1))
        ids = [m.monitor_id for m in monitors]
        assert len(ids) == len(set(ids))

    def test_monitors_sit_on_stub_access_routers(self, small_world):
        for monitor in place_monitors(small_world, 8, random.Random(2)):
            router = small_world.routers[monitor.router_id]
            assert router.role == "access"
            assert not router.autonomous_system.is_transit

    def test_monitors_geographically_diverse(self, small_world):
        monitors = place_monitors(small_world, 10, random.Random(3))
        cities = {(m.city.country, m.city.name) for m in monitors}
        assert len(cities) == len(monitors)

    def test_zero_count_rejected(self, small_world):
        with pytest.raises(ValueError):
            place_monitors(small_world, 0, random.Random(1))

    def test_id_style(self, small_world):
        monitor = place_monitors(small_world, 1, random.Random(4))[0]
        assert "-" in monitor.monitor_id
        assert monitor.monitor_id.endswith(monitor.city.country.lower())


class TestCollection:
    def test_dataset_contains_only_real_interfaces(self, small_world, small_ark):
        _, dataset = small_ark
        for address in dataset.addresses[:100]:
            assert small_world.is_interface(address)

    def test_dataset_sorted_and_unique(self, small_ark):
        _, dataset = small_ark
        assert list(dataset.addresses) == sorted(set(dataset.addresses))

    def test_covers_substantial_fraction_of_interfaces(self, small_world, small_ark):
        _, dataset = small_ark
        assert len(dataset) > 0.25 * small_world.interface_count()

    def test_observes_transit_more_than_stubs(self, small_world, small_ark):
        _, dataset = small_ark
        transit = sum(
            1 for a in dataset.addresses
            if small_world.router_of(a).autonomous_system.is_transit
        )
        assert transit > len(dataset) / 2

    def test_random_routed_address_is_delegated(self, small_world):
        rng = random.Random(9)
        for _ in range(50):
            address = random_routed_address(small_world, rng)
            small_world.registry.lookup(address)  # must not raise

    def test_rejects_empty_monitors(self, small_world):
        with pytest.raises(ValueError):
            collect_topology(small_world, (), 10, random.Random(1))

    def test_rejects_nonpositive_targets(self, small_world, small_ark):
        monitors, _ = small_ark
        with pytest.raises(ValueError):
            collect_topology(small_world, monitors, 0, random.Random(1))


class TestAliasResolution:
    def test_perfect_resolution_matches_truth(self, small_world, small_ark):
        _, dataset = small_ark
        resolver = AliasResolver(small_world, completeness=1.0)
        alias_map = resolver.resolve(dataset.addresses, random.Random(1))
        for node, addresses in alias_map.nodes.items():
            owners = {small_world.router_of(a).router_id for a in addresses}
            assert len(owners) == 1

    def test_router_count_below_interface_count(self, small_world, small_ark):
        _, dataset = small_ark
        resolver = AliasResolver(small_world, completeness=1.0)
        alias_map = resolver.resolve(dataset.addresses, random.Random(1))
        assert alias_map.router_count() < len(dataset)

    def test_incomplete_resolution_inflates_router_count(self, small_world, small_ark):
        _, dataset = small_ark
        perfect = AliasResolver(small_world, completeness=1.0).resolve(
            dataset.addresses, random.Random(1)
        )
        partial = AliasResolver(small_world, completeness=0.6).resolve(
            dataset.addresses, random.Random(1)
        )
        assert partial.router_count() > perfect.router_count()

    def test_aliases_of_unknown_address_is_singleton(self, small_world, small_ark):
        _, dataset = small_ark
        alias_map = AliasResolver(small_world).resolve(dataset.addresses, random.Random(1))
        from repro.net import parse_address

        unknown = parse_address("198.51.100.7")
        assert alias_map.aliases_of(unknown) == (unknown,)

    def test_invalid_completeness(self, small_world):
        with pytest.raises(ValueError):
            AliasResolver(small_world, completeness=1.5)
