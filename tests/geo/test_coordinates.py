"""Unit and property tests for great-circle geometry."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geo import (
    EARTH_RADIUS_KM,
    MAX_GREAT_CIRCLE_KM,
    GeoPoint,
    InvalidCoordinateError,
    centroid,
    haversine_km,
    normalize_longitude,
)

latitudes = st.floats(min_value=-90.0, max_value=90.0, allow_nan=False)
longitudes = st.floats(min_value=-180.0, max_value=180.0, allow_nan=False)
points = st.builds(GeoPoint, lat=latitudes, lon=longitudes)


class TestGeoPointValidation:
    def test_accepts_boundary_values(self):
        GeoPoint(90.0, 180.0)
        GeoPoint(-90.0, -180.0)

    @pytest.mark.parametrize("lat,lon", [(91, 0), (-90.001, 0), (0, 181), (0, -180.5)])
    def test_rejects_out_of_range(self, lat, lon):
        with pytest.raises(InvalidCoordinateError):
            GeoPoint(lat, lon)

    def test_is_hashable_and_equal_by_value(self):
        assert GeoPoint(1.5, 2.5) == GeoPoint(1.5, 2.5)
        assert len({GeoPoint(1.5, 2.5), GeoPoint(1.5, 2.5)}) == 1

    def test_round_to(self):
        assert GeoPoint(51.50735, -0.12776).round_to(2) == GeoPoint(51.51, -0.13)


class TestHaversine:
    def test_known_distance_london_paris(self):
        london = GeoPoint(51.5074, -0.1278)
        paris = GeoPoint(48.8566, 2.3522)
        assert london.distance_km(paris) == pytest.approx(343.5, abs=3.0)

    def test_known_distance_new_york_los_angeles(self):
        nyc = GeoPoint(40.7128, -74.0060)
        lax = GeoPoint(34.0522, -118.2437)
        assert nyc.distance_km(lax) == pytest.approx(3936, rel=0.01)

    def test_quarter_meridian(self):
        # Pole to equator is a quarter of the circumference.
        assert haversine_km(90, 0, 0, 0) == pytest.approx(
            math.pi * EARTH_RADIUS_KM / 2, rel=1e-9
        )

    def test_antipodal_distance_is_half_circumference(self):
        assert haversine_km(0, 0, 0, 180) == pytest.approx(MAX_GREAT_CIRCLE_KM, rel=1e-9)

    @given(points)
    def test_identity(self, p):
        assert p.distance_km(p) == 0.0

    @given(points, points)
    def test_symmetry(self, a, b):
        assert a.distance_km(b) == pytest.approx(b.distance_km(a), abs=1e-9)

    @given(points, points)
    def test_bounded(self, a, b):
        d = a.distance_km(b)
        assert 0.0 <= d <= MAX_GREAT_CIRCLE_KM + 1e-9

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.distance_km(c) <= a.distance_km(b) + b.distance_km(c) + 1e-6


class TestDestination:
    @given(points, st.floats(0, 360, allow_nan=False), st.floats(0, 5000, allow_nan=False))
    def test_destination_is_at_requested_distance(self, p, bearing, dist):
        # The spherical destination formula carries an absolute position
        # error of ~R*sqrt(eps) ≈ 1e-4 km in float64: starting at the
        # exact pole, cos(delta) for a centimetre-scale hop rounds to
        # 1.0 and the destination collapses back onto the pole.  A 1 m
        # absolute floor is the formula's honest precision, not slack.
        q = p.destination(bearing, dist)
        assert p.distance_km(q) == pytest.approx(dist, abs=max(1e-3, dist * 1e-6))

    def test_zero_distance_is_identity(self):
        p = GeoPoint(12.3, 45.6)
        q = p.destination(90.0, 0.0)
        assert p.distance_km(q) == pytest.approx(0.0, abs=1e-9)

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            GeoPoint(0, 0).destination(0, -1)

    def test_due_north(self):
        q = GeoPoint(0, 0).destination(0.0, 111.0)
        assert q.lon == pytest.approx(0.0, abs=1e-6)
        assert q.lat == pytest.approx(1.0, abs=0.01)


class TestBearing:
    def test_due_east(self):
        assert GeoPoint(0, 0).initial_bearing_to(GeoPoint(0, 10)) == pytest.approx(90.0)

    def test_due_south(self):
        assert GeoPoint(10, 0).initial_bearing_to(GeoPoint(0, 0)) == pytest.approx(180.0)

    @given(points, points)
    def test_in_range(self, a, b):
        assert 0.0 <= a.initial_bearing_to(b) < 360.0


class TestNormalizeLongitude:
    @pytest.mark.parametrize(
        "raw,expected",
        # 180 and -180 are the same meridian; the canonical form is -180.
        [(0, 0), (180, -180), (-180, -180), (190, -170), (-190, 170), (540, -180), (361, 1)],
    )
    def test_wraps(self, raw, expected):
        assert normalize_longitude(raw) == pytest.approx(expected)

    @given(st.floats(-1e6, 1e6, allow_nan=False))
    def test_always_in_range(self, lon):
        assert -180.0 <= normalize_longitude(lon) <= 180.0


class TestCentroid:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_single_point(self):
        p = GeoPoint(10, 20)
        c = centroid([p])
        assert c.distance_km(p) < 0.001

    def test_antimeridian_pair(self):
        # Two points straddling the antimeridian must average near it,
        # not near longitude 0.
        c = centroid([GeoPoint(0, 179), GeoPoint(0, -179)])
        assert abs(abs(c.lon) - 180.0) < 0.01

    @given(st.lists(points, min_size=1, max_size=8))
    def test_centroid_within_max_distance(self, pts):
        c = centroid(pts)
        assert all(c.distance_km(p) <= MAX_GREAT_CIRCLE_KM for p in pts)
