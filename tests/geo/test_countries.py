"""Tests for the ISO country registry and centroid table."""

import pytest

from repro.geo import COUNTRIES, CountryRegistry, GeoPoint, UnknownCountryError


class TestLookup:
    def test_alpha2(self):
        assert COUNTRIES.get("US").name == "United States"

    def test_alpha3(self):
        assert COUNTRIES.get("DEU").alpha2 == "DE"

    def test_case_and_whitespace_insensitive(self):
        assert COUNTRIES.get(" us ").alpha2 == "US"
        assert COUNTRIES.get("gbr").alpha2 == "GB"

    def test_unknown_raises(self):
        with pytest.raises(UnknownCountryError):
            COUNTRIES.get("XX")

    def test_contains(self):
        assert "NL" in COUNTRIES
        assert "ZZ" not in COUNTRIES

    def test_top20_ground_truth_countries_present(self):
        # The 20 countries of the paper's Figure 4 must all resolve.
        for code in (
            "US DE GB IT FR NL JP CA ES SG CH RU PL BG AU CZ SE RO UA HK".split()
        ):
            assert code in COUNTRIES, code


class TestCentroids:
    def test_germany_matches_paper_example(self):
        # §3.2 cites N51°00'00" E09°00'00" as Germany's default coordinates.
        de = COUNTRIES.get("DE")
        assert (de.centroid_lat, de.centroid_lon) == (51.0, 9.0)

    def test_all_centroids_are_valid_coordinates(self):
        for country in COUNTRIES:
            GeoPoint(country.centroid_lat, country.centroid_lon)

    def test_centroids_mapping_covers_registry(self):
        centroids = COUNTRIES.centroids()
        assert set(centroids) == set(COUNTRIES.alpha2_codes())


class TestRegistryShape:
    def test_reasonable_size(self):
        assert len(COUNTRIES) >= 120

    def test_codes_unique_and_well_formed(self):
        seen2, seen3 = set(), set()
        for country in COUNTRIES:
            assert len(country.alpha2) == 2 and country.alpha2.isupper()
            assert len(country.alpha3) == 3 and country.alpha3.isupper()
            assert country.alpha2 not in seen2
            assert country.alpha3 not in seen3
            seen2.add(country.alpha2)
            seen3.add(country.alpha3)

    def test_custom_registry_rows(self):
        reg = CountryRegistry((("AA", "AAA", "Testland", 1.0, 2.0),))
        assert len(reg) == 1
        assert reg.get("AA").name == "Testland"
