"""Data-integrity tests for the embedded world-city dataset."""

import pytest

from repro.geo import COUNTRIES, GeoPoint
from repro.geo.worldcities import CITY_ROWS


class TestDataIntegrity:
    def test_row_shape(self):
        for row in CITY_ROWS:
            assert len(row) == 6
            name, country, region, lat, lon, population = row
            assert isinstance(name, str) and name
            assert isinstance(country, str) and len(country) == 2
            assert isinstance(region, str) and region
            assert isinstance(population, int)

    def test_unique_name_country_pairs(self):
        keys = [(name, country) for name, country, *_ in CITY_ROWS]
        duplicates = {key for key in keys if keys.count(key) > 1}
        assert not duplicates

    def test_coordinates_valid(self):
        for name, _, _, lat, lon, _ in CITY_ROWS:
            GeoPoint(lat, lon)  # raises if out of range

    def test_every_country_registered(self):
        for _, country, *_ in CITY_ROWS:
            assert country in COUNTRIES, country

    def test_populations_positive(self):
        assert all(row[5] > 0 for row in CITY_ROWS)

    def test_city_near_its_country_centroid_scale(self):
        """Each city must lie within continental distance of its country's
        centroid — catches transposed coordinates or wrong country codes."""
        for name, country, _, lat, lon, _ in CITY_ROWS:
            if (name, country) == ("Honolulu", "US"):
                continue  # mid-Pacific: legitimately ~6,000 km from CONUS
            info = COUNTRIES.get(country)
            centroid = GeoPoint(info.centroid_lat, info.centroid_lon)
            distance = GeoPoint(lat, lon).distance_km(centroid)
            # Russia/Canada/US are physically huge; 4,800 km bounds even
            # Vladivostok-to-centroid.
            assert distance < 4800, (name, country, distance)

    def test_no_swapped_lat_lon(self):
        """Latitudes beyond ±90 would raise; this catches subtler swaps by
        checking a few anchor cities' known hemispheres."""
        anchors = {
            ("Sydney", "AU"): (lambda lat, lon: lat < 0 and lon > 0),
            ("New York", "US"): (lambda lat, lon: lat > 0 and lon < 0),
            ("Sao Paulo", "BR"): (lambda lat, lon: lat < 0 and lon < 0),
            ("London", "GB"): (lambda lat, lon: lat > 0 and lon < 1),
        }
        for name, country, _, lat, lon, _ in CITY_ROWS:
            check = anchors.get((name, country))
            if check:
                assert check(lat, lon), (name, lat, lon)

    def test_major_countries_have_multiple_cities(self):
        counts = {}
        for _, country, *_ in CITY_ROWS:
            counts[country] = counts.get(country, 0) + 1
        for country in ("US", "DE", "GB", "FR", "JP", "BR", "RU", "CN"):
            assert counts[country] >= 5, country

    def test_nearly_every_country_has_fallback_city(self):
        """The wrong-city error model needs a second city in (almost)
        every country; only true city-states may have one."""
        counts = {}
        for _, country, *_ in CITY_ROWS:
            counts[country] = counts.get(country, 0) + 1
        singles = {country for country, count in counts.items() if count == 1}
        assert singles <= {"AD"}  # Andorra: genuinely one city
