"""Tests for the GeoNames-like gazetteer."""

import pytest

from repro.geo import COUNTRIES, GeoPoint, Gazetteer, RIR, UnknownCityError
from repro.geo.gazetteer import City


@pytest.fixture(scope="module")
def gazetteer():
    return Gazetteer.default()


class TestDataset:
    def test_size(self, gazetteer):
        assert len(gazetteer) >= 300

    def test_all_cities_have_known_countries(self, gazetteer):
        for city in gazetteer:
            assert city.country in COUNTRIES, city.name

    def test_country_spread_supports_rtt_ground_truth(self, gazetteer):
        # The paper's RTT-proximity set spans 118 countries; our universe
        # must be broad enough to model a wide spread.
        assert len(gazetteer.countries()) >= 110

    def test_every_rir_has_cities(self, gazetteer):
        for rir in RIR:
            assert gazetteer.in_rir(rir), rir

    def test_keys_unique(self, gazetteer):
        keys = [city.key for city in gazetteer]
        assert len(keys) == len(set(keys))

    def test_populations_positive(self, gazetteer):
        assert all(city.population > 0 for city in gazetteer)


class TestMatch:
    def test_match_name_country(self, gazetteer):
        city = gazetteer.match("Dallas", "US")
        assert city.region == "Texas"

    def test_match_with_region(self, gazetteer):
        city = gazetteer.match("Dallas", "US", region="Texas")
        assert city.location.distance_km(GeoPoint(32.78, -96.80)) < 1.0

    def test_match_case_insensitive(self, gazetteer):
        assert gazetteer.match("dALLAS", "us").name == "Dallas"

    def test_unknown_city_raises(self, gazetteer):
        with pytest.raises(UnknownCityError):
            gazetteer.match("Atlantis", "US")

    def test_wrong_country_raises(self, gazetteer):
        with pytest.raises(UnknownCityError):
            gazetteer.match("Dallas", "DE")


class TestQueries:
    def test_in_country_sorted_by_population(self, gazetteer):
        cities = gazetteer.in_country("DE")
        pops = [city.population for city in cities]
        assert pops == sorted(pops, reverse=True)
        assert cities[0].name == "Berlin"

    def test_in_country_unknown_is_empty(self, gazetteer):
        assert gazetteer.in_country("XX") == ()

    def test_nearest_is_self_for_city_location(self, gazetteer):
        miami = gazetteer.match("Miami", "US")
        assert gazetteer.nearest(miami.location) == miami

    def test_nearest_with_country_restriction(self, gazetteer):
        # Nearest city to Dallas within Germany must be German.
        dallas = gazetteer.match("Dallas", "US")
        hit = gazetteer.nearest(dallas.location, country="DE")
        assert hit.country == "DE"

    def test_nearest_empty_country_raises(self, gazetteer):
        with pytest.raises(UnknownCityError):
            gazetteer.nearest(GeoPoint(0, 0), country="XX")

    def test_within_radius(self, gazetteer):
        amsterdam = gazetteer.match("Amsterdam", "NL")
        nearby = gazetteer.within(amsterdam.location, 60.0)
        names = {city.name for city in nearby}
        assert "Amsterdam" in names
        assert "Utrecht" in names  # ~35 km away
        assert "Tokyo" not in names

    def test_within_sorted_by_distance(self, gazetteer):
        amsterdam = gazetteer.match("Amsterdam", "NL")
        nearby = gazetteer.within(amsterdam.location, 100.0)
        dists = [city.location.distance_km(amsterdam.location) for city in nearby]
        assert dists == sorted(dists)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Gazetteer([])

    def test_custom_cities(self):
        g = Gazetteer([City("Testville", "US", "Nowhere", GeoPoint(1, 2), 10)])
        assert g.match("Testville", "US").population == 10
