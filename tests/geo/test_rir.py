"""Tests for country → RIR service-region mapping."""

import pytest

from repro.geo import COUNTRIES, RIR, RIR_ORDER, UnknownCountryError
from repro.geo import countries_served_by, rir_for_country


class TestMapping:
    @pytest.mark.parametrize(
        "code,expected",
        [
            ("US", RIR.ARIN),
            ("CA", RIR.ARIN),
            ("DE", RIR.RIPENCC),
            ("RU", RIR.RIPENCC),
            ("IR", RIR.RIPENCC),  # Middle East is RIPE NCC territory
            ("KZ", RIR.RIPENCC),  # as is Central Asia
            ("JP", RIR.APNIC),
            ("SG", RIR.APNIC),
            ("HK", RIR.APNIC),
            ("AU", RIR.APNIC),
            ("BR", RIR.LACNIC),
            ("MX", RIR.LACNIC),
            ("ZA", RIR.AFRINIC),
            ("EG", RIR.AFRINIC),
            ("MZ", RIR.AFRINIC),
        ],
    )
    def test_known_assignments(self, code, expected):
        assert rir_for_country(code) is expected

    def test_unknown_country_raises(self):
        with pytest.raises(UnknownCountryError):
            rir_for_country("XX")

    def test_case_insensitive(self):
        assert rir_for_country("us") is RIR.ARIN


class TestPartition:
    def test_every_country_has_exactly_one_rir(self):
        for country in COUNTRIES:
            assert rir_for_country(country.alpha2) in RIR

    def test_service_regions_partition_registry(self):
        all_codes = set()
        for rir in RIR:
            codes = countries_served_by(rir)
            assert not (all_codes & set(codes)), "overlapping service regions"
            all_codes.update(codes)
        assert all_codes == set(COUNTRIES.alpha2_codes())

    def test_every_rir_serves_someone(self):
        for rir in RIR:
            assert countries_served_by(rir)

    def test_display_order_covers_all_rirs(self):
        assert set(RIR_ORDER) == set(RIR)
