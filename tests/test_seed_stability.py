"""Multi-seed stability: the headline shape must not be seed luck.

The calibrated findings (NetAcuity best, MaxMind coverage-starved,
IP2Location least accurate, registry bias in ARIN) have to emerge from
the *mechanisms*, not from one fortunate RNG stream.  These tests rebuild
small scenarios under several unrelated seeds and assert the orderings
every time.
"""

import pytest

from repro.core import evaluate_all
from repro.core.pipeline import RouterGeolocationStudy
from repro.scenario import build_scenario

SEEDS = (3, 777, 424242)


@pytest.fixture(scope="module", params=SEEDS)
def seeded_scenario(request):
    return build_scenario(seed=request.param, scale=0.06)


class TestShapeAcrossSeeds:
    def test_scenario_builds_nonempty(self, seeded_scenario):
        assert len(seeded_scenario.ark_dataset) > 100
        assert len(seeded_scenario.ground_truth) > 50

    def test_netacuity_wins_country_accuracy(self, seeded_scenario):
        overall = evaluate_all(
            seeded_scenario.databases, seeded_scenario.ground_truth
        )
        neta = overall["NetAcuity"].country_accuracy
        for name, accuracy in overall.items():
            if name != "NetAcuity":
                assert neta >= accuracy.country_accuracy - 0.01, name

    def test_netacuity_wins_combined_city_score(self, seeded_scenario):
        overall = evaluate_all(
            seeded_scenario.databases, seeded_scenario.ground_truth
        )
        neta = overall["NetAcuity"]
        for name, accuracy in overall.items():
            if name != "NetAcuity":
                assert (
                    neta.city_accuracy * neta.city_coverage
                    > accuracy.city_accuracy * accuracy.city_coverage
                ), name

    def test_maxmind_editions_ordered(self, seeded_scenario):
        overall = evaluate_all(
            seeded_scenario.databases, seeded_scenario.ground_truth
        )
        assert (
            overall["MaxMind-GeoLite"].city_coverage
            <= overall["MaxMind-Paid"].city_coverage
        )
        assert overall["MaxMind-Paid"].city_coverage < 0.7

    def test_cheap_databases_in_a_band(self, seeded_scenario):
        overall = evaluate_all(
            seeded_scenario.databases, seeded_scenario.ground_truth
        )
        rates = [
            overall[name].country_accuracy
            for name in ("IP2Location-Lite", "MaxMind-GeoLite", "MaxMind-Paid")
        ]
        # The paper's overall band is ~1 point because ARIN dominates its
        # ground truth; per-region the cheap databases genuinely diverge
        # (APNIC: IP2Location 19.8% wrong vs MaxMind 7.2%), so small
        # scenarios with different regional mixes spread wider.
        assert max(rates) - min(rates) < 0.18
        assert all(0.6 < rate < 0.95 for rate in rates)

    def test_maxmind_pair_agrees_most(self, seeded_scenario):
        study = RouterGeolocationStudy.from_scenario(seeded_scenario)
        report = study.run().consistency
        mm = report.country_pair("MaxMind-GeoLite", "MaxMind-Paid")
        # Within the GeoLite country-flip noise floor (0.4%) at small n.
        assert mm.rate >= max(pair.rate for pair in report.country_pairs) - 0.01

    def test_dns_ground_truth_honest_every_seed(self, seeded_scenario):
        world = seeded_scenario.internet
        for record in seeded_scenario.dns_ground_truth.dataset:
            true_city = world.true_location(record.address)
            assert record.location.distance_km(true_city.location) < 1.0
