"""Chaos interplay: drift detection vs quarantine, and live hot swaps.

Two adversarial scenarios the drift detector must survive:

* A vendor failing and getting quarantined looks *exactly* like a
  vendor whose database lost coverage — unless suppression is wired to
  the engine's degradation signal.  The first test drives a full
  quarantine → cooldown → half-open → recovery cycle through the
  pipeline and asserts zero spurious alerts while degraded, with alerts
  resuming once the vendor heals.
* A `SnapshotStore` hot swap mid-stream must never produce an enriched
  event whose per-vendor answers mix generations (a torn read would
  immediately read as drift).
"""

import threading

from repro.enrich import DriftDetector, EnrichConfig, EnrichmentPipeline, EventConfig, EventSource
from repro.faults import FaultInjector, FaultKind, FaultSpec
from repro.geodb import refresh_snapshot
from repro.net.ip import parse_address
from repro.serve import CompiledIndex, ResiliencePolicy, ServingEngine, compile_plane
from repro.serve.store import SnapshotStore

from tests.faults.conftest import CHAOS_SEED
from tests.faults.test_chaos_matrix import FakeClock
from tests.faults.test_swap_hammer import covered_sample, truth_table


def run_through(pipeline, events):
    pipeline.start()
    for event in events:
        pipeline.submit(event)
    pipeline.drain()


def test_quarantine_cycle_suppresses_then_resumes_alerts(
    enrich_indexes, event_pool
):
    victim = sorted(enrich_indexes)[0]
    clock = FakeClock()
    injector = FaultInjector(
        CHAOS_SEED,
        [FaultSpec(FaultKind.LOOKUP_RAISE, vendor=victim, rate=1.0)],
        sleep=clock.sleep,
    )
    # No plane: an injector-armed engine must resolve live so the fault
    # (and the quarantine it trips) is actually exercised.
    engine = ServingEngine(
        enrich_indexes,
        policy=ResiliencePolicy(retries=0, quarantine_threshold=3, cooldown_s=0.5),
        injector=injector,
        clock=clock,
        sleep=clock.sleep,
    )
    detector = DriftDetector(city_range_km=engine.city_range_km)
    source = EventSource(event_pool, EventConfig(seed=41))
    config = EnrichConfig(batch_size=8, linger_ms=2.0, whois_workers=2)

    # Phase 1 — vendor failing, then quarantined: every outcome is
    # degraded, so every inspection suppresses and none alerts.
    degraded_flags = []
    pipeline = EnrichmentPipeline(
        engine,
        config=config,
        detector=detector,
        sink=lambda e: degraded_flags.append(e.degraded),
    )
    run_through(pipeline, source.take(80))
    assert all(degraded_flags)
    assert detector.alerts == 0, "quarantine masqueraded as database drift"
    assert detector.suppressed == 80
    assert victim in engine.degraded_vendors()
    assert engine.health_snapshot()[victim]["state"] == "quarantined"

    # Phase 2 — fault cleared, cooldown elapsed: the half-open probe
    # heals the vendor and alerting resumes on genuine disagreement.
    injector.disarm()
    clock.advance(5.0)
    suppressed_before = detector.suppressed
    healthy_alerts = []
    pipeline = EnrichmentPipeline(
        engine,
        config=config,
        detector=detector,
        sink=lambda e: healthy_alerts.extend(e.alerts),
    )
    run_through(pipeline, source.take(200))
    assert engine.health_snapshot()[victim]["state"] == "healthy"
    assert engine.degraded_vendors() == ()
    # The half-open probe heals on the first batch; everything after is
    # healthy, so suppression stops almost immediately...
    assert detector.suppressed - suppressed_before <= 8
    # ...and real cross-vendor disagreement (the paper's §5.1 point)
    # produces alerts again.
    assert detector.alerts > 0
    assert healthy_alerts and all(a.kind for a in healthy_alerts)
    stats = detector.stats()
    assert stats["alerts"] == len(healthy_alerts)
    assert set(stats["by_vendor"])  # per-vendor attribution present


def test_store_hot_swap_never_tears_an_enriched_event(
    small_scenario, enrich_indexes, enrich_plane, tmp_path
):
    # Generation B: every vendor aged two simulated years, published and
    # reloaded through a real store so swap payloads went disk-round-trip.
    aged_indexes = {
        name: CompiledIndex.compile(
            refresh_snapshot(
                database,
                small_scenario.internet.gazetteer,
                months=24.0,
                seed=CHAOS_SEED,
            )
        )
        for name, database in small_scenario.databases.items()
    }
    store = SnapshotStore(tmp_path / "store", create=True)
    record_a = store.publish(enrich_indexes, enrich_plane)
    record_b = store.publish(aged_indexes, compile_plane(aged_indexes))
    _, indexes_a, plane_a = store.load(record_a.generation)
    _, indexes_b, plane_b = store.load(record_b.generation)

    pool = [int(a) for a in small_scenario.ark_dataset.addresses]
    truth_a = truth_table(indexes_a, pool)
    truth_b = truth_table(indexes_b, pool)
    sample = covered_sample(pool, truth_a, truth_b)[:300]
    assert len(sample) > 50

    engine = ServingEngine(
        indexes_a, plane=plane_a, generation_id=record_a.generation
    )
    source = EventSource(sample, EventConfig(seed=43, zipf_s=0.0))
    torn = []

    def check(enriched):
        addr = int(parse_address(enriched.event.address))
        answers = dict(enriched.answers)
        if answers != truth_a[addr] and answers != truth_b[addr]:
            torn.append((addr, answers))

    pipeline = EnrichmentPipeline(
        engine,
        config=EnrichConfig(batch_size=8, linger_ms=1.0, whois_workers=2),
        sink=check,
    )
    pipeline.start()

    # Flip generations from a side thread while events stream — lookups
    # land before, during, and after each swap.
    generations = [
        (indexes_a, plane_a, record_a.generation),
        (indexes_b, plane_b, record_b.generation),
    ]
    stop = threading.Event()

    def swapper():
        flip = 0
        while not stop.is_set():
            indexes, plane, gen_id = generations[(flip + 1) % 2]
            engine.swap(indexes, plane, generation_id=gen_id, source="store")
            flip += 1
            stop.wait(0.005)

    thread = threading.Thread(target=swapper, daemon=True)
    thread.start()
    events = source.take(600)
    for event in events:
        pipeline.submit(event)
    pipeline.drain()
    stop.set()
    thread.join(timeout=10.0)
    assert not thread.is_alive()

    assert torn == [], f"mixed-generation enrichment: {torn[:3]}"
    assert pipeline.enriched == 600 and pipeline.shed == 0
    assert pipeline.errors == 0
