"""Overload soak: a burst far above drain rate, under both policies.

The drain rate is throttled by a deliberately slow whois (every lookup
sleeps), so the burst arrives at well over 10x what the pipeline can
absorb.  The contract under test: queues never exceed their configured
bounds, ``block`` loses nothing, ``shed`` counts every drop exactly
once, and in == enriched out + shed either way.
"""

import time

from repro.enrich import EnrichConfig, EnrichmentPipeline, EventConfig, EventSource

BURST = 400


class SlowWhois:
    """A whois whose every lookup costs wall time — the drain throttle."""

    def __init__(self, inner, delay_s: float):
        self._inner = inner
        self._delay_s = delay_s
        self.calls = 0

    def lookup(self, address):
        self.calls += 1
        time.sleep(self._delay_s)
        return self._inner.lookup(address)


def tight_config(policy: str) -> EnrichConfig:
    return EnrichConfig(
        batch_size=8,
        linger_ms=2.0,
        event_queue=32,
        work_queue=16,
        done_queue=32,
        whois_workers=1,
        overload=policy,
    )


def burst(engine, whois, event_pool, policy: str):
    """Submit BURST events as fast as the policy admits them."""
    source = EventSource(event_pool, EventConfig(seed=31))
    out = []
    pipeline = EnrichmentPipeline(
        engine,
        whois=SlowWhois(whois, 0.002),
        config=tight_config(policy),
        sink=out.append,
    )
    pipeline.start()
    for event in source.take(BURST):
        pipeline.submit(event)
    pipeline.drain()
    return pipeline, out


def assert_bounded(pipeline):
    stats = pipeline.stats()
    for name, queue_stats in stats["queues"].items():
        assert queue_stats["high_water"] <= queue_stats["capacity"], (
            f"queue {name} overflowed its bound: {queue_stats}"
        )
        assert queue_stats["depth"] == 0, f"queue {name} not drained"
    return stats


def test_block_policy_loses_nothing(engine, whois, event_pool):
    pipeline, out = burst(engine, whois, event_pool, "block")
    stats = assert_bounded(pipeline)
    assert stats["submitted"] == BURST
    assert stats["shed"] == 0
    assert stats["enriched"] == BURST == len(out)
    assert stats["queues"]["events"]["rejected"] == 0
    # Lossless ordering: the output is the input, exactly.
    assert [e.event.seq for e in out] == list(range(BURST))


def test_shed_policy_counts_every_drop_exactly_once(engine, whois, event_pool):
    pipeline, out = burst(engine, whois, event_pool, "shed")
    stats = assert_bounded(pipeline)
    assert stats["submitted"] == BURST
    # A 10x+ overload against a 32-slot admission queue must shed.
    assert stats["shed"] > 0
    # The central accounting identity: in == enriched out + shed.
    assert stats["enriched"] + stats["shed"] == BURST
    assert stats["enriched"] == len(out)
    # Every queue rejection is a counted shed, and only admission sheds.
    assert stats["queues"]["events"]["rejected"] == stats["shed"]
    assert stats["queues"]["work"]["rejected"] == 0
    assert stats["queues"]["done"]["rejected"] == 0
    # Survivors pass through exactly once, in admission order.
    seqs = [e.event.seq for e in out]
    assert len(set(seqs)) == len(seqs)
    assert seqs == sorted(seqs)


def test_shed_only_under_pressure(engine, whois, event_pool):
    """The same policy sheds nothing when the pipeline keeps up."""
    source = EventSource(event_pool, EventConfig(seed=37))
    pipeline = EnrichmentPipeline(
        engine, whois=whois, config=EnrichConfig(overload="shed")
    )
    pipeline.start()
    for event in source.take(100):
        pipeline.submit(event)
        time.sleep(0.0005)  # a trickle, far below capacity
    pipeline.drain()
    stats = pipeline.stats()
    assert stats["shed"] == 0 and stats["enriched"] == 100
