"""Enrichment-suite fixtures: compiled indexes, plane, and event pools.

The expensive pieces (index compilation, the answer plane, the covered
address pool) are session-scoped and read-only; every test builds its
own engine/pipeline so health state and caches never leak between
tests.
"""

import pytest

from repro.loadgen import covered_pool
from repro.serve import CompiledIndex, ServingEngine, compile_plane


@pytest.fixture(scope="session")
def enrich_indexes(small_scenario):
    """Every vendor database of the small scenario, compiled once."""
    return {
        name: CompiledIndex.compile(database)
        for name, database in small_scenario.databases.items()
    }


@pytest.fixture(scope="session")
def enrich_plane(enrich_indexes):
    return compile_plane(enrich_indexes)


@pytest.fixture(scope="session")
def event_pool(enrich_indexes):
    """Covered interval starts — the firehose's address universe."""
    return covered_pool(enrich_indexes, per_vendor=512)


@pytest.fixture
def engine(enrich_indexes, enrich_plane):
    """A fresh healthy engine per test (health/cache state is mutable)."""
    return ServingEngine(enrich_indexes, plane=enrich_plane)


@pytest.fixture(scope="session")
def whois(small_scenario):
    return small_scenario.internet.whois
