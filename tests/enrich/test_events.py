"""The synthetic firehose: deterministic, well-shaped, restartable."""

import pytest

from repro.enrich import EVENT_KINDS, EventConfig, EventSource
from repro.loadgen import MISS_PREFIX


def test_same_seed_same_stream(event_pool):
    a = EventSource(event_pool, EventConfig(seed=42))
    b = EventSource(event_pool, EventConfig(seed=42))
    assert [e.to_dict() for e in a.take(500)] == [e.to_dict() for e in b.take(500)]


def test_stream_restarts_from_event_zero(event_pool):
    source = EventSource(event_pool, EventConfig(seed=42))
    first = [e.to_dict() for e in source.take(300)]
    again = [e.to_dict() for e in source.take(300)]
    assert first == again


def test_different_seeds_diverge(event_pool):
    a = EventSource(event_pool, EventConfig(seed=1))
    b = EventSource(event_pool, EventConfig(seed=2))
    assert [e.address for e in a.take(200)] != [e.address for e in b.take(200)]


def test_sequence_and_timestamps_are_stream_time(event_pool):
    rate = 500.0
    events = EventSource(event_pool, EventConfig(seed=7, rate=rate)).take(250)
    assert [e.seq for e in events] == list(range(250))
    assert all(e.ts == round(e.seq / rate, 6) for e in events)


def test_mix_produces_every_kind_with_dressing(event_pool):
    events = EventSource(event_pool, EventConfig(seed=9)).take(2000)
    by_kind = {kind: [e for e in events if e.kind == kind] for kind in EVENT_KINDS}
    for kind, bucket in by_kind.items():
        assert bucket, f"no {kind} events in 2000 draws"
    # Default mix weights flows heaviest, traceroutes lightest.
    assert len(by_kind["flow"]) > len(by_kind["access_log"]) > len(by_kind["traceroute"])
    assert all(1 <= e.attrs["hop"] <= 24 for e in by_kind["traceroute"])
    assert all(e.attrs["proto"] in ("tcp", "udp") for e in by_kind["flow"])
    assert all(e.attrs["path"].startswith("/api/") for e in by_kind["access_log"])


def test_miss_fraction_draws_from_reserved_space(event_pool):
    miss_octet = MISS_PREFIX.split(".")[0]
    events = EventSource(
        event_pool, EventConfig(seed=5, miss_fraction=0.3)
    ).take(1000)
    misses = [e for e in events if e.address.split(".")[0] == miss_octet]
    assert 0.2 < len(misses) / len(events) < 0.4


@pytest.mark.parametrize(
    "kwargs",
    [
        {"rate": 0.0},
        {"rate": -5.0},
        {"mix": (1.0, 1.0)},
        {"mix": (0.0, 0.0, 0.0)},
        {"mix": (1.0, -1.0, 1.0)},
    ],
)
def test_config_rejects_bad_shapes(kwargs):
    with pytest.raises(ValueError):
        EventConfig(**kwargs)
