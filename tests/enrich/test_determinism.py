"""Worker-count independence: the concurrency is unobservable.

Mirrors ``tests/geodb/test_stream_equivalence.py``'s streamed-vs-
materialized style: the same seed and event stream must produce
byte-identical enriched output and the identical ``DriftAlert``
sequence whether the whois fan-out runs 1, 2, or 8 workers — timing
may move latency numbers, never payloads.
"""

import json

import pytest

from repro.enrich import EnrichConfig, EnrichmentPipeline, EventConfig, EventSource
from repro.serve import ServingEngine

EVENTS = 400
WORKER_COUNTS = (1, 2, 8)


def enrich_bytes(enrich_indexes, enrich_plane, whois, event_pool, workers: int):
    """One full run → (serialized output lines, serialized alert lines)."""
    # A fresh engine per run: worker count must be the only variable the
    # sweep changes (cache warmth and health state start identical).
    engine = ServingEngine(enrich_indexes, plane=enrich_plane)
    source = EventSource(
        event_pool, EventConfig(seed=59, zipf_s=1.2, miss_fraction=0.05)
    )
    lines: list[str] = []
    alerts: list[str] = []

    def sink(enriched):
        lines.append(json.dumps(enriched.to_dict(), sort_keys=True))
        alerts.extend(
            json.dumps(alert.to_dict(), sort_keys=True) for alert in enriched.alerts
        )

    pipeline = EnrichmentPipeline(
        engine,
        whois=whois,
        config=EnrichConfig(batch_size=16, linger_ms=2.0, whois_workers=workers),
        sink=sink,
    )
    pipeline.start()
    for event in source.take(EVENTS):
        pipeline.submit(event)
    pipeline.drain()
    assert pipeline.enriched == EVENTS and pipeline.shed == 0
    return lines, alerts


@pytest.fixture(scope="module")
def sweep(enrich_indexes, enrich_plane, whois, event_pool):
    return {
        workers: enrich_bytes(
            enrich_indexes, enrich_plane, whois, event_pool, workers
        )
        for workers in WORKER_COUNTS
    }


def test_output_is_byte_identical_across_worker_counts(sweep):
    reference_lines, _ = sweep[1]
    assert len(reference_lines) == EVENTS
    for workers in WORKER_COUNTS[1:]:
        lines, _ = sweep[workers]
        assert lines == reference_lines, (
            f"workers={workers} changed the enriched bytes"
        )


def test_alert_sequence_is_identical_across_worker_counts(sweep):
    reference_alerts = sweep[1][1]
    for workers in WORKER_COUNTS[1:]:
        assert sweep[workers][1] == reference_alerts, (
            f"workers={workers} changed the alert sequence"
        )


def test_rerun_with_same_seed_is_byte_identical(
    enrich_indexes, enrich_plane, whois, event_pool, sweep
):
    again = enrich_bytes(enrich_indexes, enrich_plane, whois, event_pool, 2)
    assert again == sweep[2]
