"""Pipeline correctness: queues, ordering, enrichment content, stats."""

import threading
import time

import pytest

from repro.enrich import (
    BoundedQueue,
    EnrichConfig,
    EnrichmentPipeline,
    EventConfig,
    EventSource,
)
from repro.net.ip import parse_address
from repro.net.registry import UnallocatedAddressError


class TestBoundedQueue:
    def test_fifo_and_census(self):
        queue = BoundedQueue(4, "q")
        for item in (1, 2, 3):
            assert queue.put(item)
        assert queue.depth() == 3
        assert [queue.get() for _ in range(3)] == [1, 2, 3]
        stats = queue.stats()
        assert stats == {
            "capacity": 4, "depth": 0, "high_water": 3, "puts": 3, "rejected": 0,
        }

    def test_nonblocking_put_rejects_when_full_and_counts(self):
        queue = BoundedQueue(2, "q")
        assert queue.put("a", block=False)
        assert queue.put("b", block=False)
        assert not queue.put("c", block=False)
        assert not queue.put("d", block=False)
        stats = queue.stats()
        assert (stats["rejected"], stats["puts"]) == (2, 2)
        assert stats["high_water"] == 2 == stats["capacity"]

    def test_get_timeout_raises(self):
        queue = BoundedQueue(1, "q")
        with pytest.raises(TimeoutError):
            queue.get(timeout=0.01)

    def test_blocking_put_waits_for_space(self):
        queue = BoundedQueue(1, "q")
        queue.put("a")
        done = []

        def producer():
            queue.put("b")
            done.append(True)

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not done  # still blocked on the full queue
        assert queue.get() == "a"
        thread.join(timeout=5.0)
        assert done and queue.get() == "b"

    def test_rejects_silly_capacity(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)


class TestEnrichConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 0},
            {"linger_ms": 0.0},
            {"whois_workers": 0},
            {"overload": "drop"},
            {"event_queue": 0},
            {"work_queue": -1},
        ],
    )
    def test_rejects_bad_shapes(self, kwargs):
        with pytest.raises(ValueError):
            EnrichConfig(**kwargs)


def run_events(engine, events, *, whois=None, config=None, detector=None):
    out = []
    pipeline = EnrichmentPipeline(
        engine, whois=whois, config=config, detector=detector, sink=out.append
    )
    pipeline.start()
    for event in events:
        pipeline.submit(event)
    pipeline.drain()
    return pipeline, out


def test_enriched_output_is_ordered_and_matches_the_engine(
    engine, whois, event_pool, enrich_indexes
):
    events = EventSource(event_pool, EventConfig(seed=11)).take(300)
    pipeline, out = run_events(
        engine, events, whois=whois, config=EnrichConfig(batch_size=16)
    )

    assert [e.event.seq for e in out] == list(range(300))
    assert pipeline.enriched == 300 and pipeline.errors == 0
    for enriched in out:
        addr = enriched.event.address
        # Vendor answers are exactly what the indexes answer.
        for vendor, answer in enriched.answers.items():
            assert answer == enrich_indexes[vendor].probe_answer(
                int(parse_address(addr))
            )
        assert not enriched.degraded and enriched.unavailable == ()
        # Whois agrees with a direct query (or both say unallocated).
        try:
            expected = whois.lookup(addr)
        except UnallocatedAddressError:
            expected = None
        assert enriched.whois == expected
        assert enriched.error is None


def test_consensus_matches_direct_resolution(engine, event_pool):
    events = EventSource(event_pool, EventConfig(seed=13)).take(150)
    _pipeline, out = run_events(engine, events)
    for enriched in out:
        expected = engine.consensus_of(engine.lookup_outcome(enriched.event.address))
        assert enriched.consensus == expected


def test_miss_traffic_flows_through_without_errors(engine, event_pool):
    events = EventSource(
        event_pool, EventConfig(seed=17, miss_fraction=1.0)
    ).take(60)
    pipeline, out = run_events(engine, events)
    assert pipeline.errors == 0 and len(out) == 60
    for enriched in out:
        assert all(answer is None for answer in enriched.answers.values())
        assert enriched.consensus.country is None
        assert not enriched.consensus.quorum
        assert enriched.whois is None and enriched.alerts == ()


def test_accounting_and_stats_shape(engine, whois, event_pool):
    events = EventSource(event_pool, EventConfig(seed=19)).take(200)
    pipeline, out = run_events(engine, events, whois=whois)
    stats = pipeline.stats()
    assert stats["submitted"] == 200
    assert stats["submitted"] == stats["enriched"] + stats["shed"]
    assert stats["enriched"] == len(out)
    assert stats["batches"] == pipeline.batches > 0
    assert set(stats["queues"]) == {"events", "work", "done"}
    for queue_stats in stats["queues"].values():
        assert queue_stats["high_water"] <= queue_stats["capacity"]
    assert stats["latency_ms"]["p99"] >= stats["latency_ms"]["p50"] > 0
    assert stats["drift"]["inspected"] == 200
    assert stats["degraded_vendors"] == []
    assert stats["policy"] == "block"


def test_to_dict_is_json_ready_and_wall_clock_free(engine, whois, event_pool):
    import json

    events = EventSource(event_pool, EventConfig(seed=23)).take(50)
    _pipeline, out = run_events(engine, events, whois=whois)
    for enriched in out:
        payload = enriched.to_dict()
        json.dumps(payload)  # must serialize without custom encoders
        assert sorted(payload["answers"]) == sorted(enriched.answers)
        assert payload["event"]["ts"] == enriched.event.ts


def test_lifecycle_misuse_raises(engine, event_pool):
    pipeline = EnrichmentPipeline(engine)
    with pytest.raises(RuntimeError):
        pipeline.submit(object())  # never started
    pipeline.start()
    with pytest.raises(RuntimeError):
        pipeline.start()  # double start
    pipeline.drain()
    pipeline.drain()  # idempotent
    with pytest.raises(RuntimeError):
        pipeline.submit(object())  # after drain


def test_run_paces_and_reports(engine, whois, event_pool):
    source = EventSource(event_pool, EventConfig(seed=29))
    pipeline = EnrichmentPipeline(engine, whois=whois)
    report = pipeline.run(source.events(), rate=1000.0, duration_s=0.5)
    assert report.offered == 500 == report.enriched
    assert report.shed == 0 and report.errors == 0
    assert report.duration_s >= 0.45
    assert report.achieved_eps > 0
    assert report.latency_ms["p99"] > 0
    rendered = report.render()
    assert "offered 500" in rendered and "policy block" in rendered
    payload = report.to_dict()
    assert payload["enriched"] == 500 and payload["queues"]["events"]["rejected"] == 0
