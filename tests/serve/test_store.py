"""SnapshotStore + StoreWatcher: publish, hot reload, rollback, lifecycle."""

import json
import threading

import pytest

from repro.geodb import GeoDatabase
from repro.obs import MetricsRegistry
from repro.obs.reqtrace import TraceRing
from repro.serve import (
    CompiledIndex,
    ServeError,
    ServingEngine,
    SnapshotError,
    SnapshotStore,
    StoreError,
    StoreWatcher,
    compile_plane,
    load_index,
    load_plane,
    save_index,
    save_plane,
)


@pytest.fixture()
def store(tmp_path):
    return SnapshotStore(tmp_path / "store")


@pytest.fixture()
def probe_sample(probe_addresses):
    return probe_addresses[::211][:120]


def flat_answers(engine, addresses):
    """Per-address serialized answers — the byte-identity comparator."""
    return [
        {
            name: (None if a is None else (a.prefix, a.record))
            for name, a in engine.lookup(addr).items()
        }
        for addr in addresses
    ]


class TestPublish:
    def test_ids_are_sequential_and_current_follows(
        self, store, compiled_indexes, answer_plane
    ):
        assert store.current_id() is None
        assert store.latest_id() is None
        first = store.publish(compiled_indexes, answer_plane)
        second = store.publish(compiled_indexes, answer_plane)
        assert (first.generation, second.generation) == (1, 2)
        assert store.current_id() == 2
        assert store.latest_id() == 2
        assert store.generation_path(1).is_dir()
        assert store.generation_path(2).is_dir()

    def test_manifest_digests_every_payload(
        self, store, compiled_indexes, answer_plane
    ):
        record = store.publish(compiled_indexes, answer_plane)
        manifest = json.loads(
            (record.path / "MANIFEST.json").read_text(encoding="utf-8")
        )
        assert manifest["format"] == "repro-snapshot-generation"
        assert manifest["generation"] == record.generation
        assert set(manifest["vendors"]) == set(compiled_indexes)
        for entry in manifest["vendors"].values():
            payload = record.path / entry["file"]
            assert payload.stat().st_size == entry["bytes"]
            assert len(entry["sha256"]) == 64
        assert (record.path / manifest["plane"]["file"]).is_file()

    def test_plane_is_optional(self, store, compiled_indexes):
        store.publish(compiled_indexes)
        record, indexes, plane = store.load(store.current_id())
        assert record.plane is None
        assert plane is None
        assert set(indexes) == set(compiled_indexes)

    def test_refuses_an_empty_generation(self, store):
        with pytest.raises(StoreError, match="no vendors"):
            store.publish({})
        assert store.latest_id() is None

    def test_rejected_ids_are_never_reused(
        self, store, compiled_indexes, answer_plane
    ):
        store.publish(compiled_indexes, answer_plane)
        bad = store.publish(compiled_indexes, answer_plane)
        store.reject(bad.generation, "synthetic")
        replacement = store.publish(compiled_indexes, answer_plane)
        assert replacement.generation == bad.generation + 1

    def test_open_without_create_requires_a_store(self, tmp_path):
        with pytest.raises(StoreError, match="not a snapshot store"):
            SnapshotStore(tmp_path / "nowhere", create=False)
        SnapshotStore(tmp_path / "real")  # creates
        SnapshotStore(tmp_path / "real", create=False)  # now opens


class TestLoadAndVerify:
    def test_round_trip_preserves_answers(
        self, store, compiled_indexes, answer_plane, probe_sample
    ):
        store.publish(compiled_indexes, answer_plane)
        _, indexes, plane = store.load(store.current_id())
        for addr in probe_sample:
            for name, index in compiled_indexes.items():
                assert indexes[name].probe_answer(addr) == index.probe_answer(
                    addr
                )
            assert plane.locate(addr) == answer_plane.locate(addr)

    def test_flipped_byte_fails_digest_with_generation_and_file(
        self, store, compiled_indexes
    ):
        record = store.publish(compiled_indexes)
        victim = sorted(record.path.glob("*.rgix"))[0]
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0x40
        victim.write_bytes(bytes(blob))
        with pytest.raises(StoreError) as err:
            store.load(record.generation)
        assert f"generation {record.generation}" in str(err.value)
        assert victim.name in str(err.value)
        assert "digest" in str(err.value)

    def test_missing_payload_is_named(self, store, compiled_indexes):
        record = store.publish(compiled_indexes)
        victim = sorted(record.path.glob("*.rgix"))[-1]
        victim.unlink()
        with pytest.raises(StoreError, match="missing on disk") as err:
            store.load(record.generation)
        assert victim.name in str(err.value)

    def test_manifest_claiming_another_generation_is_refused(
        self, store, compiled_indexes
    ):
        record = store.publish(compiled_indexes)
        manifest_path = record.path / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["generation"] = 99
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(StoreError, match="was moved or"):
            store.load(record.generation)

    def test_listing_survives_one_aborted_publish(
        self, store, compiled_indexes
    ):
        store.publish(compiled_indexes)
        broken = store.generations_dir / "000002"
        broken.mkdir()
        (broken / "MANIFEST.json").write_text("{not json", encoding="utf-8")
        records = store.generations()
        assert [r.generation for r in records] == [1]
        # ...but ids still advance past the wreck: no reuse.
        assert store.publish(compiled_indexes).generation == 3


class TestRollback:
    def test_reject_restores_newest_good(self, store, compiled_indexes):
        store.publish(compiled_indexes)
        store.publish(compiled_indexes)
        bad = store.publish(compiled_indexes)
        restored = store.reject(bad.generation, "canary regression")
        assert restored == 2
        assert store.current_id() == 2
        listed = {r.generation: r for r in store.generations()}
        assert listed[bad.generation].rejected
        assert listed[bad.generation].reason == "canary regression"
        assert not listed[2].rejected

    def test_reject_with_nothing_good_leaves_current(
        self, store, compiled_indexes
    ):
        only = store.publish(compiled_indexes)
        assert store.reject(only.generation, "bad") is None
        assert store.current_id() == only.generation

    def test_manual_rollback_skips_rejected(self, store, compiled_indexes):
        store.publish(compiled_indexes)
        skipped = store.publish(compiled_indexes)
        store.publish(compiled_indexes)
        store.reject(skipped.generation, "bad")
        assert store.current_id() == 3
        assert store.rollback() == 1
        assert store.current_id() == 1
        with pytest.raises(StoreError, match="nothing to roll back"):
            store.rollback()

    def test_rollback_needs_a_current(self, store):
        with pytest.raises(StoreError, match="no CURRENT"):
            store.rollback()

    def test_garbage_current_is_an_error(self, store, compiled_indexes):
        store.publish(compiled_indexes)
        (store.root / "CURRENT").write_text("yesterday\n", encoding="utf-8")
        with pytest.raises(StoreError, match="not a generation id"):
            store.current_id()

    def test_set_current_requires_the_generation(self, store):
        with pytest.raises(StoreError, match="does not exist"):
            store.set_current(5)


class TestWatcher:
    def make_engine(self, store, **kwargs):
        record, indexes, plane = store.load(store.current_id())
        return ServingEngine(
            indexes,
            plane=plane,
            generation_id=record.generation,
            generation_source="store",
            **kwargs,
        )

    def test_noop_republish_serves_identical_answers(
        self, store, compiled_indexes, answer_plane, probe_sample
    ):
        store.publish(compiled_indexes, answer_plane)
        engine = self.make_engine(store)
        watcher = StoreWatcher(store, engine, canary_addresses=probe_sample)
        before = flat_answers(engine, probe_sample)
        assert watcher.poll_once() == "noop"

        store.publish(compiled_indexes, answer_plane)
        assert watcher.poll_once() == "swapped"
        assert engine.generation_id == 2
        assert engine.generation_info()["source"] == "store"
        assert flat_answers(engine, probe_sample) == before
        engine.close()

    def test_swap_counts_and_staleness_reset(
        self, store, compiled_indexes, answer_plane
    ):
        metrics = MetricsRegistry()
        store.publish(compiled_indexes, answer_plane)
        engine = self.make_engine(store, metrics=metrics)
        watcher = StoreWatcher(store, engine, metrics=metrics)
        store.publish(compiled_indexes, answer_plane)
        assert watcher.poll_once() == "swapped"
        info = engine.generation_info()
        assert (info["id"], info["swaps"], info["rollbacks"]) == (2, 1, 0)
        assert engine.generation_age_s >= 0.0
        assert metrics.counter("serve.generation_swaps") == 1
        engine.close()

    def test_corrupt_candidate_rolls_back_and_keeps_serving(
        self, store, compiled_indexes, answer_plane, probe_sample
    ):
        store.publish(compiled_indexes, answer_plane)
        engine = self.make_engine(store)
        metrics = MetricsRegistry()
        traces = TraceRing(capacity=8)
        watcher = StoreWatcher(
            store, engine, metrics=metrics, trace_sink=traces
        )
        before = flat_answers(engine, probe_sample)

        bad = store.publish(compiled_indexes, answer_plane)
        victim = sorted(bad.path.glob("*.rgix"))[0]
        blob = bytearray(victim.read_bytes())
        blob[-10] ^= 0x01
        victim.write_bytes(bytes(blob))

        assert watcher.poll_once() == "rolled_back"
        assert engine.generation_id == 1
        assert engine.generation_info()["rollbacks"] == 1
        assert store.current_id() == 1
        assert "digest" in watcher.last_error
        assert metrics.counter("store.rejected_generations") == 1
        assert flat_answers(engine, probe_sample) == before
        # The swap trace records the rollback span.
        def names(spans):
            for span in spans:
                yield span["name"]
                yield from names(span.get("children", ()))

        recorded = [n for t in traces.slowest() for n in names(t["spans"])]
        assert "swap.rollback" in recorded
        # The rejected generation is never retried.
        assert watcher.poll_once() == "noop"
        engine.close()

    def test_canary_regression_is_rejected(
        self, small_scenario, store, compiled_indexes, answer_plane, probe_sample
    ):
        store.publish(compiled_indexes, answer_plane)
        engine = self.make_engine(store)
        watcher = StoreWatcher(
            store,
            engine,
            canary_addresses=probe_sample,
            canary_max_drop=0.25,
        )
        # A candidate where one vendor lost almost its whole table: the
        # classic truncated export.  It parses fine — only the canary
        # probe can see the crater.
        truncated = dict(compiled_indexes)
        victim = sorted(truncated)[0]
        database = small_scenario.databases[victim]
        truncated[victim] = CompiledIndex.compile(
            GeoDatabase(victim, database.entries()[:3])
        )
        store.publish(truncated, compile_plane(truncated))
        assert watcher.poll_once() == "rolled_back"
        assert "canary regression" in watcher.last_error
        assert victim in watcher.last_error
        assert engine.generation_id == 1
        engine.close()

    def test_vendor_set_change_is_rejected(
        self, store, compiled_indexes, answer_plane
    ):
        store.publish(compiled_indexes, answer_plane)
        engine = self.make_engine(store)
        watcher = StoreWatcher(store, engine)
        shrunk = dict(compiled_indexes)
        shrunk.pop(sorted(shrunk)[0])
        store.publish(shrunk, compile_plane(shrunk))
        assert watcher.poll_once() == "rolled_back"
        assert "vendor set changed" in watcher.last_error
        assert engine.generation_id == 1
        engine.close()

    def test_rolling_current_backwards_counts_as_rollback(
        self, store, compiled_indexes, answer_plane
    ):
        store.publish(compiled_indexes, answer_plane)
        engine = self.make_engine(store)
        watcher = StoreWatcher(store, engine)
        store.publish(compiled_indexes, answer_plane)
        assert watcher.poll_once() == "swapped"
        store.rollback()
        assert watcher.poll_once() == "swapped"
        info = engine.generation_info()
        assert (info["id"], info["rollbacks"]) == (1, 1)
        engine.close()

    def test_watcher_validates_constructor_arguments(
        self, store, compiled_indexes
    ):
        store.publish(compiled_indexes)
        engine = self.make_engine(store)
        with pytest.raises(ValueError, match="interval_s"):
            StoreWatcher(store, engine, interval_s=0.0)
        with pytest.raises(ValueError, match="canary_max_drop"):
            StoreWatcher(store, engine, canary_max_drop=1.5)
        engine.close()


class TestEngineLifecycle:
    def test_close_stops_watcher_thread_and_is_idempotent(
        self, store, compiled_indexes, answer_plane
    ):
        store.publish(compiled_indexes, answer_plane)
        record, indexes, plane = store.load(store.current_id())
        engine = ServingEngine(
            indexes, plane=plane, generation_id=record.generation
        )
        watcher = StoreWatcher(store, engine, interval_s=0.05)
        watcher.start()
        watcher.start()  # idempotent while running
        threads = [
            t for t in threading.enumerate()
            if t.name == "repro-store-watcher"
        ]
        assert len(threads) == 1

        engine.close()
        assert not threads[0].is_alive()
        assert watcher._thread is None
        engine.close()  # idempotent
        assert not any(
            t.name == "repro-store-watcher" for t in threading.enumerate()
        )
        watcher.stop()  # also idempotent after the engine stopped it

    def test_closed_engine_refuses_swaps_and_watchers(
        self, store, compiled_indexes, answer_plane
    ):
        store.publish(compiled_indexes, answer_plane)
        record, indexes, plane = store.load(store.current_id())
        engine = ServingEngine(
            indexes, plane=plane, generation_id=record.generation
        )
        engine.close()
        assert engine.closed
        with pytest.raises(ServeError, match="engine is closed"):
            engine.swap(indexes, plane, generation_id=2)
        with pytest.raises(ServeError, match="engine is closed"):
            StoreWatcher(store, engine)
        # Reads still work after close — only the lifecycle is frozen.
        assert engine.lookup("41.0.0.2") is not None


class TestGenerationLabelledErrors:
    def test_corrupt_index_names_file_and_generation(
        self, tmp_path, compiled_indexes
    ):
        name = sorted(compiled_indexes)[0]
        path = save_index(compiled_indexes[name], tmp_path / f"{name}.rgix")
        blob = bytearray(path.read_bytes())
        blob[5] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError) as err:
            load_index(path, generation=7)
        assert str(err.value).startswith("generation 7: ")

    def test_corrupt_plane_names_generation(self, tmp_path, answer_plane):
        path = save_plane(answer_plane, tmp_path / "plane.rgpl")
        blob = bytearray(path.read_bytes())
        blob[5] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError) as err:
            load_plane(path, generation=9)
        assert str(err.value).startswith("generation 9: ")

    def test_unlabelled_load_is_unchanged(self, tmp_path, compiled_indexes):
        name = sorted(compiled_indexes)[0]
        path = save_index(compiled_indexes[name], tmp_path / f"{name}.rgix")
        blob = bytearray(path.read_bytes())
        blob[5] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError) as err:
            load_index(path)
        assert "generation" not in str(err.value)
