"""Shared serving-layer fixtures: compiled indexes over the test scenario."""

import pytest

from repro.serve import CompiledIndex, compile_plane


@pytest.fixture(scope="session")
def compiled_indexes(small_scenario):
    """Every vendor database of the small scenario, compiled once."""
    return {
        name: CompiledIndex.compile(database)
        for name, database in small_scenario.databases.items()
    }


@pytest.fixture(scope="session")
def answer_plane(compiled_indexes):
    """The cross-vendor answer plane over the small scenario's indexes."""
    return compile_plane(compiled_indexes)


# ``probe_addresses`` moved to the top-level tests/conftest.py: the
# columnar frame's equivalence tests stress the same demanding pool.
