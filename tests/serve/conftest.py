"""Shared serving-layer fixtures: compiled indexes over the test scenario."""

import pytest

from repro.serve import CompiledIndex


@pytest.fixture(scope="session")
def compiled_indexes(small_scenario):
    """Every vendor database of the small scenario, compiled once."""
    return {
        name: CompiledIndex.compile(database)
        for name, database in small_scenario.databases.items()
    }


# ``probe_addresses`` moved to the top-level tests/conftest.py: the
# columnar frame's equivalence tests stress the same demanding pool.
