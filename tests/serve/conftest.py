"""Shared serving-layer fixtures: compiled indexes over the test scenario."""

import pytest

from repro.serve import CompiledIndex


@pytest.fixture(scope="session")
def compiled_indexes(small_scenario):
    """Every vendor database of the small scenario, compiled once."""
    return {
        name: CompiledIndex.compile(database)
        for name, database in small_scenario.databases.items()
    }


@pytest.fixture(scope="session")
def probe_addresses(small_scenario):
    """A demanding probe set: every Ark address, every prefix edge
    (first/last covered address and one beyond each), plus a spread of
    pseudorandom addresses across the whole space."""
    import random

    addresses = {int(address) for address in small_scenario.ark_dataset.addresses}
    for database in small_scenario.databases.values():
        for entry in database.entries():
            start = int(entry.prefix.network_address)
            end = start + entry.prefix.num_addresses
            addresses.update(
                (start, end - 1, max(0, start - 1), min(2**32 - 1, end))
            )
    rng = random.Random(20160806)
    addresses.update(rng.randrange(2**32) for _ in range(20_000))
    addresses.update((0, 2**32 - 1))
    return sorted(addresses)
