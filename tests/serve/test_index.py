"""CompiledIndex: structure invariants and answer equivalence.

The acceptance bar for the serving layer is *byte-identical answers*:
for every probed address, the compiled interval index must return
exactly what the hash-table engine returns, across all four vendor
tables.
"""

import pytest

from repro.geodb import GeoDatabase, GeoRecord, single_prefix
from repro.serve import CompiledIndex


def toy_database():
    return GeoDatabase(
        "toy",
        [
            single_prefix("10.0.0.0/8", GeoRecord(country="US")),
            single_prefix(
                "10.1.0.0/16",
                GeoRecord(country="US", region="Texas", city="Dallas",
                          latitude=32.78, longitude=-96.8),
            ),
            single_prefix("10.1.2.0/24", GeoRecord(country="CA")),
            single_prefix("192.0.2.0/24", GeoRecord(country="DE")),
        ],
    )


class TestStructure:
    def test_intervals_are_sorted_disjoint_and_cover_everything(self, compiled_indexes):
        for index in compiled_indexes.values():
            previous_end = 0
            for start, end, _ in index.intervals():
                assert start == previous_end  # no gaps, no overlap
                assert start < end
                previous_end = end
            assert previous_end == 2**32

    def test_adjacent_intervals_are_merged(self, compiled_indexes):
        for index in compiled_indexes.values():
            answers = [answer for _, _, answer in index.intervals()]
            assert all(a != b for a, b in zip(answers, answers[1:]))

    def test_nested_prefixes_split_the_outer_interval(self):
        index = CompiledIndex.compile(toy_database())
        # 10.0.0.0/8 is pierced twice (the /16, itself pierced by the /24),
        # so the space decomposes into: miss, /8, /16, /24, /16, /8, miss,
        # /24(192.0.2.0), miss.
        assert index.interval_count == 9
        assert index.lookup("10.1.2.3").country == "CA"
        assert index.lookup("10.1.3.4").city == "Dallas"
        assert index.lookup("10.200.0.1").country == "US"
        assert index.lookup("11.0.0.1") is None

    def test_records_are_deduplicated(self, small_scenario, compiled_indexes):
        for name, index in compiled_indexes.items():
            _, _, entries, records = index.parts()
            assert len(records) <= len(entries)
            assert len(records) == len(set(records))
            assert index.source_entries == len(small_scenario.databases[name])

    def test_rejects_table_not_starting_at_zero(self):
        from array import array

        with pytest.raises(ValueError):
            CompiledIndex("bad", 0, array("I", [5]), array("i", [-1]), (), ())


class TestEquivalence:
    def test_identical_answers_to_geodatabase(
        self, small_scenario, compiled_indexes, probe_addresses
    ):
        """The property the whole serving layer rests on: one bisect probe
        answers exactly like the 33-table walk, for all four vendors."""
        for name, database in small_scenario.databases.items():
            index = compiled_indexes[name]
            for addr in probe_addresses:
                expected = database.probe(addr)
                assert index.probe(addr) == (
                    expected.record if expected is not None else None
                )

    def test_lookup_answer_reports_the_matched_prefix(
        self, small_scenario, compiled_indexes, probe_addresses
    ):
        for name, database in small_scenario.databases.items():
            index = compiled_indexes[name]
            for addr in probe_addresses[:2000]:
                expected = database.lookup_entry(addr)
                answer = index.lookup_answer(addr)
                if expected is None:
                    assert answer is None
                else:
                    assert answer.prefix == str(expected.prefix)
                    assert answer.record == expected.record

    def test_accepts_all_address_forms(self, compiled_indexes):
        index = next(iter(compiled_indexes.values()))
        from repro.net.ip import parse_address

        as_str = index.lookup("41.0.0.2")
        assert index.lookup(parse_address("41.0.0.2")) == as_str
        assert index.lookup(int(parse_address("41.0.0.2"))) == as_str

    def test_invalid_addresses_raise_uniform_valueerror(self, compiled_indexes):
        index = next(iter(compiled_indexes.values()))
        for bad in ("pancake", "::1", "1.2.3.4/24", -1, 2**32, 2**80):
            with pytest.raises(ValueError, match="not an IPv4 address"):
                index.lookup(bad)
