"""Snapshot persistence: round-trips, checksums, and refusal to serve
anything it cannot trust."""

import hashlib
import struct

import pytest

from repro.serve import (
    SNAPSHOT_SUFFIX,
    SnapshotError,
    load_index,
    load_index_set,
    save_index,
    save_index_set,
)


class TestRoundTrip:
    def test_save_load_answers_identically(
        self, compiled_indexes, probe_addresses, tmp_path
    ):
        """The acceptance property: compile → save → load answers exactly
        like the in-memory index (hence like the original database)."""
        for name, index in compiled_indexes.items():
            loaded = load_index(
                save_index(index, tmp_path / f"{name}{SNAPSHOT_SUFFIX}"),
                expect_name=name,
            )
            assert loaded.name == index.name
            assert loaded.source_entries == index.source_entries
            assert loaded.interval_count == index.interval_count
            for addr in probe_addresses[:5000]:
                assert loaded.probe(addr) == index.probe(addr)

    def test_index_set_round_trip(self, compiled_indexes, tmp_path):
        root = save_index_set(compiled_indexes, tmp_path / "snapshots")
        loaded = load_index_set(root)
        assert set(loaded) == set(compiled_indexes)
        for name in loaded:
            assert loaded[name].interval_count == compiled_indexes[name].interval_count


class TestRefusals:
    @pytest.fixture()
    def snapshot(self, compiled_indexes, tmp_path):
        name, index = next(iter(compiled_indexes.items()))
        return save_index(index, tmp_path / f"{name}{SNAPSHOT_SUFFIX}"), name

    def test_wrong_database_name_rejected(self, snapshot):
        path, _ = snapshot
        with pytest.raises(SnapshotError, match="expected 'SomethingElse'"):
            load_index(path, expect_name="SomethingElse")

    def test_corrupt_payload_fails_checksum(self, snapshot):
        path, name = snapshot
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip one payload byte
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="checksum"):
            load_index(path, expect_name=name)

    def test_truncated_payload_rejected(self, snapshot):
        path, name = snapshot
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(SnapshotError, match="truncated"):
            load_index(path, expect_name=name)

    def test_bad_magic_rejected(self, snapshot):
        path, name = snapshot
        path.write_bytes(b"NOPE" + path.read_bytes()[4:])
        with pytest.raises(SnapshotError, match="bad magic"):
            load_index(path, expect_name=name)

    def test_unknown_format_version_rejected(self, snapshot):
        # Format v2 digests the header, so the rewrite must re-sign it —
        # the tampered version only gets as far as the version check.
        path, name = snapshot
        blob = path.read_bytes()
        (header_len,) = struct.unpack_from("<I", blob, 4)
        header = blob[40 : 40 + header_len].replace(b'"version":2', b'"version":99')
        path.write_bytes(
            blob[:4]
            + struct.pack("<I", len(header))
            + hashlib.sha256(header).digest()
            + header
            + blob[40 + header_len :]
        )
        with pytest.raises(SnapshotError, match="version"):
            load_index(path)

    def test_tampered_header_fails_header_checksum(self, snapshot):
        # The same tamper *without* re-signing must die on the digest —
        # v1 would have trusted it.
        path, name = snapshot
        blob = bytearray(path.read_bytes())
        blob[45] ^= 0x01  # one bit inside the JSON header
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError, match="header checksum"):
            load_index(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_index(tmp_path / "absent.rgix")

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(SnapshotError, match="no .* snapshots"):
            load_index_set(tmp_path)
