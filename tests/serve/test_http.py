"""The HTTP JSON API: endpoints, error handling, metrics, shutdown."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry
from repro.serve import GeoServer, ServingEngine


@pytest.fixture(scope="module")
def server(compiled_indexes):
    server = GeoServer(
        ServingEngine(compiled_indexes), port=0, metrics=MetricsRegistry()
    )
    server.start_background()
    yield server
    server.stop()


def get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def post(server, path, payload):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def error_of(call):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        call()
    body = json.loads(excinfo.value.read().decode("utf-8"))
    return excinfo.value.code, body


class TestEndpoints:
    def test_healthz(self, server, small_scenario):
        status, body = get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert set(body["databases"]) == set(small_scenario.databases)

    def test_lookup_reports_answers_and_consensus(self, server, small_scenario):
        address = str(small_scenario.ark_dataset.addresses[0])
        status, body = get(server, f"/lookup?ip={address}")
        assert status == 200
        assert body["ip"] == address
        assert set(body["answers"]) == set(small_scenario.databases)
        for name, database in small_scenario.databases.items():
            record = database.lookup(address)
            answer = body["answers"][name]
            if record is None:
                assert answer is None
            else:
                assert answer["country"] == record.country
                assert answer["resolution"] == record.resolution.value
                assert "prefix" in answer
        consensus = body["consensus"]
        assert {"country", "voters", "country_disagreement",
                "city_disagreement"} <= set(consensus)

    def test_batch_preserves_order_and_inlines_bad_addresses(
        self, server, small_scenario
    ):
        addresses = [str(a) for a in small_scenario.ark_dataset.addresses[:5]]
        payload = {"ips": addresses[:2] + ["garbage"] + addresses[2:]}
        status, body = post(server, "/batch", payload)
        assert status == 200
        assert body["count"] == 6
        assert [r["ip"] for r in body["results"]] == payload["ips"]
        assert "error" in body["results"][2]
        assert "not an IPv4 address" in body["results"][2]["error"]
        for result in body["results"][:2] + body["results"][3:]:
            assert set(result["answers"]) == set(small_scenario.databases)

    def test_statusz_exposes_serve_metrics(self, server):
        get(server, "/lookup?ip=41.0.0.2")
        status, body = get(server, "/statusz")
        assert status == 200
        assert "serve" in body["families"]
        assert any(name.startswith("serve.requests") for name in body["counters"])
        assert any(name.startswith("serve.latency_ms") for name in body["histograms"])
        assert body["cache"]["capacity"] > 0

    def test_statusz_without_plane_reports_null(self, server):
        _, body = get(server, "/statusz")
        assert body["plane"] is None

    def test_statusz_reports_plane_stats_and_hits(
        self, compiled_indexes, answer_plane
    ):
        engine = ServingEngine(compiled_indexes, plane=answer_plane)
        server = GeoServer(engine, port=0, metrics=MetricsRegistry())
        server.start_background()
        try:
            get(server, "/lookup?ip=41.0.0.2")
            _, body = get(server, "/statusz")
            plane = body["plane"]
            assert plane["active"] is True
            assert set(plane["vendors"]) == set(compiled_indexes)
            assert plane["intervals"] >= plane["cells"] > 0
            assert any(
                name.startswith("plane.hits") for name in body["counters"]
            )
        finally:
            server.stop()


class TestTelemetry:
    def test_metricsz_serves_valid_prometheus_text(self, server):
        get(server, "/lookup?ip=41.0.0.2")
        request = urllib.request.Request(server.url + "/metricsz")
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            assert "version=0.0.4" in response.headers["Content-Type"]
            text = response.read().decode("utf-8")
        from repro.obs import validate_exposition

        assert validate_exposition(text) == []
        assert "repro_serve_requests_total" in text
        assert "repro_serve_latency_ms_bucket" in text
        assert "repro_serve_latency_ms_p50" in text
        assert "repro_serve_latency_ms_p99" in text

    def test_lookup_mints_and_echoes_a_trace_id(self, server):
        request = urllib.request.Request(server.url + "/lookup?ip=41.0.0.2")
        with urllib.request.urlopen(request, timeout=10) as response:
            header_id = response.headers["X-Request-Id"]
            body = json.loads(response.read().decode("utf-8"))
        assert header_id
        assert body["trace_id"] == header_id

    def test_client_request_id_is_honoured(self, server):
        request = urllib.request.Request(
            server.url + "/lookup?ip=41.0.0.2",
            headers={"X-Request-Id": "client-id-42"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers["X-Request-Id"] == "client-id-42"
            body = json.loads(response.read().decode("utf-8"))
        assert body["trace_id"] == "client-id-42"

    def test_hostile_request_id_is_replaced(self, server):
        request = urllib.request.Request(
            server.url + "/lookup?ip=41.0.0.2",
            headers={"X-Request-Id": "x" * 200},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            minted = response.headers["X-Request-Id"]
        assert minted != "x" * 200
        assert len(minted) == 16

    def test_tracez_returns_span_trees_with_path_attribution(self, server):
        get(server, "/lookup?ip=41.0.0.2")
        post(server, "/batch", {"ips": ["41.0.0.2", "41.0.0.3"]})
        status, body = get(server, "/tracez")
        assert status == 200
        assert body["capacity"] >= body["count"] > 0
        trace = body["slowest"][0]
        assert {"trace_id", "endpoint", "path", "status", "duration_ms",
                "spans"} <= set(trace)
        paths = {t["path"] for t in body["slowest"]}
        # This server runs live (no plane): lookups resolve or hit cache.
        assert paths <= {"live", "cache", "degraded", "mixed", None}
        resolved = [
            t for t in body["slowest"]
            if t["spans"] and t["spans"][0]["name"] in ("resolve", "batch")
        ]
        assert resolved

    def test_plane_server_attributes_requests_to_the_plane(
        self, compiled_indexes, answer_plane
    ):
        engine = ServingEngine(compiled_indexes, plane=answer_plane)
        server = GeoServer(engine, port=0, metrics=MetricsRegistry())
        server.start_background()
        try:
            get(server, "/lookup?ip=41.0.0.2")
            _, body = get(server, "/tracez")
            assert body["slowest"][0]["path"] == "plane"
            (span,) = body["slowest"][0]["spans"]
            assert span["name"] == "plane.probe"
        finally:
            server.stop()

    def test_statusz_reports_rolling_windows(self, server):
        get(server, "/lookup?ip=41.0.0.2")
        _, body = get(server, "/statusz")
        windows = body["windows"]
        assert {"aliases", "rates"} <= set(windows)
        assert windows["aliases"]["requests"]["10s"]["total"] >= 1
        for span in ("10s", "60s"):
            assert {"rps", "error_rate", "plane_hit_ratio",
                    "cache_hit_ratio"} <= set(windows["rates"][span])
        assert windows["rates"]["10s"]["rps"] > 0

    def test_statusz_histograms_carry_quantiles(self, server):
        get(server, "/lookup?ip=41.0.0.2")
        _, body = get(server, "/statusz")
        latency = next(
            summary
            for name, summary in body["histograms"].items()
            if name.startswith("serve.latency_ms") and summary["count"]
        )
        assert {"p50", "p90", "p99", "p999"} <= set(latency)

    def test_introspection_traffic_is_labelled_and_windowed_out(self, server):
        before = server.metrics.window("requests").total()
        for _ in range(3):
            get(server, "/statusz")
        _, body = get(server, "/statusz")
        assert any(
            "endpoint=statusz" in name and "endpoint_class=introspection" in name
            for name in body["counters"]
            if name.startswith("serve.requests")
        )
        # Scrape traffic must not move the serving-request window.
        assert server.metrics.window("requests").total() == before

    def test_slow_request_log_names_the_trace(self, compiled_indexes, capfd):
        engine = ServingEngine(compiled_indexes)
        server = GeoServer(
            engine, port=0, metrics=MetricsRegistry(), slow_ms=0.0
        )
        server.start_background()
        try:
            request = urllib.request.Request(
                server.url + "/lookup?ip=41.0.0.2",
                headers={"X-Request-Id": "slow-probe-1"},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                response.read()
            import time as timelib

            deadline = timelib.monotonic() + 5.0
            captured = ""
            while timelib.monotonic() < deadline:
                captured += capfd.readouterr().err
                if "slow request:" in captured:
                    break
                timelib.sleep(0.02)
            assert "slow request:" in captured
            assert "trace=slow-probe-1" in captured
            assert "endpoint=lookup" in captured
        finally:
            server.stop()


class TestErrors:
    def test_lookup_without_ip_is_400(self, server):
        code, body = error_of(lambda: get(server, "/lookup"))
        assert code == 400 and "ip=" in body["error"]

    def test_lookup_invalid_ip_is_400(self, server):
        code, body = error_of(lambda: get(server, "/lookup?ip=not-an-ip"))
        assert code == 400
        assert "not an IPv4 address" in body["error"]

    def test_unknown_path_is_404(self, server):
        code, body = error_of(lambda: get(server, "/nope"))
        assert code == 404 and "no such endpoint" in body["error"]

    def test_batch_requires_ips_list(self, server):
        code, body = error_of(lambda: post(server, "/batch", {"addresses": []}))
        assert code == 400 and "ips" in body["error"]

    def test_batch_rejects_invalid_json(self, server):
        request = urllib.request.Request(
            server.url + "/batch", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_oversized_batch_rejected(self, server):
        from repro.serve.http import MAX_BATCH_SIZE

        code, body = error_of(
            lambda: post(server, "/batch", {"ips": ["1.1.1.1"] * (MAX_BATCH_SIZE + 1)})
        )
        assert code == 413 and "batch too large" in body["error"]

    def test_errors_are_counted(self, server):
        error_of(lambda: get(server, "/lookup?ip=zzz"))
        _, body = get(server, "/statusz")
        assert any(
            name.startswith("serve.errors") for name in body["counters"]
        )


class TestLifecycle:
    def test_stop_releases_the_port(self, compiled_indexes):
        server = GeoServer(ServingEngine(compiled_indexes), port=0)
        thread = server.start_background()
        port = server.port
        assert get(server, "/healthz")[0] == 200
        server.stop()
        thread.join(timeout=10)
        assert not thread.is_alive()
        # The port is free again: a new server can bind it immediately.
        rebound = GeoServer(ServingEngine(compiled_indexes), port=port)
        rebound.server_close()

    def test_stop_shuts_down_the_engine_batch_pool(self, compiled_indexes):
        engine = ServingEngine(compiled_indexes, batch_threshold=2, cache_size=None)
        server = GeoServer(engine, port=0)
        server.start_background()
        post(server, "/batch", {"ips": ["41.0.0.2", "41.0.0.3", "41.0.0.4"]})
        assert engine._pool is not None
        server.stop()
        assert engine._pool is None  # server_close closed the engine too

    def test_concurrent_requests(self, server, small_scenario):
        """The threaded server answers parallel lookups without mixing
        responses up."""
        import concurrent.futures

        addresses = [str(a) for a in small_scenario.ark_dataset.addresses[:40]]

        def fetch(address):
            return address, get(server, f"/lookup?ip={address}")[1]["ip"]

        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            for sent, received in pool.map(fetch, addresses):
                assert sent == received


class TestGenerationObservability:
    def test_statusz_reports_the_serving_generation(self, server):
        _, body = get(server, "/statusz")
        generation = body["generation"]
        assert generation["id"] == 0  # booted directly, never swapped
        assert generation["source"] == "boot"
        assert generation["age_s"] >= 0.0
        assert generation["swaps"] == 0
        assert generation["rollbacks"] == 0

    def test_metricsz_exposes_generation_gauges(self, server):
        request = urllib.request.Request(server.url + "/metricsz")
        with urllib.request.urlopen(request, timeout=10) as response:
            text = response.read().decode("utf-8")
        from repro.obs import validate_exposition

        assert validate_exposition(text) == []
        assert "# TYPE repro_serve_generation_id gauge" in text
        assert "repro_serve_generation_id 0" in text
        assert "# TYPE repro_serve_generation_age_s gauge" in text

    def test_store_swap_is_visible_end_to_end(
        self, tmp_path, compiled_indexes, answer_plane
    ):
        """The lifecycle the CLI wires up: a store-backed server whose
        watcher hot-swaps a freshly published generation, visible on
        /statusz and /metricsz without a restart."""
        from repro.serve import SnapshotStore, StoreWatcher

        store = SnapshotStore(tmp_path / "store")
        store.publish(compiled_indexes, answer_plane)
        record, indexes, plane = store.load(store.current_id())
        engine = ServingEngine(
            indexes,
            plane=plane,
            generation_id=record.generation,
            generation_source="store",
        )
        watcher = StoreWatcher(store, engine, interval_s=3600.0)
        server = GeoServer(engine, port=0, metrics=MetricsRegistry())
        watcher.attach_metrics(server.metrics)
        watcher.attach_trace_sink(server.traces)
        server.start_background()
        try:
            _, body = get(server, "/statusz")
            assert body["generation"]["id"] == 1
            assert body["generation"]["source"] == "store"

            store.publish(compiled_indexes, answer_plane)
            assert watcher.poll_once() == "swapped"

            _, body = get(server, "/statusz")
            assert body["generation"]["id"] == 2
            assert body["generation"]["swaps"] == 1
            with urllib.request.urlopen(
                server.url + "/metricsz", timeout=10
            ) as response:
                text = response.read().decode("utf-8")
            assert "repro_serve_generation_id 2" in text
            assert "repro_serve_generation_swaps_total 1" in text
        finally:
            server.stop()
        # server.stop() → engine.close() → the watcher is dead too.
        assert engine.closed
        assert watcher._thread is None
