"""Trace threading through the serving engine: span rows per path.

Every request path must attribute itself honestly on the trace —
``plane`` (precomputed cell), ``cache`` (LRU hit), ``live`` (full
resolve), ``degraded`` (resolve with vendors missing) — and the span
rows must stay bounded no matter how large a batch rides one trace.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.reqtrace import RequestTrace
from repro.serve import ServingEngine


class BoomIndex:
    """A vendor index whose every probe raises."""

    interval_count = 0

    def probe_answer(self, addr):
        raise RuntimeError("vendor backend down")


@pytest.fixture()
def traced():
    return RequestTrace("lookup")


class TestLivePath:
    def test_resolve_records_per_vendor_probe_spans(self, compiled_indexes, traced):
        engine = ServingEngine(compiled_indexes, cache_size=None)
        engine.lookup_outcome("41.0.0.2", trace=traced)
        assert traced.path == "live"
        tree = traced.to_dict()
        (resolve,) = tree["spans"]
        assert resolve["name"] == "resolve"
        probes = {span["name"] for span in resolve["children"]}
        assert probes == {f"probe:{name}" for name in compiled_indexes}
        assert all(span["attrs"]["ok"] for span in resolve["children"])

    def test_untraced_lookup_matches_traced(self, compiled_indexes, traced):
        engine = ServingEngine(compiled_indexes, cache_size=None)
        assert engine.lookup_outcome(
            "41.0.0.2", trace=traced
        ) == engine.lookup_outcome("41.0.0.2")


class TestCachePath:
    def test_cache_hit_is_attributed(self, compiled_indexes):
        engine = ServingEngine(compiled_indexes, cache_size=16)
        engine.lookup_outcome("41.0.0.2")  # warm
        trace = RequestTrace("lookup")
        engine.lookup_outcome("41.0.0.2", trace=trace)
        assert trace.path == "cache"
        assert trace.to_dict()["spans"][0]["name"] == "cache.hit"


class TestPlanePath:
    def test_plane_hit_records_interval_attribution(
        self, compiled_indexes, answer_plane
    ):
        engine = ServingEngine(compiled_indexes, plane=answer_plane)
        trace = RequestTrace("lookup")
        engine.lookup_outcome("41.0.0.2", trace=trace)
        assert trace.path == "plane"
        (span,) = trace.to_dict()["spans"]
        assert span["name"] == "plane.probe"
        assert span["attrs"]["interval"] >= 0

    def test_locate_agrees_with_probe(self, answer_plane):
        from repro.net.ip import parse_address

        addr = int(parse_address("41.0.0.2"))
        cell, interval = answer_plane.locate(addr)
        assert cell is answer_plane.probe(addr)
        assert 0 <= interval < answer_plane.interval_count

    def test_traced_plane_outcome_equals_untraced(
        self, compiled_indexes, answer_plane
    ):
        engine = ServingEngine(compiled_indexes, plane=answer_plane)
        trace = RequestTrace("lookup")
        assert engine.lookup_outcome(
            "41.0.0.2", trace=trace
        ) == engine.lookup_outcome("41.0.0.2")

    def test_plane_hit_counters_stay_exact(self, compiled_indexes, answer_plane):
        metrics = MetricsRegistry()
        engine = ServingEngine(
            compiled_indexes, plane=answer_plane, metrics=metrics
        )
        for _ in range(7):
            engine.lookup_outcome("41.0.0.2")
        assert metrics.counter("serve.lookups") == 7
        assert metrics.counter("plane.hits") == 7

    def test_plane_consensus_counters_stay_exact(
        self, compiled_indexes, answer_plane
    ):
        metrics = MetricsRegistry()
        engine = ServingEngine(
            compiled_indexes, plane=answer_plane, metrics=metrics
        )
        for _ in range(3):
            engine.consensus("41.0.0.2")
        assert metrics.counter("serve.lookups") == 3
        assert metrics.counter("serve.consensus") == 3
        assert metrics.counter("plane.hits") == 3


class TestDegradedPath:
    def test_failing_vendor_marks_the_trace_degraded(self, compiled_indexes):
        name = next(iter(compiled_indexes))
        indexes = {**compiled_indexes, f"{name}-broken": BoomIndex()}
        engine = ServingEngine(indexes, cache_size=None)
        trace = RequestTrace("lookup")
        outcome = engine.lookup_outcome("41.0.0.2", trace=trace)
        assert outcome.degraded
        assert trace.path == "degraded"
        (resolve,) = trace.to_dict()["spans"]
        assert resolve["attrs"]["degraded"] is True
        failed = [
            span for span in resolve["children"] if not span["attrs"]["ok"]
        ]
        assert len(failed) == 1


class TestBatchTracing:
    def test_batch_spans_are_bounded(self, compiled_indexes, answer_plane):
        engine = ServingEngine(compiled_indexes, plane=answer_plane)
        trace = RequestTrace("batch", max_spans=10)
        addresses = ["41.0.0.2"] * 50
        results = engine.outcome_batch(addresses, trace=trace)
        assert len(results) == 50
        assert trace.span_count() == 10
        assert trace.dropped_spans == 41  # 50 lookups + 1 batch span - 10 kept
        assert trace.path == "plane"

    def test_batch_span_carries_size(self, compiled_indexes):
        engine = ServingEngine(compiled_indexes)
        trace = RequestTrace("batch")
        engine.outcome_batch(["41.0.0.2", "41.0.0.3"], trace=trace)
        batch = trace.to_dict()["spans"][0]
        assert batch["name"] == "batch"
        assert batch["attrs"]["size"] == 2
