"""AnswerPlane: compile-time cross-vendor consensus, byte-identical to live.

The plane's whole value proposition is that the healthy path returns
*exactly* what the live per-vendor resolve path would have — same
outcome mapping, same §5.1 consensus, same flags — just without the
per-request work.  These tests sweep the demanding probe pool (every
prefix edge, uncovered space, disagreement cells) through both paths
and assert equality, then cover the ``.rgpl`` persistence trust ladder,
the engine's compile-parameter handshake, and the degraded-bypass
metrics.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.serve import (
    AnswerPlane,
    ServingEngine,
    SnapshotError,
    compile_plane,
    load_plane,
    save_index_set,
    save_plane,
)
from repro.serve.engine import ResiliencePolicy


@pytest.fixture(scope="module")
def live_engine(compiled_indexes):
    """The reference: no plane, no cache — every lookup resolves live."""
    return ServingEngine(compiled_indexes, cache_size=None)


@pytest.fixture(scope="module")
def plane_engine(compiled_indexes, answer_plane):
    return ServingEngine(compiled_indexes, cache_size=None, plane=answer_plane)


class TestEquivalence:
    def test_outcomes_match_live_over_the_probe_pool(
        self, live_engine, plane_engine, probe_addresses
    ):
        """Covered, uncovered, and multi-vendor-disagreement addresses
        all come back identical through the plane."""
        for address in probe_addresses:
            live = live_engine.lookup_outcome(address)
            assert plane_engine.lookup_outcome(address) == live
            cell = plane_engine.lookup_plane(address)
            assert dict(cell.answers) == dict(live.answers)

    def test_consensus_matches_live_over_the_probe_pool(
        self, live_engine, plane_engine, probe_addresses
    ):
        for address in probe_addresses[::17]:
            live = live_engine.consensus_of(live_engine.lookup_outcome(address))
            assert plane_engine.consensus(address) == live

    def test_merged_boundaries_flip_exactly_where_live_flips(
        self, live_engine, plane_engine, answer_plane
    ):
        """Either side of every merged interval boundary agrees with the
        live path — an off-by-one in the bisect shift would fail here."""
        starts = answer_plane.parts()[0]
        for start in starts[1:]:
            for address in (start - 1, start):
                live = live_engine.lookup_outcome(address)
                assert plane_engine.lookup_outcome(address) == live

    def test_pool_exercises_every_address_class(
        self, answer_plane, probe_addresses
    ):
        """The sweep above is only meaningful if the pool really hits
        uncovered space, full coverage, and disagreement cells."""
        cells = {id(answer_plane.lookup(a)): answer_plane.lookup(a)
                 for a in probe_addresses}.values()
        assert any(
            all(answer is None for answer in cell.answers.values())
            for cell in cells
        )
        assert any(
            all(answer is not None for answer in cell.answers.values())
            for cell in cells
        )
        assert any(cell.country_disagreement for cell in cells)
        assert any(not cell.quorum for cell in cells)
        assert any(cell.quorum for cell in cells)

    def test_adjacent_intervals_never_share_a_cell(self, answer_plane):
        starts, cell_ids, cells = answer_plane.parts()
        assert starts[0] == 0
        assert all(a < b for a, b in zip(starts, starts[1:]))
        assert all(a != b for a, b in zip(cell_ids, cell_ids[1:]))
        assert answer_plane.cell_count <= answer_plane.interval_count
        assert set(cell_ids) == set(range(len(cells)))


class TestEngineHandshake:
    def test_quorum_mismatch_is_refused(self, compiled_indexes, answer_plane):
        with pytest.raises(ValueError, match="quorum_min"):
            ServingEngine(
                compiled_indexes,
                plane=answer_plane,
                policy=ResiliencePolicy(quorum_min=3),
            )

    def test_city_range_mismatch_is_refused(self, compiled_indexes, answer_plane):
        with pytest.raises(ValueError, match="city_range_km"):
            ServingEngine(
                compiled_indexes, plane=answer_plane, city_range_km=10.0
            )

    def test_vendor_set_mismatch_is_refused(self, compiled_indexes, answer_plane):
        subset = dict(sorted(compiled_indexes.items())[:-1])
        with pytest.raises(ValueError, match="vendors"):
            ServingEngine(subset, plane=answer_plane)

    def test_stale_plane_is_refused(self, compiled_indexes, answer_plane):
        """A plane compiled over different snapshots (interval counts
        disagree) must not boot — it would serve the old answers."""
        starts, cell_ids, cells = answer_plane.parts()
        victim = answer_plane.names[0]
        stale = AnswerPlane(
            names=answer_plane.names,
            vendor_intervals={
                **answer_plane.vendor_intervals,
                victim: answer_plane.vendor_intervals[victim] + 1,
            },
            starts=starts,
            cell_ids=cell_ids,
            cells=cells,
            city_range_km=answer_plane.city_range_km,
            quorum_min=answer_plane.quorum_min,
        )
        with pytest.raises(ValueError, match="recompile"):
            ServingEngine(compiled_indexes, plane=stale)

    def test_compile_needs_at_least_one_index(self):
        with pytest.raises(ValueError):
            compile_plane({})


class TestDegradedBypass:
    def test_failure_falls_back_and_recovery_returns_to_the_plane(
        self, compiled_indexes, answer_plane
    ):
        metrics = MetricsRegistry()
        engine = ServingEngine(
            compiled_indexes,
            cache_size=None,
            metrics=metrics,
            plane=answer_plane,
        )
        address = "41.0.0.2"
        healthy = engine.lookup_outcome(address)
        assert metrics.counter("plane.hits") == 1
        assert engine.plane_stats()["active"] is True

        # One recorded failure (below the quarantine threshold) flips the
        # fast gate: the next lookup runs the live path — which probes the
        # perfectly healthy index, heals the streak, and re-arms the plane.
        victim = engine.vendor_names()[0]
        engine._record_failure(victim, RuntimeError("transient blip"))
        assert engine.plane_stats()["active"] is False
        assert engine.lookup_plane(address) is None
        fallback = engine.lookup_outcome(address)
        assert metrics.counter("plane.fallbacks") == 1
        assert fallback == healthy  # the vendor answered fine live

        assert engine.plane_stats()["active"] is True
        assert engine.lookup_outcome(address) == healthy
        assert metrics.counter("plane.hits") == 2

    def test_missing_vendor_bypasses_the_plane_for_good(
        self, compiled_indexes, answer_plane, tmp_path
    ):
        """A plane compiled over the full vendor set still boots when one
        snapshot is missing — but never answers, because its cells bake
        in the missing vendor's data."""
        root = save_index_set(compiled_indexes, tmp_path / "set")
        victim = sorted(compiled_indexes)[0]
        (root / f"{victim}.rgix").unlink()
        metrics = MetricsRegistry()
        engine = ServingEngine.from_snapshot_dir(
            root,
            expected=sorted(compiled_indexes),
            cache_size=None,
            metrics=metrics,
            plane=answer_plane,
        )
        assert engine.degraded
        assert engine.plane_stats()["active"] is False
        assert engine.lookup_plane("41.0.0.2") is None
        outcome = engine.lookup_outcome("41.0.0.2")
        assert outcome.degraded and victim in outcome.quarantined
        assert metrics.counter("plane.hits") == 0
        assert metrics.counter("plane.fallbacks") == 1

    def test_engine_without_plane_reports_none(self, live_engine):
        assert live_engine.plane_stats() is None
        assert live_engine.lookup_plane("41.0.0.2") is None


class TestPersistence:
    def test_roundtrip_preserves_every_interval_and_cell(
        self, answer_plane, tmp_path, probe_addresses
    ):
        path = save_plane(answer_plane, tmp_path / "plane.rgpl")
        loaded = load_plane(path)
        assert loaded.names == answer_plane.names
        assert loaded.vendor_intervals == answer_plane.vendor_intervals
        assert loaded.stats() == answer_plane.stats()
        starts, cell_ids, cells = answer_plane.parts()
        loaded_starts, loaded_cell_ids, loaded_cells = loaded.parts()
        assert list(loaded_starts) == list(starts)
        assert list(loaded_cell_ids) == list(cell_ids)
        assert list(loaded_cells) == list(cells)
        for address in probe_addresses[::29]:
            assert loaded.lookup(address) == answer_plane.lookup(address)

    def test_loaded_plane_serves_identically(
        self, compiled_indexes, answer_plane, live_engine, tmp_path, probe_addresses
    ):
        path = save_plane(answer_plane, tmp_path / "plane.rgpl")
        engine = ServingEngine(
            compiled_indexes, cache_size=None, plane=load_plane(path)
        )
        for address in probe_addresses[::41]:
            assert engine.lookup_outcome(address) == live_engine.lookup_outcome(
                address
            )

    def test_missing_file_raises_snapshot_error(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            load_plane(tmp_path / "absent.rgpl")

    def test_bad_magic_raises_snapshot_error(self, answer_plane, tmp_path):
        path = save_plane(answer_plane, tmp_path / "plane.rgpl")
        blob = path.read_bytes()
        path.write_bytes(b"NOPE" + blob[4:])
        with pytest.raises(SnapshotError, match="bad magic"):
            load_plane(path)

    def test_truncation_raises_snapshot_error(self, answer_plane, tmp_path):
        path = save_plane(answer_plane, tmp_path / "plane.rgpl")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 100])
        with pytest.raises(SnapshotError, match="truncated"):
            load_plane(path)

    @pytest.mark.parametrize("offset_fraction", [0.1, 0.5, 0.9])
    def test_flipped_byte_raises_snapshot_error(
        self, answer_plane, tmp_path, offset_fraction
    ):
        path = save_plane(answer_plane, tmp_path / "plane.rgpl")
        blob = bytearray(path.read_bytes())
        position = int(len(blob) * offset_fraction)
        blob[position] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(SnapshotError):
            load_plane(path)


class TestConstruction:
    def test_rejects_mismatched_parallel_arrays(self):
        with pytest.raises(ValueError, match="parallel"):
            AnswerPlane(("A",), {"A": 1}, [0, 10], [0], [])

    def test_rejects_a_table_not_starting_at_zero(self):
        with pytest.raises(ValueError, match="address 0"):
            AnswerPlane(("A",), {"A": 1}, [5], [0], [])

    def test_rejects_out_of_range_cell_ids(self, answer_plane):
        cells = answer_plane.parts()[2][:1]
        with pytest.raises(ValueError, match="outside"):
            AnswerPlane(("A",), {"A": 1}, [0], [7], cells)
