"""LruCache: eviction order, accounting, and concurrency safety."""

import threading

import pytest

from repro.serve import LruCache


class TestLruCache:
    def test_capacity_must_be_positive(self):
        for bad in (0, -1, 2.5, "10"):
            with pytest.raises(ValueError):
                LruCache(bad)

    def test_miss_raises_and_counts(self):
        cache = LruCache(4)
        with pytest.raises(KeyError):
            cache.get(1)
        assert cache.misses == 1 and cache.hits == 0

    def test_hit_counts_and_returns(self):
        cache = LruCache(4)
        cache.put(1, "answer")
        assert cache.get(1) == "answer"
        assert cache.hits == 1 and cache.misses == 0
        assert cache.hit_rate == 1.0

    def test_none_is_a_cacheable_answer(self):
        cache = LruCache(4)
        cache.put(1, None)
        assert cache.get(1) is None
        assert cache.hits == 1

    def test_evicts_least_recently_used(self):
        cache = LruCache(2)
        cache.put(1, "a")
        cache.put(2, "b")
        cache.get(1)  # 2 is now the oldest
        cache.put(3, "c")
        assert 1 in cache and 3 in cache and 2 not in cache
        assert cache.evictions == 1

    def test_put_refreshes_existing_key(self):
        cache = LruCache(2)
        cache.put(1, "a")
        cache.put(2, "b")
        cache.put(1, "a2")  # refresh, not insert: nothing evicted
        cache.put(3, "c")  # evicts 2, the true LRU
        assert cache.get(1) == "a2"
        assert 2 not in cache
        assert len(cache) == 2

    def test_clear_keeps_counters(self):
        cache = LruCache(2)
        cache.put(1, "a")
        cache.get(1)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_stats_snapshot(self):
        cache = LruCache(3)
        cache.put(1, "a")
        cache.get(1)
        with pytest.raises(KeyError):
            cache.get(2)
        stats = cache.stats()
        assert stats == {
            "capacity": 3, "size": 1, "hits": 1, "misses": 1,
            "evictions": 0, "hit_rate": 0.5,
        }

    def test_concurrent_mixed_load_stays_consistent(self):
        """Hammer one small cache from several threads; the structure must
        stay bounded and the counters must balance."""
        cache = LruCache(64)
        errors = []

        def worker(offset: int):
            try:
                for i in range(2000):
                    key = (offset * 7 + i) % 200
                    cache.put(key, key)
                    probe = (key + offset) % 200
                    try:
                        assert cache.get(probe) == probe
                    except KeyError:
                        pass
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
        assert cache.hits + cache.misses == 8 * 2000
