"""ServingEngine: multi-database lookup, batching, consensus, metrics."""

import pytest

from repro.geodb import GeoDatabase, GeoRecord, single_prefix
from repro.obs import MetricsRegistry
from repro.serve import CompiledIndex, NoHealthyVendors, ServingEngine
from repro.serve.engine import ResiliencePolicy


class PoisonedIndex:
    """A compiled index that raises for one specific address."""

    def __init__(self, inner, poison: int):
        self._inner = inner
        self._poison = poison
        self.probed: list[int] = []

    def probe_answer(self, addr: int):
        self.probed.append(addr)
        if addr == self._poison:
            raise RuntimeError("poisoned address")
        return self._inner.probe_answer(addr)


@pytest.fixture(scope="module")
def engine(compiled_indexes):
    return ServingEngine(compiled_indexes)


def three_vendor_databases():
    """A hand-built disagreement scenario: two vendors say Dallas, one
    says Berlin (wrong country and far away)."""
    dallas = GeoRecord(country="US", region="Texas", city="Dallas",
                       latitude=32.78, longitude=-96.8)
    dallas_b = GeoRecord(country="US", region="Texas", city="Dallas",
                         latitude=32.80, longitude=-96.82)
    berlin = GeoRecord(country="DE", region="Berlin", city="Berlin",
                       latitude=52.52, longitude=13.40)
    return {
        "A": GeoDatabase("A", [single_prefix("198.51.100.0/24", dallas)]),
        "B": GeoDatabase("B", [single_prefix("198.51.100.0/24", dallas_b)]),
        "C": GeoDatabase("C", [single_prefix("198.51.100.0/24", berlin)]),
    }


class TestLookup:
    def test_answers_match_the_databases(self, small_scenario, engine):
        for address in small_scenario.ark_dataset.addresses[:200]:
            answers = engine.lookup(address)
            assert set(answers) == set(small_scenario.databases)
            for name, database in small_scenario.databases.items():
                expected = database.lookup(address)
                got = answers[name]
                assert (got.record if got is not None else None) == expected

    def test_cache_serves_repeats(self, compiled_indexes):
        metrics = MetricsRegistry()
        engine = ServingEngine(compiled_indexes, cache_size=8, metrics=metrics)
        first = engine.lookup("41.0.0.2")
        second = engine.lookup("41.0.0.2")
        assert first == second
        assert metrics.counter("serve.cache_hits") == 1
        assert metrics.counter("serve.cache_misses") == 1
        assert engine.cache_stats()["hits"] == 1

    def test_cache_can_be_disabled(self, compiled_indexes):
        engine = ServingEngine(compiled_indexes, cache_size=None)
        assert engine.cache_stats() is None
        assert engine.lookup("41.0.0.2") == engine.lookup("41.0.0.2")

    def test_invalid_address_raises_before_any_metrics(self, compiled_indexes):
        metrics = MetricsRegistry()
        engine = ServingEngine(compiled_indexes, metrics=metrics)
        with pytest.raises(ValueError, match="not an IPv4 address"):
            engine.lookup("not-an-ip")
        assert metrics.counter("serve.lookups") == 0

    def test_needs_at_least_one_index(self):
        with pytest.raises(ValueError):
            ServingEngine({})


class TestBatch:
    def test_small_batch_runs_inline_and_preserves_order(
        self, small_scenario, engine
    ):
        addresses = list(small_scenario.ark_dataset.addresses[:50])
        results = engine.lookup_batch(addresses)
        assert len(results) == len(addresses)
        for address, result in zip(addresses, results):
            assert result == engine.lookup(address)

    def test_large_batch_fans_out_identically(self, small_scenario, compiled_indexes):
        addresses = list(small_scenario.ark_dataset.addresses)
        threaded = ServingEngine(
            compiled_indexes, batch_threshold=10, max_workers=4, cache_size=None
        )
        inline = ServingEngine(
            compiled_indexes, batch_threshold=10**9, cache_size=None
        )
        assert threaded.lookup_batch(addresses) == inline.lookup_batch(addresses)

    def test_batch_metrics(self, compiled_indexes):
        metrics = MetricsRegistry()
        engine = ServingEngine(compiled_indexes, metrics=metrics)
        engine.lookup_batch(["41.0.0.2", "41.0.0.3"])
        assert metrics.counter("serve.batch_lookups") == 1
        snapshot = metrics.histograms_snapshot()
        assert snapshot["serve.batch_size"]["max"] == 2

    def test_empty_batch(self, engine):
        assert engine.lookup_batch([]) == []

    def test_failing_batch_drains_before_raising_and_counts_once(
        self, compiled_indexes
    ):
        """A mid-batch ServeError must not abandon the rest of the batch:
        the error is raised only after every address resolved, so the
        batch metrics that were counted describe work that really ran."""
        poison = int.from_bytes(bytes([41, 0, 0, 3]), "big")
        poisoned = {
            name: PoisonedIndex(index, poison)
            for name, index in compiled_indexes.items()
        }
        metrics = MetricsRegistry()
        engine = ServingEngine(
            poisoned,
            cache_size=None,
            metrics=metrics,
            policy=ResiliencePolicy(retries=0, quarantine_threshold=100),
        )
        tail = int.from_bytes(bytes([41, 0, 0, 4]), "big")
        with pytest.raises(NoHealthyVendors):
            engine.lookup_batch(["41.0.0.2", "41.0.0.3", "41.0.0.4"])
        assert metrics.counter("serve.batch_lookups") == 1
        assert metrics.histograms_snapshot()["serve.batch_size"]["max"] == 3
        # The address *after* the poisoned one was still resolved.
        assert all(tail in index.probed for index in poisoned.values())

    def test_large_batches_reuse_one_pool(self, small_scenario, compiled_indexes):
        engine = ServingEngine(
            compiled_indexes, batch_threshold=4, max_workers=2, cache_size=None
        )
        assert engine._pool is None  # lazy: no threads until a large batch
        addresses = list(small_scenario.ark_dataset.addresses[:16])
        engine.outcome_batch(addresses)
        pool = engine._pool
        assert pool is not None
        engine.outcome_batch(addresses)
        assert engine._pool is pool  # persistent, not per-batch
        engine.close()

    def test_close_is_idempotent_and_the_engine_stays_usable(
        self, small_scenario, compiled_indexes
    ):
        engine = ServingEngine(
            compiled_indexes, batch_threshold=4, max_workers=2, cache_size=None
        )
        addresses = list(small_scenario.ark_dataset.addresses[:12])
        engine.outcome_batch(addresses)
        engine.close()
        engine.close()
        assert engine._pool is None
        # A later batch simply recreates the pool.
        results = engine.lookup_batch(addresses)
        assert len(results) == len(addresses)
        engine.close()


class TestConsensus:
    def test_majority_wins_and_disagreement_is_flagged(self):
        engine = ServingEngine.from_databases(three_vendor_databases())
        consensus = engine.consensus("198.51.100.7")
        assert consensus.country == "US"
        assert consensus.country_votes == 2
        assert consensus.voters == 3
        # Two Dallas answers cluster; Berlin is the outlier.
        assert consensus.location is not None
        assert consensus.location_votes == 2
        assert consensus.country_disagreement
        assert consensus.city_disagreement

    def test_unanimous_answers_raise_no_flags(self, small_scenario, engine):
        # Find an address where all four databases agree on the country.
        for address in small_scenario.ark_dataset.addresses:
            records = [
                database.lookup(address)
                for database in small_scenario.databases.values()
            ]
            if all(r is not None and r.country for r in records) and len(
                {r.country for r in records}
            ) == 1:
                consensus = engine.consensus(address)
                assert consensus.country == records[0].country
                assert not consensus.country_disagreement
                return
        pytest.fail("no unanimous address in the scenario")

    def test_uncovered_address_has_no_quorum(self, engine):
        consensus = engine.consensus("240.0.0.1")  # reserved space: no coverage
        assert consensus.voters == 0
        assert consensus.country is None
        assert not consensus.country_disagreement
        assert not consensus.city_disagreement

    def test_matches_study_majority_vote(self, small_scenario, engine):
        """The engine must reuse — not reimplement — the §5.1 majority
        logic: answers equal repro.core.majority over the same tables."""
        from repro.core.majority import majority_location

        for address in small_scenario.ark_dataset.addresses[:100]:
            vote = majority_location(address, small_scenario.databases)
            consensus = engine.consensus(address)
            assert consensus.country == vote.country
            assert consensus.location == vote.location
            assert consensus.voters == vote.voters
