"""Tests for release-package export and reload."""

import pytest

from repro.scenario import (
    ArtifactError,
    export_scenario_artifacts,
    load_released_probes,
    load_study_artifacts,
    verify_release,
)


@pytest.fixture(scope="module")
def release(small_scenario, tmp_path_factory):
    directory = tmp_path_factory.mktemp("release")
    export_scenario_artifacts(small_scenario, directory)
    return directory


class TestExport:
    def test_layout(self, release):
        for name in (
            "ark_addresses.txt",
            "ground_truth_dns.csv",
            "ground_truth_rtt.csv",
            "delegations.csv",
            "measurements.jsonl",
            "probes.json",
            "MANIFEST.txt",
        ):
            assert (release / name).exists(), name
        assert sorted(p.stem for p in (release / "databases").glob("*.csv")) == [
            "IP2Location-Lite", "MaxMind-GeoLite", "MaxMind-Paid", "NetAcuity",
        ]

    def test_manifest_counts(self, small_scenario, release):
        manifest = (release / "MANIFEST.txt").read_text()
        assert f"ark_addresses: {len(small_scenario.ark_dataset)}" in manifest
        assert f"probes: {len(small_scenario.probes)}" in manifest


class TestReload:
    def test_round_trip_datasets(self, small_scenario, release):
        artifacts = load_study_artifacts(release)
        assert artifacts.ark_addresses == small_scenario.ark_dataset.addresses
        assert (
            artifacts.dns_ground_truth.addresses()
            == small_scenario.dns_ground_truth.dataset.addresses()
        )
        assert (
            artifacts.rtt_ground_truth.addresses()
            == small_scenario.rtt_ground_truth.dataset.addresses()
        )
        assert set(artifacts.databases) == set(small_scenario.databases)

    def test_registry_answers_match(self, small_scenario, release):
        artifacts = load_study_artifacts(release)
        for record in list(small_scenario.ground_truth)[:50]:
            original = small_scenario.internet.registry.lookup(record.address)
            reloaded = artifacts.registry.lookup(record.address)
            assert reloaded.rir is original.rir
            assert reloaded.asn == original.asn

    def test_reloaded_registry_is_read_only(self, release):
        from repro.geo import RIR

        artifacts = load_study_artifacts(release)
        with pytest.raises(RuntimeError):
            artifacts.registry.allocate(
                RIR.ARIN, asn=1, registered_country="US", organization="x"
            )

    def test_study_from_artifacts_matches_original(
        self, small_scenario, study_result, release
    ):
        """The flagship property: re-running the evaluation from the
        released files reproduces the original study's numbers exactly."""
        artifacts = load_study_artifacts(release)
        reloaded_result = artifacts.study(
            gazetteer=small_scenario.internet.gazetteer
        ).run()
        for name, original in study_result.overall.items():
            reloaded = reloaded_result.overall[name]
            assert reloaded.country_correct == original.country_correct
            assert reloaded.city_correct == original.city_correct
            assert reloaded.city_covered == original.city_covered
        assert (
            reloaded_result.consistency.all_agree_count
            == study_result.consistency.all_agree_count
        )


class TestReleaseVerification:
    def test_released_probes_load(self, small_scenario, release):
        probes = load_released_probes(release / "probes.json")
        assert len(probes) == len(small_scenario.probes)
        by_id = {p.probe_id: p for p in small_scenario.probes}
        for probe in probes[:20]:
            original = by_id[probe.probe_id]
            assert probe.reported_country == original.reported_country
            assert (
                probe.reported_location.distance_km(original.reported_location) < 0.01
            )

    def test_bad_probes_json(self, tmp_path):
        path = tmp_path / "probes.json"
        path.write_text("{}")
        with pytest.raises(ArtifactError):
            load_released_probes(path)
        path.write_text('[{"prb_id": "x"}]')
        with pytest.raises(ArtifactError):
            load_released_probes(path)

    def test_release_is_self_contained(self, release):
        """The flagship reproducibility property: the published RTT
        ground truth re-derives exactly from the released raw
        measurements and probe metadata."""
        assert verify_release(release) is True

    def test_tampered_ground_truth_detected(self, tmp_path, small_scenario):
        directory = export_scenario_artifacts(small_scenario, tmp_path / "tampered")
        path = directory / "ground_truth_rtt.csv"
        lines = path.read_text().splitlines()
        if len(lines) > 2:
            path.write_text("\n".join(lines[:-1]) + "\n")  # drop one record
            with pytest.raises(ArtifactError):
                verify_release(directory)

    def test_verify_requires_raw_data(self, tmp_path, small_scenario):
        directory = export_scenario_artifacts(small_scenario, tmp_path / "noraw")
        (directory / "measurements.jsonl").unlink()
        with pytest.raises(ArtifactError):
            verify_release(directory)


class TestValidation:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(ArtifactError):
            load_study_artifacts(tmp_path / "nope")

    def test_missing_artifact(self, tmp_path, small_scenario):
        directory = export_scenario_artifacts(small_scenario, tmp_path / "broken")
        (directory / "delegations.csv").unlink()
        with pytest.raises(ArtifactError):
            load_study_artifacts(directory)

    def test_corrupt_delegations(self, tmp_path, small_scenario):
        directory = export_scenario_artifacts(small_scenario, tmp_path / "corrupt")
        (directory / "delegations.csv").write_text("prefix,rir\n10.0.0.0/8,MARS\n")
        with pytest.raises(ArtifactError):
            load_study_artifacts(directory)

    def test_empty_databases_dir(self, tmp_path, small_scenario):
        directory = export_scenario_artifacts(small_scenario, tmp_path / "nodbs")
        for csv_path in (directory / "databases").glob("*.csv"):
            csv_path.unlink()
        with pytest.raises(ArtifactError):
            load_study_artifacts(directory)
