"""End-to-end scenario assembly tests."""

import pytest

from repro.core.pipeline import RouterGeolocationStudy
from repro.geo import RIR
from repro.groundtruth import GroundTruthSource
from repro.scenario import ScenarioConfig, build_scenario


class TestConfig:
    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            ScenarioConfig(scale=0)

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            ScenarioConfig(ark_monitors=0)

    def test_scaled_helpers_floor(self):
        config = ScenarioConfig(scale=0.01)
        assert config.scaled_ark_targets() >= 50
        assert config.scaled_probes() >= 40
        assert config.scaled_monitors() >= 4
        assert config.scaled_atlas_targets() >= 4

    def test_resolved_topology_uses_seed(self):
        config = ScenarioConfig(seed=99, scale=0.1)
        assert config.resolved_topology().seed == 99


class TestScenario:
    def test_components_present(self, small_scenario):
        assert len(small_scenario.ark_dataset) > 100
        assert len(small_scenario.rdns) > 100
        assert len(small_scenario.probes) >= 40
        assert len(small_scenario.measurements) > 100
        assert set(small_scenario.databases) == {
            "IP2Location-Lite", "MaxMind-GeoLite", "MaxMind-Paid", "NetAcuity",
        }

    def test_ground_truth_sets_nonempty(self, small_scenario):
        assert len(small_scenario.dns_ground_truth.dataset) > 20
        assert len(small_scenario.rtt_ground_truth.dataset) > 10

    def test_merged_ground_truth_prefers_dns(self, small_scenario):
        merged = small_scenario.ground_truth
        dns = small_scenario.dns_ground_truth.dataset
        for record in merged:
            if dns.get(record.address) is not None:
                assert record.source is GroundTruthSource.DNS

    def test_dns_ground_truth_is_honest(self, small_scenario):
        """Decoded locations must match the simulation's true locations —
        otherwise it is not ground truth."""
        world = small_scenario.internet
        for record in small_scenario.dns_ground_truth.dataset:
            true_city = world.true_location(record.address)
            assert record.location.distance_km(true_city.location) < 1.0

    def test_rtt_ground_truth_mostly_honest(self, small_scenario):
        """RTT-proximity is bounded by physics + surviving lying probes."""
        world = small_scenario.internet
        records = list(small_scenario.rtt_ground_truth.dataset)
        close = sum(
            1
            for r in records
            if r.location.distance_km(world.true_location(r.address).location) <= 60
        )
        assert close / len(records) > 0.9

    def test_ground_truth_addresses_are_router_interfaces(self, small_scenario):
        world = small_scenario.internet
        for record in list(small_scenario.ground_truth)[:100]:
            assert world.is_interface(record.address)

    def test_deterministic(self):
        a = build_scenario(seed=5, scale=0.02)
        b = build_scenario(seed=5, scale=0.02)
        assert a.ark_dataset.addresses == b.ark_dataset.addresses
        assert a.ground_truth.addresses() == b.ground_truth.addresses()
        for name in a.databases:
            assert [e.record for e in a.databases[name]] == [
                e.record for e in b.databases[name]
            ]

    def test_describe(self, small_scenario):
        text = small_scenario.describe()
        assert "Ark" in text and "Atlas" in text and "Ground truth" in text

    def test_table1_regional_shape(self, small_scenario, study_result):
        """Table 1's qualitative shape: DNS-based is ARIN-dominated, the
        RTT set is Europe-heavy and spans more countries per address."""
        row_dns, row_rtt = study_result.table1_rows
        assert row_dns.per_rir[RIR.ARIN] == max(row_dns.per_rir.values())
        assert row_rtt.per_rir[RIR.RIPENCC] == max(row_rtt.per_rir.values())
        assert row_rtt.countries / row_rtt.total > row_dns.countries / row_dns.total


class TestStudyFromScenario:
    def test_from_scenario_runs(self, small_scenario, study_result):
        assert study_result.city_range_km == 40.0
        assert set(study_result.overall) == set(small_scenario.databases)

    def test_default_run_studies_only_the_case_study_database(self, small_scenario):
        study = RouterGeolocationStudy.from_scenario(small_scenario)
        assert study.case_study_database == "MaxMind-Paid"
        result = study.run()
        assert set(result.arin_cases) == {"MaxMind-Paid"}

    def test_all_databases_escape_hatch(self, small_scenario, study_result):
        # The shared fixture runs with all_databases=True.
        assert set(study_result.arin_cases) == set(small_scenario.databases)

    def test_unknown_case_study_database_rejected(self, small_scenario):
        with pytest.raises(ValueError):
            RouterGeolocationStudy(
                databases=small_scenario.databases,
                ark_addresses=small_scenario.ark_dataset.addresses,
                dns_ground_truth=small_scenario.dns_ground_truth.dataset,
                rtt_ground_truth=small_scenario.rtt_ground_truth.dataset,
                whois=small_scenario.internet.whois,
                gazetteer=small_scenario.internet.gazetteer,
                case_study_database="NotADatabase",
            )

    def test_study_validates_inputs(self, small_scenario):
        with pytest.raises(ValueError):
            RouterGeolocationStudy(
                databases={},
                ark_addresses=small_scenario.ark_dataset.addresses,
                dns_ground_truth=small_scenario.dns_ground_truth.dataset,
                rtt_ground_truth=small_scenario.rtt_ground_truth.dataset,
                whois=small_scenario.internet.whois,
                gazetteer=small_scenario.internet.gazetteer,
            )
        with pytest.raises(ValueError):
            RouterGeolocationStudy(
                databases=small_scenario.databases,
                ark_addresses=small_scenario.ark_dataset.addresses,
                dns_ground_truth=small_scenario.dns_ground_truth.dataset,
                rtt_ground_truth=small_scenario.rtt_ground_truth.dataset,
                whois=small_scenario.internet.whois,
                gazetteer=small_scenario.internet.gazetteer,
                city_range_km=-1,
            )
