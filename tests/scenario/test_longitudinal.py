"""Longitudinal churn scenario: store-served generations, measured drift."""

import json

import pytest

from repro.scenario import run_longitudinal_churn
from repro.scenario.longitudinal import GenerationChurn


@pytest.fixture(scope="module")
def report(small_scenario, tmp_path_factory):
    probes = [int(a) for a in small_scenario.ark_dataset.addresses[:96]]
    return run_longitudinal_churn(
        small_scenario,
        tmp_path_factory.mktemp("longitudinal") / "store",
        generations=3,
        months_step=6.0,
        seed=2016,
        probes=probes,
    )


class TestReportShape:
    def test_every_generation_was_hot_swapped(self, report):
        assert report.swaps == 2
        assert report.rollbacks == 0
        assert [step.generation for step in report.steps] == [2, 3]

    def test_churn_is_measured_per_vendor(self, small_scenario, report):
        vendors = set(small_scenario.databases)
        for step in report.steps:
            assert set(step.answer_churn) == vendors
            assert all(0.0 <= rate <= 1.0 for rate in step.answer_churn.values())
            assert set(step.vendor_diffs) == vendors
            assert step.probe_count == report.probe_count == 96

    def test_release_diffs_account_for_every_common_prefix(
        self, small_scenario, report
    ):
        for step in report.steps:
            for name, diff in step.vendor_diffs.items():
                total = (
                    diff["unchanged"]
                    + diff["nudged"]
                    + diff["moved"]
                    + diff["resolution_changed"]
                )
                # refresh_snapshot relocates, never adds or removes.
                assert total == len(small_scenario.databases[name])
                assert diff["moved"] > 0  # six months always moves something

    def test_some_served_answers_changed(self, report):
        mean = report.mean_answer_churn()
        assert any(rate > 0.0 for rate in mean.values())
        # ...and the consensus flips less than the noisiest vendor churns.
        flips = report.total_consensus_flips()
        total = report.probe_count * len(report.steps)
        assert flips["city"] / total <= max(mean.values())

    def test_to_dict_is_json_ready(self, report):
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["generations"] == 3
        assert payload["swaps"] == 2
        assert len(payload["steps"]) == 2
        assert set(payload["mean_answer_churn"]) == set(
            report.mean_answer_churn()
        )

    def test_render_is_one_line_per_step(self, report):
        text = report.render()
        assert text.startswith("longitudinal churn: 3 generations")
        assert "gen 2 (+6mo):" in text
        assert "gen 3 (+6mo):" in text
        assert "total consensus flips" in text


class TestArguments:
    def test_needs_two_generations(self, small_scenario, tmp_path):
        with pytest.raises(ValueError, match="at least 2"):
            run_longitudinal_churn(
                small_scenario, tmp_path / "store", generations=1
            )

    def test_needs_probes(self, small_scenario, tmp_path):
        with pytest.raises(ValueError, match="must not be empty"):
            run_longitudinal_churn(
                small_scenario, tmp_path / "store", generations=2, probes=[]
            )


def test_generation_churn_row_is_self_describing():
    row = GenerationChurn(
        generation=2,
        months=6.0,
        vendor_diffs={"A": {"moved": 3}},
        answer_churn={"A": 0.125},
        consensus_country_flips=1,
        consensus_city_flips=2,
        probe_count=8,
    ).to_dict()
    assert row == {
        "generation": 2,
        "months": 6.0,
        "vendor_diffs": {"A": {"moved": 3}},
        "answer_churn": {"A": 0.125},
        "consensus_country_flips": 1,
        "consensus_city_flips": 2,
        "probe_count": 8,
    }
