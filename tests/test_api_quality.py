"""API quality gates: documentation and import hygiene.

Deliverable-level checks: every public module, class, and function in the
library carries a docstring, every package's ``__all__`` resolves, and
the package imports without side effects beyond its own modules.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro.geo",
    "repro.net",
    "repro.topology",
    "repro.dns",
    "repro.atlas",
    "repro.geodb",
    "repro.groundtruth",
    "repro.delaygeo",
    "repro.core",
    "repro.scenario",
    "repro.obs",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            yield importlib.import_module(f"{package_name}.{info.name}")


class TestDocstrings:
    @pytest.mark.parametrize("module", list(iter_modules()), ids=lambda m: m.__name__)
    def test_module_documented(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize("module", list(iter_modules()), ids=lambda m: m.__name__)
    def test_public_members_documented(self, module):
        undocumented = []
        for name, member in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(member) or inspect.isfunction(member)):
                continue
            if getattr(member, "__module__", None) != module.__name__:
                continue  # re-export; documented at its home
            if not (member.__doc__ and member.__doc__.strip()):
                undocumented.append(name)
                continue
            if inspect.isclass(member):
                for method_name, method in vars(member).items():
                    if method_name.startswith("_"):
                        continue
                    if not inspect.isfunction(method):
                        continue
                    if not (method.__doc__ and method.__doc__.strip()):
                        undocumented.append(f"{name}.{method_name}")
        assert not undocumented, f"{module.__name__}: {undocumented}"


class TestExports:
    @pytest.mark.parametrize("package_name", PACKAGES + ["repro"])
    def test_all_resolves(self, package_name):
        package = importlib.import_module(package_name)
        for name in getattr(package, "__all__", []):
            assert getattr(package, name, None) is not None, f"{package_name}.{name}"

    def test_root_lazy_exports(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_root_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.no_such_symbol
