"""Tests for vendor snapshot generation — mechanisms, not just totals."""

import random

import pytest

from repro.dns import HintDictionary, HostnameFactory, RdnsService
from repro.geo import RIR
from repro.geodb import (
    GENERATED_PROFILES,
    IP2LOCATION_LITE,
    MAXMIND_GEOLITE_DERIVATION,
    MAXMIND_PAID,
    NETACUITY,
    LocationSource,
    PerRir,
    Resolution,
    SnapshotGenerator,
    VendorProfile,
    blocks_of,
    mix,
)


@pytest.fixture(scope="module")
def world(request):
    return request.getfixturevalue("small_world")


@pytest.fixture(scope="module")
def rdns(world):
    hints = HintDictionary(world.gazetteer)
    return RdnsService.build(world, HostnameFactory(hints), random.Random(5))


@pytest.fixture(scope="module")
def generator(world, rdns):
    return SnapshotGenerator(world, seed=42, rdns=rdns)


@pytest.fixture(scope="module")
def databases(generator):
    return generator.generate_paper_set()


@pytest.fixture(scope="module")
def addresses(world):
    return [interface.address for interface in world.interfaces()]


class TestMix:
    def test_deterministic(self):
        assert mix(1, 2, 3) == mix(1, 2, 3)

    def test_order_sensitive(self):
        assert mix(1, 2) != mix(2, 1)

    def test_distinct_streams(self):
        values = {mix(42, stream) for stream in range(100)}
        assert len(values) == 100


class TestGenerationBasics:
    def test_all_four_produced(self, databases):
        assert set(databases) == {
            "IP2Location-Lite", "MaxMind-GeoLite", "MaxMind-Paid", "NetAcuity",
        }

    def test_deterministic(self, world, rdns, generator, databases):
        again = SnapshotGenerator(world, seed=42, rdns=rdns).generate_paper_set()
        for name, db in databases.items():
            assert [(str(e.prefix), e.record) for e in again[name]] == [
                (str(e.prefix), e.record) for e in db
            ]

    def test_different_seed_differs(self, world, rdns, databases):
        other = SnapshotGenerator(world, seed=43, rdns=rdns).generate_paper_set()
        assert any(
            [e.record for e in other[name]] != [e.record for e in databases[name]]
            for name in databases
        )

    def test_rejects_non_interface_addresses(self, world):
        from repro.net import parse_address

        with pytest.raises(ValueError):
            SnapshotGenerator(world, seed=1, addresses=[parse_address("192.0.2.1")])

    def test_blocks_of_groups_by_slash24(self, addresses):
        grouped = blocks_of(addresses[:100])
        for block, members in grouped.items():
            assert block.prefixlen == 24
            assert all(address in block for address in members)


class TestCoverageShape:
    def test_full_coverage_vendors(self, databases, addresses):
        for name in ("IP2Location-Lite", "NetAcuity"):
            db = databases[name]
            covered = sum(1 for a in addresses if db.lookup(a) is not None)
            assert covered / len(addresses) > 0.97, name

    def test_ip2location_city_everywhere(self, databases, addresses):
        db = databases["IP2Location-Lite"]
        city = sum(1 for a in addresses if db.resolution_of(a) is Resolution.CITY)
        assert city / len(addresses) > 0.97

    def test_maxmind_city_coverage_is_partial(self, databases, addresses):
        paid = databases["MaxMind-Paid"]
        lite = databases["MaxMind-GeoLite"]
        paid_city = sum(1 for a in addresses if paid.resolution_of(a) is Resolution.CITY)
        lite_city = sum(1 for a in addresses if lite.resolution_of(a) is Resolution.CITY)
        assert paid_city < 0.8 * len(addresses)
        assert lite_city < paid_city  # the free edition names fewer cities


class TestRegistryMechanism:
    def test_registry_records_carry_registered_country(self, world, databases, addresses):
        """A registry record names either the org's registered country (HQ
        whois) or the block's true majority country (SWIPed site record)."""
        from repro.net.ip import block_of

        db = databases["IP2Location-Lite"]
        checked = hq = 0
        for address in addresses:
            record = db.lookup(address)
            if record is None or record.source is not LocationSource.REGISTRY:
                continue
            delegation = world.registry.lookup(address)
            block_countries = {
                world.true_location(a).country
                for a in addresses
                if block_of(a) == block_of(address)
            }
            assert record.country == delegation.registered_country or (
                record.country in block_countries
            )
            hq += record.country == delegation.registered_country
            checked += 1
        assert checked > 10
        assert hq > 0  # most registry records still follow the HQ

    def test_shared_registry_draw_correlates_vendors(self, world, databases, addresses):
        """Blocks NetAcuity locates from the registry must be a subset of
        the blocks IP2Location does (weights are ordered)."""
        ip2l = databases["IP2Location-Lite"]
        neta = databases["NetAcuity"]
        neta_registry_blocks = set()
        ip2l_registry_blocks = set()
        from repro.net.ip import block_of

        for address in addresses:
            for db, bucket in ((ip2l, ip2l_registry_blocks), (neta, neta_registry_blocks)):
                entry = db.lookup_entry(address)
                if (
                    entry is not None
                    and entry.record.source is LocationSource.REGISTRY
                ):
                    bucket.add(block_of(address))
        # Allow a tiny tolerance: NetAcuity's hint layer may shadow a
        # registry /24 with /32s but never creates registry blocks of its own.
        assert len(neta_registry_blocks - ip2l_registry_blocks) <= max(
            2, len(neta_registry_blocks) // 20
        )

    def test_abroad_blocks_pulled_home(self, world, databases, addresses):
        """The §5.2.3 mechanism: foreign-deployed interfaces in US-registered
        blocks geolocated (incorrectly) to the US."""
        db = databases["IP2Location-Lite"]
        pulled = 0
        for address in addresses:
            record = db.lookup(address)
            if record is None or record.source is not LocationSource.REGISTRY:
                continue
            true_country = world.true_location(address).country
            if record.country == "US" and true_country != "US":
                pulled += 1
        assert pulled > 5


class TestDnsHintMechanism:
    def test_only_netacuity_uses_hints(self, databases):
        for name, db in databases.items():
            hinted = sum(
                1 for e in db if e.record.source is LocationSource.DNS_HINT
            )
            if name == "NetAcuity":
                assert hinted > 0
            else:
                assert hinted == 0

    def test_hint_records_are_per_address(self, databases):
        db = databases["NetAcuity"]
        for entry in db:
            if entry.record.source is LocationSource.DNS_HINT:
                assert entry.prefix.prefixlen == 32

    def test_hint_records_are_accurate(self, world, databases):
        db = databases["NetAcuity"]
        for entry in db:
            if entry.record.source is not LocationSource.DNS_HINT:
                continue
            true_city = world.true_location(entry.prefix.network_address)
            assert entry.record.location.distance_km(true_city.location) < 45


class TestMaxMindDerivation:
    def test_many_identical_records(self, databases, addresses):
        paid = databases["MaxMind-Paid"]
        lite = databases["MaxMind-GeoLite"]
        both_city = identical = 0
        for address in addresses:
            a = paid.lookup(address)
            b = lite.lookup(address)
            if a is None or b is None or a.city is None or b.city is None:
                continue
            both_city += 1
            if (a.latitude, a.longitude) == (b.latitude, b.longitude):
                identical += 1
        assert both_city > 50
        assert identical / both_city > 0.5  # Figure 1: 68% identical

    def test_country_agreement_near_total(self, databases, addresses):
        paid = databases["MaxMind-Paid"]
        lite = databases["MaxMind-GeoLite"]
        both = agree = 0
        for address in addresses:
            a, b = paid.lookup(address), lite.lookup(address)
            if a is None or b is None or a.country is None or b.country is None:
                continue
            both += 1
            agree += a.country == b.country
        assert agree / both > 0.98

    def test_same_prefix_structure(self, databases):
        paid = databases["MaxMind-Paid"]
        lite = databases["MaxMind-GeoLite"]
        assert [e.prefix for e in paid] == [e.prefix for e in lite]


class TestCityCoordinateConvention:
    def test_city_records_sit_near_gazetteer_city(self, world, databases):
        """§4: database city coordinates within 40 km of GeoNames >99%."""
        for name, db in databases.items():
            bad = total = 0
            for entry in db:
                record = entry.record
                if record.city is None:
                    continue
                city = world.gazetteer.match(record.city, record.country, region=record.region)
                total += 1
                if record.location.distance_km(city.location) > 40:
                    bad += 1
            assert total > 0
            assert bad / total < 0.01, name

    def test_country_records_sit_on_centroids(self, databases):
        from repro.geo import COUNTRIES, GeoPoint

        db = databases["MaxMind-Paid"]
        for entry in db:
            record = entry.record
            if record.city is not None or record.country is None:
                continue
            info = COUNTRIES.get(record.country)
            centroid = GeoPoint(info.centroid_lat, info.centroid_lon)
            assert record.location.distance_km(centroid) < 0.001


class TestProfiles:
    def test_paper_profiles_are_sane(self):
        for profile in GENERATED_PROFILES:
            assert 0.9 <= profile.country_coverage <= 1.0
        assert NETACUITY.dns_hint_weight > 0
        assert MAXMIND_PAID.dns_hint_weight == 0
        assert IP2LOCATION_LITE.registry_city_resolution == 1.0

    def test_per_rir_parameter(self):
        p = PerRir(0.5, {RIR.ARIN: 0.9})
        assert p.get(RIR.ARIN) == 0.9
        assert p.get(RIR.APNIC) == 0.5

    def test_per_rir_validation(self):
        with pytest.raises(ValueError):
            PerRir(1.5)
        with pytest.raises(ValueError):
            PerRir(0.5, {RIR.ARIN: -0.1})

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            VendorProfile(name="x", vendor_key=9, country_coverage=1.2)
        with pytest.raises(ValueError):
            VendorProfile(name="x", vendor_key=9, coord_jitter_km=-1)

    def test_derivation_validation(self):
        from repro.geodb import DerivationProfile

        with pytest.raises(ValueError):
            DerivationProfile(name="x", vendor_key=9, identical_rate=0.9, nearby_rate=0.2)
        assert MAXMIND_GEOLITE_DERIVATION.keep_city_rate < 1.0
