"""Tests for geolocation records."""

import pytest

from repro.geo import GeoPoint
from repro.geodb import GeoRecord, LocationSource, Resolution


class TestResolution:
    def test_city_record(self):
        record = GeoRecord(country="US", city="Dallas", latitude=32.78, longitude=-96.8)
        assert record.resolution is Resolution.CITY
        assert record.has_city and record.has_country

    def test_country_record(self):
        record = GeoRecord(country="DE", latitude=51.0, longitude=9.0)
        assert record.resolution is Resolution.COUNTRY
        assert not record.has_city

    def test_empty_record(self):
        record = GeoRecord(country=None)
        assert record.resolution is Resolution.NONE
        assert not record.has_coordinates


class TestValidation:
    def test_city_without_country_rejected(self):
        with pytest.raises(ValueError):
            GeoRecord(country=None, city="Dallas")

    def test_half_coordinates_rejected(self):
        with pytest.raises(ValueError):
            GeoRecord(country="US", latitude=1.0)
        with pytest.raises(ValueError):
            GeoRecord(country="US", longitude=1.0)


class TestLocation:
    def test_location_geopoint(self):
        record = GeoRecord(country="US", latitude=10.0, longitude=20.0)
        assert record.location == GeoPoint(10.0, 20.0)

    def test_location_none_without_coordinates(self):
        assert GeoRecord(country="US").location is None

    def test_source_metadata_optional(self):
        record = GeoRecord(country="US", source=LocationSource.REGISTRY)
        assert record.source is LocationSource.REGISTRY
        assert GeoRecord(country="US").source is None
