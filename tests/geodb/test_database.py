"""Tests for the longest-prefix-match database engine."""

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.geodb import GeoDatabase, GeoRecord, Resolution, single_prefix


def record(city=None, country="US"):
    if city:
        return GeoRecord(country=country, city=city, latitude=1.0, longitude=2.0)
    return GeoRecord(country=country, latitude=1.0, longitude=2.0)


class TestLookup:
    def test_exact_block(self):
        db = GeoDatabase("t", [single_prefix("10.0.0.0/24", record(city="Dallas"))])
        assert db.lookup("10.0.0.55").city == "Dallas"

    def test_miss_returns_none(self):
        db = GeoDatabase("t", [single_prefix("10.0.0.0/24", record())])
        assert db.lookup("10.0.1.1") is None
        assert db.resolution_of("10.0.1.1") is Resolution.NONE

    def test_longest_prefix_wins(self):
        db = GeoDatabase(
            "t",
            [
                single_prefix("10.0.0.0/16", record(city="CoarseCity")),
                single_prefix("10.0.5.0/24", record(city="FineCity")),
                single_prefix("10.0.5.7/32", record(city="ExactCity")),
            ],
        )
        assert db.lookup("10.0.1.1").city == "CoarseCity"
        assert db.lookup("10.0.5.1").city == "FineCity"
        assert db.lookup("10.0.5.7").city == "ExactCity"

    def test_default_route_entry(self):
        db = GeoDatabase("t", [single_prefix("0.0.0.0/0", record())])
        assert db.lookup("203.0.113.9") is not None

    def test_duplicate_prefix_rejected(self):
        with pytest.raises(ValueError):
            GeoDatabase(
                "t",
                [
                    single_prefix("10.0.0.0/24", record(city="A")),
                    single_prefix("10.0.0.0/24", record(city="B")),
                ],
            )

    def test_lookup_accepts_string_int_and_address(self):
        db = GeoDatabase("t", [single_prefix("10.0.0.0/24", record())])
        addr = ipaddress.IPv4Address("10.0.0.1")
        assert db.lookup("10.0.0.1") == db.lookup(int(addr)) == db.lookup(addr)

    @pytest.mark.parametrize("bad", ["bogus", "::1", "1.2.3.4/8", -1, 2**32, 2**80])
    def test_lookup_rejects_non_ipv4_input_with_clear_error(self, bad):
        """Bad input surfaces as one catchable ValueError from every lookup
        entry point — not a raw ipaddress/OverflowError traceback."""
        db = GeoDatabase("t", [single_prefix("10.0.0.0/24", record())])
        for method in (db.lookup, db.lookup_entry, db.resolution_of):
            with pytest.raises(ValueError, match="not an IPv4 address"):
                method(bad)


class TestInspection:
    def test_entries_sorted(self):
        db = GeoDatabase(
            "t",
            [
                single_prefix("10.9.0.0/24", record()),
                single_prefix("10.0.0.0/24", record()),
            ],
        )
        starts = [int(e.prefix.network_address) for e in db.entries()]
        assert starts == sorted(starts)
        assert len(db) == 2

    def test_block_level_flag(self):
        assert single_prefix("10.0.0.0/24", record()).is_block_level
        assert single_prefix("10.0.0.0/16", record()).is_block_level
        assert not single_prefix("10.0.0.0/28", record()).is_block_level

    def test_city_names(self):
        db = GeoDatabase(
            "t",
            [
                single_prefix("10.0.0.0/24", record(city="Dallas")),
                single_prefix("10.0.1.0/24", record(city="Dallas")),
                single_prefix("10.0.2.0/24", record()),
            ],
        )
        assert db.city_names() == {("Dallas", "US")}


@given(
    st.lists(
        st.tuples(st.integers(0, 2**16 - 1), st.integers(20, 32)),
        min_size=1,
        max_size=30,
        unique_by=lambda t: ((t[0] << 16) >> (32 - t[1]), t[1]),
    ),
    st.integers(0, 2**32 - 1),
)
def test_lookup_matches_reference_implementation(prefix_specs, probe):
    """The per-length-table lookup must agree with a brute-force scan."""
    entries = []
    for base, length in prefix_specs:
        network = ipaddress.ip_network(((base << 16) >> (32 - length) << (32 - length), length))
        entries.append(single_prefix(network, record(city=f"c{base}-{length}")))
    # Dedup prefixes that collide after masking.
    unique = {}
    for entry in entries:
        unique[entry.prefix] = entry
    db = GeoDatabase("ref", unique.values())
    address = ipaddress.IPv4Address(probe)
    expected = None
    best_len = -1
    for entry in unique.values():
        if address in entry.prefix and entry.prefix.prefixlen > best_len:
            best_len = entry.prefix.prefixlen
            expected = entry.record
    assert db.lookup(address) == expected
