"""Streaming vs. materialized snapshot generation: proven identical.

The scale tier's whole compile path rests on one claim: streaming a
vendor's entries block by block produces *exactly* what materializing
the :class:`GeoDatabase` produces.  These tests pin that claim at test
scale against the same generator configuration ``build_scenario`` uses
(seed offset and the rDNS hint engine included), entry by entry and —
for the compiled snapshots — byte for byte on disk.
"""

from __future__ import annotations

import pytest

from repro.geodb.generator import SnapshotGenerator
from repro.geodb.vendors import (
    GENERATED_PROFILES,
    MAXMIND_GEOLITE_DERIVATION,
    MAXMIND_PAID,
)
from repro.serve.index import CompiledIndex
from repro.serve.snapshot import save_index


@pytest.fixture(scope="module")
def generator(small_scenario) -> SnapshotGenerator:
    config = small_scenario.config
    return SnapshotGenerator(
        small_scenario.internet,
        config.seed + config.database_seed_offset,
        rdns=small_scenario.rdns,
    )


class TestStreamEquivalence:
    @pytest.mark.parametrize("profile", GENERATED_PROFILES, ids=lambda p: p.name)
    def test_iter_entries_equals_materialized_database(
        self, small_scenario, generator, profile
    ):
        streamed = list(generator.iter_entries(profile))
        materialized = list(small_scenario.databases[profile.name].entries())
        assert streamed == materialized

    def test_iter_derived_equals_derive(self, small_scenario, generator):
        base = small_scenario.databases[MAXMIND_PAID.name]
        streamed = list(
            generator.iter_derived(iter(base.entries()), MAXMIND_GEOLITE_DERIVATION)
        )
        materialized = list(
            small_scenario.databases[MAXMIND_GEOLITE_DERIVATION.name].entries()
        )
        assert streamed == materialized

    @pytest.mark.parametrize("profile", GENERATED_PROFILES, ids=lambda p: p.name)
    def test_compile_entries_equals_compile(
        self, small_scenario, generator, profile
    ):
        materialized = CompiledIndex.compile(small_scenario.databases[profile.name])
        streamed = CompiledIndex.compile_entries(
            profile.name, generator.iter_entries(profile)
        )
        assert streamed.source_entries == materialized.source_entries
        assert streamed.parts() == materialized.parts()

    def test_compiled_snapshots_byte_identical(
        self, small_scenario, generator, tmp_path
    ):
        profile = GENERATED_PROFILES[0]
        materialized_path = tmp_path / "materialized.rgix"
        streamed_path = tmp_path / "streamed.rgix"
        save_index(
            CompiledIndex.compile(small_scenario.databases[profile.name]),
            materialized_path,
        )
        save_index(
            CompiledIndex.compile_entries(
                profile.name, generator.iter_entries(profile)
            ),
            streamed_path,
        )
        assert materialized_path.read_bytes() == streamed_path.read_bytes()

    def test_lookups_agree_across_paths(self, small_scenario, generator):
        profile = GENERATED_PROFILES[-1]
        database = small_scenario.databases[profile.name]
        index = CompiledIndex.compile_entries(
            profile.name, generator.iter_entries(profile)
        )
        for address in list(small_scenario.ark_dataset.addresses)[:200]:
            expected = database.probe(int(address))
            assert index.probe(int(address)) == (
                expected.record if expected is not None else None
            )


class TestStreamValidation:
    def test_out_of_order_stream_refused(self, small_scenario):
        entries = list(
            small_scenario.databases[GENERATED_PROFILES[0].name].entries()
        )
        shuffled = [entries[-1], *entries[:-1]]
        with pytest.raises(ValueError, match="out of order"):
            CompiledIndex.compile_entries("bad", shuffled)

    def test_empty_stream_compiles_to_uncovered_space(self):
        index = CompiledIndex.compile_entries("empty", [])
        assert index.source_entries == 0
        assert index.probe(0) is None
        assert index.probe((1 << 32) - 1) is None
