"""Vendor profile invariants.

The calibrated numbers in :mod:`repro.geodb.vendors` are free to drift
as the reproduction is re-tuned, but the *structure* the paper reports
must hold: who covers everything, who gates city answers on confidence,
who mines hostnames.  These tests pin that structure so a recalibration
cannot silently change a vendor's character.
"""

from repro.geo.rir import RIR
from repro.geodb.errormodel import PerRir
from repro.geodb.vendors import (
    GENERATED_PROFILES,
    IP2LOCATION_LITE,
    MAXMIND_GEOLITE_DERIVATION,
    MAXMIND_PAID,
    NETACUITY,
    PAPER_DATABASE_NAMES,
)


def per_rir_values(value):
    """All values a PerRir-or-float parameter can take."""
    if isinstance(value, PerRir):
        return [value.default, *value.overrides.values()]
    return [value]


class TestPaperSet:
    def test_four_distinct_paper_names(self):
        assert len(PAPER_DATABASE_NAMES) == 4
        assert len(set(PAPER_DATABASE_NAMES)) == 4

    def test_every_profile_is_a_paper_database(self):
        generated = {profile.name for profile in GENERATED_PROFILES}
        assert generated | {MAXMIND_GEOLITE_DERIVATION.name} == set(
            PAPER_DATABASE_NAMES
        )

    def test_vendor_keys_are_distinct(self):
        keys = [p.vendor_key for p in GENERATED_PROFILES] + [
            MAXMIND_GEOLITE_DERIVATION.vendor_key
        ]
        assert len(keys) == len(set(keys))


class TestProbabilityRanges:
    def test_all_rates_are_probabilities(self):
        for profile in GENERATED_PROFILES:
            rates = [
                *per_rir_values(profile.country_coverage),
                *per_rir_values(profile.registry_weight),
                *per_rir_values(profile.transit_registry_weight),
                *per_rir_values(profile.city_confidence),
                *per_rir_values(profile.registry_city_resolution),
                *per_rir_values(profile.dns_hint_weight),
                *per_rir_values(profile.wrong_city_rate),
                *per_rir_values(profile.wrong_country_rate),
                *per_rir_values(profile.split_rate),
            ]
            assert all(0.0 <= rate <= 1.0 for rate in rates), profile.name
            assert profile.coord_jitter_km >= 0.0

    def test_derivation_rates_are_probabilities(self):
        d = MAXMIND_GEOLITE_DERIVATION
        for rate in (d.keep_city_rate, d.identical_rate, d.nearby_rate,
                     d.country_flip_rate):
            assert 0.0 <= rate <= 1.0
        # Identical + nearby coordinates cannot exceed the whole table.
        assert d.identical_rate + d.nearby_rate <= 1.0

    def test_per_rir_overrides_resolve(self):
        weight = IP2LOCATION_LITE.registry_weight
        assert weight.get(RIR.ARIN) == weight.overrides[RIR.ARIN]
        assert weight.get(RIR.RIPENCC) == weight.default


class TestVendorCharacter:
    def test_ip2location_answers_city_everywhere(self):
        """§5.1: near-perfect coverage at both resolutions — no confidence
        gating at all."""
        assert IP2LOCATION_LITE.country_coverage == 1.0
        assert per_rir_values(IP2LOCATION_LITE.city_confidence) == [1.0]
        assert per_rir_values(IP2LOCATION_LITE.registry_city_resolution) == [1.0]

    def test_maxmind_paid_gates_city_answers_on_confidence(self):
        """§5.2.1–§5.2.2: country coverage near-perfect, city answers
        confidence-gated and weakest in RIPE NCC."""
        assert MAXMIND_PAID.country_coverage < 1.0
        confidence = MAXMIND_PAID.city_confidence
        assert confidence.default < 1.0
        assert confidence.get(RIR.RIPENCC) < confidence.default

    def test_netacuity_is_the_only_hostname_miner(self):
        """§5.2.4: NetAcuity alone profits from rDNS hints."""
        assert NETACUITY.dns_hint_weight > 0.0
        for profile in GENERATED_PROFILES:
            if profile.name != NETACUITY.name:
                assert per_rir_values(profile.dns_hint_weight) == [0.0]

    def test_arin_leans_hardest_on_registry_data(self):
        """§5.2.3: the registry mechanism is strongest in ARIN for every
        vendor — the case study's precondition."""
        for profile in GENERATED_PROFILES:
            transit = profile.transit_registry_weight
            assert transit.get(RIR.ARIN) >= transit.default, profile.name
            registry = profile.registry_weight
            assert registry.get(RIR.ARIN) >= registry.default, profile.name

    def test_geolite_names_fewer_cities_than_paid(self):
        """Figure 1 mechanism: the free edition keeps ~70% of city names
        and matches the paid feed's coordinates on ~68% of addresses."""
        assert MAXMIND_GEOLITE_DERIVATION.keep_city_rate < 1.0
        assert MAXMIND_GEOLITE_DERIVATION.identical_rate < 1.0
