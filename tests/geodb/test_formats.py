"""Tests for CSV interchange formats."""

import pytest

from repro.geodb import (
    FormatError,
    GeoDatabase,
    GeoRecord,
    export_geolite_csv,
    export_ip2location_csv,
    import_geolite_csv,
    import_ip2location_csv,
    round_trip_check,
    single_prefix,
)


@pytest.fixture()
def sample_db():
    return GeoDatabase(
        "sample",
        [
            single_prefix(
                "10.0.0.0/24",
                GeoRecord(
                    country="US", region="Texas", city="Dallas",
                    latitude=32.7767, longitude=-96.797,
                ),
            ),
            single_prefix("10.0.1.0/24", GeoRecord(country="DE", latitude=51.0, longitude=9.0)),
            single_prefix("10.0.2.0/25", GeoRecord(country=None)),
        ],
    )


class TestGeoLiteFormat:
    def test_round_trip(self, sample_db):
        text = export_geolite_csv(sample_db)
        copy = import_geolite_csv("copy", text)
        assert len(copy) == len(sample_db)
        assert copy.lookup("10.0.0.1").city == "Dallas"
        assert copy.lookup("10.0.1.1").city is None
        assert copy.lookup("10.0.1.1").country == "DE"

    def test_header_written(self, sample_db):
        first_line = export_geolite_csv(sample_db).splitlines()[0]
        assert first_line.startswith("network,country_iso_code")

    def test_empty_fields_become_none(self, sample_db):
        copy = import_geolite_csv("copy", export_geolite_csv(sample_db))
        record = copy.lookup("10.0.2.1")
        assert record.country is None
        assert record.latitude is None

    def test_bad_header_rejected(self):
        with pytest.raises(FormatError):
            import_geolite_csv("x", "a,b,c\n")

    def test_empty_text_rejected(self):
        with pytest.raises(FormatError):
            import_geolite_csv("x", "")

    def test_bad_row_rejected(self):
        text = export_geolite_csv(
            GeoDatabase("t", [single_prefix("10.0.0.0/24", GeoRecord(country="US"))])
        )
        with pytest.raises(FormatError):
            import_geolite_csv("x", text + "garbage-network,US,,,,\n")

    def test_short_row_rejected(self):
        header = "network,country_iso_code,subdivision_1_name,city_name,latitude,longitude"
        with pytest.raises(FormatError):
            import_geolite_csv("x", header + "\n10.0.0.0/24,US\n")

    def test_round_trip_check_helper(self, sample_db):
        probes = ["10.0.0.1", "10.0.1.1", "10.0.2.1", "192.0.2.1"]
        assert round_trip_check(sample_db, probes)


class TestIp2LocationFormat:
    def test_round_trip_lookups(self, sample_db):
        text = export_ip2location_csv(sample_db)
        copy = import_ip2location_csv("copy", text)
        for probe in ("10.0.0.9", "10.0.1.9", "10.0.2.9"):
            original = sample_db.lookup(probe)
            reimported = copy.lookup(probe)
            assert (original.country, original.city) == (reimported.country, reimported.city)

    def test_ranges_are_inclusive_integers(self, sample_db):
        first_row = export_ip2location_csv(sample_db).splitlines()[0]
        start, end = first_row.split(",")[:2]
        assert int(end.strip('"')) - int(start.strip('"')) == 255

    def test_non_cidr_range_splits_into_prefixes(self):
        # 10.0.0.0 .. 10.0.2.255 is not one CIDR block (3 × /24).
        text = '"167772160","167772927","US","Texas","Dallas","32.7767","-96.7970"\n'
        db = import_ip2location_csv("x", text)
        assert len(db) == 2  # /23 + /24
        assert db.lookup("10.0.2.200").city == "Dallas"

    def test_bad_field_count(self):
        with pytest.raises(FormatError):
            import_ip2location_csv("x", '"1","2","US"\n')

    def test_bad_integers(self):
        with pytest.raises(FormatError):
            import_ip2location_csv("x", '"a","b","US","","","",""\n')

    def test_blank_lines_ignored(self, sample_db):
        text = "\n" + export_ip2location_csv(sample_db) + "\n\n"
        assert len(import_ip2location_csv("x", text)) == len(sample_db)
