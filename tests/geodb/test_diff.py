"""Tests for snapshot diffing and temporal refresh."""

import pytest

from repro.geo import Gazetteer
from repro.geodb import (
    GeoDatabase,
    GeoRecord,
    diff_snapshots,
    refresh_snapshot,
    single_prefix,
)


def city_record(city="Dallas", country="US", lat=32.78, lon=-96.8, region="Texas"):
    return GeoRecord(country=country, region=region, city=city, latitude=lat, longitude=lon)


@pytest.fixture()
def base_db():
    return GeoDatabase(
        "v1",
        [
            single_prefix("10.0.0.0/24", city_record()),
            single_prefix("10.0.1.0/24", city_record("Amsterdam", "NL", 52.37, 4.9, "North Holland")),
            single_prefix("10.0.2.0/24", GeoRecord(country="DE", latitude=51.0, longitude=9.0)),
        ],
    )


class TestDiff:
    def test_identical_snapshots(self, base_db):
        diff = diff_snapshots(base_db, base_db)
        assert diff.unchanged == len(base_db)
        assert diff.moved == 0 and diff.added == 0 and diff.removed == 0
        assert diff.moved_rate == 0.0

    def test_nudge_vs_move(self, base_db):
        changed = GeoDatabase(
            "v2",
            [
                # nudged (a few km)
                single_prefix("10.0.0.0/24", city_record(lat=32.80, lon=-96.82)),
                # moved (different city, >40 km)
                single_prefix("10.0.1.0/24", city_record("Rotterdam", "NL", 51.92, 4.48, "South Holland")),
                single_prefix("10.0.2.0/24", GeoRecord(country="DE", latitude=51.0, longitude=9.0)),
            ],
        )
        diff = diff_snapshots(base_db, changed)
        assert diff.nudged == 1
        assert diff.moved == 1
        assert diff.unchanged == 1

    def test_resolution_change(self, base_db):
        changed = GeoDatabase(
            "v2",
            [
                single_prefix("10.0.0.0/24", GeoRecord(country="US", latitude=38.0, longitude=-97.0)),
                single_prefix("10.0.1.0/24", city_record("Amsterdam", "NL", 52.37, 4.9, "North Holland")),
                single_prefix("10.0.2.0/24", GeoRecord(country="DE", latitude=51.0, longitude=9.0)),
            ],
        )
        diff = diff_snapshots(base_db, changed)
        assert diff.resolution_changed == 1

    def test_added_removed(self, base_db):
        changed = GeoDatabase(
            "v2",
            [
                single_prefix("10.0.0.0/24", city_record()),
                single_prefix("10.9.0.0/24", city_record()),
            ],
        )
        diff = diff_snapshots(base_db, changed)
        assert diff.added == 1
        assert diff.removed == 2

    def test_render(self, base_db):
        assert "unchanged" in diff_snapshots(base_db, base_db).render()


class TestDiffTableShapes:
    """Diff semantics across the three table relationships: identical,
    fully disjoint, and partially overlapping prefix sets."""

    def test_disjoint_tables_share_nothing(self, base_db):
        other = GeoDatabase(
            "v2",
            [
                single_prefix("172.16.0.0/24", city_record()),
                single_prefix("172.16.1.0/24", city_record()),
            ],
        )
        diff = diff_snapshots(base_db, other)
        assert diff.total_common == 0
        assert diff.added == 2
        assert diff.removed == 3
        assert diff.moved_rate == 0.0  # no common prefixes, not a division error

    def test_overlapping_tables_classify_both_sides(self, base_db):
        overlapping = GeoDatabase(
            "v2",
            [
                # shared prefix, identical record
                single_prefix("10.0.0.0/24", city_record()),
                # shared prefix, relocated far away (> city range)
                single_prefix(
                    "10.0.1.0/24",
                    city_record("Paris", "FR", 48.85, 2.35, "Île-de-France"),
                ),
                # only in the newer table
                single_prefix("172.16.0.0/24", city_record()),
            ],
        )
        diff = diff_snapshots(base_db, overlapping)
        assert diff.unchanged == 1
        assert diff.moved == 1
        assert diff.total_common == 2
        assert diff.added == 1
        assert diff.removed == 1  # 10.0.2.0/24 vanished
        assert diff.moved_rate == 0.5

    def test_nested_prefixes_are_distinct_rows(self):
        """A /24 and a /25 inside it are different prefixes: splitting a
        block reads as one removal plus two additions, not a change."""
        coarse = GeoDatabase("v1", [single_prefix("10.0.0.0/24", city_record())])
        split = GeoDatabase(
            "v2",
            [
                single_prefix("10.0.0.0/25", city_record()),
                single_prefix("10.0.0.128/25", city_record()),
            ],
        )
        diff = diff_snapshots(coarse, split)
        assert diff.total_common == 0
        assert diff.added == 2
        assert diff.removed == 1

    def test_diff_is_directional(self, base_db):
        bigger = GeoDatabase(
            "v2",
            list(base_db.entries()) + [single_prefix("172.16.0.0/24", city_record())],
        )
        forward = diff_snapshots(base_db, bigger)
        backward = diff_snapshots(bigger, base_db)
        assert (forward.added, forward.removed) == (1, 0)
        assert (backward.added, backward.removed) == (0, 1)


class TestRefresh:
    def test_zero_months_is_identity(self, base_db):
        later = refresh_snapshot(base_db, Gazetteer.default(), months=0, seed=1)
        assert diff_snapshots(base_db, later).unchanged == len(base_db)

    def test_negative_months_rejected(self, base_db):
        with pytest.raises(ValueError):
            refresh_snapshot(base_db, Gazetteer.default(), months=-1, seed=1)

    def test_bad_rate_rejected(self, base_db):
        with pytest.raises(ValueError):
            refresh_snapshot(
                base_db, Gazetteer.default(), months=1, seed=1,
                monthly_remeasure_rate=1.5,
            )

    def test_deterministic(self, base_db):
        gazetteer = Gazetteer.default()
        a = refresh_snapshot(base_db, gazetteer, months=12, seed=7)
        b = refresh_snapshot(base_db, gazetteer, months=12, seed=7)
        assert [e.record for e in a] == [e.record for e in b]

    def test_fifty_days_barely_moves(self, small_scenario):
        """The paper's §5.2 claim: ~50 days between snapshot epochs moves
        too little to affect conclusions."""
        base = small_scenario.databases["NetAcuity"]
        later = refresh_snapshot(
            base, small_scenario.internet.gazetteer, months=50 / 30, seed=3
        )
        diff = diff_snapshots(base, later)
        assert diff.moved_rate < 0.02

    def test_long_interval_moves_more(self, small_scenario):
        base = small_scenario.databases["NetAcuity"]
        gazetteer = small_scenario.internet.gazetteer
        short = diff_snapshots(
            base, refresh_snapshot(base, gazetteer, months=1.6, seed=3)
        )
        long = diff_snapshots(
            base, refresh_snapshot(base, gazetteer, months=16, seed=3)
        )
        assert long.moved >= short.moved
        assert long.moved > 0

    def test_country_level_records_untouched(self, base_db):
        later = refresh_snapshot(base_db, Gazetteer.default(), months=120, seed=5)
        record = later.lookup("10.0.2.1")
        assert record.city is None and record.country == "DE"
