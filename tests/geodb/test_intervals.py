"""The interval sweep: partition invariants and engine equivalence.

:func:`~repro.geodb.intervals.sweep_entry_intervals` replaces probing
the hash-table engine at every prefix boundary with one stack-based pass
over the sorted entry list.  The bar is exactness: the partition must
answer every address the way :meth:`GeoDatabase.lookup` does, including
at the edges where prefixes nest, abut, and close.
"""

from repro.geodb import GeoDatabase, GeoRecord, single_prefix
from repro.geodb.intervals import ADDRESS_SPACE_END, sweep_entry_intervals


def build(name, prefixes):
    return GeoDatabase(
        name,
        [
            single_prefix(prefix, GeoRecord(country=country))
            for prefix, country in prefixes
        ],
    )


def boundary_probes(starts):
    """Start, midpoint, and last address of every interval."""
    for i, start in enumerate(starts):
        end = starts[i + 1] if i + 1 < len(starts) else ADDRESS_SPACE_END
        yield start
        yield start + (end - start) // 2
        yield end - 1


def assert_partition_matches_engine(database):
    starts, entries = sweep_entry_intervals(database)
    assert starts[0] == 0
    assert all(a < b for a, b in zip(starts, starts[1:]))
    assert all(a is not b for a, b in zip(entries, entries[1:]))  # merged
    assert len(starts) == len(entries)
    for i, start in enumerate(starts):
        end = starts[i + 1] if i + 1 < len(starts) else ADDRESS_SPACE_END
        entry = entries[i]
        expected = entry.record if entry is not None else None
        for probe in (start, start + (end - start) // 2, end - 1):
            assert database.lookup(probe) == expected, hex(probe)
    return starts, entries


class TestToyShapes:
    def test_disjoint_prefixes_interleave_with_misses(self):
        database = build("d", [("10.0.0.0/8", "US"), ("192.0.2.0/24", "DE")])
        starts, entries = assert_partition_matches_engine(database)
        answers = [e.record.country if e else None for e in entries]
        assert answers == [None, "US", None, "DE", None]

    def test_nested_prefix_pierces_its_parent(self):
        database = build("d", [("10.0.0.0/8", "US"), ("10.1.0.0/16", "CA")])
        _, entries = assert_partition_matches_engine(database)
        answers = [e.record.country if e else None for e in entries]
        assert answers == [None, "US", "CA", "US", None]

    def test_child_starting_at_parent_start_overwrites_the_point(self):
        database = build("d", [("10.0.0.0/8", "US"), ("10.0.0.0/16", "CA")])
        _, entries = assert_partition_matches_engine(database)
        answers = [e.record.country if e else None for e in entries]
        assert answers == [None, "CA", "US", None]

    def test_child_ending_at_parent_end_merges_the_close(self):
        database = build("d", [("10.0.0.0/8", "US"), ("10.255.0.0/16", "CA")])
        _, entries = assert_partition_matches_engine(database)
        answers = [e.record.country if e else None for e in entries]
        assert answers == [None, "US", "CA", None]

    def test_deep_nesting_reopens_each_enclosing_level(self):
        database = build(
            "d",
            [
                ("10.0.0.0/8", "US"),
                ("10.128.0.0/9", "CA"),
                ("10.128.0.0/16", "DE"),
                ("10.128.64.0/24", "FR"),
            ],
        )
        _, entries = assert_partition_matches_engine(database)
        answers = [e.record.country if e else None for e in entries]
        assert answers == [None, "US", "DE", "FR", "DE", "CA", None]

    def test_prefix_reaching_the_end_of_the_address_space(self):
        database = build("d", [("255.255.255.0/24", "US")])
        starts, entries = assert_partition_matches_engine(database)
        assert entries[-1] is not None  # no trailing miss row
        assert starts[-1] + 256 == ADDRESS_SPACE_END

    def test_abutting_prefixes_stay_separate_intervals(self):
        database = build("d", [("10.0.0.0/24", "US"), ("10.0.1.0/24", "CA")])
        _, entries = assert_partition_matches_engine(database)
        answers = [e.record.country if e else None for e in entries]
        assert answers == [None, "US", "CA", None]

    def test_empty_database_is_one_miss_interval(self):
        starts, entries = sweep_entry_intervals(GeoDatabase("empty", []))
        assert starts == [0]
        assert entries == [None]


class TestVendorEquivalence:
    def test_every_vendor_partition_matches_the_engine(self, small_scenario):
        for database in small_scenario.databases.values():
            assert_partition_matches_engine(database)

    def test_partition_answers_match_on_the_demanding_pool(
        self, small_scenario, probe_addresses
    ):
        from bisect import bisect_right

        for database in small_scenario.databases.values():
            starts, entries = sweep_entry_intervals(database)
            shifted = [None, *entries]
            for address in probe_addresses:
                entry = shifted[bisect_right(starts, address)]
                expected = entry.record if entry is not None else None
                assert database.lookup(address) == expected
