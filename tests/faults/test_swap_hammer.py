"""Concurrent swap hammer: no torn answers under generation churn.

Reader threads stream lookups while the main thread swaps the engine
between two generations (one swap marked as a rollback).  The atomicity
claim under test: every response is internally consistent — the full
per-vendor answer dict matches exactly one generation's precomputed
truth, never a mix — and the lookup/swap counters balance afterwards.
"""

import random
import threading
import time

import pytest

from repro.geodb import refresh_snapshot
from repro.obs import MetricsRegistry
from repro.serve import CompiledIndex, ServingEngine, compile_plane

from tests.faults.conftest import CHAOS_SEED

READERS = 4
SWAPS = 24  # generation flips driven while the readers stream


@pytest.fixture(scope="module")
def aged_indexes(small_scenario):
    """A second generation: every vendor aged two simulated years."""
    return {
        name: CompiledIndex.compile(
            refresh_snapshot(
                database,
                small_scenario.internet.gazetteer,
                months=24.0,
                seed=CHAOS_SEED,
            )
        )
        for name, database in small_scenario.databases.items()
    }


def truth_table(indexes, addresses):
    """Per-address flat answers straight from the indexes — what every
    response served from that generation must equal, in full."""
    names = sorted(indexes)
    return {
        addr: {name: indexes[name].probe_answer(addr) for name in names}
        for addr in addresses
    }


def covered_sample(addresses, *truths):
    """Addresses some vendor answers in every generation — the engine
    fail-closes (raises) on fully-uncovered addresses, which is not the
    invariant under test here."""
    return [
        addr
        for addr in addresses
        if all(
            any(answer is not None for answer in truth[addr].values())
            for truth in truths
        )
    ]


def run_hammer(engine, sample, truths, *, swap):
    stop = threading.Event()
    torn = []
    crashes = []
    reads = [0] * READERS
    started = threading.Barrier(READERS + 1)

    def reader(slot):
        rng = random.Random(CHAOS_SEED + slot)
        started.wait()
        count = 0
        try:
            while not stop.is_set():
                addr = sample[rng.randrange(len(sample))]
                answers = dict(engine.lookup(addr))
                count += 1
                if not any(answers == truth[addr] for truth in truths):
                    torn.append((addr, answers))
                    stop.set()
                    break
        except BaseException as exc:  # surfaced in the main thread
            crashes.append(exc)
            stop.set()
        finally:
            reads[slot] = count

    threads = [
        threading.Thread(target=reader, args=(slot,), daemon=True)
        for slot in range(READERS)
    ]
    for thread in threads:
        thread.start()
    started.wait()
    for flip in range(SWAPS):
        swap(flip)
        time.sleep(0.002)  # yield the GIL so readers land mid-flip lookups
    stop.set()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not any(thread.is_alive() for thread in threads)
    assert crashes == [], f"reader crashed: {crashes[0]!r}"
    return torn, sum(reads)


@pytest.fixture(scope="module")
def hammer_pool(small_scenario, chaos_addresses):
    """Ark interface addresses (dense coverage) plus the chaos slice."""
    pool = {int(a) for a in small_scenario.ark_dataset.addresses}
    pool.update(chaos_addresses)
    return sorted(pool)


def test_no_torn_answers_across_generation_flips(
    compiled_indexes, answer_plane, aged_indexes, hammer_pool
):
    truth_a = truth_table(compiled_indexes, hammer_pool)
    truth_b = truth_table(aged_indexes, hammer_pool)
    sample = covered_sample(hammer_pool, truth_a, truth_b)[:200]
    assert len(sample) > 50
    aged_plane = compile_plane(aged_indexes)
    metrics = MetricsRegistry()
    engine = ServingEngine(
        compiled_indexes,
        plane=answer_plane,
        metrics=metrics,
        cache_size=256,
        generation_id=1,
        generation_source="store",
    )

    generations = [
        (compiled_indexes, answer_plane),
        (aged_indexes, aged_plane),
    ]

    def swap(flip):
        indexes, plane = generations[(flip + 1) % 2]
        # The final flip lands back on generation 1, marked the way the
        # watcher marks a CURRENT pointer that moved backwards.
        rollback = flip == SWAPS - 1
        engine.swap(
            indexes,
            plane,
            generation_id=1 if rollback else flip + 2,
            source="hammer",
            rollback=rollback,
        )

    torn, total_reads = run_hammer(
        engine, sample, (truth_a, truth_b), swap=swap
    )
    assert torn == [], f"mixed-generation answers: {torn[:3]}"
    assert total_reads > 0

    # Counters balance: every read and every flip is accounted for.
    info = engine.generation_info()
    assert (info["swaps"], info["rollbacks"]) == (SWAPS, 1)
    assert info["id"] == 1  # the last flip rolled back to generation 1
    assert metrics.counter("serve.lookups") == total_reads
    assert metrics.counter("serve.generation_swaps") == SWAPS
    assert metrics.counter("serve.generation_rollbacks") == 1
    engine.close()


def test_hammer_without_plane_exercises_cache_path(
    compiled_indexes, aged_indexes, hammer_pool
):
    """Same invariant on the cache+probe path (no plane attached): a
    cached outcome from one generation must never answer for another."""
    truth_a = truth_table(compiled_indexes, hammer_pool)
    truth_b = truth_table(aged_indexes, hammer_pool)
    sample = covered_sample(hammer_pool, truth_a, truth_b)[:150]
    assert len(sample) > 50
    metrics = MetricsRegistry()
    engine = ServingEngine(
        compiled_indexes, metrics=metrics, cache_size=64, generation_id=1
    )

    generations = [compiled_indexes, aged_indexes]

    def swap(flip):
        engine.swap(
            generations[(flip + 1) % 2], generation_id=flip + 2, source="hammer"
        )

    torn, total_reads = run_hammer(
        engine, sample, (truth_a, truth_b), swap=swap
    )
    assert torn == [], f"mixed-generation answers: {torn[:3]}"
    assert metrics.counter("serve.lookups") == total_reads
    hits = metrics.counter("serve.cache_hits")
    misses = metrics.counter("serve.cache_misses")
    assert hits + misses == total_reads
    engine.close()
