"""The chaos sweep: every fault-matrix cell, one invariant.

The serving layer's contract under faults is *fail closed*: for any
injected fault, every response is a correct answer, a flagged degraded
answer, or a typed error — never an unflagged wrong answer.  Each test
here drives one region of the matrix (runtime faults per vendor and
rate, total outage, quarantine lifecycle, deadline budget, load-time
snapshot faults) and asserts that invariant against the pristine
indexes.  Everything derives from ``CHAOS_SEED``; time is a fake clock,
so the sweep is deterministic and sleeps cost nothing.
"""

import pytest

from repro.faults import (
    RUNTIME_KINDS,
    FaultInjector,
    FaultKind,
    FaultSpec,
    default_chaos_specs,
    full_matrix,
)
from repro.obs import MetricsRegistry
from repro.serve import (
    NoHealthyVendors,
    ResiliencePolicy,
    ServingEngine,
    SnapshotError,
    load_index,
    load_index_set,
    save_index_set,
)

from tests.faults.conftest import CHAOS_SEED


class FakeClock:
    """Deterministic monotonic time: ``sleep`` advances instead of waiting."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def sleep(self, seconds: float) -> None:
        self.t += seconds

    def advance(self, seconds: float) -> None:
        self.t += seconds


def build_engine(indexes, specs, *, policy=None, metrics=None, cache_size=None):
    """One chaos cell: a seeded injector wrapping a fresh engine."""
    clock = FakeClock()
    injector = FaultInjector(CHAOS_SEED, specs, metrics=metrics, sleep=clock.sleep)
    engine = ServingEngine(
        indexes,
        cache_size=cache_size,
        metrics=metrics,
        policy=policy,
        injector=injector,
        clock=clock,
        sleep=clock.sleep,
    )
    return engine, injector, clock


def assert_fail_closed(engine, pristine, addresses):
    """The invariant, checked per address; returns a replayable summary.

    Every vendor either answers exactly what its pristine index answers,
    or is named in ``unavailable()`` on a ``degraded`` outcome — and a
    lookup that cannot be answered at all raises the typed error.
    """
    summary = []
    for addr in addresses:
        try:
            outcome = engine.lookup_outcome(addr)
        except NoHealthyVendors:
            summary.append("typed-error")
            continue
        unavailable = set(outcome.unavailable())
        for name, answer in outcome.answers.items():
            assert answer == pristine[name].probe_answer(addr), (
                f"vendor {name} returned a wrong answer for {addr}"
            )
        for name in engine.vendor_names():
            if name not in outcome.answers:
                assert name in unavailable, (
                    f"vendor {name} vanished from {addr} without being flagged"
                )
                assert outcome.degraded
        summary.append((outcome.degraded, tuple(sorted(unavailable))))
    return summary


class TestRuntimeCells:
    """Runtime kinds × vendors × rates: the per-cell sweep."""

    @pytest.mark.parametrize("kind", RUNTIME_KINDS, ids=lambda kind: kind.value)
    @pytest.mark.parametrize("rate", [1.0, 0.35])
    def test_cell_never_returns_a_wrong_answer(
        self, kind, rate, compiled_indexes, chaos_addresses
    ):
        for victim in compiled_indexes:
            engine, injector, _ = build_engine(
                compiled_indexes,
                [FaultSpec(kind, vendor=victim, rate=rate, delay_s=0.001)],
                cache_size=64 if kind is FaultKind.CACHE_EVICT else None,
            )
            summary = assert_fail_closed(engine, compiled_indexes, chaos_addresses)
            assert len(summary) == len(chaos_addresses)
            if rate == 1.0 and kind is FaultKind.LOOKUP_RAISE:
                assert injector.fired > 0
                # A single always-failing vendor degrades, never outages.
                assert "typed-error" not in summary
                assert all(degraded for degraded, _ in summary)

    def test_cache_evict_storm_costs_hit_rate_not_correctness(
        self, compiled_indexes, chaos_addresses
    ):
        engine, _, _ = build_engine(
            compiled_indexes,
            [FaultSpec(FaultKind.CACHE_EVICT, rate=1.0)],
            cache_size=1024,
        )
        # Same addresses twice: a healthy cache would serve round two from
        # memory; under a full storm every get misses — but answers stay
        # exactly the pristine ones.
        assert_fail_closed(engine, compiled_indexes, chaos_addresses)
        assert_fail_closed(engine, compiled_indexes, chaos_addresses)
        stats = engine.cache_stats()
        assert stats["storms"] > 0
        assert stats["hits"] == 0

    def test_delay_faults_change_nothing_without_a_deadline(
        self, compiled_indexes, chaos_addresses
    ):
        engine, _, clock = build_engine(
            compiled_indexes,
            [FaultSpec(FaultKind.LOOKUP_DELAY, rate=1.0, delay_s=0.01)],
        )
        summary = assert_fail_closed(engine, compiled_indexes, chaos_addresses)
        assert all(entry == (False, ()) for entry in summary)
        assert clock.t > 0  # the stalls really happened


class TestTotalOutage:
    def test_every_vendor_dead_is_a_typed_error(
        self, compiled_indexes, chaos_addresses
    ):
        metrics = MetricsRegistry()
        engine, _, _ = build_engine(
            compiled_indexes,
            [FaultSpec(FaultKind.LOOKUP_RAISE)],  # vendor=None: everyone
            metrics=metrics,
        )
        for addr in chaos_addresses[:20]:
            with pytest.raises(NoHealthyVendors, match="no healthy vendor"):
                engine.lookup_outcome(addr)
        assert engine.degraded
        assert metrics.counter_total("serve.vendor_errors") > 0
        assert metrics.counter_total("serve.quarantines") == len(compiled_indexes)

    def test_consensus_of_degraded_outcome_is_flagged(
        self, compiled_indexes, chaos_addresses
    ):
        victim = sorted(compiled_indexes)[0]
        engine, _, _ = build_engine(
            compiled_indexes, [FaultSpec(FaultKind.LOOKUP_RAISE, vendor=victim)]
        )
        for addr in chaos_addresses:
            try:
                outcome = engine.lookup_outcome(addr)
            except NoHealthyVendors:
                continue
            consensus = engine.consensus_of(outcome)
            assert consensus.degraded == outcome.degraded
            assert consensus.quorum == (consensus.voters >= 2)


class TestQuarantineLifecycle:
    def test_threshold_cooldown_halfopen_and_recovery(
        self, compiled_indexes, chaos_addresses
    ):
        victim = sorted(compiled_indexes)[0]
        metrics = MetricsRegistry()
        policy = ResiliencePolicy(
            retries=0, quarantine_threshold=3, cooldown_s=0.5, cooldown_max_s=30.0
        )
        engine, injector, clock = build_engine(
            compiled_indexes,
            [FaultSpec(FaultKind.LOOKUP_RAISE, vendor=victim)],
            policy=policy,
            metrics=metrics,
        )
        addr = chaos_addresses[0]

        # Three consecutive failures trip the breaker.
        for _ in range(3):
            outcome = engine.lookup_outcome(addr)
            assert victim in outcome.errors
        health = engine.health_snapshot()[victim]
        assert health["state"] == "quarantined"
        assert metrics.counter("serve.quarantines", vendor=victim) == 1

        # While quarantined the vendor is skipped, not probed.
        fired_before = injector.fired
        outcome = engine.lookup_outcome(addr)
        assert victim in outcome.quarantined and victim not in outcome.errors
        assert injector.fired == fired_before

        # Past the cooldown one half-open probe runs; it fails, so the
        # quarantine re-arms with a doubled cooldown.
        clock.advance(0.6)
        outcome = engine.lookup_outcome(addr)
        assert victim in outcome.errors
        health = engine.health_snapshot()[victim]
        assert health["quarantines"] == 2
        assert health["cooldown_s"] == 2.0  # 0.5 -> 1.0 (armed) -> 2.0 (re-armed)

        # Fault cleared + cooldown elapsed: the half-open probe heals it.
        injector.disarm()
        clock.advance(1.5)
        outcome = engine.lookup_outcome(addr)
        assert not outcome.degraded
        assert outcome.answers[victim] == compiled_indexes[victim].probe_answer(addr)
        assert engine.health_snapshot()[victim]["state"] == "healthy"
        assert not engine.degraded
        assert metrics.counter("serve.vendor_recoveries", vendor=victim) == 1


class TestDeadlineBudget:
    def test_budget_exhaustion_skips_vendors_and_is_flagged(
        self, compiled_indexes, chaos_addresses
    ):
        metrics = MetricsRegistry()
        engine, _, _ = build_engine(
            compiled_indexes,
            [FaultSpec(FaultKind.LOOKUP_DELAY, rate=1.0, delay_s=0.2)],
            policy=ResiliencePolicy(deadline_ms=300.0),
            metrics=metrics,
        )
        addr = chaos_addresses[0]
        outcome = engine.lookup_outcome(addr)
        # 0.2 s per vendor against a 0.3 s budget: two vendors answer
        # (the check happens before each probe), the rest are skipped.
        assert outcome.deadline_exceeded and outcome.degraded
        assert len(outcome.answers) == 2 and len(outcome.skipped) == 2
        for name, answer in outcome.answers.items():
            assert answer == compiled_indexes[name].probe_answer(addr)
        assert metrics.counter("serve.deadline_exceeded") == 1
        # Deadline skips are a budget decision, not vendor failures.
        assert all(
            health["state"] == "healthy"
            for health in engine.health_snapshot().values()
        )


class TestSnapshotCells:
    """Load-time faults: corrupt bytes refuse to boot, absence degrades."""

    @pytest.mark.parametrize(
        "kind",
        [
            FaultKind.SNAPSHOT_BITFLIP,
            FaultKind.SNAPSHOT_TRUNCATE,
            FaultKind.SNAPSHOT_MAGIC,
        ],
        ids=lambda kind: kind.value,
    )
    def test_corrupt_snapshot_raises_typed_error(
        self, kind, compiled_indexes, tmp_path
    ):
        victim = sorted(compiled_indexes)[1]
        root = save_index_set(compiled_indexes, tmp_path / kind.value)
        injector = FaultInjector(CHAOS_SEED, [FaultSpec(kind, vendor=victim)])
        applied = injector.sabotage_snapshots(root)
        assert len(applied) == 1 and victim in applied[0]
        with pytest.raises(SnapshotError):
            load_index(root / f"{victim}.rgix", expect_name=victim)
        # The set loader refuses the whole directory rather than serving
        # a silently smaller vendor set.
        with pytest.raises(SnapshotError):
            load_index_set(root)

    def test_missing_vendor_serves_degraded_not_silent(
        self, compiled_indexes, chaos_addresses, tmp_path
    ):
        victim = sorted(compiled_indexes)[2]
        root = save_index_set(compiled_indexes, tmp_path / "missing")
        injector = FaultInjector(
            CHAOS_SEED, [FaultSpec(FaultKind.INDEX_MISSING, vendor=victim)]
        )
        injector.sabotage_snapshots(root)
        engine = ServingEngine.from_snapshot_dir(
            root, expected=sorted(compiled_indexes), cache_size=None
        )
        assert engine.degraded
        assert victim in engine.vendor_names()
        assert engine.health_snapshot()[victim]["state"] == "missing"
        for addr in chaos_addresses[:100]:
            try:
                outcome = engine.lookup_outcome(addr)
            except NoHealthyVendors:
                continue
            assert outcome.degraded and victim in outcome.quarantined
            for name, answer in outcome.answers.items():
                assert answer == compiled_indexes[name].probe_answer(addr)


class TestPlaneInterplay:
    """The precomputed answer plane must never mask a fault.

    The plane encodes only the all-healthy answer, so the engine keeps
    it inert whenever an injector is armed and bypasses it whenever any
    vendor carries a failure streak — every chaos cell above therefore
    still runs the live fail-closed path, and these tests pin that.
    """

    def test_armed_injector_keeps_the_plane_inert(
        self, compiled_indexes, answer_plane, chaos_addresses
    ):
        specs = default_chaos_specs(sorted(compiled_indexes))

        def sweep(plane):
            metrics = MetricsRegistry()
            clock = FakeClock()
            injector = FaultInjector(
                CHAOS_SEED, specs, metrics=metrics, sleep=clock.sleep
            )
            engine = ServingEngine(
                compiled_indexes,
                cache_size=None,
                metrics=metrics,
                injector=injector,
                plane=plane,
                clock=clock,
                sleep=clock.sleep,
            )
            summary = assert_fail_closed(engine, compiled_indexes, chaos_addresses)
            return engine, metrics, summary

        engine, metrics, with_plane = sweep(answer_plane)
        assert engine.plane_stats()["active"] is False
        assert metrics.counter("plane.hits") == 0
        # Same seed, no plane: the degradation pattern is identical, so
        # the plane changed nothing about chaos behaviour.
        _, _, without_plane = sweep(None)
        assert with_plane == without_plane

    def test_quarantine_bypasses_plane_until_recovery(
        self, compiled_indexes, answer_plane, chaos_addresses
    ):
        """No injector: a recorded failure streak alone must route around
        the plane, and the half-open recovery must route back."""
        metrics = MetricsRegistry()
        clock = FakeClock()
        engine = ServingEngine(
            compiled_indexes,
            cache_size=None,
            metrics=metrics,
            plane=answer_plane,
            policy=ResiliencePolicy(retries=0, quarantine_threshold=1, cooldown_s=5.0),
            clock=clock,
            sleep=clock.sleep,
        )
        addr = chaos_addresses[0]
        healthy = engine.lookup_outcome(addr)
        assert metrics.counter("plane.hits") == 1

        victim = sorted(compiled_indexes)[0]
        engine._record_failure(victim, RuntimeError("boom"))
        assert engine.health_snapshot()[victim]["state"] == "quarantined"
        assert engine.plane_stats()["active"] is False
        outcome = engine.lookup_outcome(addr)
        assert outcome.degraded and victim in outcome.quarantined
        assert metrics.counter("plane.fallbacks") == 1

        # Past the cooldown the half-open probe hits the (healthy) real
        # index, the streak clears, and the plane serves again.
        clock.advance(6.0)
        recovered = engine.lookup_outcome(addr)
        assert not recovered.degraded
        assert recovered == healthy
        assert engine.plane_stats()["active"] is True
        engine.lookup_outcome(addr)
        assert metrics.counter("plane.hits") == 2


class TestDeterminism:
    def test_full_matrix_covers_every_cell(self, compiled_indexes):
        vendors = sorted(compiled_indexes)
        cells = full_matrix(vendors)
        assert len(cells) == len(FaultKind) * len(vendors)
        assert {(spec.kind, spec.vendor) for spec in cells} == {
            (kind, vendor) for kind in FaultKind for vendor in vendors
        }

    def test_same_seed_replays_the_same_chaos(
        self, compiled_indexes, chaos_addresses
    ):
        """The reproducibility bar: one seed, identical degradation."""
        specs = default_chaos_specs(sorted(compiled_indexes))

        def one_run():
            engine, injector, _ = build_engine(
                compiled_indexes, specs, cache_size=256
            )
            return (
                assert_fail_closed(engine, compiled_indexes, chaos_addresses),
                injector.fired,
            )

        first_summary, first_fired = one_run()
        second_summary, second_fired = one_run()
        assert first_summary == second_summary
        assert first_fired == second_fired

    def test_sabotage_is_byte_deterministic(self, compiled_indexes, tmp_path):
        blobs = []
        for attempt in ("a", "b"):
            root = save_index_set(compiled_indexes, tmp_path / attempt)
            injector = FaultInjector(
                CHAOS_SEED, [FaultSpec(FaultKind.SNAPSHOT_BITFLIP)]
            )
            injector.sabotage_snapshots(root)
            blobs.append(
                {path.name: path.read_bytes() for path in sorted(root.glob("*.rgix"))}
            )
        assert blobs[0] == blobs[1]
