"""Chaos-suite fixtures: the serving indexes plus the sweep's seed.

Every test in this package derives all randomness from ``CHAOS_SEED``
(overridable via ``REPRO_CHAOS_SEED``), so a failing cell reproduces
from the seed printed in the failure alone.
"""

import os

import pytest

from repro.serve import CompiledIndex, compile_plane

#: One seed drives the whole sweep; export REPRO_CHAOS_SEED to replay a run.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "20160806"))


@pytest.fixture(scope="session")
def compiled_indexes(small_scenario):
    """Every vendor database of the small scenario, compiled once."""
    return {
        name: CompiledIndex.compile(database)
        for name, database in small_scenario.databases.items()
    }


@pytest.fixture(scope="session")
def answer_plane(compiled_indexes):
    """The cross-vendor answer plane over the small scenario's indexes."""
    return compile_plane(compiled_indexes)


@pytest.fixture(scope="session")
def chaos_addresses(probe_addresses):
    """A slice of the demanding probe pool, small enough to sweep per-cell."""
    return probe_addresses[::97][:400]
