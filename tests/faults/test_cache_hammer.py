"""Thread hammer for the serving LRU cache and the engine around it.

Correctness under concurrency means two things here: the cache never
returns another key's value (isolation), and the accounting reconciles
exactly — every ``get`` is one hit or one miss, and at the engine level
``serve.lookups == serve.cache_hits + serve.cache_misses``.  A lost
update or a cross-wired entry shows up as an off-by-anything in these
totals.
"""

import random
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.obs import MetricsRegistry
from repro.serve import LruCache, ServingEngine

from tests.faults.conftest import CHAOS_SEED

THREADS = 8
OPS_PER_THREAD = 3000


class TestLruCacheHammer:
    def test_counters_reconcile_and_values_stay_keyed(self):
        cache = LruCache(capacity=64)
        key_space = 256  # 4x capacity: constant eviction pressure
        barrier = threading.Barrier(THREADS)
        wrong: list[tuple[int, str]] = []

        def hammer(worker: int) -> int:
            rng = random.Random(f"{CHAOS_SEED}|hammer|{worker}")
            barrier.wait()  # maximum interleaving: everyone starts together
            gets = 0
            for _ in range(OPS_PER_THREAD):
                key = rng.randrange(key_space)
                if rng.random() < 0.5:
                    cache.put(key, f"value-{key}")
                else:
                    gets += 1
                    try:
                        value = cache.get(key)
                    except KeyError:
                        continue
                    if value != f"value-{key}":
                        wrong.append((key, value))
            return gets

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            total_gets = sum(pool.map(hammer, range(THREADS)))

        assert not wrong, f"cache returned another key's value: {wrong[:3]}"
        assert cache.hits + cache.misses == total_gets
        assert len(cache) <= cache.capacity
        assert cache.stats()["evictions"] > 0

    def test_clear_under_load_never_corrupts(self):
        """An eviction storm (concurrent ``clear``) may cost hits, never
        correctness or counter reconciliation."""
        cache = LruCache(capacity=128)
        barrier = threading.Barrier(THREADS + 1)

        def clearer() -> int:
            barrier.wait()
            for _ in range(200):
                cache.clear()
            return 0

        def hammer(worker: int) -> int:
            rng = random.Random(f"{CHAOS_SEED}|storm|{worker}")
            barrier.wait()
            gets = 0
            for _ in range(OPS_PER_THREAD):
                key = rng.randrange(64)
                cache.put(key, key * 2)
                gets += 1
                try:
                    assert cache.get(key) == key * 2
                except KeyError:
                    pass  # a storm between put and get: a miss, not a bug
            return gets

        with ThreadPoolExecutor(max_workers=THREADS + 1) as pool:
            futures = [pool.submit(hammer, w) for w in range(THREADS)]
            futures.append(pool.submit(clearer))
            total_gets = sum(f.result() for f in futures)

        assert cache.hits + cache.misses == total_gets


class TestEngineHammer:
    def test_concurrent_lookups_reconcile_with_request_count(
        self, compiled_indexes, chaos_addresses
    ):
        metrics = MetricsRegistry()
        engine = ServingEngine(
            compiled_indexes, cache_size=len(chaos_addresses) // 4, metrics=metrics
        )
        barrier = threading.Barrier(THREADS)

        def hammer(worker: int) -> int:
            rng = random.Random(f"{CHAOS_SEED}|engine|{worker}")
            barrier.wait()
            lookups = 0
            for _ in range(OPS_PER_THREAD // 4):
                addr = chaos_addresses[rng.randrange(len(chaos_addresses))]
                outcome = engine.lookup_outcome(addr)
                lookups += 1
                # Whether this came from the cache or a fresh resolve, it
                # must be *this* address's pristine answer set.
                assert int(outcome.address) == addr
                for name, answer in outcome.answers.items():
                    assert answer == compiled_indexes[name].probe_answer(addr)
            return lookups

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            total = sum(pool.map(hammer, range(THREADS)))

        assert total == THREADS * (OPS_PER_THREAD // 4)
        assert metrics.counter("serve.lookups") == total
        assert (
            metrics.counter("serve.cache_hits")
            + metrics.counter("serve.cache_misses")
            == total
        )
        stats = engine.cache_stats()
        assert stats["hits"] == metrics.counter("serve.cache_hits")
        assert stats["misses"] >= metrics.counter("serve.cache_misses")
