"""Round-trip fuzzing of the ``.rgix`` snapshot format.

Format v2's promise is total: the header digest plus the payload
checksum cover every byte after the magic, so *any* corruption — a
single flipped bit anywhere, any truncation, a foreign magic — must
surface as the typed :class:`SnapshotError`.  Never a garbage lookup,
never a bare ``struct.error`` escaping the loader.  All mutations
derive from ``CHAOS_SEED``.
"""

import random

import pytest

from repro.serve import SnapshotError, load_index, save_index

from tests.faults.conftest import CHAOS_SEED


@pytest.fixture(scope="module")
def snapshot(compiled_indexes, tmp_path_factory):
    """One compiled vendor written once; each fuzz case copies its bytes."""
    name, index = sorted(compiled_indexes.items())[0]
    path = tmp_path_factory.mktemp("fuzz") / f"{name}.rgix"
    save_index(index, path)
    return path, name, index


class TestRoundTrip:
    def test_pristine_bytes_round_trip(self, snapshot, probe_addresses):
        path, name, index = snapshot
        loaded = load_index(path, expect_name=name)
        for addr in probe_addresses[:2000]:
            assert loaded.probe(addr) == index.probe(addr)


class TestFuzz:
    def _fuzz(self, snapshot, tmp_path, mutate, cases):
        path, name, _ = snapshot
        pristine = path.read_bytes()
        rng = random.Random(f"{CHAOS_SEED}|{mutate.__name__}")
        for case in range(cases):
            mutated = mutate(pristine, rng)
            assert mutated != pristine
            target = tmp_path / f"case{case}.rgix"
            target.write_bytes(mutated)
            # Strictly the typed error: pytest.raises would let nothing
            # else (struct.error, UnicodeDecodeError, a silent success)
            # through.
            with pytest.raises(SnapshotError):
                load_index(target, expect_name=name)

    def test_every_single_bitflip_is_detected(self, snapshot, tmp_path):
        def flip_one_bit(blob, rng):
            bit = rng.randrange(len(blob) * 8)
            mutated = bytearray(blob)
            mutated[bit // 8] ^= 1 << (bit % 8)
            return bytes(mutated)

        self._fuzz(snapshot, tmp_path, flip_one_bit, cases=120)

    def test_every_truncation_is_detected(self, snapshot, tmp_path):
        def truncate(blob, rng):
            return blob[: rng.randrange(len(blob))]

        self._fuzz(snapshot, tmp_path, truncate, cases=60)

    def test_wrong_magic_is_detected(self, snapshot, tmp_path):
        def swap_magic(blob, rng):
            magic = bytes(rng.randrange(256) for _ in range(4))
            return (magic if magic != blob[:4] else b"NOPE") + blob[4:]

        self._fuzz(snapshot, tmp_path, swap_magic, cases=20)

    def test_random_garbage_is_detected(self, snapshot, tmp_path):
        def garbage(blob, rng):
            return rng.randbytes(rng.randrange(1, len(blob)))

        self._fuzz(snapshot, tmp_path, garbage, cases=20)

    def test_mutations_in_sensitive_regions_are_detected(self, snapshot, tmp_path):
        """Target the bytes v1 trusted blindly: the length field, the
        stored digest, and the JSON header itself."""

        def corrupt_prefix(blob, rng):
            offset = rng.randrange(4, 120)
            mutated = bytearray(blob)
            mutated[offset] ^= 1 << rng.randrange(8)
            return bytes(mutated)

        self._fuzz(snapshot, tmp_path, corrupt_prefix, cases=60)
