"""Store filesystem faults: every lifecycle failure leaves serving intact.

The runtime chaos matrix (test_chaos_matrix.py) proves per-request
fail-closed behaviour; this suite proves the *lifecycle* equivalent — a
candidate generation wrecked on disk after publish (manifest cut short,
payload rotting under its digest, promised plane file gone) is rejected
by the watcher, the serving generation keeps answering byte-identically,
and the store's CURRENT pointer is restored to the last good generation.
"""

import pytest

from repro.faults import STORE_KINDS, FaultInjector, StoreFaultKind
from repro.obs import MetricsRegistry
from repro.serve import ServingEngine, SnapshotStore, StoreWatcher

from tests.faults.conftest import CHAOS_SEED


@pytest.fixture()
def store(tmp_path):
    return SnapshotStore(tmp_path / "store")


def flat_answers(engine, addresses):
    return [engine.lookup(addr) for addr in addresses]


@pytest.mark.parametrize("kind", STORE_KINDS, ids=lambda k: k.value)
def test_sabotaged_candidate_never_reaches_serving(
    kind, store, compiled_indexes, answer_plane, chaos_addresses
):
    sample = chaos_addresses[:120]
    metrics = MetricsRegistry()
    good = store.publish(compiled_indexes, answer_plane)
    record, indexes, plane = store.load(good.generation)
    engine = ServingEngine(
        indexes,
        plane=plane,
        metrics=metrics,
        generation_id=record.generation,
        generation_source="store",
    )
    watcher = StoreWatcher(
        store, engine, canary_addresses=sample, metrics=metrics
    )
    baseline = flat_answers(engine, sample)

    bad = store.publish(compiled_indexes, answer_plane)
    injector = FaultInjector(CHAOS_SEED, [], metrics=metrics)
    description = injector.sabotage_generation(bad.path, kind)
    assert description  # the chaos log line names the wrecked file

    assert watcher.poll_once() == "rolled_back"
    assert watcher.last_error is not None

    # The serving generation is untouched in every failure path.
    assert engine.generation_id == good.generation
    assert engine.generation_info()["rollbacks"] == 1
    assert flat_answers(engine, sample) == baseline

    # The store healed its pointer and remembers what it refused.
    assert store.current_id() == good.generation
    rejected = {r.generation: r for r in store.generations()}.get(
        bad.generation
    )
    if kind is StoreFaultKind.MANIFEST_PARTIAL:
        # An unreadable manifest drops the generation from the listing
        # entirely, but the marker still lands on disk.
        assert rejected is None
    else:
        assert rejected is not None and rejected.rejected
    assert (bad.path / "REJECTED").exists()
    assert metrics.counter("store.rejected_generations") == 1

    # A later good publish rolls forward past the wreck.
    repaired = store.publish(compiled_indexes, answer_plane)
    assert repaired.generation == bad.generation + 1
    assert watcher.poll_once() == "swapped"
    assert engine.generation_id == repaired.generation
    assert flat_answers(engine, sample) == baseline
    engine.close()


def test_store_faults_are_deterministic(tmp_path, compiled_indexes, answer_plane):
    """Same seed + same generation name → the same wrecked bytes.

    A failing store-fault cell must reproduce from CHAOS_SEED alone, the
    same guarantee the runtime matrix gives.
    """
    descriptions = []
    for attempt in range(2):
        replica = SnapshotStore(tmp_path / f"replica-{attempt}")
        record = replica.publish(compiled_indexes, answer_plane)
        descriptions.append(
            FaultInjector(CHAOS_SEED, []).sabotage_generation(
                record.path, StoreFaultKind.PAYLOAD_CORRUPT
            )
        )
    assert descriptions[0] == descriptions[1]


def test_plane_missing_requires_a_plane(store, compiled_indexes):
    record = store.publish(compiled_indexes)  # published without a plane
    injector = FaultInjector(CHAOS_SEED, [])
    with pytest.raises(ValueError, match="no plane"):
        injector.sabotage_generation(record.path, StoreFaultKind.PLANE_MISSING)
