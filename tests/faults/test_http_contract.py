"""The HTTP API's documented error contract, hostile-client edition.

Status codes are part of the serving contract: 400 malformed input, 404
unknown route, 405 wrong verb (with ``Allow``), 411 missing
Content-Length, 413 oversized batch, 503 total outage — and every
4xx/5xx increments ``serve.errors``.  These tests speak raw
``http.client`` so nothing in a client library papers over a wrong
code, and they assert the counters moved.
"""

import http.client
import json
import time

import pytest

from repro.faults import FaultInjector, FaultKind, FaultSpec
from repro.obs import MetricsRegistry
from repro.serve import GeoServer, ServingEngine
from repro.serve.http import MAX_BATCH_SIZE

from tests.faults.conftest import CHAOS_SEED


@pytest.fixture(scope="module")
def server(compiled_indexes):
    server = GeoServer(
        ServingEngine(compiled_indexes), port=0, metrics=MetricsRegistry()
    )
    server.start_background()
    yield server
    server.stop()


def raw_request(server, method, path, body=None, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return response.status, dict(response.getheaders()), payload
    finally:
        connection.close()


def errors_counted(server, endpoint, at_least=0, timeout=2.0):
    """The ``serve.errors`` count for ``endpoint``.

    The handler increments *after* writing the response, so a client
    that just read the body can race the counter by a hair; poll until
    it reaches ``at_least`` (or the timeout proves it never will).
    """
    endpoint_class = (
        "introspection"
        if endpoint in {"healthz", "statusz", "metricsz", "tracez"}
        else "serving"
    )
    deadline = time.monotonic() + timeout
    while True:
        count = server.metrics.counter(
            "serve.errors", endpoint=endpoint, endpoint_class=endpoint_class
        )
        if count >= at_least or time.monotonic() >= deadline:
            return count
        time.sleep(0.005)


class TestMalformedInput:
    def test_batch_with_non_json_body_is_400(self, server):
        before = errors_counted(server, "batch")
        status, _, body = raw_request(server, "POST", "/batch", body=b"{not json!")
        assert status == 400
        assert "invalid JSON" in body["error"]
        assert errors_counted(server, "batch", at_least=before + 1) == before + 1

    def test_batch_with_json_non_object_is_400(self, server):
        status, _, body = raw_request(server, "POST", "/batch", body=b'[1, 2, 3]')
        assert status == 400
        assert '"ips"' in body["error"]

    def test_batch_without_content_length_is_411(self, server):
        before = errors_counted(server, "batch")
        # http.client's request() always adds Content-Length to a POST,
        # so speak the wire protocol directly to really omit the header.
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=10
        )
        try:
            connection.putrequest("POST", "/batch")
            connection.endheaders()
            response = connection.getresponse()
            body = json.loads(response.read().decode("utf-8"))
            assert response.status == 411
        finally:
            connection.close()
        assert "Content-Length" in body["error"]
        assert errors_counted(server, "batch", at_least=before + 1) == before + 1

    def test_lookup_with_repeated_ip_parameter_is_400(self, server):
        status, _, body = raw_request(server, "GET", "/lookup?ip=1.1.1.1&ip=2.2.2.2")
        assert status == 400
        assert "exactly one" in body["error"]

    def test_lookup_with_unparseable_ip_is_400(self, server):
        status, _, body = raw_request(server, "GET", "/lookup?ip=999.0.0.1")
        assert status == 400
        assert "not an IPv4 address" in body["error"]


class TestContentLength:
    """Hostile Content-Length values, validated before any body read.

    The original handler passed the parsed header straight to
    ``rfile.read``: a negative value reads to EOF, which on a keep-alive
    connection blocks the worker thread until the client goes away.
    Both hostile shapes must now be refused up front, on a connection
    the server then closes.
    """

    def test_negative_content_length_is_411_not_a_hang(self, server):
        before = errors_counted(server, "batch")
        # http.client would refuse to send a bogus header via request(),
        # so build the request by hand; the short timeout is the real
        # assertion — the unfixed server never responds.
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=5
        )
        try:
            connection.putrequest("POST", "/batch")
            connection.putheader("Content-Length", "-5")
            connection.endheaders()
            response = connection.getresponse()
            body = json.loads(response.read().decode("utf-8"))
            assert response.status == 411
            assert "invalid Content-Length" in body["error"]
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()
        assert errors_counted(server, "batch", at_least=before + 1) == before + 1

    def test_oversized_declared_length_is_413_without_reading(self, server):
        from repro.serve.http import MAX_BODY_BYTES

        before = errors_counted(server, "batch")
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=5
        )
        try:
            # Declare a huge body but never send a byte: the server must
            # answer from the header alone instead of waiting for data.
            connection.putrequest("POST", "/batch")
            connection.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            connection.endheaders()
            response = connection.getresponse()
            body = json.loads(response.read().decode("utf-8"))
            assert response.status == 413
            assert "request body too large" in body["error"]
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()
        assert errors_counted(server, "batch", at_least=before + 1) == before + 1

    def test_zero_content_length_is_an_ordinary_400(self, server):
        """Zero is a *valid* length — the empty body then fails JSON
        parsing, not the length gate."""
        status, _, body = raw_request(
            server, "POST", "/batch", body=b"", headers={"Content-Length": "0"}
        )
        assert status == 400
        assert "invalid JSON" in body["error"]


class TestRouting:
    def test_unknown_route_is_404_and_counted(self, server):
        before = errors_counted(server, "unknown")
        status, _, body = raw_request(server, "GET", "/admin")
        assert status == 404
        assert "no such endpoint" in body["error"]
        assert errors_counted(server, "unknown", at_least=before + 1) == before + 1

    def test_wrong_method_on_lookup_is_405_with_allow(self, server):
        status, headers, body = raw_request(server, "POST", "/lookup?ip=1.1.1.1")
        assert status == 405
        assert headers.get("Allow") == "GET"
        assert "not allowed" in body["error"]

    def test_wrong_method_on_batch_is_405_with_allow(self, server):
        status, headers, _ = raw_request(server, "GET", "/batch")
        assert status == 405
        assert headers.get("Allow") == "POST"

    def test_405_is_counted_against_the_route(self, server):
        before = errors_counted(server, "healthz")
        status, _, _ = raw_request(server, "POST", "/healthz")
        assert status == 405
        assert errors_counted(server, "healthz", at_least=before + 1) == before + 1


class TestLimits:
    def test_oversized_batch_is_413_and_counted(self, server):
        before = errors_counted(server, "batch")
        body = json.dumps({"ips": ["1.1.1.1"] * (MAX_BATCH_SIZE + 1)}).encode()
        status, _, payload = raw_request(server, "POST", "/batch", body=body)
        assert status == 413
        assert "batch too large" in payload["error"]
        assert errors_counted(server, "batch", at_least=before + 1) == before + 1

    def test_batch_at_the_limit_is_accepted(self, server):
        body = json.dumps({"ips": ["1.1.1.1"] * 10}).encode()
        status, _, payload = raw_request(server, "POST", "/batch", body=body)
        assert status == 200
        assert payload["count"] == 10


class TestOutage:
    def test_total_outage_is_503_and_healthz_degrades(self, compiled_indexes):
        """With every vendor raising, /lookup is a typed 503 — never a
        200 full of fabricated answers — and /healthz says degraded."""
        injector = FaultInjector(CHAOS_SEED, [FaultSpec(FaultKind.LOOKUP_RAISE)])
        engine = ServingEngine(compiled_indexes, injector=injector, cache_size=None)
        server = GeoServer(engine, port=0, metrics=MetricsRegistry())
        server.start_background()
        try:
            status, _, body = raw_request(server, "GET", "/lookup?ip=8.8.8.8")
            assert status == 503
            assert "no healthy vendor" in body["error"]
            assert errors_counted(server, "lookup", at_least=1) == 1

            # Two more strikes trip every vendor's breaker (threshold 3),
            # flipping liveness from ok to degraded.
            raw_request(server, "GET", "/lookup?ip=8.8.8.8")
            raw_request(server, "GET", "/lookup?ip=8.8.8.8")
            status, _, health = raw_request(server, "GET", "/healthz")
            assert status == 200
            assert health["status"] == "degraded" and health["degraded"]

            status, _, statusz = raw_request(server, "GET", "/statusz")
            assert status == 200
            assert all(
                vendor["state"] == "quarantined"
                for vendor in statusz["vendors"].values()
            )
            assert "faults" in statusz["families"] or any(
                name.startswith("serve.vendor_errors")
                for name in statusz["counters"]
            )
        finally:
            server.stop()

    def test_batch_inlines_outage_per_item(self, compiled_indexes):
        injector = FaultInjector(CHAOS_SEED, [FaultSpec(FaultKind.LOOKUP_RAISE)])
        engine = ServingEngine(compiled_indexes, injector=injector, cache_size=None)
        server = GeoServer(engine, port=0, metrics=MetricsRegistry())
        server.start_background()
        try:
            body = json.dumps({"ips": ["8.8.8.8", "garbage", "9.9.9.9"]}).encode()
            status, _, payload = raw_request(server, "POST", "/batch", body=body)
            assert status == 200  # the batch survives; each item is honest
            assert [sorted(item) for item in payload["results"]] == [
                ["error", "ip"]
            ] * 3
            assert "no healthy vendor" in payload["results"][0]["error"]
            assert "not an IPv4 address" in payload["results"][1]["error"]
        finally:
            server.stop()
