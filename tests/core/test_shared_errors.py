"""Tests for the shared-incorrect-location analysis (§5.2.2)."""

import pytest

from repro.core import shared_incorrect_analysis
from repro.geo import GeoPoint
from repro.geodb import GeoDatabase, GeoRecord, single_prefix
from repro.groundtruth import GroundTruthRecord, GroundTruthSet, GroundTruthSource
from repro.net import parse_address


def gt(address, country):
    return GroundTruthRecord(
        address=parse_address(address),
        location=GeoPoint(1.0, 2.0),
        country=country,
        source=GroundTruthSource.DNS,
    )


def db(name, mapping):
    entries = [
        single_prefix(f"{address}/32", GeoRecord(country=country))
        for address, country in mapping.items()
    ]
    return GeoDatabase(name, entries)


class TestUnit:
    def test_shared_error_counted(self):
        truth = GroundTruthSet([gt("10.0.0.1", "NL")])
        databases = {
            "a": db("a", {"10.0.0.1": "US"}),
            "b": db("b", {"10.0.0.1": "US"}),
        }
        report = shared_incorrect_analysis(databases, truth, subset=("a", "b"))
        assert report.shared_incorrect == 1
        assert report.incorrect_counts == {"a": 1, "b": 1}
        assert report.shared_fraction("a") == 1.0

    def test_divergent_errors_not_shared(self):
        truth = GroundTruthSet([gt("10.0.0.1", "NL")])
        databases = {
            "a": db("a", {"10.0.0.1": "US"}),
            "b": db("b", {"10.0.0.1": "DE"}),
        }
        report = shared_incorrect_analysis(databases, truth, subset=("a", "b"))
        assert report.shared_incorrect == 0
        assert report.shared_fraction("a") == 0.0

    def test_agreeing_on_truth_not_counted(self):
        truth = GroundTruthSet([gt("10.0.0.1", "US")])
        databases = {
            "a": db("a", {"10.0.0.1": "US"}),
            "b": db("b", {"10.0.0.1": "US"}),
        }
        report = shared_incorrect_analysis(databases, truth, subset=("a", "b"))
        assert report.shared_incorrect == 0

    def test_uncovered_address_excluded_from_shared(self):
        truth = GroundTruthSet([gt("10.0.0.1", "NL")])
        databases = {
            "a": db("a", {"10.0.0.1": "US"}),
            "b": db("b", {}),  # no answer
        }
        report = shared_incorrect_analysis(databases, truth, subset=("a", "b"))
        assert report.shared_incorrect == 0
        assert report.incorrect_counts["a"] == 1

    def test_needs_two_databases(self):
        truth = GroundTruthSet([gt("10.0.0.1", "NL")])
        with pytest.raises(ValueError):
            shared_incorrect_analysis({"a": db("a", {})}, truth, subset=("a",))

    def test_missing_subset_members_skipped(self):
        truth = GroundTruthSet([gt("10.0.0.1", "NL")])
        databases = {
            "a": db("a", {"10.0.0.1": "US"}),
            "b": db("b", {"10.0.0.1": "US"}),
        }
        report = shared_incorrect_analysis(
            databases, truth, subset=("a", "b", "nonexistent")
        )
        assert report.databases == ("a", "b")


class TestScenario:
    def test_majority_of_cheap_database_errors_are_shared(self, small_scenario):
        """§5.2.2: the cheap databases agree on most of their wrong
        answers — a common incorrect source, not independent mistakes."""
        report = shared_incorrect_analysis(
            small_scenario.databases, small_scenario.ground_truth
        )
        assert report.shared_incorrect > 10
        for name in report.databases:
            assert 0.4 < report.shared_fraction(name) <= 1.0, name

    def test_netacuity_shares_less(self, small_scenario):
        """NetAcuity deviates from the consensus precisely because it is
        more accurate: its shared-with-the-cheap-databases fraction is
        lower than theirs."""
        with_neta = shared_incorrect_analysis(
            small_scenario.databases,
            small_scenario.ground_truth,
            subset=("IP2Location-Lite", "MaxMind-Paid", "NetAcuity"),
        )
        without = shared_incorrect_analysis(
            small_scenario.databases, small_scenario.ground_truth
        )
        # Adding NetAcuity to the voting set shrinks the shared pool.
        assert with_neta.shared_incorrect <= without.shared_incorrect
