"""Tests for the recommendation engine (§6) and text rendering."""

import pytest

from repro.core import Ecdf, build_recommendations, render_cdf_grid, render_table
from repro.core.accuracy import DatabaseAccuracy
from repro.core.coverage import CoverageReport
from repro.groundtruth import GroundTruthSource


def accuracy(name, country_acc, city_acc, city_cov, subset="all", total=1000):
    country_covered = total
    city_covered = round(city_cov * total)
    return DatabaseAccuracy(
        database=name,
        subset=subset,
        total=total,
        country_covered=country_covered,
        country_correct=round(country_acc * country_covered),
        city_covered=city_covered,
        city_correct=round(city_acc * city_covered),
        city_error_ecdf=Ecdf([]),
    )


def coverage(name, country=1.0, city=1.0, total=1000):
    return CoverageReport(
        database=name,
        total=total,
        country_covered=round(country * total),
        city_covered=round(city * total),
    )


@pytest.fixture()
def paperlike_inputs():
    overall = {
        "NetAcuity": accuracy("NetAcuity", 0.894, 0.72, 0.996),
        "MaxMind-Paid": accuracy("MaxMind-Paid", 0.786, 0.58, 0.413),
        "MaxMind-GeoLite": accuracy("MaxMind-GeoLite", 0.775, 0.55, 0.304),
        "IP2Location-Lite": accuracy("IP2Location-Lite", 0.775, 0.25, 0.997),
    }
    cov = {name: coverage(name) for name in overall}
    by_rir = {}
    by_source = {
        GroundTruthSource.DNS: {
            "NetAcuity": accuracy("NetAcuity", 0.9, 0.742, 1.0, subset="dns"),
            "MaxMind-Paid": accuracy("MaxMind-Paid", 0.78, 0.439, 0.41, subset="dns"),
            "MaxMind-GeoLite": accuracy("MaxMind-GeoLite", 0.77, 0.42, 0.3, subset="dns"),
            "IP2Location-Lite": accuracy("IP2Location-Lite", 0.77, 0.2, 1.0, subset="dns"),
        },
        GroundTruthSource.RTT: {
            "NetAcuity": accuracy("NetAcuity", 0.9, 0.701, 0.996, subset="rtt"),
            "MaxMind-Paid": accuracy("MaxMind-Paid", 0.82, 0.665, 0.503, subset="rtt"),
            "MaxMind-GeoLite": accuracy("MaxMind-GeoLite", 0.81, 0.6, 0.4, subset="rtt"),
            "IP2Location-Lite": accuracy("IP2Location-Lite", 0.8, 0.4, 1.0, subset="rtt"),
        },
    }
    return cov, overall, by_rir, by_source


class TestRecommendations:
    def test_netacuity_recommended_overall(self, paperlike_inputs):
        recs = build_recommendations(*paperlike_inputs)
        best = next(r for r in recs if r.key == "best-overall")
        assert "NetAcuity" in best.text
        # The DNS-hint caveat (upper bound) must be attached.
        assert "upper bound" in best.text

    def test_maxmind_low_coverage_flagged(self, paperlike_inputs):
        recs = build_recommendations(*paperlike_inputs)
        keys = {r.key for r in recs}
        assert any(k.startswith("low-coverage:MaxMind") for k in keys)

    def test_paid_over_free(self, paperlike_inputs):
        recs = build_recommendations(*paperlike_inputs)
        assert any(r.key == "paid-over-free:MaxMind-Paid" for r in recs)

    def test_ip2location_avoided(self, paperlike_inputs):
        recs = build_recommendations(*paperlike_inputs)
        avoid = next(r for r in recs if r.key == "avoid:IP2Location-Lite")
        assert "Do not use" in avoid.text

    def test_budget_advice_when_comparable(self, paperlike_inputs):
        recs = build_recommendations(*paperlike_inputs)
        assert any(r.key == "budget-country-level" for r in recs)

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            build_recommendations({}, {}, {}, {})

    def test_render_includes_metrics(self, paperlike_inputs):
        recs = build_recommendations(*paperlike_inputs)
        assert any("city_accuracy=" in r.render() for r in recs)

    def test_scenario_recommendations_mirror_paper(self, study_result):
        keys = {r.key for r in study_result.recommendations}
        assert "best-overall" in keys
        best = next(r for r in study_result.recommendations if r.key == "best-overall")
        assert "NetAcuity" in best.text
        assert any(k.startswith("avoid:IP2Location") for k in keys)
        assert any(k.startswith("region-warning:") for k in keys)


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bbb"], [["x", 1], ["yy", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert all("|" in line for line in lines[1:] if "-" not in line)

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["x", "y"]])

    def test_render_cdf_grid_marks_city_range(self):
        text = render_cdf_grid({"s": Ecdf([10, 50])})
        assert "≤40km*" in text
        assert "s (2)" in text

    def test_study_summary_sections(self, study_result):
        summary = study_result.render_summary()
        for marker in (
            "Coverage over Ark-topo-router",
            "Country-level pairwise agreement",
            "Figure 1",
            "Table 1",
            "Figure 2",
            "Figure 3 / Figure 5",
            "Figure 4",
            "§5.2.4",
            "Recommendations",
        ):
            assert marker in summary, marker
