"""Tests for the §4 city-range calibration and the §5.2.3 ARIN case study."""

import pytest

from repro.core import arin_case_study, calibrate_city_range
from repro.geo import GeoPoint, Gazetteer, RIR
from repro.geodb import GeoDatabase, GeoRecord, single_prefix
from repro.groundtruth import GroundTruthRecord, GroundTruthSet, GroundTruthSource
from repro.net import parse_address


class TestCityRangeUnit:
    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            calibrate_city_range({}, Gazetteer.default(), threshold_km=0)

    def test_perfect_databases_justify_threshold(self):
        gazetteer = Gazetteer.default()
        dallas = gazetteer.match("Dallas", "US")
        entries = [
            single_prefix(
                "10.0.0.0/24",
                GeoRecord(
                    country="US", region=dallas.region, city="Dallas",
                    latitude=dallas.location.lat, longitude=dallas.location.lon,
                ),
            )
        ]
        calibration = calibrate_city_range(
            {"a": GeoDatabase("a", entries), "b": GeoDatabase("b", entries)}, gazetteer
        )
        assert calibration.justified
        assert calibration.cross_database.within_rate == 1.0

    def test_unmatched_city_counted(self):
        gazetteer = Gazetteer.default()
        entries = [
            single_prefix(
                "10.0.0.0/24",
                GeoRecord(country="US", city="Atlantis", latitude=1.0, longitude=2.0),
            )
        ]
        calibration = calibrate_city_range({"a": GeoDatabase("a", entries)}, gazetteer)
        check = calibration.gazetteer_checks[0]
        assert check.unmatched == 1
        assert check.matched == 0

    def test_far_coordinates_fail_check(self):
        gazetteer = Gazetteer.default()
        entries = [
            single_prefix(
                "10.0.0.0/24",
                GeoRecord(country="US", region="Texas", city="Dallas",
                          latitude=0.0, longitude=0.0),
            )
        ]
        calibration = calibrate_city_range({"a": GeoDatabase("a", entries)}, gazetteer)
        assert calibration.gazetteer_checks[0].within_rate == 0.0
        assert not calibration.justified


class TestCityRangeIntegration:
    def test_forty_km_justified_in_scenario(self, study_result):
        """§4: >99% of database city coordinates sit within 40 km of the
        gazetteer's, and cross-database same-city coordinates agree."""
        calibration = study_result.city_range
        assert calibration.justified
        for check in calibration.gazetteer_checks:
            assert check.within_rate > 0.99, check.database
        assert calibration.cross_database.within_rate > 0.99


def make_gt(rows):
    return GroundTruthSet(
        [
            GroundTruthRecord(
                address=parse_address(address),
                location=GeoPoint(lat, lon),
                country=country,
                source=GroundTruthSource.DNS,
            )
            for address, lat, lon, country in rows
        ]
    )


class TestArinCaseUnit:
    def test_pulled_to_us_detected(self, small_scenario):
        # An Amsterdam router in ARIN space located to the US by the DB.
        whois = small_scenario.internet.whois
        arin_address = None
        for record in small_scenario.ground_truth:
            if whois.lookup(record.address).registry is RIR.ARIN and record.country != "US":
                arin_address = record.address
                break
        if arin_address is None:
            pytest.skip("no non-US ARIN ground truth in this scenario")
        gt_set = make_gt([(str(arin_address), 52.37, 4.90, "NL")])
        db = GeoDatabase(
            "pull",
            [
                single_prefix(
                    f"{arin_address}/32",
                    GeoRecord(country="US", city="Ashburn", latitude=39.04, longitude=-77.49),
                )
            ],
        )
        case = arin_case_study(db, gt_set, whois)
        assert case.arin_non_us == 1
        assert case.pulled_to_us == 1
        assert case.pulled_city_level == 1
        assert case.pulled_city_far == 1
        assert case.pulled_rate == 1.0


class TestArinCaseIntegration:
    def test_maxmind_case_matches_paper_shape(self, study_result):
        case = study_result.arin_cases["MaxMind-Paid"]
        # Most of the ground truth is ARIN-delegated (paper: 64%).
        assert case.arin_total > 0.4 * sum(
            r.total for r in study_result.overall.values()
        ) / len(study_result.overall)
        # A large share of non-US ARIN addresses is pulled into the US
        # (paper: 70%).
        assert case.arin_non_us > 0
        assert case.pulled_rate > 0.3
        # Over half of US-ARIN city answers are wrong (paper: 58.2%)...
        assert case.us_city_error_rate > 0.4
        # ...and wrong answers are at least as block-level as correct ones
        # (paper: ~91% vs ~78%).  The correct set is a few dozen answers
        # at test scale, so allow sampling noise.
        assert case.wrong_block_level_rate >= case.correct_block_level_rate - 0.1

    def test_netacuity_less_pulled_than_maxmind(self, study_result):
        cases = study_result.arin_cases
        assert cases["NetAcuity"].pulled_rate < cases["MaxMind-Paid"].pulled_rate

    def test_case_internal_consistency(self, study_result):
        for case in study_result.arin_cases.values():
            assert case.arin_non_us <= case.arin_total
            assert case.pulled_to_us <= case.arin_non_us
            assert case.pulled_city_level <= case.pulled_to_us
            assert case.pulled_city_far <= case.pulled_city_level
            assert case.us_arin_city_wrong <= case.us_arin_city_covered
            assert case.wrong_block_level <= case.us_arin_city_wrong
