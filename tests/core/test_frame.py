"""The columnar lookup frame: byte-equivalence with the direct path.

The frame's contract is stronger than "same results": every column value
must be derivable from :meth:`GeoDatabase.lookup` on the same address,
every analysis stage must produce *equal* reports whichever path runs,
and the full study must render an identical summary.  These tests pin
that contract over the demanding shared probe pool (prefix edges,
pseudorandom spread, the space's first and last address).
"""

import math

import pytest

from repro.core import frame as frame_module
from repro.core.frame import (
    BLOCK_LEVEL,
    CITY_LEVEL,
    COVERED,
    HAS_CITY,
    HAS_COORDS,
    HAS_COUNTRY,
    LookupFrame,
    StringTable,
    as_frame,
)


@pytest.fixture(scope="module")
def pool_frame(small_scenario, probe_addresses):
    return LookupFrame.build(small_scenario.databases, probe_addresses)


class TestStringTable:
    def test_intern_allocates_dense_ids_and_none_is_minus_one(self):
        table = StringTable()
        assert table.intern(None) == -1
        assert table.intern("US") == 0
        assert table.intern("DE") == 1
        assert table.intern("US") == 0
        assert len(table) == 2

    def test_id_of_never_matches_without_allocation(self):
        table = StringTable()
        table.intern("US")
        assert table.id_of("US") == 0
        assert table.id_of(None) == -1
        assert table.id_of("ZZ") == -2  # unseen: sentinel equals no stored id
        assert len(table) == 1 and "ZZ" not in table

    def test_value_of_round_trips_and_negatives_are_none(self):
        table = StringTable()
        identifier = table.intern("Dallas")
        assert table.value_of(identifier) == "Dallas"
        assert table.value_of(-1) is None
        assert table.value_of(-2) is None


class TestColumnEquivalence:
    """Every column value equals the direct lookup, all four vendors."""

    def test_columns_match_direct_lookups(
        self, small_scenario, probe_addresses, pool_frame
    ):
        for name, database in small_scenario.databases.items():
            column = pool_frame.column(name)
            for position, address in enumerate(probe_addresses):
                record = database.lookup(address)
                flags = column.flags[position]
                if record is None:
                    assert flags == 0
                    assert column.country_ids[position] == -1
                    assert column.city_ids[position] == -1
                    assert math.isnan(column.lats[position])
                    assert column.record_ids[position] == -1
                    assert column.record_at(position) is None
                    continue
                assert flags & COVERED
                assert bool(flags & HAS_COUNTRY) == (record.country is not None)
                assert bool(flags & HAS_CITY) == (record.city is not None)
                assert bool(flags & HAS_COORDS) == (record.latitude is not None)
                assert (
                    pool_frame.countries.value_of(column.country_ids[position])
                    == record.country
                )
                assert (
                    pool_frame.cities.value_of(column.city_ids[position])
                    == record.city
                )
                if record.latitude is None:
                    assert math.isnan(column.lats[position])
                    assert math.isnan(column.lons[position])
                else:
                    assert column.lats[position] == record.latitude
                    assert column.lons[position] == record.longitude
                assert column.record_at(position) == record

    def test_block_level_flag_tracks_the_matched_prefix_length(
        self, small_scenario, probe_addresses, pool_frame
    ):
        for name, database in small_scenario.databases.items():
            column = pool_frame.column(name)
            for position, address in enumerate(probe_addresses):
                entry = database.lookup_entry(address)
                if entry is None:
                    continue
                assert bool(column.flags[position] & BLOCK_LEVEL) == (
                    entry.prefix.prefixlen <= 24
                )

    def test_frame_lookup_is_the_direct_lookup(self, small_scenario, pool_frame):
        for name, database in small_scenario.databases.items():
            for address in small_scenario.ark_dataset.addresses[:200]:
                assert pool_frame.lookup(name, address) == database.lookup(address)

    def test_city_level_flag_is_city_and_coords(self, pool_frame):
        for name in pool_frame.names:
            for flags in pool_frame.column(name).flags:
                if flags & CITY_LEVEL == CITY_LEVEL:
                    assert flags & HAS_CITY and flags & HAS_COORDS


class TestConstructionPaths:
    def test_frame_from_compiled_indexes_is_byte_identical(
        self, small_scenario, probe_addresses, pool_frame
    ):
        from repro.serve import CompiledIndex

        indexes = {
            name: CompiledIndex.compile(database)
            for name, database in small_scenario.databases.items()
        }
        from_indexes = LookupFrame.build(indexes, probe_addresses)
        for name in pool_frame.names:
            ours = pool_frame.column(name)
            theirs = from_indexes.column(name)
            assert ours.flags == theirs.flags
            assert ours.country_ids == theirs.country_ids
            assert ours.city_ids == theirs.city_ids
            assert ours.record_ids == theirs.record_ids
            assert ours.records == theirs.records
            assert [x for x in ours.lats if not math.isnan(x)] == [
                x for x in theirs.lats if not math.isnan(x)
            ]

    def test_worker_fanout_is_byte_identical_to_serial(
        self, small_scenario, probe_addresses, pool_frame, monkeypatch
    ):
        # The fork fan-out only engages above a pool-size floor; lower it
        # so the parallel code path runs at test scale.
        monkeypatch.setattr(frame_module, "_MIN_PARALLEL_ADDRESSES", 100)
        parallel = LookupFrame.build(
            small_scenario.databases, probe_addresses, workers=2
        )
        for name in pool_frame.names:
            serial_column = pool_frame.column(name)
            parallel_column = parallel.column(name)
            assert serial_column.flags == parallel_column.flags
            assert serial_column.country_ids == parallel_column.country_ids
            assert serial_column.city_ids == parallel_column.city_ids
            assert serial_column.record_ids == parallel_column.record_ids

    def test_pool_is_deduplicated_first_occurrence_wins(self, small_scenario):
        addresses = ["10.0.0.1", "10.0.0.2", "10.0.0.1", "10.0.0.3"]
        frame = LookupFrame.build(small_scenario.databases, addresses)
        assert [str(a) for a in frame.addresses] == [
            "10.0.0.1",
            "10.0.0.2",
            "10.0.0.3",
        ]
        assert frame.positions(addresses) == [0, 1, 0, 2]
        assert len(frame) == 3

    def test_build_metrics(self, small_scenario):
        from repro.obs.metrics import MetricsRegistry

        metrics = MetricsRegistry()
        addresses = list(small_scenario.ark_dataset.addresses[:500])
        frame = LookupFrame.build(small_scenario.databases, addresses, metrics=metrics)
        assert metrics.counter("frame.builds") == 1
        assert metrics.counter("frame.addresses") == len(frame)
        # The geodb.* mirror replays one lookup per pool address per db.
        assert metrics.counter_total("geodb.lookups") == len(frame) * len(
            frame.names
        )


class TestAccess:
    def test_positions_accepts_every_address_form(self, pool_frame, probe_addresses):
        raw = probe_addresses[17]
        from repro.net.ip import parse_address

        parsed = parse_address(raw)
        assert pool_frame.positions([raw, str(parsed), parsed]) == [17, 17, 17]
        assert pool_frame.position(parsed) == 17
        assert parsed in pool_frame

    def test_missing_address_raises_with_the_address_text(self, small_scenario):
        frame = LookupFrame.build(small_scenario.databases, ["10.0.0.1"])
        with pytest.raises(KeyError, match="not in frame"):
            frame.positions(["203.0.113.9"])
        assert "not an address" not in frame

    def test_unknown_column_raises(self, pool_frame):
        with pytest.raises(KeyError, match="no such database"):
            pool_frame.column("nope")

    def test_as_frame_passes_frames_through(self, pool_frame):
        assert as_frame(pool_frame, []) is pool_frame

    def test_stage_cache_is_per_frame_scratch_space(self, small_scenario):
        frame = LookupFrame.build(small_scenario.databases, ["10.0.0.1"])
        frame.stage_cache[("test", 1)] = "memo"
        other = LookupFrame.build(small_scenario.databases, ["10.0.0.1"])
        assert ("test", 1) not in other.stage_cache


class TestStageEquivalence:
    """Every dual-signature stage: frame path == direct path."""

    @pytest.fixture(scope="class")
    def gt_frame(self, small_scenario):
        """A frame over the study pool (Ark + merged ground truth)."""
        return small_scenario.lookup_frame()

    def test_coverage(self, small_scenario, gt_frame):
        from repro.core.coverage import coverage_analysis

        addresses = small_scenario.ark_dataset.addresses
        for name, database in small_scenario.databases.items():
            direct = coverage_analysis(database, addresses)
            framed = coverage_analysis(name, addresses, frame=gt_frame)
            assert direct == framed

    def test_consistency(self, small_scenario, gt_frame):
        from repro.core.consistency import _consistency_direct, consistency_analysis

        addresses = small_scenario.ark_dataset.addresses
        direct = _consistency_direct(small_scenario.databases, addresses)
        from_databases = consistency_analysis(small_scenario.databases, addresses)
        from_frame = consistency_analysis(gt_frame, addresses)
        assert direct == from_databases == from_frame

    def test_majority(self, small_scenario, gt_frame):
        from repro.core.majority import majority_vote_reference, score_against_majority

        addresses = list(small_scenario.ark_dataset.addresses[:400])
        direct_reference = majority_vote_reference(
            addresses, small_scenario.databases
        )
        frame_reference = majority_vote_reference(addresses, gt_frame)
        assert direct_reference == frame_reference
        assert score_against_majority(
            small_scenario.databases, direct_reference
        ) == score_against_majority(gt_frame, frame_reference)

    def test_defaults(self, small_scenario, gt_frame):
        from repro.core.defaults import detect_default_coordinates

        addresses = small_scenario.ark_dataset.addresses
        for name, database in small_scenario.databases.items():
            direct = detect_default_coordinates(database, addresses)
            framed = detect_default_coordinates(name, addresses, frame=gt_frame)
            assert direct == framed

    def test_routerlevel(self, small_scenario, gt_frame):
        import random

        from repro.core.routerlevel import router_consistency
        from repro.topology import AliasResolver

        alias_map = AliasResolver(small_scenario.internet, completeness=1.0).resolve(
            small_scenario.ark_dataset.addresses, random.Random(23)
        )
        for name, database in small_scenario.databases.items():
            direct = router_consistency(database, alias_map)
            framed = router_consistency(name, alias_map, frame=gt_frame)
            assert direct == framed

    def test_accuracy_overall_and_breakdowns(self, small_scenario, gt_frame):
        from repro.core.accuracy import (
            evaluate_all,
            evaluate_by_rir,
            evaluate_by_source,
        )

        ground_truth = small_scenario.ground_truth
        whois = small_scenario.internet.whois
        assert evaluate_all(small_scenario.databases, ground_truth) == evaluate_all(
            gt_frame, ground_truth
        )
        assert evaluate_by_rir(
            small_scenario.databases, ground_truth, whois
        ) == evaluate_by_rir(gt_frame, ground_truth, whois)
        assert evaluate_by_source(
            small_scenario.databases, ground_truth
        ) == evaluate_by_source(gt_frame, ground_truth)

    def test_arin_case(self, small_scenario, gt_frame):
        from repro.core.arincase import arin_case_study

        ground_truth = small_scenario.ground_truth
        whois = small_scenario.internet.whois
        for name, database in small_scenario.databases.items():
            direct = arin_case_study(database, ground_truth, whois)
            framed = arin_case_study(name, ground_truth, whois, frame=gt_frame)
            assert direct == framed


class TestStudyEquivalence:
    """The acceptance bar: the full study renders byte-identically."""

    def test_summary_is_byte_identical_direct_vs_frame(self, small_scenario):
        from repro.core.pipeline import RouterGeolocationStudy

        study = RouterGeolocationStudy.from_scenario(small_scenario)
        direct = study.run(use_frame=False)
        framed = study.run(use_frame=True)
        assert direct.render_summary() == framed.render_summary()
        assert direct.render_markdown() == framed.render_markdown()


class TestDegradedEquivalence:
    """A quarantined vendor must not perturb the healthy vendors' stages.

    The serving layer decides which vendors are healthy (one injected
    always-failing vendor gets quarantined); the analysis pipeline then
    runs over exactly the surviving set — and the frame path and direct
    path must still agree report-for-report, like they do when nothing
    is broken.  A fault that leaked into healthy vendors' numbers would
    split the two paths here.
    """

    @pytest.fixture(scope="class")
    def healthy_vendors(self, small_scenario):
        """The vendor set that survives an injected single-vendor outage."""
        from repro.faults import FaultInjector, FaultKind, FaultSpec
        from repro.serve import CompiledIndex, ResiliencePolicy, ServingEngine

        victim = sorted(small_scenario.databases)[0]
        injector = FaultInjector(
            20160806, [FaultSpec(FaultKind.LOOKUP_RAISE, vendor=victim)]
        )
        engine = ServingEngine(
            {
                name: CompiledIndex.compile(database)
                for name, database in small_scenario.databases.items()
            },
            injector=injector,
            cache_size=None,
            policy=ResiliencePolicy(retries=0, quarantine_threshold=1),
        )
        outcome = engine.lookup_outcome(small_scenario.ark_dataset.addresses[0])
        assert outcome.degraded and victim in outcome.errors
        healthy = [
            name
            for name, health in engine.health_snapshot().items()
            if health["state"] == "healthy"
        ]
        assert victim not in healthy
        assert len(healthy) == len(small_scenario.databases) - 1
        return healthy

    def test_stage_reports_agree_over_the_surviving_set(
        self, small_scenario, healthy_vendors
    ):
        from repro.core.consistency import consistency_analysis
        from repro.core.coverage import coverage_analysis
        from repro.core.majority import majority_vote_reference

        databases = {
            name: small_scenario.databases[name] for name in healthy_vendors
        }
        addresses = small_scenario.ark_dataset.addresses
        frame = LookupFrame.build(databases, addresses)
        for name, database in databases.items():
            assert coverage_analysis(database, addresses) == coverage_analysis(
                name, addresses, frame=frame
            )
        assert consistency_analysis(databases, addresses) == consistency_analysis(
            frame, addresses
        )
        voters = list(addresses[:400])
        assert majority_vote_reference(voters, databases) == majority_vote_reference(
            voters, frame
        )
