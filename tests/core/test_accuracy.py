"""Tests for ground-truth accuracy evaluation (§5.2)."""

import pytest

from repro.core import (
    evaluate_all,
    evaluate_by_country,
    evaluate_by_rir,
    evaluate_by_source,
    evaluate_database,
    split_by_country,
    split_by_rir,
    top_countries,
)
from repro.geo import GeoPoint, RIR
from repro.geodb import GeoDatabase, GeoRecord, single_prefix
from repro.groundtruth import GroundTruthRecord, GroundTruthSet, GroundTruthSource
from repro.net import parse_address


def gt(address, lat, lon, country="US", source=GroundTruthSource.DNS):
    return GroundTruthRecord(
        address=parse_address(address),
        location=GeoPoint(lat, lon),
        country=country,
        source=source,
    )


@pytest.fixture()
def tiny_gt():
    return GroundTruthSet(
        [
            gt("10.0.0.1", 32.78, -96.80),  # Dallas
            gt("10.0.0.2", 25.76, -80.19),  # Miami
            gt("10.0.1.1", 52.52, 13.41, country="DE", source=GroundTruthSource.RTT),
        ]
    )


@pytest.fixture()
def tiny_db():
    return GeoDatabase(
        "tiny",
        [
            # Dallas block: correct city for .1, wrong for .2 (Miami).
            single_prefix(
                "10.0.0.0/24",
                GeoRecord(country="US", city="Dallas", latitude=32.78, longitude=-96.8),
            ),
            # Germany: country-level only.
            single_prefix("10.0.1.0/24", GeoRecord(country="DE", latitude=51.0, longitude=9.0)),
        ],
    )


class TestEvaluateDatabase:
    def test_counts(self, tiny_db, tiny_gt):
        result = evaluate_database(tiny_db, tiny_gt)
        assert result.total == 3
        assert result.country_covered == 3
        assert result.country_correct == 3
        assert result.city_covered == 2
        assert result.city_correct == 1  # Miami address 1,800 km off

    def test_rates(self, tiny_db, tiny_gt):
        result = evaluate_database(tiny_db, tiny_gt)
        assert result.country_accuracy == 1.0
        assert result.city_accuracy == 0.5
        assert result.city_coverage == pytest.approx(2 / 3)
        assert result.country_incorrect == 0

    def test_city_error_ecdf(self, tiny_db, tiny_gt):
        result = evaluate_database(tiny_db, tiny_gt)
        assert result.city_error_ecdf.n == 2
        assert result.city_error_ecdf.fraction_within(40) == 0.5

    def test_empty_ground_truth(self, tiny_db):
        result = evaluate_database(tiny_db, GroundTruthSet([]))
        assert result.total == 0
        assert result.country_accuracy == 0.0
        assert result.city_accuracy == 0.0

    def test_uncovered_addresses(self, tiny_gt):
        result = evaluate_database(GeoDatabase("empty", []), tiny_gt)
        assert result.country_covered == 0

    def test_custom_city_range(self, tiny_db, tiny_gt):
        generous = evaluate_database(tiny_db, tiny_gt, city_range_km=5000)
        assert generous.city_accuracy == 1.0

    def test_render(self, tiny_db, tiny_gt):
        assert "tiny" in evaluate_database(tiny_db, tiny_gt).render()


class TestSplits:
    def test_split_by_country(self, tiny_gt):
        subsets = split_by_country(tiny_gt)
        assert set(subsets) == {"US", "DE"}
        assert len(subsets["US"]) == 2

    def test_top_countries_ranked(self, tiny_gt):
        ranking = top_countries(tiny_gt, 2)
        assert ranking[0] == ("US", 2)
        assert ranking[1] == ("DE", 1)

    def test_split_by_rir_uses_whois(self, small_scenario):
        gt_set = small_scenario.ground_truth
        subsets = split_by_rir(gt_set, small_scenario.internet.whois)
        assert sum(len(s) for s in subsets.values()) == len(gt_set)
        assert RIR.ARIN in subsets

    def test_evaluate_by_source_partitions(self, tiny_db, tiny_gt):
        results = evaluate_by_source({"tiny": tiny_db}, tiny_gt)
        assert results[GroundTruthSource.DNS]["tiny"].total == 2
        assert results[GroundTruthSource.RTT]["tiny"].total == 1

    def test_evaluate_by_country_selection(self, tiny_db, tiny_gt):
        results = evaluate_by_country({"tiny": tiny_db}, tiny_gt, countries=("US",))
        assert set(results) == {"US"}


class TestPaperShape:
    """§5.2's findings must hold over the calibrated scenario."""

    def test_netacuity_best_country_accuracy(self, study_result):
        overall = study_result.overall
        neta = overall["NetAcuity"].country_accuracy
        assert all(
            neta >= overall[name].country_accuracy
            for name in overall
            if name != "NetAcuity"
        )
        # Paper: 89.4% vs 77.5–78.6%; give the synthetic world some slack.
        assert neta > 0.85
        assert 0.70 < overall["IP2Location-Lite"].country_accuracy < 0.90

    def test_nobody_reaches_marketed_accuracy(self, study_result):
        """Vendors market >97–99.8% country accuracy; routers do worse."""
        assert all(
            a.country_accuracy < 0.97 for a in study_result.overall.values()
        )

    def test_ip2location_least_accurate_at_city(self, study_result):
        overall = study_result.overall
        ip2l = overall["IP2Location-Lite"].city_accuracy
        # Small tolerance: at test scale the MaxMind subsets are a few
        # hundred addresses, so a fraction of a point is binomial noise.
        assert ip2l <= min(
            overall[name].city_accuracy for name in overall if name != "IP2Location-Lite"
        ) + 0.03

    def test_maxmind_low_city_coverage_over_gt(self, study_result):
        overall = study_result.overall
        assert overall["MaxMind-GeoLite"].city_coverage < 0.55
        assert (
            overall["MaxMind-GeoLite"].city_coverage
            < overall["MaxMind-Paid"].city_coverage
        )

    def test_netacuity_best_combination(self, study_result):
        overall = study_result.overall
        neta = overall["NetAcuity"]
        for name, accuracy in overall.items():
            if name == "NetAcuity":
                continue
            assert (
                neta.city_accuracy * neta.city_coverage
                > accuracy.city_accuracy * accuracy.city_coverage
            )

    def test_arin_city_accuracy_is_poor(self, study_result):
        arin = study_result.by_rir.get(RIR.ARIN)
        assert arin is not None
        # Even the best database misses the paper's bar in ARIN (§6: 66%).
        assert max(a.city_accuracy for a in arin.values()) < 0.9

    def test_netacuity_wins_every_region_at_country_level(self, study_result):
        for rir, results in study_result.by_rir.items():
            if results["NetAcuity"].total < 20:
                continue  # tiny-region noise
            best = max(results.values(), key=lambda a: a.country_accuracy)
            assert results["NetAcuity"].country_accuracy >= best.country_accuracy - 0.02

    def test_us_country_accuracy_high_for_everyone(self, study_result):
        us = study_result.by_country.get("US")
        assert us is not None
        assert all(a.country_accuracy > 0.85 for a in us.values())

    def test_netacuity_better_on_dns_ground_truth(self, study_result):
        """§5.2.4: NetAcuity is the only database doing better on the
        DNS-based data; MaxMind does clearly worse there."""
        dns = study_result.by_source[GroundTruthSource.DNS]
        rtt = study_result.by_source[GroundTruthSource.RTT]
        # NetAcuity's DNS edge is a few points; at test scale (n≈150) allow
        # binomial noise — the bench at paper scale checks the sign.
        assert dns["NetAcuity"].city_accuracy > rtt["NetAcuity"].city_accuracy - 0.12
        assert dns["MaxMind-Paid"].city_accuracy < rtt["MaxMind-Paid"].city_accuracy
        # The *relative* DNS penalty must hit MaxMind much harder than
        # NetAcuity — that is the §5.2.4 conclusion.
        neta_gap = rtt["NetAcuity"].city_accuracy - dns["NetAcuity"].city_accuracy
        mm_gap = rtt["MaxMind-Paid"].city_accuracy - dns["MaxMind-Paid"].city_accuracy
        assert mm_gap > neta_gap

    def test_top20_has_at_most_20(self, study_result):
        assert len(study_result.top20) <= 20
        counts = [count for _, count in study_result.top20]
        assert counts == sorted(counts, reverse=True)
