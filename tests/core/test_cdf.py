"""Tests for the empirical CDF."""

import pytest
from hypothesis import given, strategies as st

from repro.core import Ecdf, LOG_DISTANCE_GRID_KM

values = st.lists(st.floats(0, 1e4, allow_nan=False), max_size=200)


class TestBasics:
    def test_empty(self):
        ecdf = Ecdf([])
        assert ecdf.n == 0
        assert ecdf.fraction_within(100) == 0.0
        assert ecdf.fraction_zero() == 0.0
        with pytest.raises(ValueError):
            ecdf.quantile(0.5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Ecdf([-1.0])

    def test_simple_fractions(self):
        ecdf = Ecdf([0, 10, 20, 30])
        assert ecdf.fraction_within(0) == 0.25
        assert ecdf.fraction_within(15) == 0.5
        assert ecdf.fraction_within(30) == 1.0
        assert ecdf.fraction_beyond(15) == 0.5

    def test_fraction_zero_counts_exact_zeros(self):
        ecdf = Ecdf([0.0, 0.0, 5.0, 10.0])
        assert ecdf.fraction_zero() == 0.5

    def test_median(self):
        assert Ecdf([1, 2, 3]).median() == 2.0

    def test_quantile_bounds(self):
        ecdf = Ecdf([1, 2, 3])
        with pytest.raises(ValueError):
            ecdf.quantile(1.5)

    def test_series(self):
        ecdf = Ecdf([5, 50, 500])
        assert ecdf.series([10, 100, 1000]) == (
            pytest.approx(1 / 3),
            pytest.approx(2 / 3),
            pytest.approx(1.0),
        )

    def test_values_sorted(self):
        assert Ecdf([3, 1, 2]).values == (1.0, 2.0, 3.0)


class TestProperties:
    @given(values)
    def test_monotone(self, vs):
        ecdf = Ecdf(vs)
        fractions = [ecdf.fraction_within(t) for t in LOG_DISTANCE_GRID_KM]
        assert fractions == sorted(fractions)

    @given(values)
    def test_bounded(self, vs):
        ecdf = Ecdf(vs)
        for t in (0, 1, 100, 1e9):
            assert 0.0 <= ecdf.fraction_within(t) <= 1.0

    @given(st.lists(st.floats(0, 1e4, allow_nan=False), min_size=1, max_size=100))
    def test_total_mass(self, vs):
        ecdf = Ecdf(vs)
        assert ecdf.fraction_within(max(vs)) == 1.0

    @given(st.lists(st.floats(0, 1e4, allow_nan=False), min_size=1, max_size=100))
    def test_within_plus_beyond_is_one(self, vs):
        ecdf = Ecdf(vs)
        assert ecdf.fraction_within(50) + ecdf.fraction_beyond(50) == pytest.approx(1.0)

    @given(st.lists(st.floats(0, 1e4, allow_nan=False), min_size=1, max_size=100))
    def test_quantile_within_range(self, vs):
        ecdf = Ecdf(vs)
        assert min(vs) <= ecdf.quantile(0.5) <= max(vs)
