"""Tests for the majority-vote methodology (and its failure mode)."""

import pytest

from repro.core import (
    majority_location,
    majority_vote_reference,
    score_against_majority,
    validate_majority_against_truth,
)
from repro.geo import GeoPoint
from repro.geodb import GeoDatabase, GeoRecord, single_prefix
from repro.groundtruth import GroundTruthRecord, GroundTruthSet, GroundTruthSource
from repro.net import parse_address

ADDR = parse_address("10.0.0.1")


def db(name, country=None, city=None, lat=None, lon=None):
    if country is None:
        return GeoDatabase(name, [])
    return GeoDatabase(
        name,
        [single_prefix("10.0.0.0/24", GeoRecord(country=country, city=city, latitude=lat, longitude=lon))],
    )


class TestMajorityLocation:
    def test_country_plurality(self):
        databases = {
            "a": db("a", "US", "Dallas", 32.78, -96.8),
            "b": db("b", "US", "Dallas", 32.79, -96.81),
            "c": db("c", "CA", "Toronto", 43.65, -79.38),
        }
        vote = majority_location(ADDR, databases)
        assert vote.country == "US"
        assert vote.country_votes == 2
        assert vote.voters == 3

    def test_country_tie_gives_no_quorum(self):
        databases = {
            "a": db("a", "US", "Dallas", 32.78, -96.8),
            "b": db("b", "CA", "Toronto", 43.65, -79.38),
        }
        vote = majority_location(ADDR, databases)
        assert vote.country is None

    def test_city_cluster_medoid(self):
        databases = {
            "a": db("a", "US", "Dallas", 32.78, -96.80),
            "b": db("b", "US", "Dallas", 32.90, -96.90),
            "c": db("c", "US", "Miami", 25.76, -80.19),
        }
        vote = majority_location(ADDR, databases)
        assert vote.location is not None
        assert vote.location_votes == 2
        assert vote.location.distance_km(GeoPoint(32.78, -96.8)) < 30

    def test_single_city_answer_has_no_city_quorum(self):
        databases = {
            "a": db("a", "US", "Dallas", 32.78, -96.8),
            "b": db("b", "US"),  # country-level only
        }
        vote = majority_location(ADDR, databases)
        assert vote.location is None

    def test_uncovered_everywhere(self):
        databases = {"a": db("a"), "b": db("b")}
        vote = majority_location(ADDR, databases)
        assert vote.voters == 0
        assert vote.country is None and vote.location is None

    def test_reference_requires_two_databases(self):
        with pytest.raises(ValueError):
            majority_vote_reference([ADDR], {"only": db("only", "US")})


class TestScoring:
    def test_agreement_counts(self):
        databases = {
            "a": db("a", "US", "Dallas", 32.78, -96.80),
            "b": db("b", "US", "Dallas", 32.79, -96.81),
            "c": db("c", "CA", "Toronto", 43.65, -79.38),
        }
        reference = majority_vote_reference([ADDR], databases)
        scores = score_against_majority(databases, reference)
        assert scores["a"].country_rate == 1.0
        assert scores["c"].country_rate == 0.0
        assert scores["a"].city_rate == 1.0
        assert scores["c"].city_rate == 0.0


class TestAgainstTruth:
    def make_truth(self, lat, lon, country):
        return GroundTruthSet(
            [
                GroundTruthRecord(
                    address=ADDR,
                    location=GeoPoint(lat, lon),
                    country=country,
                    source=GroundTruthSource.DNS,
                )
            ]
        )

    def test_confident_majority_can_be_wrong(self):
        """The paper's §5.1 warning, in miniature: all voters share the
        registry's wrong answer, the vote is unanimous — and wrong."""
        databases = {
            "a": db("a", "US", "Ashburn", 39.04, -77.49),
            "b": db("b", "US", "Ashburn", 39.05, -77.50),
            "c": db("c", "US", "Ashburn", 39.03, -77.48),
        }
        reference = majority_vote_reference([ADDR], databases)
        truth = self.make_truth(52.37, 4.90, "NL")  # actually Amsterdam
        outcome = validate_majority_against_truth(reference, truth)
        assert outcome.country_votes_with_quorum == 1
        assert outcome.country_vote_accuracy == 0.0
        assert outcome.city_vote_accuracy == 0.0
        # Meanwhile every database scores 100% against the vote.
        scores = score_against_majority(databases, reference)
        assert all(s.country_rate == 1.0 for s in scores.values())

    def test_correct_majority_validates(self):
        databases = {
            "a": db("a", "NL", "Amsterdam", 52.37, 4.90),
            "b": db("b", "NL", "Amsterdam", 52.38, 4.91),
        }
        reference = majority_vote_reference([ADDR], databases)
        truth = self.make_truth(52.37, 4.90, "NL")
        outcome = validate_majority_against_truth(reference, truth)
        assert outcome.country_vote_accuracy == 1.0
        assert outcome.city_vote_accuracy == 1.0


class TestScenarioIntegration:
    def test_vote_flatters_databases(self, small_scenario):
        """Scored against the vote, the registry-following databases look
        better than they are against real ground truth — quantifying why
        the paper built ground truth instead of voting."""
        ground_truth = small_scenario.ground_truth
        addresses = list(ground_truth.addresses())
        reference = majority_vote_reference(addresses, small_scenario.databases)
        scores = score_against_majority(small_scenario.databases, reference)
        outcome = validate_majority_against_truth(reference, ground_truth)

        # The vote has quorum on most addresses, yet it is measurably
        # wrong at country level — shared registry errors pass the vote.
        assert outcome.country_votes_with_quorum > 0.8 * len(addresses)
        assert outcome.country_vote_accuracy < 0.97

        from repro.core import evaluate_all

        against_truth = evaluate_all(small_scenario.databases, ground_truth)
        flattered = [
            name
            for name in scores
            if scores[name].country_rate
            > against_truth[name].country_accuracy + 0.02
        ]
        assert "IP2Location-Lite" in flattered or "MaxMind-Paid" in flattered
