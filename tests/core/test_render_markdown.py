"""Tests for :meth:`StudyResult.render_markdown` (previously untested)."""

from dataclasses import replace

import pytest

from repro.core.accuracy import DatabaseAccuracy
from repro.core.cdf import Ecdf


def _table_rows(markdown: str, title: str) -> list[str]:
    """The data rows of the table under ``### title`` (no header/rule)."""
    lines = markdown.splitlines()
    start = lines.index(f"### {title}")
    rows = []
    for line in lines[start + 1:]:
        if line.startswith("### "):
            break
        if line.startswith("|"):
            rows.append(line)
    return rows[2:]  # drop the header and the |---| separator


class TestRenderMarkdown:
    def test_document_structure(self, study_result):
        markdown = study_result.render_markdown()
        assert markdown.startswith("# Router geolocation study report")
        for header in (
            "### Coverage over the router-interface population",
            "### Cross-database consistency",
            "### Accuracy against ground truth",
            "### Regional breakdown",
            "### Recommendations",
        ):
            assert header in markdown

    def test_coverage_table_has_one_row_per_database(self, study_result):
        rows = _table_rows(
            study_result.render_markdown(),
            "Coverage over the router-interface population",
        )
        assert len(rows) == len(study_result.coverage)
        for name in study_result.coverage:
            assert any(name in row for row in rows)

    def test_consistency_table_has_pairs_plus_all_agree(self, study_result):
        rows = _table_rows(
            study_result.render_markdown(), "Cross-database consistency"
        )
        assert len(rows) == len(study_result.consistency.country_pairs) + 1
        assert "all databases agree" in rows[-1]

    def test_accuracy_table_shows_median_city_error(self, study_result):
        rows = _table_rows(
            study_result.render_markdown(), "Accuracy against ground truth"
        )
        assert len(rows) == len(study_result.overall)
        # Every database at test scale has city answers, hence a km median.
        assert all(" km" in row for row in rows)

    def test_recommendations_rendered_as_bullets(self, study_result):
        markdown = study_result.render_markdown()
        bullets = [line for line in markdown.splitlines() if line.startswith("- ")]
        assert len(bullets) == len(study_result.recommendations)

    def test_empty_ecdf_falls_back_to_em_dash(self, study_result):
        countryless = DatabaseAccuracy(
            database="Country-Only",
            subset="all",
            total=5,
            country_covered=5,
            country_correct=4,
            city_covered=0,
            city_correct=0,
            city_error_ecdf=Ecdf([]),
        )
        doctored = replace(study_result, overall={"Country-Only": countryless})
        rows = _table_rows(
            doctored.render_markdown(), "Accuracy against ground truth"
        )
        assert len(rows) == 1
        assert "—" in rows[0]
        assert " km" not in rows[0]

    def test_summary_and_markdown_agree_on_databases(self, study_result):
        markdown = study_result.render_markdown()
        summary = study_result.render_summary()
        for name in study_result.overall:
            assert name in markdown
            assert name in summary
