"""Tests for coverage and consistency analyses (§5.1)."""

import itertools

import pytest

from repro.core import (
    consistency_analysis,
    coverage_analysis,
    coverage_table,
)
from repro.geodb import GeoDatabase, GeoRecord, single_prefix


def db(name, entries):
    return GeoDatabase(name, entries)


def city_rec(city="Dallas", country="US", lat=32.78, lon=-96.8):
    return GeoRecord(country=country, city=city, latitude=lat, longitude=lon)


def country_rec(country="US"):
    return GeoRecord(country=country, latitude=38.0, longitude=-97.0)


ADDRS = ["10.0.0.1", "10.0.1.1", "10.0.2.1", "10.0.3.1"]


class TestCoverage:
    def test_counts(self):
        database = db(
            "t",
            [
                single_prefix("10.0.0.0/24", city_rec()),
                single_prefix("10.0.1.0/24", country_rec()),
            ],
        )
        report = coverage_analysis(database, [a for a in ADDRS])
        assert report.total == 4
        assert report.country_covered == 2
        assert report.city_covered == 1
        assert report.country_rate == 0.5
        assert report.city_rate == 0.25

    def test_empty_population(self):
        report = coverage_analysis(db("t", []), [])
        assert report.country_rate == 0.0 and report.city_rate == 0.0

    def test_table_covers_all_databases(self):
        dbs = {
            "a": db("a", [single_prefix("10.0.0.0/8", city_rec())]),
            "b": db("b", []),
        }
        table = coverage_table(dbs, ADDRS)
        assert table["a"].city_rate == 1.0
        assert table["b"].country_rate == 0.0

    def test_render(self):
        report = coverage_analysis(db("t", []), ADDRS)
        assert "t" in report.render()


class TestConsistencyUnit:
    def test_requires_two_databases(self):
        with pytest.raises(ValueError):
            consistency_analysis({"only": db("only", [])}, ADDRS)

    def test_perfect_agreement_with_identical_databases(self):
        entries = [single_prefix("10.0.0.0/16", city_rec())]
        report = consistency_analysis(
            {"a": db("a", entries), "b": db("b", entries)}, ADDRS
        )
        pair = report.country_pair("a", "b")
        assert pair.rate == 1.0
        assert report.all_agree_rate == 1.0
        city_pair = report.city_pair("a", "b")
        assert city_pair.identical_fraction == 1.0
        assert city_pair.disagreement_beyond(40) == 0.0

    def test_country_disagreement_counted(self):
        a = db("a", [single_prefix("10.0.0.0/16", country_rec("US"))])
        b = db("b", [single_prefix("10.0.0.0/16", country_rec("CA"))])
        report = consistency_analysis({"a": a, "b": b}, ADDRS)
        assert report.country_pair("a", "b").rate == 0.0

    def test_uncovered_addresses_excluded_from_pairs(self):
        a = db("a", [single_prefix("10.0.0.0/24", country_rec())])
        b = db("b", [single_prefix("10.0.0.0/16", country_rec())])
        report = consistency_analysis({"a": a, "b": b}, ADDRS)
        assert report.country_pair("a", "b").compared == 1

    def test_city_subset_requires_city_in_all(self):
        a = db("a", [single_prefix("10.0.0.0/16", city_rec())])
        b = db(
            "b",
            [
                single_prefix("10.0.0.0/24", city_rec()),
                single_prefix("10.0.1.0/24", country_rec()),
            ],
        )
        report = consistency_analysis({"a": a, "b": b}, ADDRS)
        assert report.city_subset_size == 1

    def test_unknown_pair_raises(self):
        entries = [single_prefix("10.0.0.0/16", city_rec())]
        report = consistency_analysis({"a": db("a", entries), "b": db("b", entries)}, ADDRS)
        with pytest.raises(KeyError):
            report.country_pair("a", "zzz")
        with pytest.raises(KeyError):
            report.city_pair("a", "zzz")


class TestConsistencyIntegration:
    """§5.1's findings must hold over the calibrated scenario."""

    def test_maxmind_pair_agrees_most(self, study_result):
        report = study_result.consistency
        mm = report.country_pair("MaxMind-GeoLite", "MaxMind-Paid")
        for pair in report.country_pairs:
            assert mm.rate >= pair.rate

    def test_all_agree_rate_high_but_below_pairwise(self, study_result):
        report = study_result.consistency
        assert 0.8 < report.all_agree_rate < 1.0
        assert report.all_agree_rate <= min(p.rate for p in report.country_pairs) + 1e-9

    def test_cross_vendor_city_disagreement_dwarfs_maxmind_pair(self, study_result):
        """Figure 1's headline: different vendors disagree at city level
        far more than the two MaxMind editions do (paper: ≥29% vs 11.4%
        beyond 40 km).  At test scale we assert the ordering plus a floor;
        the benchmark at paper scale checks the magnitudes."""
        report = study_result.consistency
        mm_pair = report.city_pair("MaxMind-GeoLite", "MaxMind-Paid")
        cross = [
            p
            for p in report.city_pairs
            if {p.database_a, p.database_b} != {"MaxMind-GeoLite", "MaxMind-Paid"}
        ]
        assert all(p.disagreement_beyond(40) > 0.1 for p in cross)
        assert all(
            p.disagreement_beyond(40) > mm_pair.disagreement_beyond(40) for p in cross
        )

    def test_maxmind_editions_mostly_identical(self, study_result):
        pair = study_result.consistency.city_pair("MaxMind-GeoLite", "MaxMind-Paid")
        assert pair.identical_fraction > 0.5
        assert pair.disagreement_beyond(40) < 0.2

    def test_city_subset_smaller_than_population(self, small_scenario, study_result):
        assert 0 < study_result.consistency.city_subset_size < len(
            small_scenario.ark_dataset
        )

    def test_coverage_shape(self, study_result):
        coverage = study_result.coverage
        assert coverage["IP2Location-Lite"].city_rate > 0.97
        assert coverage["NetAcuity"].city_rate > 0.97
        assert coverage["MaxMind-Paid"].country_rate > 0.95
        assert coverage["MaxMind-GeoLite"].city_rate < coverage["MaxMind-Paid"].city_rate < 0.8
