"""Tests for default-coordinate detection and router-level consistency."""

import random

import pytest

from repro.core import (
    default_coordinate_table,
    detect_default_coordinates,
    is_default_coordinate,
    router_consistency,
    router_consistency_table,
)
from repro.geo import GeoPoint
from repro.geodb import GeoDatabase, GeoRecord, LocationSource, single_prefix
from repro.net import parse_address
from repro.topology import AliasResolver


class TestIsDefaultCoordinate:
    def test_germany_centroid(self):
        assert is_default_coordinate("DE", GeoPoint(51.0, 9.0))

    def test_near_centroid_within_radius(self):
        assert is_default_coordinate("DE", GeoPoint(51.02, 9.01))

    def test_berlin_is_not_default(self):
        assert not is_default_coordinate("DE", GeoPoint(52.52, 13.41))

    def test_unknown_country(self):
        assert not is_default_coordinate("XX", GeoPoint(0, 0))


class TestDetectDefaults:
    def test_counts(self):
        database = GeoDatabase(
            "t",
            [
                single_prefix(
                    "10.0.0.0/24",
                    GeoRecord(country="DE", latitude=51.0, longitude=9.0),
                ),
                single_prefix(
                    "10.0.1.0/24",
                    GeoRecord(country="DE", city="Berlin", latitude=52.52, longitude=13.41),
                ),
                single_prefix(
                    "10.0.2.0/24",
                    # A *city-level* record sitting on the centroid: the
                    # suspicious case the report flags separately.
                    GeoRecord(country="DE", city="Mystery", latitude=51.0, longitude=9.0),
                ),
            ],
        )
        report = detect_default_coordinates(
            database, [parse_address(f"10.0.{i}.1") for i in range(3)]
        )
        assert report.answers_with_coordinates == 3
        assert report.on_default_coordinates == 2
        assert report.city_level_defaults == 1
        assert report.default_rate == pytest.approx(2 / 3)

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            detect_default_coordinates(GeoDatabase("t", []), [], radius_km=0)

    def test_scenario_defaults_match_country_level_records(self, small_scenario):
        """In the generated snapshots, default coordinates are exactly the
        country-level answers — the convention the paper describes."""
        addresses = small_scenario.ark_dataset.addresses
        table = default_coordinate_table(small_scenario.databases, addresses)
        mm = table["MaxMind-Paid"]
        # MaxMind answers country-level often → plenty of defaults.
        assert mm.default_rate > 0.2
        # IP2Location claims a city everywhere → almost no defaults.
        assert table["IP2Location-Lite"].default_rate < 0.05
        # City-level answers on centroids occur only where the gazetteer
        # city genuinely sits at the country centre (city-states like
        # Hong Kong or Andorra) — never as a data-quality defect.
        from repro.core.defaults import is_default_coordinate

        for address in addresses:
            record = small_scenario.databases["MaxMind-Paid"].lookup(address)
            if (
                record is None
                or not record.has_city
                or not record.has_coordinates
                or not is_default_coordinate(record.country, record.location)
            ):
                continue
            city = small_scenario.internet.gazetteer.match(
                record.city, record.country
            )
            assert is_default_coordinate(record.country, city.location, radius_km=10)


class TestRouterConsistency:
    def test_consistent_router(self):
        database = GeoDatabase(
            "t",
            [
                single_prefix("10.0.0.1/32", GeoRecord(country="US", city="Dallas", latitude=32.78, longitude=-96.80)),
                single_prefix("10.0.0.2/32", GeoRecord(country="US", city="Dallas", latitude=32.79, longitude=-96.81)),
            ],
        )
        from repro.topology.itdk import AliasMap

        addresses = (parse_address("10.0.0.1"), parse_address("10.0.0.2"))
        alias_map = AliasMap(
            nodes={"N1": addresses},
            node_of={a: "N1" for a in addresses},
        )
        report = router_consistency(database, alias_map)
        assert report.routers_evaluated == 1
        assert report.consistency_rate == 1.0
        assert report.country_split_rate == 0.0

    def test_scattered_router(self):
        database = GeoDatabase(
            "t",
            [
                single_prefix("10.0.0.1/32", GeoRecord(country="US", city="Dallas", latitude=32.78, longitude=-96.80)),
                single_prefix("10.0.0.2/32", GeoRecord(country="NL", city="Amsterdam", latitude=52.37, longitude=4.90)),
            ],
        )
        from repro.topology.itdk import AliasMap

        addresses = (parse_address("10.0.0.1"), parse_address("10.0.0.2"))
        alias_map = AliasMap(nodes={"N1": addresses}, node_of={a: "N1" for a in addresses})
        report = router_consistency(database, alias_map)
        assert report.consistency_rate == 0.0
        assert report.country_split_rate == 1.0
        assert report.scatter_ecdf.values[0] > 7000

    def test_single_located_interface_not_evaluated(self):
        database = GeoDatabase(
            "t",
            [single_prefix("10.0.0.1/32", GeoRecord(country="US", city="Dallas", latitude=32.78, longitude=-96.80))],
        )
        from repro.topology.itdk import AliasMap

        addresses = (parse_address("10.0.0.1"), parse_address("10.0.0.2"))
        alias_map = AliasMap(nodes={"N1": addresses}, node_of={a: "N1" for a in addresses})
        report = router_consistency(database, alias_map)
        assert report.routers_evaluated == 0
        assert report.consistency_rate == 0.0

    def test_invalid_city_range(self, small_scenario):
        alias_map = AliasResolver(small_scenario.internet, completeness=1.0).resolve(
            small_scenario.ark_dataset.addresses, random.Random(1)
        )
        with pytest.raises(ValueError):
            router_consistency(
                small_scenario.databases["NetAcuity"], alias_map, city_range_km=-1
            )

    def test_scenario_router_consistency_ordering(self, small_scenario):
        """Databases that answer per-block scatter a router's aliases less
        than per-address ones err — but registry-city databases split
        routers across countries more than NetAcuity does."""
        alias_map = AliasResolver(small_scenario.internet, completeness=1.0).resolve(
            small_scenario.ark_dataset.addresses, random.Random(1)
        )
        table = router_consistency_table(small_scenario.databases, alias_map)
        for report in table.values():
            assert report.routers_evaluated > 10
            assert 0.0 <= report.consistency_rate <= 1.0
        # NetAcuity's per-address answers are truth-anchored → coherent.
        assert table["NetAcuity"].consistency_rate > 0.5
