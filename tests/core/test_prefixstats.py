"""Tests for prefix-granularity profiling."""

import pytest

from repro.core import prefix_granularity, prefix_granularity_table
from repro.geo import RIR
from repro.geodb import GeoDatabase, GeoRecord, single_prefix
from repro.net import DelegationRegistry


def rec(country="US"):
    return GeoRecord(country=country, latitude=38.0, longitude=-97.0)


class TestUnit:
    def test_histogram_and_block_rows(self):
        db = GeoDatabase(
            "t",
            [
                single_prefix("10.0.0.0/16", rec()),
                single_prefix("10.1.0.0/24", rec()),
                single_prefix("10.1.1.0/24", rec()),
                single_prefix("10.2.0.0/32", rec()),
            ],
        )
        report = prefix_granularity(db)
        assert report.entries == 4
        assert report.length_histogram == {16: 1, 24: 2, 32: 1}
        assert report.block_level_rows == 3  # /16 and the two /24s
        assert report.median_prefix_length == 24
        # /16 dominates the address space.
        assert report.block_level_address_share > 0.99

    def test_empty_database(self):
        report = prefix_granularity(GeoDatabase("empty", []))
        assert report.entries == 0
        assert report.median_prefix_length == 0
        assert report.splitting_rate == 0.0
        assert report.block_level_address_share == 0.0

    def test_splitting_vs_registry(self):
        registry = DelegationRegistry()
        delegation = registry.allocate(
            RIR.ARIN, asn=1, registered_country="US", organization="o", prefix_len=20
        )
        base = str(delegation.prefix.network_address)
        db = GeoDatabase(
            "t",
            [
                single_prefix(f"{base}/20", rec()),  # matches the delegation
                single_prefix(f"{base}/24", rec()),  # finer: a split row
            ],
        )
        report = prefix_granularity(db, registry)
        assert report.finer_than_delegation == 1
        assert report.splitting_rate == 0.5

    def test_rows_outside_registry_ignored(self):
        registry = DelegationRegistry()
        db = GeoDatabase("t", [single_prefix("203.0.113.0/24", rec())])
        report = prefix_granularity(db, registry)
        assert report.finer_than_delegation == 0


class TestScenario:
    def test_every_database_splits_delegations(self, small_scenario):
        """All vendors answer at granularities finer than the /20
        delegations — Poese et al.'s splitting, reproduced."""
        table = prefix_granularity_table(
            small_scenario.databases, small_scenario.internet.registry
        )
        for name, report in table.items():
            assert report.splitting_rate > 0.9, name
            assert report.entries > 0

    def test_netacuity_finest_granularity(self, small_scenario):
        """NetAcuity's per-address hint rows make it the finest-grained
        snapshot; IP2Location is the coarsest (block records only)."""
        table = prefix_granularity_table(small_scenario.databases)
        neta = table["NetAcuity"]
        ip2l = table["IP2Location-Lite"]
        assert neta.length_histogram.get(32, 0) > ip2l.length_histogram.get(32, 0)
        assert ip2l.block_level_address_share > 0.9

    def test_block_share_orders_with_arin_errors(self, small_scenario):
        """More block-level address space ⇒ structurally more exposure to
        the §5.2.3 error class."""
        table = prefix_granularity_table(small_scenario.databases)
        assert (
            table["IP2Location-Lite"].block_level_address_share
            >= table["NetAcuity"].block_level_address_share
        )
