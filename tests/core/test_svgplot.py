"""Tests for the SVG CDF renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.core import Ecdf, render_cdf_svg

NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestRendering:
    def test_well_formed_xml(self):
        svg = render_cdf_svg({"s": Ecdf([1, 10, 100])}, title="t")
        parse(svg)

    def test_one_polyline_per_nonempty_series(self):
        svg = render_cdf_svg(
            {"a": Ecdf([1, 2]), "b": Ecdf([5, 50]), "empty": Ecdf([])},
            title="t",
        )
        root = parse(svg)
        polylines = root.findall(f".//{NS}polyline")
        assert len(polylines) == 2

    def test_legend_lists_every_series(self):
        svg = render_cdf_svg(
            {"alpha": Ecdf([1.0]), "beta": Ecdf([])}, title="t"
        )
        assert "alpha (n=1)" in svg
        assert "beta (n=0)" in svg

    def test_marker_line_present(self):
        svg = render_cdf_svg({"s": Ecdf([1])}, title="t", marker_x=40.0)
        assert "40 km" in svg
        assert "#CC0000" in svg

    def test_marker_can_be_disabled(self):
        svg = render_cdf_svg({"s": Ecdf([1])}, title="t", marker_x=None)
        assert "#CC0000" not in svg

    def test_title_escaped(self):
        svg = render_cdf_svg({"s": Ecdf([1])}, title="a < b & c")
        parse(svg)  # would fail on raw < or &
        assert "a &lt; b &amp; c" in svg

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            render_cdf_svg({}, title="t", x_min=0)
        with pytest.raises(ValueError):
            render_cdf_svg({}, title="t", x_min=10, x_max=1)

    def test_curve_points_inside_viewbox(self):
        svg = render_cdf_svg(
            {"s": Ecdf([0.001, 1, 100, 1e6])},  # values beyond both ends
            title="t",
            width=600,
            height=400,
        )
        root = parse(svg)
        for polyline in root.findall(f".//{NS}polyline"):
            for pair in polyline.get("points").split():
                x, y = map(float, pair.split(","))
                assert 0 <= x <= 600
                assert 0 <= y <= 400

    def test_curves_monotone_downward_in_y(self):
        """A CDF never decreases, so y pixel coordinates never increase."""
        svg = render_cdf_svg({"s": Ecdf([1, 5, 25, 125, 625])}, title="t")
        root = parse(svg)
        polyline = root.find(f".//{NS}polyline")
        ys = [float(p.split(",")[1]) for p in polyline.get("points").split()]
        assert ys == sorted(ys, reverse=True)

    def test_large_series_decimated(self):
        svg = render_cdf_svg({"s": Ecdf(range(1, 100000))}, title="t")
        root = parse(svg)
        polyline = root.find(f".//{NS}polyline")
        assert len(polyline.get("points").split()) < 1000
