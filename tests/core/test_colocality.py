"""Tests for /24 block co-locality measurement."""

import pytest

from repro.core import (
    block_level_error_bound,
    measure_block_colocality,
)
from repro.geo import GeoPoint
from repro.net import parse_address


def locations(*entries):
    return {parse_address(a): GeoPoint(lat, lon) for a, lat, lon in entries}


class TestBlockSpan:
    def test_single_address_block(self):
        report = measure_block_colocality(locations(("10.0.0.1", 10.0, 20.0)))
        assert report.measured_blocks == 1
        block = report.blocks[0]
        assert block.addresses == 1
        assert block.max_span_km == 0.0
        assert block.distinct_sites == 1
        assert block.is_colocated()

    def test_colocated_block(self):
        report = measure_block_colocality(
            locations(
                ("10.0.0.1", 52.37, 4.90),
                ("10.0.0.2", 52.38, 4.91),
                ("10.0.0.3", 52.36, 4.89),
            )
        )
        block = report.blocks[0]
        assert block.addresses == 3
        assert block.max_span_km < 5
        assert block.is_colocated()
        assert report.colocation_rate == 1.0

    def test_split_block(self):
        # Dallas and Amsterdam in one /24: the §5.2.3 failure case.
        report = measure_block_colocality(
            locations(
                ("10.0.0.1", 32.78, -96.80),
                ("10.0.0.2", 52.37, 4.90),
            )
        )
        block = report.blocks[0]
        assert block.max_span_km > 7000
        assert not block.is_colocated()
        assert block.distinct_sites == 2
        assert report.colocation_rate == 0.0

    def test_blocks_grouped_by_slash24(self):
        report = measure_block_colocality(
            locations(
                ("10.0.0.1", 1.0, 1.0),
                ("10.0.0.200", 1.0, 1.0),
                ("10.0.1.1", 2.0, 2.0),
            )
        )
        assert report.measured_blocks == 2
        assert report.multi_address_blocks == 1

    def test_radius_bounded_by_span(self):
        report = measure_block_colocality(
            locations(
                ("10.0.0.1", 40.0, -74.0),
                ("10.0.0.2", 41.0, -75.0),
                ("10.0.0.3", 42.0, -76.0),
            )
        )
        block = report.blocks[0]
        assert block.radius_km <= block.max_span_km + 1e-6
        assert block.radius_km > 0

    def test_invalid_city_range(self):
        with pytest.raises(ValueError):
            measure_block_colocality({}, city_range_km=0)

    def test_worst_blocks_ordering(self):
        report = measure_block_colocality(
            locations(
                ("10.0.0.1", 0.0, 0.0),
                ("10.0.0.2", 0.0, 50.0),  # huge span
                ("10.0.1.1", 0.0, 0.0),
                ("10.0.1.2", 0.1, 0.0),  # tiny span
            )
        )
        worst = report.worst_blocks(1)
        assert str(worst[0].block) == "10.0.0.0/24"

    def test_span_ecdf_only_multi_blocks(self):
        report = measure_block_colocality(
            locations(
                ("10.0.0.1", 0.0, 0.0),
                ("10.0.1.1", 0.0, 0.0),
                ("10.0.1.2", 0.0, 1.0),
            )
        )
        assert report.span_ecdf().n == 1


class TestErrorBound:
    def test_empty(self):
        report = measure_block_colocality({})
        bound = block_level_error_bound(report)
        assert bound["blocks"] == 0.0

    def test_oracle_bound_reflects_split_blocks(self):
        report = measure_block_colocality(
            locations(
                ("10.0.0.1", 32.78, -96.80),
                ("10.0.0.2", 52.37, 4.90),
            )
        )
        bound = block_level_error_bound(report)
        assert bound["blocks"] == 1.0
        assert bound["median_radius_km"] > 1000
        assert bound["over_city_range"] == 1.0


class TestScenarioIntegration:
    def test_world_blocks_mostly_but_not_fully_colocated(self, small_scenario):
        """The substrate's per-city address chunks make most /24s
        city-coherent, with a mixed-block tail — the §5.2.3 structure."""
        world = small_scenario.internet
        located = {
            interface.address: world.true_location(interface.address).location
            for interface in world.interfaces()
        }
        report = measure_block_colocality(located)
        assert report.multi_address_blocks > 20
        assert 0.2 < report.colocation_rate < 0.98
        bound = block_level_error_bound(report)
        # Some blocks cannot be served by any single city-level record.
        assert bound["over_city_range"] > 0.0

    def test_ground_truth_colocality(self, small_scenario):
        gt = {
            record.address: record.location
            for record in small_scenario.ground_truth
        }
        report = measure_block_colocality(gt)
        assert report.measured_blocks > 0
        # The ECDF is well-formed and bounded.
        ecdf = report.span_ecdf()
        if ecdf.n:
            assert 0.0 <= ecdf.fraction_within(40) <= 1.0
