"""Tests for RTT-proximity extraction and probe disqualification."""

import random

import pytest

from repro.atlas import ProbeLocationModel, deploy_probes, run_builtin_measurements
from repro.groundtruth import (
    GroundTruthSource,
    RttProximityConfig,
    build_rtt_ground_truth,
)


@pytest.fixture(scope="module")
def rtt_result(gt_campaign):
    return build_rtt_ground_truth(
        gt_campaign["measurements"], gt_campaign["probes"]
    )


class TestConfig:
    def test_thresholds(self):
        config = RttProximityConfig()
        assert config.proximity_km == pytest.approx(50.0)
        assert config.nearby_pair_km == pytest.approx(100.0)

    def test_one_ms_variant(self):
        config = RttProximityConfig(threshold_ms=1.0)
        assert config.proximity_km == pytest.approx(100.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            RttProximityConfig(threshold_ms=0)
        with pytest.raises(ValueError):
            RttProximityConfig(centroid_disqualify_km=-1)


class TestExtraction:
    def test_produces_addresses(self, rtt_result):
        assert rtt_result.stats.final_addresses == len(rtt_result.dataset) > 20

    def test_records_tagged_rtt(self, rtt_result):
        assert all(r.source is GroundTruthSource.RTT for r in rtt_result.dataset)

    def test_records_carry_probes(self, rtt_result):
        assert all(r.probe_ids for r in rtt_result.dataset)

    def test_accounting_consistent(self, rtt_result):
        stats = rtt_result.stats
        assert (
            stats.final_addresses
            == stats.candidate_addresses
            - stats.centroid_addresses_removed
            - stats.nearby_addresses_removed
        )

    def test_locations_near_truth(self, small_world, rtt_result):
        """The method's physical guarantee: surviving records sit within
        ~50 km (threshold) + probe jitter of the routers' true cities,
        except for undetected lying probes (a small residue, §3.2)."""
        errors = [
            record.location.distance_km(
                small_world.true_location(record.address).location
            )
            for record in rtt_result.dataset
        ]
        close = sum(1 for e in errors if e <= 60.0)
        assert close / len(errors) > 0.9

    def test_supporting_probes_match_records(self, rtt_result):
        for record in rtt_result.dataset:
            assert rtt_result.supporting_probes[record.address] == record.probe_ids


class TestCentroidFilter:
    def test_all_centroid_probes_removed(self, small_world):
        """With every probe on default coordinates, nothing survives."""
        rng = random.Random(3)
        model = ProbeLocationModel(default_centroid_rate=1.0, wrong_city_rate=0.0)
        probes = deploy_probes(small_world, 40, rng, model=model)
        from repro.atlas import select_builtin_targets

        targets = select_builtin_targets(small_world, 4, rng)
        measurements = run_builtin_measurements(small_world, probes, targets, rng)
        result = build_rtt_ground_truth(measurements, probes)
        assert result.stats.centroid_probes_removed == result.stats.candidate_probes
        assert result.stats.final_addresses == 0

    def test_filter_counts_present_in_default_campaign(self, rtt_result):
        # The default probe model plants ~1.5% centroid probes.
        assert rtt_result.stats.centroid_probes_removed >= 0


class TestNearbyFilter:
    def test_nearby_groups_exist(self, rtt_result):
        assert rtt_result.stats.nearby_groups > 0

    def test_disqualified_is_small_fraction(self, rtt_result):
        stats = rtt_result.stats
        if stats.nearby_probes_total:
            assert (
                stats.nearby_probes_disqualified / stats.nearby_probes_total < 0.2
            )

    def test_no_inconsistent_pairs_survive(self, gt_campaign, rtt_result):
        """After filtering, every RTT-nearby group must be internally
        consistent (all pairs within 100 km)."""
        probes_by_id = {p.probe_id: p for p in gt_campaign["probes"]}
        for record in rtt_result.dataset:
            locations = [
                probes_by_id[pid].reported_location for pid in record.probe_ids
            ]
            for i, a in enumerate(locations):
                for b in locations[i + 1 :]:
                    assert a.distance_km(b) <= 100.0 + 1e-6


class TestEdgeCases:
    def test_no_measurements(self, gt_campaign):
        result = build_rtt_ground_truth([], gt_campaign["probes"])
        assert result.stats.candidate_addresses == 0
        assert len(result.dataset) == 0

    def test_unknown_probe_ids_ignored(self, gt_campaign):
        result = build_rtt_ground_truth(gt_campaign["measurements"], ())
        assert len(result.dataset) == 0

    def test_stricter_threshold_yields_subset(self, gt_campaign):
        loose = build_rtt_ground_truth(
            gt_campaign["measurements"], gt_campaign["probes"],
            RttProximityConfig(threshold_ms=1.0),
        )
        strict = build_rtt_ground_truth(
            gt_campaign["measurements"], gt_campaign["probes"],
            RttProximityConfig(threshold_ms=0.3),
        )
        assert strict.stats.candidate_addresses <= loose.stats.candidate_addresses
