"""Tests for HLOC-style latency verification of DNS hints."""

import random

import pytest

from repro.dns import evolve
from repro.groundtruth import (
    HintVerdict,
    decode_hinted_addresses,
    verify_hints,
)


@pytest.fixture(scope="module")
def fresh_hints(small_scenario):
    """Hints decoded from the fresh (honest) rDNS snapshot."""
    return decode_hinted_addresses(
        small_scenario.ark_dataset.addresses,
        small_scenario.rdns,
        small_scenario.drop,
    )


class TestFreshHints:
    def test_hints_decoded(self, fresh_hints):
        assert len(fresh_hints) > 30

    def test_no_fresh_hint_refuted_by_honest_probes(self, small_scenario, fresh_hints):
        """Fresh hostnames are truthful; verification must not refute
        them except via the few lying probes."""
        report = verify_hints(
            fresh_hints, small_scenario.measurements, small_scenario.probes
        )
        assert len(report.results) == len(fresh_hints)
        total_constrained = report.confirmed + report.refuted
        if total_constrained:
            assert report.refuted / total_constrained < 0.25

    def test_confirmations_happen(self, small_scenario, fresh_hints):
        report = verify_hints(
            fresh_hints, small_scenario.measurements, small_scenario.probes
        )
        assert report.confirmed > 0

    def test_unverifiable_exists(self, small_scenario, fresh_hints):
        """Most hinted routers have no probe nearby — HLOC reports the
        same: verification coverage is the bottleneck."""
        report = verify_hints(
            fresh_hints, small_scenario.measurements, small_scenario.probes
        )
        assert report.unverifiable > 0
        assert (
            report.confirmed + report.refuted + report.unverifiable
            == len(report.results)
        )


class TestStaleHints:
    def test_verification_catches_moved_addresses(self, small_scenario):
        """Inject the §3.1 failure (stale hostnames after reassignment)
        and check that refutations concentrate on the moved addresses."""
        evolution = evolve(
            small_scenario.rdns,
            small_scenario.internet,
            small_scenario.hostname_factory,
            random.Random(77),
        )
        stale_hints = decode_hinted_addresses(
            small_scenario.ark_dataset.addresses,
            evolution.service,
            small_scenario.drop,
        )
        report = verify_hints(
            stale_hints, small_scenario.measurements, small_scenario.probes
        )
        moved = set(evolution.moved)
        refuted = set(report.refuted_addresses())
        if refuted:
            # Refutations should be dominated by genuinely moved addresses
            # (hint city changed under the router) plus lying probes.
            moved_share = len(refuted & moved) / len(refuted)
            assert moved_share > 0.4

    def test_confirmed_hints_are_mostly_truthful(self, small_scenario, fresh_hints=None):
        world = small_scenario.internet
        hints = decode_hinted_addresses(
            small_scenario.ark_dataset.addresses,
            small_scenario.rdns,
            small_scenario.drop,
        )
        report = verify_hints(hints, small_scenario.measurements, small_scenario.probes)
        good = 0
        for address in report.confirmed_addresses():
            true_city = world.true_location(address)
            if hints[address].location.distance_km(true_city.location) < 60:
                good += 1
        if report.confirmed:
            assert good / report.confirmed > 0.9


class TestEdgeCases:
    def test_empty_inputs(self, small_scenario):
        report = verify_hints({}, [], small_scenario.probes)
        assert report.results == ()
        assert report.confirmed == report.refuted == report.unverifiable == 0

    def test_no_measurements_means_unverifiable(self, small_scenario, fresh_hints):
        report = verify_hints(fresh_hints, [], small_scenario.probes)
        assert report.unverifiable == len(fresh_hints)

    def test_unknown_probe_ids_ignored(self, small_scenario, fresh_hints):
        report = verify_hints(fresh_hints, small_scenario.measurements, ())
        assert report.unverifiable == len(fresh_hints)
