"""Tests for Table-1 statistics and the §3 validation analyses."""

import random

import pytest

from repro.dns import evolve
from repro.geo import RIR
from repro.groundtruth import (
    GroundTruthSource,
    build_dns_ground_truth,
    build_rtt_ground_truth,
    compare_datasets,
    ground_truth_row,
    hostname_churn_report,
    merge_ground_truth,
    table1,
)
from repro.net import TeamCymruWhois


@pytest.fixture(scope="module")
def datasets(small_world, small_ark, gt_campaign):
    _, ark = small_ark
    dns = build_dns_ground_truth(
        ark.addresses, gt_campaign["rdns"], gt_campaign["drop"]
    ).dataset
    rtt = build_rtt_ground_truth(
        gt_campaign["measurements"], gt_campaign["probes"]
    ).dataset
    return dns, rtt


class TestTable1:
    def test_rows(self, small_world, datasets):
        dns, rtt = datasets
        whois = TeamCymruWhois(small_world.registry)
        row_dns, row_rtt = table1(dns, rtt, whois)
        assert row_dns.label == "DNS-based"
        assert row_dns.total == len(dns)
        assert sum(row_dns.per_rir.values()) == row_dns.total
        assert sum(row_rtt.per_rir.values()) == row_rtt.total

    def test_rtt_spans_more_countries_per_address(self, small_world, datasets):
        dns, rtt = datasets
        whois = TeamCymruWhois(small_world.registry)
        row_dns = ground_truth_row("DNS-based", dns, whois)
        row_rtt = ground_truth_row("RTT-proximity", rtt, whois)
        # Probes are everywhere; GT domains are US/EU carriers — the RTT
        # set is geographically broader relative to its size (Table 1:
        # 118 countries from 4.8 K vs 53 from 11.9 K).
        assert row_rtt.countries / max(1, row_rtt.total) > row_dns.countries / max(
            1, row_dns.total
        )

    def test_dns_is_arin_heavy(self, small_world, datasets):
        dns, _ = datasets
        whois = TeamCymruWhois(small_world.registry)
        row = ground_truth_row("DNS-based", dns, whois)
        assert row.per_rir[RIR.ARIN] == max(row.per_rir.values())

    def test_render(self, small_world, datasets):
        dns, _ = datasets
        whois = TeamCymruWhois(small_world.registry)
        text = ground_truth_row("DNS-based", dns, whois).render()
        assert "DNS-based" in text and "ARIN=" in text


class TestOverlapComparison:
    def test_dns_vs_rtt_agreement(self, datasets):
        """§3.1: the two methods agree on their common addresses."""
        dns, rtt = datasets
        comparison = compare_datasets("DNS-based", dns, "RTT-proximity", rtt)
        if comparison.common == 0:
            pytest.skip("no overlap in this small campaign")
        assert comparison.fraction_within(60.0) > 0.9

    def test_self_comparison_is_zero(self, datasets):
        dns, _ = datasets
        comparison = compare_datasets("a", dns, "b", dns)
        assert comparison.common == len(dns)
        assert comparison.max_distance() == 0.0
        assert comparison.fraction_within(0.001) == 1.0

    def test_disjoint_comparison(self, datasets):
        dns, rtt = datasets
        only_rtt = [r for r in rtt if dns.get(r.address) is None]
        from repro.groundtruth import GroundTruthSet

        comparison = compare_datasets("a", dns, "b", GroundTruthSet(only_rtt))
        assert comparison.common == 0
        assert comparison.fraction_within(40) == 0.0


class TestHostnameChurn:
    def test_report_shape(self, small_world, datasets, gt_campaign):
        dns, _ = datasets
        evolution = evolve(
            gt_campaign["rdns"], small_world, gt_campaign["factory"], random.Random(8)
        )
        report = hostname_churn_report(
            dns, gt_campaign["rdns"], evolution.service, gt_campaign["drop"]
        )
        assert report.total == len(dns)
        assert (
            report.same_hostname + report.changed_hostname + report.no_rdns
            == report.total
        )
        assert (
            report.same_location + report.different_location + report.no_rule_match
            == report.changed_hostname
        )

    def test_fractions_mirror_paper(self, small_world, datasets, gt_campaign):
        """§3.1 over 16 months: ~69% kept, ~24% changed, ~7% gone; of the
        changed, roughly two-thirds kept their location."""
        dns, _ = datasets
        evolution = evolve(
            gt_campaign["rdns"], small_world, gt_campaign["factory"], random.Random(8)
        )
        report = hostname_churn_report(
            dns, gt_campaign["rdns"], evolution.service, gt_campaign["drop"]
        )
        # Tolerances are wide: the small fixture's DNS-based set is ~100
        # addresses, so binomial noise is a few percentage points.
        assert report.same_hostname / report.total == pytest.approx(0.691, abs=0.13)
        assert report.no_rdns / report.total == pytest.approx(0.069, abs=0.07)
        if report.changed_hostname >= 20:
            assert report.same_location / report.changed_hostname == pytest.approx(
                0.677, abs=0.25
            )
        assert 0.0 < report.moved_fraction_of_all < 0.2

    def test_merged_set_prefers_dns(self, datasets):
        dns, rtt = datasets
        merged = merge_ground_truth(dns, rtt)
        for record in merged:
            if dns.get(record.address) is not None:
                assert record.source is GroundTruthSource.DNS
