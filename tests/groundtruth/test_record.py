"""Tests for ground-truth containers and merging."""

import pytest

from repro.geo import GeoPoint
from repro.groundtruth import (
    GroundTruthRecord,
    GroundTruthSet,
    GroundTruthSource,
    merge_ground_truth,
)
from repro.net import parse_address


def rec(address, lat=10.0, lon=20.0, country="US", source=GroundTruthSource.DNS):
    return GroundTruthRecord(
        address=parse_address(address),
        location=GeoPoint(lat, lon),
        country=country,
        source=source,
    )


class TestGroundTruthSet:
    def test_from_list(self):
        dataset = GroundTruthSet([rec("10.0.0.1"), rec("10.0.0.2")])
        assert len(dataset) == 2
        assert parse_address("10.0.0.1") in dataset

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            GroundTruthSet([rec("10.0.0.1"), rec("10.0.0.1")])

    def test_iteration_in_address_order(self):
        dataset = GroundTruthSet([rec("10.0.0.9"), rec("10.0.0.1")])
        assert [str(r.address) for r in dataset] == ["10.0.0.1", "10.0.0.9"]

    def test_get_miss(self):
        dataset = GroundTruthSet([rec("10.0.0.1")])
        assert dataset.get(parse_address("10.0.0.2")) is None

    def test_by_source(self):
        dataset = GroundTruthSet(
            [
                rec("10.0.0.1", source=GroundTruthSource.DNS),
                rec("10.0.0.2", source=GroundTruthSource.RTT),
            ]
        )
        assert len(dataset.by_source(GroundTruthSource.DNS)) == 1
        assert len(dataset.by_source(GroundTruthSource.RTT)) == 1

    def test_countries_and_coordinates(self):
        dataset = GroundTruthSet(
            [
                rec("10.0.0.1", lat=1, lon=1, country="US"),
                rec("10.0.0.2", lat=1, lon=1, country="US"),
                rec("10.0.0.3", lat=2, lon=2, country="DE"),
            ]
        )
        assert dataset.countries() == {"US", "DE"}
        assert len(dataset.unique_coordinates()) == 2


class TestMerge:
    def test_dns_wins_on_overlap(self):
        dns = GroundTruthSet([rec("10.0.0.1", lat=1, lon=1, source=GroundTruthSource.DNS)])
        rtt = GroundTruthSet(
            [
                rec("10.0.0.1", lat=9, lon=9, source=GroundTruthSource.RTT),
                rec("10.0.0.2", source=GroundTruthSource.RTT),
            ]
        )
        merged = merge_ground_truth(dns, rtt)
        assert len(merged) == 2
        overlap = merged.get(parse_address("10.0.0.1"))
        assert overlap.source is GroundTruthSource.DNS
        assert overlap.location == GeoPoint(1, 1)

    def test_disjoint_union(self):
        dns = GroundTruthSet([rec("10.0.0.1")])
        rtt = GroundTruthSet([rec("10.0.0.2", source=GroundTruthSource.RTT)])
        assert len(merge_ground_truth(dns, rtt)) == 2
