"""Tests for ground-truth dataset serialization."""

import pytest

from repro.geo import GeoPoint
from repro.groundtruth import (
    GroundTruthFormatError,
    GroundTruthRecord,
    GroundTruthSet,
    GroundTruthSource,
    export_ground_truth_csv,
    import_ground_truth_csv,
)
from repro.net import parse_address


@pytest.fixture()
def dataset():
    return GroundTruthSet(
        [
            GroundTruthRecord(
                address=parse_address("10.0.0.1"),
                location=GeoPoint(32.78, -96.8),
                country="US",
                source=GroundTruthSource.DNS,
                domain="ntt.net",
            ),
            GroundTruthRecord(
                address=parse_address("10.0.1.1"),
                location=GeoPoint(52.37, 4.9),
                country="NL",
                source=GroundTruthSource.RTT,
                probe_ids=(10001, 10002),
            ),
        ]
    )


class TestRoundTrip:
    def test_full_round_trip(self, dataset):
        text = export_ground_truth_csv(dataset)
        copy = import_ground_truth_csv(text)
        assert len(copy) == len(dataset)
        for record in dataset:
            loaded = copy.get(record.address)
            assert loaded is not None
            assert loaded.country == record.country
            assert loaded.source is record.source
            assert loaded.domain == record.domain
            assert loaded.probe_ids == record.probe_ids
            assert loaded.location.distance_km(record.location) < 0.01

    def test_header_first(self, dataset):
        first = export_ground_truth_csv(dataset).splitlines()[0]
        assert first.startswith("address,latitude,longitude")

    def test_scenario_dataset_round_trips(self, small_scenario):
        dataset = small_scenario.ground_truth
        copy = import_ground_truth_csv(export_ground_truth_csv(dataset))
        assert copy.addresses() == dataset.addresses()
        assert copy.countries() == dataset.countries()


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(GroundTruthFormatError):
            import_ground_truth_csv("")

    def test_bad_header(self):
        with pytest.raises(GroundTruthFormatError):
            import_ground_truth_csv("a,b,c\n")

    def test_bad_source(self, dataset):
        text = export_ground_truth_csv(dataset).replace("dns-based", "psychic")
        with pytest.raises(GroundTruthFormatError):
            import_ground_truth_csv(text)

    def test_bad_coordinates(self, dataset):
        text = export_ground_truth_csv(dataset).replace("32.78000", "932.78")
        with pytest.raises(GroundTruthFormatError):
            import_ground_truth_csv(text)

    def test_bad_address(self, dataset):
        text = export_ground_truth_csv(dataset).replace("10.0.0.1", "not-an-ip")
        with pytest.raises(GroundTruthFormatError):
            import_ground_truth_csv(text)

    def test_short_row(self):
        header = "address,latitude,longitude,country,source,domain,probe_ids"
        with pytest.raises(GroundTruthFormatError):
            import_ground_truth_csv(header + "\n10.0.0.1,1.0\n")

    def test_duplicate_address(self, dataset):
        text = export_ground_truth_csv(dataset)
        duplicated = text + text.splitlines()[1] + "\n"
        with pytest.raises(GroundTruthFormatError):
            import_ground_truth_csv(duplicated)
