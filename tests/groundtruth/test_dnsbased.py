"""Tests for DNS-based ground-truth extraction."""

import pytest

from repro.groundtruth import GroundTruthSource, build_dns_ground_truth


@pytest.fixture(scope="module")
def dns_result(small_world, small_ark, gt_campaign):
    _, dataset = small_ark
    return build_dns_ground_truth(
        dataset.addresses, gt_campaign["rdns"], gt_campaign["drop"]
    )


class TestFunnel:
    def test_funnel_is_monotone(self, dns_result):
        stats = dns_result.stats
        assert (
            stats.input_addresses
            >= stats.with_hostnames
            >= stats.in_ground_truth_domains
            >= stats.geolocated
            > 0
        )

    def test_hostname_rate_partial(self, dns_result):
        # The paper saw ~55% of Ark addresses with hostnames.
        assert 0.3 < dns_result.stats.hostname_rate < 0.95

    def test_per_domain_counts_sum_to_total(self, dns_result):
        stats = dns_result.stats
        assert sum(stats.per_domain.values()) == stats.geolocated

    def test_only_ground_truth_domains_appear(self, dns_result, gt_campaign):
        assert set(dns_result.stats.per_domain) <= set(gt_campaign["drop"].domains)

    def test_cogent_is_largest_contributor(self, dns_result):
        # Cogent dominates the paper's DNS-based set (6,462 of 11,857).
        per_domain = dns_result.stats.per_domain
        if "cogentco.com" in per_domain:
            assert per_domain["cogentco.com"] == max(per_domain.values())


class TestRecords:
    def test_records_tagged_dns(self, dns_result):
        assert all(r.source is GroundTruthSource.DNS for r in dns_result.dataset)

    def test_records_carry_domain(self, dns_result):
        assert all(r.domain is not None for r in dns_result.dataset)

    def test_locations_are_true_locations(self, small_world, dns_result):
        """Fresh hostnames decode to the routers' actual cities — this is
        what makes the method ground truth."""
        for record in dns_result.dataset:
            true_city = small_world.true_location(record.address)
            assert record.location.distance_km(true_city.location) < 1.0

    def test_countries_match_truth(self, small_world, dns_result):
        for record in dns_result.dataset:
            assert record.country == small_world.true_location(record.address).country

    def test_subset_of_input(self, small_ark, dns_result):
        _, dataset = small_ark
        assert set(dns_result.dataset.addresses()) <= set(dataset.addresses)

    def test_transit_dominated(self, small_world, dns_result):
        transit = sum(
            1
            for r in dns_result.dataset
            if small_world.router_of(r.address).autonomous_system.is_transit
        )
        # Paper: 99.9% of DNS-based addresses announced by transit ASes.
        assert transit / len(dns_result.dataset) > 0.95


class TestEdgeCases:
    def test_empty_input(self, gt_campaign):
        result = build_dns_ground_truth([], gt_campaign["rdns"], gt_campaign["drop"])
        assert len(result.dataset) == 0
        assert result.stats.input_addresses == 0
        assert result.stats.hostname_rate == 0.0

    def test_duplicates_deduplicated(self, small_ark, gt_campaign):
        _, dataset = small_ark
        doubled = list(dataset.addresses[:50]) * 2
        result = build_dns_ground_truth(doubled, gt_campaign["rdns"], gt_campaign["drop"])
        assert result.stats.input_addresses == 50
