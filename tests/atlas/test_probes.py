"""Tests for Atlas probe deployment and the location-error model."""

import random

import pytest

from repro.atlas import AtlasProbe, ProbeLocationModel, deploy_probes
from repro.geo import COUNTRIES, GeoPoint, RIR, rir_for_country


@pytest.fixture(scope="module")
def probes(request):
    world = request.getfixturevalue("small_world")
    return deploy_probes(world, 300, random.Random(21))


class TestDeployment:
    def test_count(self, probes):
        assert len(probes) == 300

    def test_ids_unique(self, probes):
        ids = [p.probe_id for p in probes]
        assert len(ids) == len(set(ids))

    def test_probes_attach_to_stub_access_routers(self, small_world, probes):
        for probe in probes[:50]:
            router = small_world.routers[probe.router_id]
            assert router.role == "access"
            assert not router.autonomous_system.is_transit

    def test_ripencc_is_densest_region(self, probes):
        by_region = {rir: 0 for rir in RIR}
        for probe in probes:
            by_region[rir_for_country(probe.city.country)] += 1
        assert by_region[RIR.RIPENCC] == max(by_region.values())

    def test_true_location_near_host_city(self, probes):
        for probe in probes:
            assert probe.true_location.distance_km(probe.city.location) <= 5.001

    def test_most_probes_report_accurately(self, probes):
        accurate = sum(1 for p in probes if p.location_error_km < 10)
        assert accurate / len(probes) > 0.9

    def test_some_probes_lie(self, probes):
        # With 300 probes and ~3.7% combined error rate, expect liars.
        assert any(p.location_error_km > 100 for p in probes)

    def test_zero_count_rejected(self, small_world):
        with pytest.raises(ValueError):
            deploy_probes(small_world, 0, random.Random(1))

    def test_deterministic(self, small_world):
        a = deploy_probes(small_world, 50, random.Random(9))
        b = deploy_probes(small_world, 50, random.Random(9))
        assert [(p.probe_id, p.router_id, p.reported_location) for p in a] == [
            (p.probe_id, p.router_id, p.reported_location) for p in b
        ]


class TestLocationModel:
    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            ProbeLocationModel(default_centroid_rate=0.9, wrong_city_rate=0.2)
        with pytest.raises(ValueError):
            ProbeLocationModel(correct_jitter_km=-1)

    def test_default_centroid_probes_sit_on_centroids(self, small_world):
        model = ProbeLocationModel(default_centroid_rate=1.0, wrong_city_rate=0.0)
        probes = deploy_probes(small_world, 40, random.Random(2), model=model)
        for probe in probes:
            country = COUNTRIES.get(probe.city.country)
            centroid = GeoPoint(country.centroid_lat, country.centroid_lon)
            assert probe.reported_location.distance_km(centroid) < 0.001

    def test_wrong_city_probes_report_elsewhere(self, small_world):
        model = ProbeLocationModel(default_centroid_rate=0.0, wrong_city_rate=1.0)
        probes = deploy_probes(small_world, 40, random.Random(2), model=model)
        for probe in probes:
            # Reported location is some other city, typically far away.
            assert probe.reported_location.distance_km(probe.city.location) > 3.0

    def test_all_correct_when_rates_zero(self, small_world):
        model = ProbeLocationModel(default_centroid_rate=0.0, wrong_city_rate=0.0)
        probes = deploy_probes(small_world, 40, random.Random(2), model=model)
        assert all(p.location_error_km < 2.0 for p in probes)
