"""Tests for built-in measurements and the Atlas JSON codec."""

import json
import random

import pytest

from repro.atlas import (
    BuiltinMeasurement,
    MeasurementParseError,
    deploy_probes,
    parse_json_lines,
    run_builtin_measurements,
    select_builtin_targets,
    to_json_lines,
)
from repro.topology import propagation_rtt_ms


@pytest.fixture(scope="module")
def campaign(request):
    world = request.getfixturevalue("small_world")
    rng = random.Random(31)
    probes = deploy_probes(world, 60, rng)
    targets = select_builtin_targets(world, 6, rng)
    measurements = run_builtin_measurements(world, probes, targets, rng)
    return world, probes, targets, measurements


class TestTargets:
    def test_count_and_uniqueness(self, small_world):
        targets = select_builtin_targets(small_world, 8, random.Random(1))
        assert len(targets) == 8
        assert len(set(targets)) == 8

    def test_targets_are_transit_interfaces(self, small_world):
        for target in select_builtin_targets(small_world, 8, random.Random(1)):
            assert small_world.router_of(target).autonomous_system.is_transit

    def test_zero_rejected(self, small_world):
        with pytest.raises(ValueError):
            select_builtin_targets(small_world, 0, random.Random(1))


class TestCampaign:
    def test_one_measurement_per_probe_target_pair(self, campaign):
        _, probes, targets, measurements = campaign
        assert len(measurements) == len(probes) * len(targets)

    def test_hops_have_up_to_three_replies(self, campaign):
        _, _, _, measurements = campaign
        assert all(
            len(hop.replies) in (0, 3)
            for m in measurements
            for hop in m.hops
        )

    def test_min_rtt_respects_physics(self, campaign):
        """min RTT to a hop ≥ propagation time from the probe's true spot."""
        world, probes, _, measurements = campaign
        probe_by_id = {p.probe_id: p for p in probes}
        for measurement in measurements[:200]:
            probe = probe_by_id[measurement.probe_id]
            for hop in measurement.hops:
                rtt = hop.min_rtt_ms()
                if rtt is None:
                    continue
                hop_city = world.router_of(hop.replies[0].from_address).city
                direct_km = probe.true_location.distance_km(hop_city.location)
                assert rtt >= propagation_rtt_ms(direct_km) - 0.35

    def test_some_first_hops_within_half_millisecond(self, campaign):
        """The raw material of the RTT-proximity ground truth must exist."""
        _, _, _, measurements = campaign
        close = sum(
            1
            for m in measurements
            for hop in m.hops
            if hop.min_rtt_ms() is not None and hop.min_rtt_ms() <= 0.5
        )
        assert close > 20

    def test_rejects_empty_inputs(self, small_world):
        rng = random.Random(1)
        probes = deploy_probes(small_world, 2, rng)
        targets = select_builtin_targets(small_world, 2, rng)
        with pytest.raises(ValueError):
            run_builtin_measurements(small_world, (), targets, rng)
        with pytest.raises(ValueError):
            run_builtin_measurements(small_world, probes, (), rng)
        with pytest.raises(ValueError):
            run_builtin_measurements(small_world, probes, targets, rng, attempts=0)


class TestJsonCodec:
    def test_round_trip(self, campaign):
        _, _, _, measurements = campaign
        sample = measurements[:25]
        text = to_json_lines(sample)
        parsed = parse_json_lines(text)
        assert parsed == sample

    def test_atlas_shape(self, campaign):
        _, _, _, measurements = campaign
        payload = json.loads(to_json_lines(measurements[:1]))
        assert {"msm_id", "prb_id", "dst_addr", "result"} <= set(payload)
        assert all("hop" in entry for entry in payload["result"])

    def test_stars_serialize_and_parse(self, campaign):
        _, _, _, measurements = campaign
        starred = next(
            (m for m in measurements if any(not h.replies for h in m.hops)), None
        )
        if starred is None:
            pytest.skip("no lossy hop in sample")
        reparsed = parse_json_lines(to_json_lines([starred]))[0]
        assert reparsed == starred

    def test_malformed_line_raises(self):
        with pytest.raises(MeasurementParseError):
            parse_json_lines('{"nonsense": true}')

    def test_malformed_line_skipped_when_asked(self, campaign):
        _, _, _, measurements = campaign
        text = to_json_lines(measurements[:2]) + '\nnot json at all\n'
        parsed = parse_json_lines(text, skip_malformed=True)
        assert len(parsed) == 2

    def test_blank_lines_ignored(self, campaign):
        _, _, _, measurements = campaign
        text = "\n\n" + to_json_lines(measurements[:1]) + "\n\n"
        assert len(parse_json_lines(text)) == 1

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(MeasurementParseError):
            BuiltinMeasurement.from_dict({"msm_id": "x"})
