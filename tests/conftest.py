"""Shared fixtures: small synthetic worlds reused across test modules.

World construction is the expensive part of most integration tests, so a
handful of session-scoped worlds are built once.  Tests must treat them as
read-only.
"""

import random

import pytest

from repro.topology import (
    SyntheticInternet,
    TopologyBuilder,
    TopologyConfig,
    TracerouteEngine,
    collect_topology,
    place_monitors,
)


@pytest.fixture(scope="session")
def small_config() -> TopologyConfig:
    """~600-router world: big enough for paths, small enough for speed."""
    return TopologyConfig(seed=7).scaled(0.05)


@pytest.fixture(scope="session")
def small_world(small_config) -> SyntheticInternet:
    return TopologyBuilder(small_config).build()


@pytest.fixture(scope="session")
def gt_campaign(small_world):
    """A full ground-truth-capable measurement campaign: rDNS snapshot,
    Atlas probes, and built-in measurements over the small world."""
    import random as _random

    from repro.atlas import (
        deploy_probes,
        run_builtin_measurements,
        select_builtin_targets,
    )
    from repro.dns import DropEngine, HintDictionary, HostnameFactory, RdnsService

    rng = _random.Random(17)
    hints = HintDictionary(small_world.gazetteer)
    factory = HostnameFactory(hints)
    rdns = RdnsService.build(small_world, factory, rng)
    probes = deploy_probes(small_world, 250, rng)
    targets = select_builtin_targets(small_world, 8, rng)
    measurements = run_builtin_measurements(small_world, probes, targets, rng)
    return {
        "hints": hints,
        "factory": factory,
        "rdns": rdns,
        "drop": DropEngine.with_ground_truth_rules(hints),
        "probes": probes,
        "targets": targets,
        "measurements": measurements,
    }


@pytest.fixture(scope="session")
def small_scenario():
    """A fully-assembled scenario at test scale."""
    from repro.scenario.build import build_scenario

    return build_scenario(seed=2016, scale=0.08)


@pytest.fixture(scope="session")
def study_result(small_scenario):
    """The complete study over the small scenario.

    ``all_databases=True`` runs the §5.2.3 ARIN case study for every
    snapshot (the default studies only ``case_study_database``), since
    several tests compare the cases across vendors.
    """
    from repro.core.pipeline import RouterGeolocationStudy

    return RouterGeolocationStudy.from_scenario(small_scenario).run(
        all_databases=True
    )


@pytest.fixture(scope="session")
def probe_addresses(small_scenario):
    """A demanding probe set: every Ark address, every prefix edge
    (first/last covered address and one beyond each), plus a spread of
    pseudorandom addresses across the whole space.

    Shared by the serving-layer index tests and the columnar-frame
    equivalence tests — both must answer it byte-identically to the
    hash-table engine."""
    import random

    addresses = {int(address) for address in small_scenario.ark_dataset.addresses}
    for database in small_scenario.databases.values():
        for entry in database.entries():
            start = int(entry.prefix.network_address)
            end = start + entry.prefix.num_addresses
            addresses.update(
                (start, end - 1, max(0, start - 1), min(2**32 - 1, end))
            )
    rng = random.Random(20160806)
    addresses.update(rng.randrange(2**32) for _ in range(20_000))
    addresses.update((0, 2**32 - 1))
    return sorted(addresses)


@pytest.fixture(scope="session")
def small_ark(small_world):
    """An Ark campaign over the small world (monitors + dataset)."""
    rng = random.Random(11)
    monitors = place_monitors(small_world, 12, rng)
    engine = TracerouteEngine(small_world, rng)
    dataset = collect_topology(small_world, monitors, 400, rng, engine=engine)
    return monitors, dataset
