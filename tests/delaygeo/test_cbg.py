"""Tests for constraint-based (delay) geolocation."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.delaygeo import (
    BASELINE,
    BASELINE_MS_PER_KM,
    Bestline,
    CbgGeolocator,
    DelayMeasurement,
    Landmark,
    calibration_matrix,
    fit_bestline,
    fit_bestlines,
    measure_targets,
    select_landmarks,
)
from repro.geo import GeoPoint
from repro.net import parse_address
from repro.topology import propagation_rtt_ms


def landmark(lid, lat, lon, router_id=0):
    return Landmark(landmark_id=lid, router_id=router_id, location=GeoPoint(lat, lon))


def measurement(lm, rtt, target="203.0.113.1"):
    return DelayMeasurement(landmark=lm, target=parse_address(target), min_rtt_ms=rtt)


class TestBestline:
    def test_empty_training_is_baseline(self):
        assert fit_bestline([]) == BASELINE

    def test_baseline_conversion(self):
        # 1 ms RTT → at most 100 km.
        assert BASELINE.distance_km(1.0) == pytest.approx(100.0)

    def test_negative_rtt_clamped(self):
        assert BASELINE.distance_km(-5.0) == 0.0

    def test_single_point(self):
        line = fit_bestline([(100.0, 2.0)])
        assert line.slope_ms_per_km >= BASELINE_MS_PER_KM

    def test_fitted_line_lies_below_training_points(self):
        rng = random.Random(3)
        training = [
            (d, propagation_rtt_ms(d) * rng.uniform(1.2, 2.5) + rng.uniform(0, 1))
            for d in range(100, 5000, 137)
        ]
        line = fit_bestline(training)
        for distance, rtt in training:
            assert line.slope_ms_per_km * distance + line.intercept_ms <= rtt + 1e-6

    def test_fitted_distances_cover_training_distances(self):
        """Soundness on the training set: converted distance bounds never
        under-cover a training pair's true distance."""
        rng = random.Random(4)
        training = [
            (d, propagation_rtt_ms(d) * rng.uniform(1.1, 2.0))
            for d in range(50, 4000, 97)
        ]
        line = fit_bestline(training)
        for distance, rtt in training:
            assert line.distance_km(rtt) >= distance - 1e-6

    def test_physically_impossible_slopes_rejected(self):
        # Points below the light line can't happen physically; a fit over
        # such data must fall back to the baseline, not go sub-light.
        line = fit_bestline([(1000.0, 1.0), (2000.0, 2.0)])
        assert line.slope_ms_per_km >= BASELINE_MS_PER_KM

    @given(
        st.lists(
            st.tuples(
                st.floats(1, 10000, allow_nan=False),
                st.floats(0.01, 500, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_fit_never_crashes_and_slope_sound(self, pairs):
        line = fit_bestline(pairs)
        assert line.slope_ms_per_km >= BASELINE_MS_PER_KM
        assert line.intercept_ms >= 0.0

    def test_fit_bestlines_per_landmark(self):
        matrix = {1: [(100.0, 2.0)], 2: []}
        lines = fit_bestlines(matrix)
        assert set(lines) == {1, 2}
        assert lines[2] == BASELINE


class TestGeolocator:
    def test_requires_measurements(self):
        with pytest.raises(ValueError):
            CbgGeolocator().geolocate([])

    def test_single_tight_constraint_lands_near_landmark(self):
        lm = landmark(1, 48.86, 2.35)  # Paris
        estimate = CbgGeolocator().geolocate([measurement(lm, 0.2)])
        assert estimate.location.distance_km(lm.location) < 25.0
        assert estimate.feasible

    def test_triangulation_improves_on_single_landmark(self):
        # Target at Brussels, landmarks at Paris/Amsterdam/Frankfurt.
        target = GeoPoint(50.85, 4.35)
        landmarks = [
            landmark(1, 48.86, 2.35),
            landmark(2, 52.37, 4.90),
            landmark(3, 50.11, 8.68),
        ]
        measurements = [
            measurement(lm, propagation_rtt_ms(lm.location.distance_km(target)) * 1.05)
            for lm in landmarks
        ]
        estimate = CbgGeolocator().geolocate(measurements)
        assert estimate.location.distance_km(target) < 120.0
        assert estimate.landmarks_used == 3

    def test_infeasible_constraints_reported(self):
        # Two tiny disks an ocean apart cannot intersect.
        measurements = [
            measurement(landmark(1, 40.71, -74.0), 0.1),
            measurement(landmark(2, 51.51, -0.13), 0.1),
        ]
        estimate = CbgGeolocator().geolocate(measurements)
        assert not estimate.feasible
        assert estimate.residual_km > 1000

    def test_constraints_capped_at_physical_bound(self):
        lm = landmark(1, 0.0, 0.0)
        geolocator = CbgGeolocator({1: Bestline(slope_ms_per_km=0.01, intercept_ms=50.0)})
        # intercept > rtt would give a negative calibrated distance; the
        # physical cap keeps the radius meaningful.
        disks = geolocator.constraints([measurement(lm, 10.0)])
        assert disks[0][1] == 0.0  # calibrated collapses to zero
        geolocator2 = CbgGeolocator()
        disks2 = geolocator2.constraints([measurement(lm, 10.0)])
        assert disks2[0][1] == pytest.approx(1000.0)

    def test_geolocate_all_skips_empty(self):
        lm = landmark(1, 0.0, 0.0)
        results = CbgGeolocator().geolocate_all(
            {"a": [measurement(lm, 1.0)], "b": []}
        )
        assert set(results) == {"a"}


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def campaign(self, small_scenario):
        rng = random.Random(5)
        landmarks = select_landmarks(small_scenario.probes, 40, rng)
        records = list(small_scenario.ground_truth)[:40]
        measurements = measure_targets(
            small_scenario.internet,
            landmarks,
            [r.address for r in records],
            rng,
        )
        return small_scenario, landmarks, records, measurements

    def test_landmark_selection(self, small_scenario):
        landmarks = select_landmarks(small_scenario.probes, 10, random.Random(1))
        assert len(landmarks) == 10
        assert len({lm.landmark_id for lm in landmarks}) == 10
        with pytest.raises(ValueError):
            select_landmarks(small_scenario.probes, 0, random.Random(1))

    def test_measurements_respect_physics(self, campaign):
        scenario, landmarks, records, measurements = campaign
        world = scenario.internet
        for per_target in list(measurements.values())[:10]:
            for m in per_target:
                true_city = world.true_location(m.target)
                direct = m.landmark.location.distance_km(true_city.location)
                assert m.min_rtt_ms >= propagation_rtt_ms(direct) - 0.35

    def test_cbg_baseline_beats_random_guessing(self, campaign):
        scenario, landmarks, records, measurements = campaign
        truth = {r.address: r.location for r in records}
        estimates = CbgGeolocator().geolocate_all(measurements)
        assert len(estimates) > 20
        errors = sorted(
            e.location.distance_km(truth[t]) for t, e in estimates.items()
        )
        median = errors[len(errors) // 2]
        assert median < 800.0  # country-scale localization

    def test_calibration_matrix_shape(self, campaign):
        scenario, landmarks, _, _ = campaign
        matrix = calibration_matrix(
            scenario.internet, landmarks[:6], random.Random(2)
        )
        assert set(matrix) == {lm.landmark_id for lm in landmarks[:6]}
        for pairs in matrix.values():
            for distance, rtt in pairs:
                assert distance >= 0 and rtt > 0

    def test_measure_targets_validation(self, small_scenario):
        with pytest.raises(ValueError):
            measure_targets(small_scenario.internet, [], [], random.Random(1))
