"""Determinism and distribution tests for the Zipf workload generator."""

from __future__ import annotations

from collections import Counter
from ipaddress import IPv4Address, IPv4Network

import pytest

from repro.loadgen import MISS_PREFIX, WorkloadConfig, ZipfWorkload

POOL = [f"10.{i // 256}.{i % 256}.1" for i in range(300)]
MISS_NET = IPv4Network(MISS_PREFIX)


class TestDeterminism:
    def test_same_seed_and_config_identical_stream(self):
        config = WorkloadConfig(seed=42, zipf_s=1.2, miss_fraction=0.1)
        first = ZipfWorkload(POOL, config).take(5_000)
        second = ZipfWorkload(POOL, config).take(5_000)
        assert first == second

    def test_different_seed_different_stream(self):
        first = ZipfWorkload(POOL, WorkloadConfig(seed=1)).take(200)
        second = ZipfWorkload(POOL, WorkloadConfig(seed=2)).take(200)
        assert first != second

    def test_stream_continues_deterministically_across_take_calls(self):
        config = WorkloadConfig(seed=9)
        split = ZipfWorkload(POOL, config)
        joined = ZipfWorkload(POOL, config)
        assert split.take(100) + split.take(100) == joined.take(200)

    def test_popularity_decoupled_from_address_order(self):
        # The hottest rank should not simply be the numerically smallest
        # pool address — the pool is shuffled before ranks are assigned.
        workload = ZipfWorkload(POOL, WorkloadConfig(seed=3, zipf_s=1.5))
        assert workload.pool[0] != sorted(POOL)[0]


class TestZipfShape:
    def test_empirical_frequencies_match_exponent(self):
        s = 1.1
        workload = ZipfWorkload(POOL, WorkloadConfig(seed=7, zipf_s=s))
        draws = workload.take(60_000)
        counts = Counter(draws)
        for rank in range(4):
            expected = workload.expected_share(rank)
            observed = counts[workload.pool[rank]] / len(draws)
            assert observed == pytest.approx(expected, rel=0.15), rank

    def test_rank_ratio_follows_power_law(self):
        s = 1.3
        workload = ZipfWorkload(POOL, WorkloadConfig(seed=11, zipf_s=s))
        counts = Counter(workload.take(80_000))
        ratio = counts[workload.pool[0]] / counts[workload.pool[1]]
        assert ratio == pytest.approx(2.0**s, rel=0.2)

    def test_zero_exponent_is_uniform(self):
        pool = POOL[:20]
        counts = Counter(
            ZipfWorkload(pool, WorkloadConfig(seed=5, zipf_s=0.0)).take(40_000)
        )
        shares = [counts[address] / 40_000 for address in pool]
        assert max(shares) / min(shares) < 1.35


class TestMissTraffic:
    def test_miss_fraction_observed(self):
        workload = ZipfWorkload(POOL, WorkloadConfig(seed=13, miss_fraction=0.25))
        draws = workload.take(20_000)
        misses = sum(1 for a in draws if IPv4Address(a) in MISS_NET)
        assert misses / len(draws) == pytest.approx(0.25, abs=0.02)

    def test_misses_never_collide_with_pool(self):
        workload = ZipfWorkload(POOL, WorkloadConfig(seed=13, miss_fraction=0.5))
        pool = set(workload.pool)
        for address in workload.take(5_000):
            in_miss = IPv4Address(address) in MISS_NET
            assert in_miss != (address in pool)

    def test_all_miss_stream(self):
        workload = ZipfWorkload(POOL, WorkloadConfig(seed=1, miss_fraction=1.0))
        assert all(IPv4Address(a) in MISS_NET for a in workload.take(500))


class TestValidation:
    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            ZipfWorkload([], WorkloadConfig())

    def test_bad_addresses_rejected(self):
        with pytest.raises(ValueError, match="not an IPv4 address"):
            ZipfWorkload(["not-an-ip"], WorkloadConfig())

    def test_config_bounds(self):
        with pytest.raises(ValueError, match="zipf_s"):
            WorkloadConfig(zipf_s=-0.1)
        with pytest.raises(ValueError, match="miss_fraction"):
            WorkloadConfig(miss_fraction=1.5)
        with pytest.raises(ValueError, match="pool_limit"):
            WorkloadConfig(pool_limit=0)

    def test_pool_limit_truncates(self):
        workload = ZipfWorkload(POOL, WorkloadConfig(seed=2, pool_limit=10))
        assert len(workload.pool) == 10
        assert set(workload.take(2_000)) <= set(workload.pool)

    def test_negative_take_rejected(self):
        with pytest.raises(ValueError, match="count"):
            ZipfWorkload(POOL, WorkloadConfig()).take(-1)

    def test_mixed_input_forms_normalized(self):
        workload = ZipfWorkload(
            [IPv4Address("10.0.0.1"), "10.0.0.2", int(IPv4Address("10.0.0.3"))],
            WorkloadConfig(seed=1),
        )
        assert sorted(workload.pool) == ["10.0.0.1", "10.0.0.2", "10.0.0.3"]
