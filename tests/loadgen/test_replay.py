"""Replay-driver tests against a tiny live server."""

from __future__ import annotations

import pytest

from repro.loadgen import ReplayConfig, WorkloadConfig, ZipfWorkload, replay
from repro.serve import CompiledIndex, ServingEngine, compile_plane
from repro.serve.http import GeoServer


@pytest.fixture(scope="module")
def live(small_scenario):
    indexes = {
        name: CompiledIndex.compile(database)
        for name, database in sorted(small_scenario.databases.items())
    }
    server = GeoServer(ServingEngine(indexes, plane=compile_plane(indexes)))
    server.start_background()
    pool = [
        start
        for start, _end, answer in indexes["MaxMind-Paid"].intervals()
        if answer >= 0
    ][:256]
    yield server, pool
    server.stop()


class TestReplay:
    def test_replay_reports_clean_run(self, live):
        server, pool = live
        workload = ZipfWorkload(pool, WorkloadConfig(seed=4, zipf_s=1.1))
        report = replay(
            server.url,
            workload.addresses(),
            ReplayConfig(rate=150.0, duration_s=1.5, clients=3),
        )
        assert report.requests == 225
        assert report.errors == 0
        assert report.error_rate == 0.0
        assert report.completed == report.requests
        # Open-loop: the driver must sustain the offered rate against a
        # healthy local server (sub-ms service, generous margin for CI).
        assert report.achieved_rps >= 0.6 * report.offered_rps
        for key in ("p50", "p90", "p99", "p999", "max", "mean"):
            assert report.latency_ms[key] >= 0.0
            assert report.service_ms[key] >= 0.0
        # Schedule-relative latency can never undercut on-wire latency.
        assert report.latency_ms["p50"] >= report.service_ms["p50"]

    def test_statusz_scrape_agrees_with_client(self, live):
        server, pool = live
        workload = ZipfWorkload(pool, WorkloadConfig(seed=6))
        report = replay(
            server.url,
            workload.addresses(),
            ReplayConfig(rate=120.0, duration_s=1.0, clients=2),
        )
        assert report.server is not None
        rates = report.server["rates"]["10s"]
        assert rates["error_rate"] == 0.0
        # The whole run fits inside the 10s window, so the server's
        # request total (rps × 10) must cover this run's requests.  The
        # module server is shared across tests, so earlier traffic can
        # only push the window total higher, never lower.
        assert rates["rps"] * 10.0 >= report.requests * 0.8

    def test_uncovered_traffic_is_not_an_error(self, live):
        server, pool = live
        workload = ZipfWorkload(pool, WorkloadConfig(seed=8, miss_fraction=1.0))
        report = replay(
            server.url,
            workload.addresses(),
            ReplayConfig(rate=60.0, duration_s=0.5, clients=2),
        )
        # Every lookup missed every vendor — that is a valid 200 answer
        # (all-null), not a serving error.
        assert report.errors == 0

    def test_finite_pool_is_cycled(self, live):
        server, _pool = live
        report = replay(
            server.url,
            ["10.0.0.1", "10.0.0.2"],
            ReplayConfig(rate=40.0, duration_s=0.5, clients=2),
        )
        assert report.requests == 20
        assert report.errors == 0

    def test_unreachable_server_counts_errors(self):
        report = replay(
            "http://127.0.0.1:1",
            ["10.0.0.1"],
            ReplayConfig(rate=20.0, duration_s=0.25, clients=1, timeout_s=0.5),
            scrape=False,
        )
        assert report.errors == report.requests
        assert report.error_rate == 1.0
        assert report.server is None

    def test_url_without_port_rejected(self):
        with pytest.raises(ValueError, match="host:port"):
            replay("http://localhost", ["10.0.0.1"], ReplayConfig())

    def test_empty_stream_rejected(self, live):
        server, _pool = live
        with pytest.raises(ValueError, match="non-empty"):
            replay(server.url, [], ReplayConfig())

    def test_config_validation(self):
        with pytest.raises(ValueError, match="rate"):
            ReplayConfig(rate=0)
        with pytest.raises(ValueError, match="duration"):
            ReplayConfig(duration_s=-1)
        with pytest.raises(ValueError, match="clients"):
            ReplayConfig(clients=0)
        with pytest.raises(ValueError, match="timeout"):
            ReplayConfig(timeout_s=0)

    def test_report_round_trips_to_dict(self, live):
        server, pool = live
        report = replay(
            server.url,
            ZipfWorkload(pool, WorkloadConfig(seed=2)).addresses(),
            ReplayConfig(rate=30.0, duration_s=0.3, clients=1),
        )
        payload = report.to_dict()
        assert payload["requests"] == report.requests
        assert payload["latency_ms"]["p99"] == report.latency_ms["p99"]
        rendered = report.render()
        assert "achieved" in rendered and "p99" in rendered
