"""Tests for the command-line interface."""

import pytest

from repro.cli import main

ARGS = ["--seed", "3", "--scale", "0.02"]


class TestCli:
    def test_describe(self, capsys):
        assert main(ARGS + ["describe"]) == 0
        out = capsys.readouterr().out
        assert "SyntheticInternet" in out
        assert "Ground truth" in out

    def test_run_prints_report(self, capsys):
        assert main(ARGS + ["run"]) == 0
        out = capsys.readouterr().out
        assert "Coverage over Ark-topo-router" in out
        assert "Recommendations" in out

    def test_run_writes_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(ARGS + ["run", "-o", str(target)]) == 0
        assert "Figure 2" in target.read_text()
        assert "wrote" in capsys.readouterr().out

    def test_run_markdown(self, capsys):
        assert main(ARGS + ["run", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Router geolocation study report")
        assert "| database |" in out

    def test_export_db_geolite(self, capsys):
        assert main(ARGS + ["export-db", "NetAcuity"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("network,country_iso_code")

    def test_export_db_ip2location_to_file(self, tmp_path, capsys):
        target = tmp_path / "db.csv"
        assert (
            main(ARGS + ["export-db", "IP2Location-Lite", "--format", "ip2location",
                         "-o", str(target)])
            == 0
        )
        first_line = target.read_text().splitlines()[0]
        assert first_line.startswith('"')  # quoted integer ranges

    def test_export_ground_truth(self, capsys):
        assert main(ARGS + ["export-ground-truth"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("address,latitude,longitude")
        assert "dns-based" in out or "rtt-proximity" in out

    def test_diff_db(self, capsys):
        assert main(ARGS + ["diff-db", "MaxMind-Paid", "--months", "12"]) == 0
        out = capsys.readouterr().out
        assert "unchanged" in out and "moved" in out

    def test_export_artifacts(self, tmp_path, capsys):
        target = tmp_path / "release"
        assert main(ARGS + ["export-artifacts", str(target)]) == 0
        assert (target / "MANIFEST.txt").exists()
        assert (target / "databases" / "NetAcuity.csv").exists()
        assert "release package" in capsys.readouterr().out

    def test_verify_release(self, tmp_path, capsys):
        target = tmp_path / "rel"
        assert main(ARGS + ["export-artifacts", str(target)]) == 0
        capsys.readouterr()
        assert main(["verify-release", str(target)]) == 0
        assert "verified" in capsys.readouterr().out

    def test_verify_release_failure_exit_code(self, tmp_path, capsys):
        assert main(["verify-release", str(tmp_path / "missing")]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_unknown_database_rejected(self):
        with pytest.raises(SystemExit):
            main(ARGS + ["export-db", "NotADatabase"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["--seed", "1"])
