"""Tests for the command-line interface."""

import json
import pathlib

import pytest

from repro.cli import main

ARGS = ["--seed", "3", "--scale", "0.02"]


class TestCli:
    def test_describe(self, capsys):
        assert main(ARGS + ["describe"]) == 0
        out = capsys.readouterr().out
        assert "SyntheticInternet" in out
        assert "Ground truth" in out

    def test_run_prints_report(self, capsys):
        assert main(ARGS + ["run"]) == 0
        out = capsys.readouterr().out
        assert "Coverage over Ark-topo-router" in out
        assert "Recommendations" in out

    def test_run_writes_file(self, tmp_path, capsys):
        target = tmp_path / "report.txt"
        assert main(ARGS + ["run", "-o", str(target)]) == 0
        assert "Figure 2" in target.read_text()
        assert "wrote" in capsys.readouterr().out

    def test_run_markdown(self, capsys):
        assert main(ARGS + ["run", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Router geolocation study report")
        assert "| database |" in out

    def test_export_db_geolite(self, capsys):
        assert main(ARGS + ["export-db", "NetAcuity"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("network,country_iso_code")

    def test_export_db_ip2location_to_file(self, tmp_path, capsys):
        target = tmp_path / "db.csv"
        assert (
            main(ARGS + ["export-db", "IP2Location-Lite", "--format", "ip2location",
                         "-o", str(target)])
            == 0
        )
        first_line = target.read_text().splitlines()[0]
        assert first_line.startswith('"')  # quoted integer ranges

    def test_export_ground_truth(self, capsys):
        assert main(ARGS + ["export-ground-truth"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("address,latitude,longitude")
        assert "dns-based" in out or "rtt-proximity" in out

    def test_diff_db(self, capsys):
        assert main(ARGS + ["diff-db", "MaxMind-Paid", "--months", "12"]) == 0
        out = capsys.readouterr().out
        assert "unchanged" in out and "moved" in out

    def test_export_artifacts(self, tmp_path, capsys):
        target = tmp_path / "release"
        assert main(ARGS + ["export-artifacts", str(target)]) == 0
        assert (target / "MANIFEST.txt").exists()
        assert (target / "databases" / "NetAcuity.csv").exists()
        assert "release package" in capsys.readouterr().out

    def test_verify_release(self, tmp_path, capsys):
        target = tmp_path / "rel"
        assert main(ARGS + ["export-artifacts", str(target)]) == 0
        capsys.readouterr()
        assert main(["verify-release", str(target)]) == 0
        assert "verified" in capsys.readouterr().out

    def test_verify_release_failure_exit_code(self, tmp_path, capsys):
        assert main(["verify-release", str(tmp_path / "missing")]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_unknown_database_rejected(self):
        with pytest.raises(SystemExit):
            main(ARGS + ["export-db", "NotADatabase"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["--seed", "1"])


class TestCliServing:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.startswith("repro ")

    def test_compile_writes_loadable_snapshots(self, tmp_path, capsys):
        target = tmp_path / "snapshots"
        assert main(ARGS + ["compile", str(target)]) == 0
        out = capsys.readouterr().out
        assert "wrote 4 snapshots" in out
        assert "intervals" in out

        from repro.serve import load_index_set

        indexes = load_index_set(target)
        assert set(indexes) == {
            "IP2Location-Lite", "MaxMind-GeoLite", "MaxMind-Paid", "NetAcuity",
        }

    def test_compile_writes_a_loadable_answer_plane(self, tmp_path, capsys):
        target = tmp_path / "snapshots"
        assert main(ARGS + ["compile", str(target)]) == 0
        assert "compiled answer plane" in capsys.readouterr().out

        from repro.serve import ServingEngine, load_index_set, load_plane

        plane = load_plane(target / "plane.rgpl")
        engine = ServingEngine(
            load_index_set(target), plane=plane, cache_size=None
        )
        assert engine.plane_stats()["active"] is True
        assert engine.lookup_plane("1.2.3.4") is not None

    def test_compile_no_plane_skips_it(self, tmp_path, capsys):
        target = tmp_path / "snapshots"
        assert main(ARGS + ["compile", str(target), "--no-plane"]) == 0
        assert "answer plane" not in capsys.readouterr().out
        assert not (target / "plane.rgpl").exists()

    def test_serve_rejects_missing_snapshot_dir(self, tmp_path, capsys):
        assert main(["serve", "--snapshots", str(tmp_path / "absent")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_serve_smoke_over_subprocess(self, tmp_path, capsys):
        """The CI smoke, in miniature: compile, start ``repro serve`` on an
        ephemeral port, hit every endpoint, shut down with SIGINT."""
        import json as jsonlib
        import os
        import signal
        import subprocess
        import sys as syslib
        import urllib.request

        target = tmp_path / "snapshots"
        assert main(ARGS + ["compile", str(target)]) == 0
        capsys.readouterr()

        env = dict(os.environ)
        root = pathlib.Path(__file__).resolve().parent.parent
        env["PYTHONPATH"] = str(root / "src") + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [syslib.executable, "-m", "repro", "serve",
             "--snapshots", str(target), "--port", "0"],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            banner = proc.stdout.readline().strip()
            port = int(banner.rsplit(":", 1)[1])
            base = f"http://127.0.0.1:{port}"
            health = jsonlib.load(urllib.request.urlopen(f"{base}/healthz", timeout=10))
            assert health["status"] == "ok"
            lookup = jsonlib.load(
                urllib.request.urlopen(f"{base}/lookup?ip=1.2.3.4", timeout=10)
            )
            assert set(lookup["answers"]) == set(health["databases"])
            statusz = jsonlib.load(urllib.request.urlopen(f"{base}/statusz", timeout=10))
            assert "serve" in statusz["families"]
            # compile wrote plane.rgpl, so the server booted with it live.
            assert statusz["plane"]["active"] is True
        finally:
            proc.send_signal(signal.SIGINT)
        assert proc.wait(timeout=30) == 0
        assert "shut down cleanly" in proc.stdout.read()


class TestCliObservability:
    def test_run_metrics_writes_valid_manifest(self, tmp_path, capsys):
        target = tmp_path / "manifest.json"
        assert main(ARGS + ["run", "--metrics", str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        manifest = json.loads(target.read_text())
        assert {"geodb", "scenario", "whois"} <= set(manifest["counter_families"])
        assert manifest["config"]["seed"] == 3
        span_names = {span["name"] for span in manifest["spans"]}
        assert span_names == {"build_scenario", "run"}

    def test_trace_prints_span_tree_with_shares(self, capsys):
        assert main(ARGS + ["trace"]) == 0
        out = capsys.readouterr().out
        for stage in (
            "coverage", "consistency", "city_range", "table1",
            "accuracy_overall", "accuracy_by_rir", "accuracy_by_country",
            "accuracy_by_source", "arin_case_study", "recommendations",
        ):
            assert stage in out
        assert "100.0%" in out and "ms" in out
        assert "geodb.lookups" in out

    def test_verbose_logs_stages_to_stderr(self, capsys):
        assert main(ARGS + ["--verbose", "run"]) == 0
        captured = capsys.readouterr()
        assert "[repro]" in captured.err
        assert "run:" in captured.err
        # The report itself still goes to stdout, uncontaminated.
        assert "Recommendations" in captured.out
        assert "[repro]" not in captured.out

    def test_run_bad_output_path_exits_1(self, tmp_path, capsys):
        target = tmp_path / "missing-dir" / "report.txt"
        assert main(ARGS + ["run", "-o", str(target)]) == 1
        assert "error: cannot write" in capsys.readouterr().err

    def test_run_bad_metrics_path_exits_1(self, tmp_path, capsys):
        target = tmp_path / "missing-dir" / "manifest.json"
        assert main(ARGS + ["run", "--metrics", str(target)]) == 1
        captured = capsys.readouterr()
        assert "error: cannot write" in captured.err
        # The report was still printed before the manifest write failed.
        assert "Recommendations" in captured.out

    def test_export_db_bad_output_path_exits_1(self, tmp_path, capsys):
        target = tmp_path / "missing-dir" / "db.csv"
        assert main(ARGS + ["export-db", "NetAcuity", "-o", str(target)]) == 1
        assert "error: cannot write" in capsys.readouterr().err


class TestSnapshotCommand:
    def test_publish_list_rollback_round_trip(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(ARGS + ["snapshot", "publish", store]) == 0
        assert "published generation 1" in capsys.readouterr().out
        assert main(ARGS + ["snapshot", "publish", store, "--months", "6"]) == 0
        assert "published generation 2" in capsys.readouterr().out

        assert main(ARGS + ["snapshot", "list", store]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert len(lines) == 2
        assert lines[1].startswith("*")  # generation 2 is CURRENT
        assert "plane" in lines[0]

        assert main(ARGS + ["snapshot", "rollback", store]) == 0
        assert "generation 1" in capsys.readouterr().out
        assert main(ARGS + ["snapshot", "list", store]) == 0
        assert capsys.readouterr().out.strip().splitlines()[0].startswith("*")

    def test_publish_no_plane(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(ARGS + ["snapshot", "publish", store, "--no-plane"]) == 0
        capsys.readouterr()
        assert main(ARGS + ["snapshot", "list", store]) == 0
        assert "no-plane" in capsys.readouterr().out

    def test_rollback_without_history_exits_1(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(ARGS + ["snapshot", "publish", store, "--no-plane"]) == 0
        capsys.readouterr()
        assert main(ARGS + ["snapshot", "rollback", store]) == 1
        assert "nothing to roll back" in capsys.readouterr().err

    def test_serve_store_requires_a_published_generation(
        self, tmp_path, capsys
    ):
        store = tmp_path / "store"
        (store / "generations").mkdir(parents=True)
        assert main(ARGS + ["serve", "--store", str(store)]) == 1
        err = capsys.readouterr().err
        assert "snapshot publish" in err

    def test_serve_refuses_store_plus_snapshots(self, tmp_path, capsys):
        assert (
            main(
                ARGS
                + [
                    "serve",
                    "--store",
                    str(tmp_path / "a"),
                    "--snapshots",
                    str(tmp_path / "b"),
                ]
            )
            == 1
        )
        assert "--store" in capsys.readouterr().err

    def test_compile_stream_writes_scale_tier_snapshots(self, tmp_path, capsys):
        target = tmp_path / "tier"
        assert main(["--seed", "3", "compile", str(target), "--stream", "15000"]) == 0
        out = capsys.readouterr().out
        assert "scale tier: 15000 interfaces" in out
        assert "peak RSS" in out
        assert "wrote 4 snapshots" in out

        from repro.serve import load_index_set, load_plane

        indexes = load_index_set(target)
        assert set(indexes) == {
            "IP2Location-Lite", "MaxMind-GeoLite", "MaxMind-Paid", "NetAcuity",
        }
        assert load_plane(target / "plane.rgpl").interval_count > 0

    def test_replay_in_process(self, capsys):
        assert (
            main(
                ARGS
                + [
                    "replay",
                    "--rate", "120",
                    "--duration", "1",
                    "--clients", "2",
                    "--json",
                    "--max-error-rate", "0",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["requests"] == 120
        assert report["errors"] == 0
        assert report["server"]["rates"]["10s"]["error_rate"] == 0.0
        assert report["latency_ms"]["p99"] > 0.0

    def test_enrich_in_process(self, capsys):
        assert (
            main(
                ARGS
                + [
                    "enrich",
                    "--rate", "400",
                    "--duration", "1",
                    "--json",
                    "--max-shed", "0",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["offered"] == 400
        assert report["enriched"] == 400
        assert report["shed"] == 0 and report["errors"] == 0
        assert report["policy"] == "block"
        assert report["latency_ms"]["p99"] > 0.0
        assert report["drift"]["inspected"] == 400
        assert report["drift"]["suppressed"] == 0
        for queue_stats in report["queues"].values():
            assert queue_stats["high_water"] <= queue_stats["capacity"]

    def test_enrich_event_count_and_render(self, capsys):
        assert (
            main(ARGS + ["enrich", "--rate", "2000", "--events", "150"]) == 0
        )
        out = capsys.readouterr().out
        assert "enrichment firehose" in out
        assert "offered 150 · enriched 150" in out

    def test_enrich_gate_failure_exits_1(self, capsys):
        assert (
            main(
                ARGS
                + [
                    "enrich",
                    "--rate", "400",
                    "--events", "100",
                    "--max-p99-ms", "0.000001",
                ]
            )
            == 1
        )
        assert "GATE FAILED" in capsys.readouterr().err

    def test_replay_gate_failure_exits_1(self, capsys):
        assert (
            main(
                ARGS
                + [
                    "replay",
                    "--rate", "40",
                    "--duration", "0.5",
                    "--max-p99-ms", "0.000001",
                ]
            )
            == 1
        )
        assert "GATE FAILED" in capsys.readouterr().err

    def test_replay_url_requires_snapshots(self, capsys):
        assert main(["replay", "--url", "http://127.0.0.1:1"]) == 1
        assert "--snapshots" in capsys.readouterr().err

    def test_replay_against_snapshots_url(self, tmp_path, capsys):
        """Pool from compiled snapshots, server booted here in-process —
        the CI replay job's client path without the subprocess."""
        target = tmp_path / "snapshots"
        assert main(ARGS + ["compile", str(target)]) == 0
        capsys.readouterr()

        from repro.serve import (
            CompiledIndex,
            GeoServer,
            ServingEngine,
            load_index_set,
            load_plane,
        )

        engine = ServingEngine(
            load_index_set(target), plane=load_plane(target / "plane.rgpl")
        )
        server = GeoServer(engine)
        server.start_background()
        try:
            assert (
                main(
                    [
                        "--seed", "5",
                        "replay",
                        "--url", server.url,
                        "--snapshots", str(target),
                        "--rate", "80",
                        "--duration", "1",
                        "--max-error-rate", "0",
                        "--max-p99-ms", "1000",
                    ]
                )
                == 0
            )
        finally:
            server.stop()
        out = capsys.readouterr().out
        assert "achieved" in out
        assert "server 10s window" in out
