"""Property-based fuzzing of the serialization boundaries.

Every parser in the library guards a data boundary (CSV snapshots,
ground-truth releases, Atlas JSON).  These tests assert the two
properties that make parsers trustworthy: round-trips are lossless for
arbitrary valid data, and arbitrary *invalid* input fails with the
documented exception type — never with a stray ``KeyError`` or
``AttributeError`` from deep inside.
"""

import ipaddress
import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import GeoPoint
from repro.geodb import (
    DatabaseEntry,
    FormatError,
    GeoDatabase,
    GeoRecord,
    export_geolite_csv,
    export_ip2location_csv,
    import_geolite_csv,
    import_ip2location_csv,
)
from repro.groundtruth import (
    GroundTruthFormatError,
    GroundTruthRecord,
    GroundTruthSet,
    GroundTruthSource,
    export_ground_truth_csv,
    import_ground_truth_csv,
)
from repro.atlas import MeasurementParseError, parse_json_lines

# -- strategies ---------------------------------------------------------------

country_codes = st.sampled_from(["US", "DE", "NL", "JP", "BR", "ZA"])
city_names = st.one_of(
    st.none(),
    st.text(
        alphabet=st.characters(whitelist_categories=("Lu", "Ll"), max_codepoint=0x17F),
        min_size=1,
        max_size=24,
    ),
)
latitudes = st.floats(-90, 90, allow_nan=False).map(lambda v: round(v, 4))
longitudes = st.floats(-180, 180, allow_nan=False).map(lambda v: round(v, 4))


@st.composite
def geo_records(draw):
    country = draw(st.one_of(st.none(), country_codes))
    city = draw(city_names) if country is not None else None
    has_coords = draw(st.booleans()) or city is not None
    lat = draw(latitudes) if has_coords else None
    lon = draw(longitudes) if has_coords else None
    region = draw(st.one_of(st.none(), st.just("Region"))) if city else None
    return GeoRecord(country=country, region=region, city=city, latitude=lat, longitude=lon)


@st.composite
def databases(draw):
    # Disjoint /24s under 10.0.0.0/8 keyed by the third octet pair.
    count = draw(st.integers(1, 12))
    indexes = draw(
        st.lists(st.integers(0, 2**16 - 1), min_size=count, max_size=count, unique=True)
    )
    entries = [
        DatabaseEntry(
            prefix=ipaddress.ip_network(((10 << 24) + (index << 8), 24)),
            record=draw(geo_records()),
        )
        for index in indexes
    ]
    return GeoDatabase("fuzz", entries)


@st.composite
def ground_truth_sets(draw):
    count = draw(st.integers(1, 10))
    offsets = draw(
        st.lists(st.integers(1, 2**20), min_size=count, max_size=count, unique=True)
    )
    records = []
    for offset in offsets:
        source = draw(st.sampled_from(list(GroundTruthSource)))
        records.append(
            GroundTruthRecord(
                address=ipaddress.IPv4Address((10 << 24) + offset),
                location=GeoPoint(draw(latitudes), draw(longitudes)),
                country=draw(country_codes),
                source=source,
                domain=draw(st.one_of(st.none(), st.just("ntt.net")))
                if source is GroundTruthSource.DNS
                else None,
                probe_ids=tuple(draw(st.lists(st.integers(1, 99999), max_size=4))),
            )
        )
    return GroundTruthSet(records)


# -- round trips --------------------------------------------------------------


class TestGeoLiteRoundTrip:
    @given(databases())
    @settings(max_examples=40, deadline=None)
    def test_lossless(self, database):
        copy = import_geolite_csv("copy", export_geolite_csv(database))
        assert len(copy) == len(database)
        for entry, loaded in zip(database, copy):
            assert loaded.prefix == entry.prefix
            assert loaded.record.country == entry.record.country
            assert loaded.record.city == entry.record.city
            assert loaded.record.latitude == entry.record.latitude


class TestIp2LocationRoundTrip:
    @given(databases())
    @settings(max_examples=40, deadline=None)
    def test_lookups_preserved(self, database):
        copy = import_ip2location_csv("copy", export_ip2location_csv(database))
        for entry in database:
            probe = entry.prefix.network_address
            original = database.lookup(probe)
            loaded = copy.lookup(probe)
            assert (original.country, original.city) == (loaded.country, loaded.city)


class TestGroundTruthRoundTrip:
    @given(ground_truth_sets())
    @settings(max_examples=40, deadline=None)
    def test_lossless(self, dataset):
        copy = import_ground_truth_csv(export_ground_truth_csv(dataset))
        assert copy.addresses() == dataset.addresses()
        for record in dataset:
            loaded = copy.get(record.address)
            assert loaded.country == record.country
            assert loaded.source is record.source
            assert loaded.probe_ids == record.probe_ids
            assert loaded.location.distance_km(record.location) < 0.02


# -- garbage must fail cleanly ------------------------------------------------

garbage_text = st.text(max_size=300)


class TestGarbageHandling:
    @given(garbage_text)
    @settings(max_examples=60, deadline=None)
    def test_geolite_import_fails_cleanly(self, text):
        try:
            import_geolite_csv("x", text)
        except FormatError:
            pass  # the documented failure mode

    @given(garbage_text)
    @settings(max_examples=60, deadline=None)
    def test_ip2location_import_fails_cleanly(self, text):
        try:
            import_ip2location_csv("x", text)
        except FormatError:
            pass

    @given(garbage_text)
    @settings(max_examples=60, deadline=None)
    def test_ground_truth_import_fails_cleanly(self, text):
        try:
            import_ground_truth_csv(text)
        except GroundTruthFormatError:
            pass

    @given(garbage_text)
    @settings(max_examples=60, deadline=None)
    def test_measurement_parse_fails_cleanly(self, text):
        try:
            parse_json_lines(text)
        except MeasurementParseError:
            pass

    @given(st.dictionaries(st.text(max_size=8), st.integers() | st.text(max_size=8), max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_measurement_json_objects_fail_cleanly(self, payload):
        line = json.dumps(payload)
        try:
            parse_json_lines(line)
        except MeasurementParseError:
            pass

    def test_skip_malformed_never_raises(self):
        assert parse_json_lines("garbage\n{}\n[1,2]\n", skip_malformed=True) == []
