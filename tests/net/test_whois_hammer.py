"""Concurrency hammer for ``TeamCymruWhois.lookup``'s LRU memo.

The memo was added in PR 4 for a single-threaded pipeline; the
enrichment firehose now calls it from a pool of whois workers.  The
audited claim (see the class docstring): the internally-locked
``LruCache`` plus an immutable registry make concurrent lookups safe —
worst case is a benign duplicate compute, never a torn record or a lost
counter.  This test drives that claim with 8 threads over a
deliberately tiny, eviction-heavy cache and reconciles every counter.
"""

import random
import threading

from repro.net.registry import TeamCymruWhois, UnallocatedAddressError
from repro.obs import MetricsRegistry

THREADS = 8
ROUNDS = 6


def test_concurrent_lookups_are_correct_and_counters_reconcile(small_scenario):
    registry = small_scenario.internet.registry
    metrics = MetricsRegistry()
    # cache_size far below the working set: constant eviction churn, so
    # get/put/evict interleave across threads on the same entries.
    whois = TeamCymruWhois(registry, metrics, cache_size=32)

    allocated = sorted({int(a) for a in small_scenario.ark_dataset.addresses})[:200]
    unallocated = [int_addr for int_addr in range(0xF0000000, 0xF0000000 + 40)]
    pool = allocated + unallocated

    # Single-threaded reference truth, computed via the registry alone.
    reference = {}
    for addr in pool:
        try:
            reference[addr] = whois.lookup(addr)
        except UnallocatedAddressError:
            reference[addr] = None

    mismatches = []
    crashes = []
    lookups_per_thread = [0] * THREADS
    unallocated_per_thread = [0] * THREADS
    barrier = threading.Barrier(THREADS)

    def hammer(slot):
        rng = random.Random(20160806 + slot)
        shuffled = pool * ROUNDS
        rng.shuffle(shuffled)
        barrier.wait()
        try:
            for addr in shuffled:
                lookups_per_thread[slot] += 1
                try:
                    record = whois.lookup(addr)
                except UnallocatedAddressError:
                    unallocated_per_thread[slot] += 1
                    record = None
                if record != reference[addr]:
                    mismatches.append((addr, record))
                    return
        except BaseException as exc:  # surfaced in the main thread
            crashes.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(slot,), daemon=True)
        for slot in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert not any(thread.is_alive() for thread in threads)
    assert crashes == [], f"lookup crashed under contention: {crashes[0]!r}"
    assert mismatches == [], f"torn/wrong record under contention: {mismatches[:3]}"

    # Counter reconciliation: nothing lost, nothing double-counted.
    hammer_lookups = sum(lookups_per_thread)
    total_queries = len(pool) + hammer_lookups  # reference pass + hammer
    assert metrics.counter("whois.queries") == total_queries
    assert metrics.counter("whois.unallocated") == (
        len(unallocated) + sum(unallocated_per_thread)
    )
    cache = whois._cache
    assert cache.hits == metrics.counter("whois.cache_hits")
    # Every query probes the cache exactly once: hit or miss, never both.
    assert cache.hits + cache.misses == total_queries
    # The tiny cache really churned — this was a contended test, not a
    # warm-cache idle.
    assert cache.evictions > 0
