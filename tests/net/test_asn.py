"""Tests for the AS model."""

import pytest

from repro.net import ASRole, AutonomousSystem


def make_as(**overrides):
    defaults = dict(
        asn=64500,
        name="Example Transit",
        role=ASRole.TRANSIT,
        home_country="DE",
        registered_country="DE",
        domain="example.net",
    )
    defaults.update(overrides)
    return AutonomousSystem(**defaults)


class TestASRole:
    def test_transit_roles(self):
        assert ASRole.TIER1.is_transit
        assert ASRole.TRANSIT.is_transit

    def test_non_transit_roles(self):
        assert not ASRole.STUB.is_transit
        assert not ASRole.CONTENT.is_transit


class TestAutonomousSystem:
    def test_str(self):
        assert "64500" in str(make_as())

    def test_is_transit_delegates_to_role(self):
        assert make_as(role=ASRole.TIER1).is_transit
        assert not make_as(role=ASRole.STUB).is_transit

    def test_registered_country_can_differ_from_home(self):
        multinational = make_as(home_country="NL", registered_country="US")
        assert multinational.home_country != multinational.registered_country

    @pytest.mark.parametrize("bad_asn", [0, -1, 2**32])
    def test_invalid_asn_rejected(self, bad_asn):
        with pytest.raises(ValueError):
            make_as(asn=bad_asn)

    def test_hashable(self):
        assert len({make_as(), make_as()}) == 1

    def test_domain_optional(self):
        assert make_as(domain=None).domain is None
