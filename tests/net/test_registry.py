"""Tests for the delegation registry and whois service."""

import pytest
from hypothesis import given, strategies as st

from repro.geo import RIR
from repro.net import (
    DelegationRegistry,
    TeamCymruWhois,
    UnallocatedAddressError,
    nth_address,
    parse_address,
)


@pytest.fixture()
def registry():
    return DelegationRegistry()


class TestAllocation:
    def test_allocates_within_rir_space(self, registry):
        d = registry.allocate(
            RIR.ARIN, asn=64500, registered_country="US", organization="ExampleNet"
        )
        assert d.rir is RIR.ARIN
        assert str(d.prefix.network_address).startswith("63.")

    def test_allocations_do_not_overlap(self, registry):
        prefixes = [
            registry.allocate(
                RIR.RIPENCC, asn=64500 + i, registered_country="DE",
                organization=f"org{i}", prefix_len=20,
            ).prefix
            for i in range(50)
        ]
        for i, a in enumerate(prefixes):
            for b in prefixes[i + 1 :]:
                assert not a.overlaps(b)

    def test_missing_rir_blocks_rejected(self):
        with pytest.raises(ValueError):
            DelegationRegistry({RIR.ARIN: ("10.0.0.0/8",)})

    def test_registered_country_uppercased(self, registry):
        d = registry.allocate(RIR.ARIN, asn=1, registered_country="us", organization="x")
        assert d.registered_country == "US"


class TestLookup:
    def test_lookup_any_address_in_delegation(self, registry):
        d = registry.allocate(
            RIR.APNIC, asn=64501, registered_country="JP", organization="TokyoNet"
        )
        inside = nth_address(d.prefix, d.prefix.num_addresses // 2)
        assert registry.lookup(inside) == d
        assert registry.rir_of(inside) is RIR.APNIC

    def test_unallocated_raises(self, registry):
        with pytest.raises(UnallocatedAddressError):
            registry.lookup("8.8.8.8")

    def test_address_just_past_delegation_raises(self, registry):
        d = registry.allocate(
            RIR.LACNIC, asn=64502, registered_country="BR", organization="RioNet",
            prefix_len=24,
        )
        past = parse_address(int(d.prefix.network_address) + 256)
        with pytest.raises(UnallocatedAddressError):
            registry.lookup(past)

    @given(st.integers(0, 49), st.integers(0, 4095))
    def test_lookup_consistent_over_many_delegations(self, which, offset):
        registry = DelegationRegistry()
        delegations = [
            registry.allocate(
                rir, asn=64500 + i, registered_country="US", organization=f"org{i}"
            )
            for i, rir in enumerate(list(RIR) * 10)
        ]
        d = delegations[which]
        addr = nth_address(d.prefix, offset % d.prefix.num_addresses)
        assert registry.lookup(addr) == d

    def test_delegations_returned_in_address_order(self, registry):
        for i, rir in enumerate(list(RIR) * 3):
            registry.allocate(rir, asn=i + 1, registered_country="US", organization="o")
        starts = [int(d.prefix.network_address) for d in registry.delegations()]
        assert starts == sorted(starts)
        assert len(registry) == 15


class TestWhois:
    def test_record_fields(self, registry):
        d = registry.allocate(
            RIR.RIPENCC, asn=3320, registered_country="DE", organization="DTAG"
        )
        whois = TeamCymruWhois(registry)
        record = whois.lookup(nth_address(d.prefix, 7))
        assert record.asn == 3320
        assert record.registry is RIR.RIPENCC
        assert record.country == "DE"
        assert record.bgp_prefix == d.prefix

    def test_pipe_row_format(self, registry):
        registry.allocate(RIR.ARIN, asn=701, registered_country="US", organization="UUNET")
        whois = TeamCymruWhois(registry)
        row = whois.lookup(nth_address(registry.delegations()[0].prefix, 1)).as_pipe_row()
        assert "701" in row and "US" in row and "arin" in row

    def test_bulk_lookup(self, registry):
        d = registry.allocate(RIR.ARIN, asn=1, registered_country="US", organization="o")
        whois = TeamCymruWhois(registry)
        addrs = [nth_address(d.prefix, i) for i in range(5)]
        assert [r.address for r in whois.bulk_lookup(addrs)] == addrs
