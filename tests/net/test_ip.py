"""Tests for IPv4 helpers and the prefix allocator."""

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.net import (
    AddressPoolExhaustedError,
    PrefixPool,
    block_of,
    hosts_in,
    nth_address,
    parse_address,
    parse_network,
)


class TestParsing:
    def test_parse_address_from_string(self):
        assert int(parse_address("10.0.0.1")) == (10 << 24) + 1

    def test_parse_address_from_int(self):
        assert str(parse_address(1)) == "0.0.0.1"

    def test_parse_address_idempotent(self):
        addr = parse_address("1.2.3.4")
        assert parse_address(addr) is addr

    def test_parse_network(self):
        assert parse_network("10.0.0.0/24").num_addresses == 256

    def test_parse_network_strict_rejects_host_bits(self):
        with pytest.raises(ValueError):
            parse_network("10.0.0.1/24")

    def test_parse_network_nonstrict(self):
        assert str(parse_network("10.0.0.1/24", strict=False)) == "10.0.0.0/24"

    @pytest.mark.parametrize(
        "bad",
        [
            "not-an-ip",
            "1.2.3",
            "1.2.3.4.5",
            "256.0.0.1",
            "::1",  # IPv6
            "1.2.3.4/24",  # a network, not an address
            "",
            -1,
            2**32,  # first out-of-range int
            2**80,  # would overflow 32-bit packing
            3.14,
            None,
            b"\x01",
        ],
    )
    def test_parse_address_rejects_garbage_uniformly(self, bad):
        """Every malformed input raises one clear ValueError — never a raw
        ipaddress/OverflowError traceback (the HTTP layer catches this)."""
        with pytest.raises(ValueError, match="not an IPv4 address"):
            parse_address(bad)

    def test_parse_address_error_names_the_input(self):
        with pytest.raises(ValueError, match="'10\\.0\\.0\\.999'"):
            parse_address("10.0.0.999")


class TestBlockOf:
    def test_slash24(self):
        assert str(block_of("192.168.5.77")) == "192.168.5.0/24"

    def test_slash16(self):
        assert str(block_of("192.168.5.77", 16)) == "192.168.0.0/16"

    def test_slash32_is_identity(self):
        assert str(block_of("1.2.3.4", 32)) == "1.2.3.4/32"

    def test_invalid_prefix_len(self):
        with pytest.raises(ValueError):
            block_of("1.2.3.4", 33)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 32))
    def test_block_contains_address(self, addr, plen):
        assert parse_address(addr) in block_of(addr, plen)

    @given(st.integers(0, 2**32 - 1))
    def test_same_block_same_key(self, addr):
        base = (addr >> 8) << 8
        assert block_of(base) == block_of(min(base + 255, 2**32 - 1))


class TestHostsIn:
    def test_slash24_excludes_network_and_broadcast(self):
        hosts = list(hosts_in("10.0.0.0/30"))
        assert [str(h) for h in hosts] == ["10.0.0.1", "10.0.0.2"]

    def test_slash31_yields_both(self):
        assert len(list(hosts_in("10.0.0.0/31"))) == 2

    def test_slash32_yields_one(self):
        assert [str(h) for h in hosts_in("10.0.0.5/32")] == ["10.0.0.5"]


class TestNthAddress:
    def test_first_is_network_address(self):
        assert str(nth_address("10.1.0.0/16", 0)) == "10.1.0.0"

    def test_last(self):
        assert str(nth_address("10.1.0.0/24", 255)) == "10.1.0.255"

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            nth_address("10.1.0.0/24", 256)


class TestPrefixPool:
    def test_sequential_allocation(self):
        pool = PrefixPool([parse_network("10.0.0.0/16")])
        assert str(pool.allocate(24)) == "10.0.0.0/24"
        assert str(pool.allocate(24)) == "10.0.1.0/24"

    def test_alignment_after_smaller_allocation(self):
        pool = PrefixPool([parse_network("10.0.0.0/16")])
        pool.allocate(26)  # 10.0.0.0/26
        # The next /24 must skip the partially-used first /24.
        assert str(pool.allocate(24)) == "10.0.1.0/24"

    def test_exhaustion(self):
        pool = PrefixPool([parse_network("10.0.0.0/24")])
        pool.allocate(24)
        with pytest.raises(AddressPoolExhaustedError):
            pool.allocate(24)

    def test_request_larger_than_parent(self):
        pool = PrefixPool([parse_network("10.0.0.0/24")])
        with pytest.raises(AddressPoolExhaustedError):
            pool.allocate(16)

    def test_spills_into_second_parent(self):
        pool = PrefixPool([parse_network("10.0.0.0/24"), parse_network("10.9.0.0/24")])
        pool.allocate(24)
        assert str(pool.allocate(24)) == "10.9.0.0/24"

    def test_overlapping_parents_rejected(self):
        with pytest.raises(ValueError):
            PrefixPool([parse_network("10.0.0.0/8"), parse_network("10.1.0.0/16")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PrefixPool([])

    def test_remaining_addresses_decreases(self):
        pool = PrefixPool([parse_network("10.0.0.0/20")])
        before = pool.remaining_addresses()
        pool.allocate(24)
        assert pool.remaining_addresses() == before - 256

    @given(st.lists(st.integers(22, 28), min_size=1, max_size=40))
    def test_allocations_never_overlap(self, lengths):
        pool = PrefixPool([parse_network("10.0.0.0/16")])
        allocated: list[ipaddress.IPv4Network] = []
        for plen in lengths:
            try:
                allocated.append(pool.allocate(plen))
            except AddressPoolExhaustedError:
                break
        for i, a in enumerate(allocated):
            for b in allocated[i + 1 :]:
                assert not a.overlaps(b), (a, b)

    @given(st.lists(st.integers(22, 28), min_size=1, max_size=20))
    def test_deterministic(self, lengths):
        def run():
            pool = PrefixPool([parse_network("10.0.0.0/16")])
            out = []
            for plen in lengths:
                try:
                    out.append(str(pool.allocate(plen)))
                except AddressPoolExhaustedError:
                    break
            return out

        assert run() == run()
