#!/usr/bin/env python3
"""Evaluate your own geolocation database snapshot against router ground truth.

The paper's framework is not tied to the four studied products: any table
of prefix→location rows can be evaluated the same way.  This example
shows the workflow a researcher with a new database would follow:

1. obtain a snapshot in GeoLite2-style CSV (here: we *export* one of the
   scenario databases, perturb it, and re-import it — standing in for
   "your vendor's CSV");
2. evaluate coverage, accuracy, and regional breakdown against the
   ground-truth dataset;
3. compare against the four reference databases and regenerate the
   recommendations with the new candidate included.

Run::

    python examples/evaluate_custom_database.py
"""

import random

from repro import build_scenario
from repro.core import (
    build_recommendations,
    coverage_table,
    evaluate_all,
    evaluate_by_rir,
    evaluate_by_source,
    percent,
    render_table,
)
from repro.geodb import (
    DatabaseEntry,
    GeoDatabase,
    GeoRecord,
    export_geolite_csv,
    import_geolite_csv,
)


def make_candidate_csv(scenario) -> str:
    """Pretend-vendor: NetAcuity's table with 15% of city rows degraded
    to country level (a cheaper product tier, say)."""
    rng = random.Random(7)
    base = scenario.databases["NetAcuity"]
    entries = []
    for entry in base:
        record = entry.record
        if record.city is not None and rng.random() < 0.15:
            record = GeoRecord(
                country=record.country,
                latitude=record.latitude,
                longitude=record.longitude,
            )
        entries.append(DatabaseEntry(prefix=entry.prefix, record=record))
    return export_geolite_csv(GeoDatabase("CandidateDB", entries))


def main() -> None:
    scenario = build_scenario(seed=2016, scale=0.12)
    print(scenario.describe(), "\n")

    # 1. Load the candidate snapshot from CSV (the interchange format).
    csv_text = make_candidate_csv(scenario)
    candidate = import_geolite_csv("CandidateDB", csv_text)
    print(f"loaded {candidate.name}: {len(candidate)} prefix rows\n")

    databases = dict(scenario.databases)
    databases["CandidateDB"] = candidate

    # 2. Coverage over the Ark-topo-router population.
    coverage = coverage_table(databases, scenario.ark_dataset.addresses)
    print(
        render_table(
            ["database", "country cov", "city cov"],
            [
                [c.database, percent(c.country_rate), percent(c.city_rate)]
                for c in sorted(coverage.values(), key=lambda c: c.database)
            ],
            title="== Coverage ==",
        ),
        "\n",
    )

    # 3. Accuracy against the ground truth, overall / by RIR / by GT source.
    ground_truth = scenario.ground_truth
    overall = evaluate_all(databases, ground_truth)
    print(
        render_table(
            ["database", "country acc", "city acc", "city cov"],
            [
                [
                    a.database,
                    percent(a.country_accuracy),
                    percent(a.city_accuracy),
                    percent(a.city_coverage),
                ]
                for a in sorted(overall.values(), key=lambda a: a.database)
            ],
            title="== Accuracy vs ground truth ==",
        ),
        "\n",
    )

    by_rir = evaluate_by_rir(databases, ground_truth, scenario.internet.whois)
    rows = []
    for rir, results in sorted(by_rir.items(), key=lambda kv: kv[0].value):
        accuracy = results["CandidateDB"]
        rows.append(
            [
                rir.value,
                accuracy.total,
                percent(accuracy.country_accuracy),
                percent(accuracy.city_accuracy),
            ]
        )
    print(
        render_table(
            ["RIR", "n", "country acc", "city acc"],
            rows,
            title="== CandidateDB by region ==",
        ),
        "\n",
    )

    # 4. Recommendations with the candidate in the running.
    by_source = evaluate_by_source(databases, ground_truth)
    print("== Recommendations (recomputed with CandidateDB) ==")
    for recommendation in build_recommendations(coverage, overall, by_rir, by_source):
        print(recommendation.render())


if __name__ == "__main__":
    main()
