#!/usr/bin/env python3
"""How database choice distorts a downstream routing study.

The paper's introduction motivates router geolocation with studies like
international detour detection — paths that start and end in one country
but visit another in between (Shah et al., AINTEC 2016).  Such studies
geolocate every traceroute hop with a database; geolocation errors create
*false* detours and hide real ones.

This example runs that downstream study four times, once per database,
over the same traceroutes, and compares each against the
simulation's true router locations:

* **true detour rate** — from the synthetic world's actual geography;
* **reported detour rate** — what a researcher using each database sees;
* **false positives / negatives** — paths misclassified by geolocation.

Run::

    python examples/detour_study_impact.py
"""

import random

from repro import build_scenario
from repro.core import percent, render_table
from repro.topology import TracerouteEngine


def classify_detour(countries: list[str]) -> bool:
    """A detour: origin and destination country match, a middle hop differs."""
    if len(countries) < 3:
        return False
    origin, destination = countries[0], countries[-1]
    if origin != destination:
        return False
    return any(country != origin for country in countries[1:-1])


def main() -> None:
    scenario = build_scenario(seed=2016, scale=0.12)
    world = scenario.internet
    print(scenario.describe(), "\n")

    # Collect domestic paths: traceroutes between stub routers of the
    # same country — the population a detour study actually examines.
    rng = random.Random(99)
    engine = TracerouteEngine(world, rng, hop_loss_rate=0.0)
    stubs_by_country: dict[str, list[int]] = {}
    for router in world.routers.values():
        if not router.autonomous_system.is_transit and router.role == "access":
            stubs_by_country.setdefault(router.city.country, []).append(
                router.router_id
            )
    eligible = [c for c, routers in stubs_by_country.items() if len(routers) >= 2]
    paths = []
    for _ in range(900):
        country = rng.choice(eligible)
        src, dst = rng.sample(stubs_by_country[country], 2)
        dst_router = world.routers[dst]
        if not dst_router.interfaces:
            continue
        result = engine.trace(src, dst_router.interfaces[0].address)
        hops = [h.address for h in result.hops if h.address is not None]
        if len(hops) >= 3:
            paths.append((src, hops))

    # Ground truth classification from the world's real geography.
    true_flags = []
    for src, hops in paths:
        countries = [world.routers[src].city.country] + [
            world.true_location(address).country for address in hops
        ]
        true_flags.append(classify_detour(countries))
    true_rate = sum(true_flags) / len(true_flags)

    rows = []
    for name in sorted(scenario.databases):
        database = scenario.databases[name]
        reported_flags = []
        for src, hops in paths:
            countries = [world.routers[src].city.country]
            usable = True
            for address in hops:
                record = database.lookup(address)
                if record is None or record.country is None:
                    usable = False
                    break
                countries.append(record.country)
            reported_flags.append(classify_detour(countries) if usable else False)
        false_pos = sum(
            1 for t, r in zip(true_flags, reported_flags) if r and not t
        )
        false_neg = sum(
            1 for t, r in zip(true_flags, reported_flags) if t and not r
        )
        rows.append(
            [
                name,
                percent(sum(reported_flags) / len(paths)),
                false_pos,
                false_neg,
            ]
        )

    print(f"paths analysed: {len(paths)}   true detour rate: {percent(true_rate)}\n")
    print(
        render_table(
            ["database", "reported detour rate", "false detours", "missed detours"],
            rows,
            title="== Downstream impact: international detour detection ==",
        )
    )
    print(
        "\nTakeaway: registry-biased databases invent detours through the"
        " registration country and miss real ones — the paper's warning"
        " that researchers must quantify database error before trusting"
        " geographic conclusions."
    )


if __name__ == "__main__":
    main()
