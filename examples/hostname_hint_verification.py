#!/usr/bin/env python3
"""Catching stale hostname hints with latency verification (HLOC-style).

§3.1 documents the DNS-based method's failure mode: addresses get
reassigned while their rDNS records keep the old location hints (the
paper's ae-5.r23.dllstx09 → Dallas record that later pointed at a router
in Miami).  Scheitle et al.'s HLOC (the paper's [27]) defends against
this by checking each hint against delay measurements.

This example stages the failure and the defense:

1. decode hints from a fresh rDNS snapshot (all truthful);
2. age the snapshot 16 months with the §3.1 churn model, so some
   addresses move while keeping decodable (now wrong) hints;
3. run latency verification against the Atlas built-in measurements;
4. report how many stale hints the verification catches.

Run::

    python examples/hostname_hint_verification.py
"""

import random

from repro import build_scenario
from repro.core import percent, render_table
from repro.dns import evolve
from repro.groundtruth import HintVerdict, decode_hinted_addresses, verify_hints


def main() -> None:
    scenario = build_scenario(seed=2016, scale=0.12)
    world = scenario.internet
    print(scenario.describe(), "\n")

    fresh = decode_hinted_addresses(
        scenario.ark_dataset.addresses, scenario.rdns, scenario.drop
    )
    print(f"hints decoded from the fresh snapshot: {len(fresh)}")

    evolution = evolve(
        scenario.rdns, world, scenario.hostname_factory, random.Random(20)
    )
    stale = decode_hinted_addresses(
        scenario.ark_dataset.addresses, evolution.service, scenario.drop
    )
    moved = set(evolution.moved) & set(stale)
    print(
        f"hints decoded 16 months later: {len(stale)}"
        f" ({len(moved)} of them now stale — address moved, hint kept)\n"
    )

    rows = []
    catch_rates = {}
    for label, hints in (("fresh snapshot", fresh), ("aged snapshot", stale)):
        report = verify_hints(hints, scenario.measurements, scenario.probes)
        refuted = set(report.refuted_addresses())
        stale_in_population = set(evolution.moved) & set(hints) if label.startswith("aged") else set()
        caught = len(refuted & stale_in_population)
        catch_rates[label] = (caught, len(stale_in_population & _constrained(report)))
        rows.append(
            [
                label,
                len(hints),
                report.confirmed,
                report.refuted,
                report.unverifiable,
                percent(report.unverifiable / max(1, len(hints))),
            ]
        )
    print(
        render_table(
            ["snapshot", "hints", "confirmed", "refuted", "unverifiable", "unverifiable %"],
            rows,
            title="Latency verification of decoded hints",
        )
    )

    caught, catchable = catch_rates["aged snapshot"]
    print(
        f"\nstale hints with nearby-probe evidence: {catchable};"
        f" caught by verification: {caught}"
    )
    print(
        "\nTakeaway: verification can only act where probes constrain the"
        " router (the unverifiable column is the method's coverage limit,"
        " as HLOC also reports) — but where it does act, it removes stale"
        " hints that would otherwise enter a ground-truth dataset."
    )


def _constrained(report):
    return {
        r.address
        for r in report.results
        if r.verdict is not HintVerdict.UNVERIFIABLE
    }


if __name__ == "__main__":
    main()
