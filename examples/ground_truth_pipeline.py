#!/usr/bin/env python3
"""Walk through both ground-truth construction methods, step by step.

``build_scenario`` runs these pipelines automatically; this example
unrolls them the way §2.3 and §3 of the paper describe, printing each
stage — useful when adapting the methods to your own measurement data:

* DNS-based: Ark addresses → rDNS → DRoP rules for the 7 operator-
  validated domains → decoded locations (with the extraction funnel);
* RTT-proximity: Atlas built-in traceroutes → 0.5 ms threshold → probe
  disqualification (country-centroid defaults, RTT-nearby consistency);
* §3 correctness checks: cross-dataset agreement and hostname churn.

Run::

    python examples/ground_truth_pipeline.py
"""

import random

from repro import build_scenario
from repro.core import percent, render_table
from repro.dns import evolve
from repro.groundtruth import (
    RttProximityConfig,
    build_dns_ground_truth,
    build_rtt_ground_truth,
    compare_datasets,
    hostname_churn_report,
    table1,
)


def main() -> None:
    scenario = build_scenario(seed=2016, scale=0.12)
    world = scenario.internet
    print(scenario.describe(), "\n")

    # ---- DNS-based ground truth (§2.3.1) --------------------------------
    dns_result = build_dns_ground_truth(
        scenario.ark_dataset.addresses, scenario.rdns, scenario.drop
    )
    stats = dns_result.stats
    print("== DNS-based extraction funnel ==")
    print(f"Ark interface addresses:        {stats.input_addresses}")
    print(f"  with rDNS hostnames:          {stats.with_hostnames}"
          f" ({percent(stats.hostname_rate)})")
    print(f"  in ground-truth domains:      {stats.in_ground_truth_domains}")
    print(f"  geolocated by DRoP rules:     {stats.geolocated}")
    print(
        render_table(
            ["domain", "addresses"],
            sorted(stats.per_domain.items(), key=lambda kv: -kv[1]),
            title="per-domain contributions (paper: cogentco.com 6,462 of 11,857)",
        ),
        "\n",
    )

    # ---- RTT-proximity ground truth (§2.3.2, §3.2) -----------------------
    rtt_result = build_rtt_ground_truth(
        scenario.measurements, scenario.probes, RttProximityConfig()
    )
    s = rtt_result.stats
    print("== RTT-proximity extraction ==")
    print(f"candidate addresses under 0.5 ms:   {s.candidate_addresses}")
    print(f"candidate probes:                   {s.candidate_probes}")
    print(f"probes on country-centroid default: {s.centroid_probes_removed}"
          f" (removed {s.centroid_addresses_removed} addresses)")
    print(f"RTT-nearby groups (≥2 probes):      {s.nearby_groups}"
          f" ({s.inconsistent_groups} initially inconsistent)")
    print(f"probes disqualified by consistency: {s.nearby_probes_disqualified}"
          f" of {s.nearby_probes_total} (removed {s.nearby_addresses_removed})")
    print(f"final RTT-proximity dataset:        {s.final_addresses}\n")

    # ---- Table 1 ----------------------------------------------------------
    print("== Table 1 ==")
    for row in table1(dns_result.dataset, rtt_result.dataset, world.whois):
        print(row.render())
    print()

    # ---- §3.1 cross-dataset agreement -------------------------------------
    overlap = compare_datasets(
        "DNS-based", dns_result.dataset, "RTT-proximity", rtt_result.dataset
    )
    print("== §3.1: DNS-based vs RTT-proximity overlap ==")
    print(f"common addresses: {overlap.common}")
    if overlap.common:
        print(f"  within 10 km:  {overlap.within(10)}")
        print(f"  within 43 km:  {overlap.within(43)} (paper: all 109)")
        print(f"  max distance:  {overlap.max_distance():.1f} km")
    print()

    # ---- §3.1 hostname churn ----------------------------------------------
    evolution = evolve(
        scenario.rdns, world, scenario.hostname_factory, random.Random(16)
    )
    churn = hostname_churn_report(
        dns_result.dataset, scenario.rdns, evolution.service, scenario.drop
    )
    print("== §3.1: 16-month hostname churn over the DNS-based set ==")
    print(f"same hostname:      {churn.same_hostname} ({percent(churn.same_hostname / churn.total)})")
    print(f"changed hostname:   {churn.changed_hostname} ({percent(churn.changed_hostname / churn.total)})")
    print(f"no longer resolves: {churn.no_rdns} ({percent(churn.no_rdns / churn.total)})")
    print("of the changed:")
    if churn.changed_hostname:
        print(f"  same location:      {churn.same_location}")
        print(f"  different location: {churn.different_location}")
        print(f"  no rule match:      {churn.no_rule_match}")
    print(
        f"=> {percent(churn.moved_fraction_of_all)} of all DNS-based addresses"
        " moved (paper: 7.4% over 16 months)"
    )


if __name__ == "__main__":
    main()
