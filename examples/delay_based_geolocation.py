#!/usr/bin/env python3
"""Delay-based router geolocation (CBG) as an alternative to databases.

The paper's introduction points to delay-based geolocation as the main
alternative when database accuracy is insufficient.  This example runs
the full active-measurement pipeline over the synthetic Internet:

1. pick verified landmarks from the Atlas probe population;
2. calibrate per-landmark bestlines on landmark-to-landmark RTTs;
3. ping-measure every ground-truth router from every landmark;
4. multilaterate each router from its delay constraints;
5. compare the error profile with the four databases.

Run::

    python examples/delay_based_geolocation.py
"""

import random

from repro import build_scenario
from repro.core import Ecdf, percent, render_table
from repro.delaygeo import (
    CbgGeolocator,
    calibration_matrix,
    fit_bestlines,
    measure_targets,
    select_landmarks,
)


def main() -> None:
    scenario = build_scenario(seed=2016, scale=0.12)
    world = scenario.internet
    print(scenario.describe(), "\n")

    rng = random.Random(31)
    landmarks = select_landmarks(scenario.probes, 50, rng)
    print(f"landmarks: {len(landmarks)} verified vantage points")

    matrix = calibration_matrix(world, landmarks, rng)
    bestlines = fit_bestlines(matrix)
    trained = sum(1 for line in bestlines.values() if line.intercept_ms > 0)
    print(f"calibration: {sum(len(p) for p in matrix.values())} landmark pairs,"
          f" {trained} landmarks with non-trivial bestlines\n")

    records = list(scenario.ground_truth)[:150]
    truth = {r.address: r.location for r in records}
    measurements = measure_targets(world, landmarks, list(truth), rng)
    print(f"measured {len(measurements)} of {len(truth)} ground-truth routers\n")

    rows = []
    for label, geolocator in (
        ("CBG baseline (speed-of-light)", CbgGeolocator()),
        ("CBG bestline (calibrated)", CbgGeolocator(bestlines)),
    ):
        estimates = geolocator.geolocate_all(measurements)
        ecdf = Ecdf([e.location.distance_km(truth[t]) for t, e in estimates.items()])
        feasible = sum(1 for e in estimates.values() if e.feasible)
        rows.append(
            [
                label,
                ecdf.n,
                f"{ecdf.median():.0f} km",
                percent(ecdf.fraction_within(40)),
                percent(feasible / max(1, len(estimates))),
            ]
        )
    for name in sorted(scenario.databases):
        database = scenario.databases[name]
        errors = [
            database.lookup(a).location.distance_km(loc)
            for a, loc in truth.items()
            if database.lookup(a) is not None and database.lookup(a).has_coordinates
        ]
        ecdf = Ecdf(errors)
        rows.append(
            [name, ecdf.n, f"{ecdf.median():.0f} km", percent(ecdf.fraction_within(40)), "-"]
        )

    print(
        render_table(
            ["method", "answers", "median error", "within 40 km", "feasible"],
            rows,
            title="Active delay-based geolocation vs databases",
        )
    )
    print(
        "\nReading: CBG is sound (its constraints bound the truth) and"
        " immune to registry bias, but coarse — useful for validating"
        " suspicious database answers, not for city-level mapping.  Note"
        " the calibrated bestline under-covers on noisy paths, a known CBG"
        " failure mode; the physical baseline is the safe default."
    )


if __name__ == "__main__":
    main()
