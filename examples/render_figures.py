#!/usr/bin/env python3
"""Render the paper's distance-CDF figures as SVG files.

Regenerates Figures 1, 2, 5a, and 5b as standalone SVGs (no plotting
library needed) under ``figures/``:

* ``figure1_pairwise.svg`` — pairwise database coordinate distances over
  the Ark-topo-router all-city subset;
* ``figure2_gt_error.svg`` — per-database error CDFs vs the ground truth;
* ``figure5a_maxmind_by_rir.svg`` / ``figure5b_netacuity_by_rir.svg`` —
  the regional error breakdowns.

Run::

    python examples/render_figures.py [scale] [output_dir]
"""

import pathlib
import sys

from repro import RouterGeolocationStudy, build_scenario
from repro.core import render_cdf_svg
from repro.core.accuracy import evaluate_by_rir


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    output = pathlib.Path(sys.argv[2]) if len(sys.argv) > 2 else pathlib.Path("figures")
    output.mkdir(parents=True, exist_ok=True)

    scenario = build_scenario(seed=2016, scale=scale)
    print(scenario.describe(), "\n")
    result = RouterGeolocationStudy.from_scenario(scenario).run()

    figure1 = render_cdf_svg(
        {
            f"{p.database_a} vs {p.database_b}": p.ecdf
            for p in result.consistency.city_pairs
        },
        title=(
            "Figure 1: pairwise database distance CDFs"
            f" ({result.consistency.city_subset_size} addresses)"
        ),
    )
    (output / "figure1_pairwise.svg").write_text(figure1)

    figure2 = render_cdf_svg(
        {name: a.city_error_ecdf for name, a in sorted(result.overall.items())},
        title="Figure 2: geolocation error vs ground truth",
    )
    (output / "figure2_gt_error.svg").write_text(figure2)

    by_rir = evaluate_by_rir(
        scenario.databases, scenario.ground_truth, scenario.internet.whois
    )
    for suffix, database in (("a", "MaxMind-Paid"), ("b", "NetAcuity")):
        series = {
            rir.value: results[database].city_error_ecdf
            for rir, results in sorted(by_rir.items(), key=lambda kv: kv[0].value)
            if results[database].city_covered
        }
        svg = render_cdf_svg(
            series,
            title=f"Figure 5{suffix}: {database} error CDF by RIR",
        )
        (output / f"figure5{suffix}_{database.lower().replace('-', '_')}_by_rir.svg").write_text(svg)

    for path in sorted(output.glob("*.svg")):
        print(f"wrote {path} ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
