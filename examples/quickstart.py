#!/usr/bin/env python3
"""Quickstart: build a scenario, run the full study, print the report.

This is the five-line version of the whole reproduction:

1. ``build_scenario`` assembles everything the paper's study needed — a
   (synthetic) Internet, an Ark-style traceroute campaign, an rDNS
   snapshot, RIPE-Atlas-style probes with built-in measurements, the two
   ground-truth datasets, and the four database snapshots;
2. ``RouterGeolocationStudy`` runs every analysis of §4–§6;
3. ``render_summary`` prints the tables and figures as text.

Run::

    python examples/quickstart.py [scale]

``scale`` defaults to 0.1 (a few seconds); 1.0 approximates the default
full-size world (about a minute).
"""

import sys
import time

from repro import RouterGeolocationStudy, build_scenario


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
    started = time.perf_counter()

    scenario = build_scenario(seed=2016, scale=scale)
    print(scenario.describe())
    print(f"[scenario built in {time.perf_counter() - started:.1f}s]\n")

    study = RouterGeolocationStudy.from_scenario(scenario)
    result = study.run()
    print(result.render_summary())

    print(f"\n[total {time.perf_counter() - started:.1f}s]")


if __name__ == "__main__":
    main()
