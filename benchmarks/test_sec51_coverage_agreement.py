"""§5.1 — database coverage and country-level agreement over Ark-topo-router.

Paper values: IP2Location-Lite and NetAcuity cover ~100% at both
resolutions; MaxMind ~99.3% country but 43% (GeoLite) / 61.6% (Paid) at
city level.  MaxMind editions agree on 99.6% of addresses, other pairs
97.0–97.6%, all four agree on 95.8%.
"""

from repro.core import consistency_analysis, coverage_table, percent, render_table


def test_coverage(benchmark, scenario, write_artifact):
    addresses = scenario.ark_dataset.addresses
    coverage = benchmark.pedantic(
        lambda: coverage_table(scenario.databases, addresses),
        rounds=3,
        iterations=1,
    )
    write_artifact(
        "sec51_coverage",
        render_table(
            ["database", "country cov", "city cov", "paper country", "paper city"],
            [
                ["IP2Location-Lite", percent(coverage["IP2Location-Lite"].country_rate),
                 percent(coverage["IP2Location-Lite"].city_rate), "~100%", "~100%"],
                ["MaxMind-GeoLite", percent(coverage["MaxMind-GeoLite"].country_rate),
                 percent(coverage["MaxMind-GeoLite"].city_rate), "99.3%", "43%"],
                ["MaxMind-Paid", percent(coverage["MaxMind-Paid"].country_rate),
                 percent(coverage["MaxMind-Paid"].city_rate), "99.3%", "61.6%"],
                ["NetAcuity", percent(coverage["NetAcuity"].country_rate),
                 percent(coverage["NetAcuity"].city_rate), "~100%", "~100%"],
            ],
            title="§5.1 coverage over the Ark-topo-router dataset",
        ),
    )
    assert coverage["IP2Location-Lite"].city_rate > 0.97
    assert coverage["NetAcuity"].city_rate > 0.97
    assert coverage["MaxMind-Paid"].country_rate > 0.95
    # Low, asymmetric MaxMind city coverage: GeoLite < Paid ≪ full.
    assert coverage["MaxMind-GeoLite"].city_rate < coverage["MaxMind-Paid"].city_rate
    assert coverage["MaxMind-Paid"].city_rate < 0.8


def test_country_agreement(benchmark, scenario, write_artifact):
    addresses = scenario.ark_dataset.addresses
    report = benchmark.pedantic(
        lambda: consistency_analysis(scenario.databases, addresses),
        rounds=1,
        iterations=1,
    )
    rows = [
        [f"{p.database_a} vs {p.database_b}", p.compared, percent(p.rate)]
        for p in report.country_pairs
    ]
    rows.append(["ALL four agree", report.all_agree_compared, percent(report.all_agree_rate)])
    write_artifact(
        "sec51_country_agreement",
        render_table(
            ["pair", "compared", "agreement"],
            rows,
            title=(
                "§5.1 country-level pairwise agreement"
                " (paper: MaxMind pair 99.6%, others 97.0–97.6%, all 95.8%)"
            ),
        ),
    )
    mm = report.country_pair("MaxMind-GeoLite", "MaxMind-Paid")
    assert mm.rate > 0.99  # the editions share a feed
    for pair in report.country_pairs:
        assert pair.rate > 0.85  # broad agreement...
    assert report.all_agree_rate > 0.85
    # ...but the MaxMind pair agrees most (paper's ordering).
    assert mm.rate == max(p.rate for p in report.country_pairs)
