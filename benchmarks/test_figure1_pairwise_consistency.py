"""Figure 1 — pairwise coordinate-distance CDFs over the Ark dataset.

Paper: over the ~692 K addresses city-covered in all four databases, the
two MaxMind editions have identical coordinates for 68% and disagree
beyond the 40 km city range for 11.4%; every cross-vendor pair disagrees
beyond 40 km for more than 29% of addresses.
"""

from repro.core import consistency_analysis, render_cdf_grid, render_cdf_svg


def test_figure1(benchmark, scenario, write_artifact):
    addresses = scenario.ark_dataset.addresses
    report = benchmark.pedantic(
        lambda: consistency_analysis(scenario.databases, addresses),
        rounds=1,
        iterations=1,
    )
    mm = report.city_pair("MaxMind-GeoLite", "MaxMind-Paid")
    cross = [
        p
        for p in report.city_pairs
        if {p.database_a, p.database_b} != {"MaxMind-GeoLite", "MaxMind-Paid"}
    ]

    lines = [
        render_cdf_grid(
            {f"{p.database_a} vs {p.database_b}": p.ecdf for p in report.city_pairs},
            title=(
                f"Figure 1 — pairwise distance CDFs over the"
                f" {report.city_subset_size}-address all-city subset"
            ),
        ),
        "",
        f"MaxMind pair identical coordinates: {mm.identical_fraction:.1%} (paper: 68%)",
        f"MaxMind pair beyond 40 km:          {mm.disagreement_beyond(40):.1%} (paper: 11.4%)",
    ]
    for p in cross:
        lines.append(
            f"{p.database_a} vs {p.database_b} beyond 40 km: "
            f"{p.disagreement_beyond(40):.1%} (paper: >29%)"
        )
    write_artifact("figure1_pairwise_consistency", "\n".join(lines))
    write_artifact(
        "figure1_pairwise_consistency.svg",
        render_cdf_svg(
            {f"{p.database_a} vs {p.database_b}": p.ecdf for p in report.city_pairs},
            title="Figure 1: pairwise database distance CDFs",
        ),
    )

    # Shape assertions.
    assert mm.identical_fraction > 0.5
    assert mm.disagreement_beyond(40) < 0.2
    for p in cross:
        assert p.disagreement_beyond(40) > 0.15
        assert p.disagreement_beyond(40) > mm.disagreement_beyond(40)
    # The subset only contains addresses city-covered everywhere, so it is
    # far smaller than the Ark population (MaxMind's coverage bounds it).
    assert report.city_subset_size < 0.8 * len(addresses)
