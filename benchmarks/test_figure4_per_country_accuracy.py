"""Figure 4 — country-level accuracy for the top-20 ground-truth countries.

Paper: all four databases exceed 94% in the US and Russia, but accuracy
collapses in many other countries — surprisingly so in western Europe
(France, Netherlands) for IP2Location and MaxMind; NetAcuity stays at
≥74% everywhere in the top 20.
"""

from repro.core import (
    evaluate_by_country,
    percent,
    render_table,
    shared_incorrect_analysis,
    top_countries,
)


def test_figure4(benchmark, scenario, write_artifact):
    ground_truth = scenario.ground_truth

    def analysis():
        ranking = top_countries(ground_truth, 20)
        return ranking, evaluate_by_country(
            scenario.databases,
            ground_truth,
            countries=tuple(country for country, _ in ranking),
        )

    ranking, by_country = benchmark.pedantic(analysis, rounds=1, iterations=1)

    names = sorted(scenario.databases)
    rows = []
    for country, count in ranking:
        results = by_country[country]
        rows.append(
            [country, count]
            + [percent(results[name].country_accuracy) for name in names]
        )
    shared = shared_incorrect_analysis(scenario.databases, ground_truth)
    text = render_table(
        ["country", "n"] + names,
        rows,
        title="Figure 4 — fraction correct for the top-20 GT countries",
    )
    text += (
        f"\n\nshared incorrect locations across the three cheap databases:"
        f" {shared.shared_incorrect} addresses — "
        + ", ".join(
            f"{name} {shared.shared_fraction(name):.0%} of its errors"
            for name in shared.databases
        )
        + " (paper: 2,277 addresses; 61%, 64%, 67%)"
    )
    write_artifact("figure4_per_country_accuracy", text)

    # The US is everyone's best case (paper: >94% for all databases).
    us = by_country.get("US")
    assert us is not None
    assert all(a.country_accuracy > 0.85 for a in us.values())
    # NetAcuity is the consistent one: it holds up in almost every
    # populous country.  (Paper: ≥74% in all top-20; our synthetic world
    # allows isolated dips where a country's ground truth happens to be
    # dominated by hint-free foreign-registered transit.)
    populous = [
        by_country[country]["NetAcuity"].country_accuracy
        for country, count in ranking
        if count >= 25
    ]
    if populous:
        holding = sum(1 for accuracy in populous if accuracy > 0.6)
        assert holding / len(populous) >= 0.8
    neta_rates = sorted(
        by_country[country]["NetAcuity"].country_accuracy for country, _ in ranking
    )
    assert neta_rates[len(neta_rates) // 2] > 0.7  # median across top-20
    # The cheap databases collapse somewhere NetAcuity does not (the
    # paper's France/Netherlands effect: MaxMind "surprisingly low" in
    # western countries while NetAcuity holds up).
    collapses = [
        country
        for country, count in ranking
        if count >= 10
        and by_country[country]["MaxMind-Paid"].country_accuracy < 0.55
        and by_country[country]["NetAcuity"].country_accuracy
        >= by_country[country]["MaxMind-Paid"].country_accuracy + 0.25
    ]
    assert collapses, "expected at least one MaxMind collapse country"
    # The majority of each cheap database's errors are *shared* errors —
    # §5.1's "common incorrect source" made quantitative.
    for name in shared.databases:
        assert shared.shared_fraction(name) > 0.5, name
