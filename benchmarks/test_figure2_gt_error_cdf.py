"""Figure 2 — geolocation-error CDF per database vs the ground truth.

Paper: NetAcuity's curve clearly dominates (best accuracy) yet still
leaves a tail hundreds of km out; IP2Location-Lite is the least accurate
but city-covers everything; the MaxMind curves sit between, computed only
over their thin city-covered subsets.
"""

from repro.core import evaluate_all, render_cdf_grid, render_cdf_svg


def test_figure2(benchmark, scenario, write_artifact):
    ground_truth = scenario.ground_truth
    overall = benchmark.pedantic(
        lambda: evaluate_all(scenario.databases, ground_truth),
        rounds=3,
        iterations=1,
    )
    series = {
        f"{name} ({overall[name].city_covered})": overall[name].city_error_ecdf
        for name in sorted(overall)
    }
    write_artifact(
        "figure2_gt_error_cdf",
        render_cdf_grid(
            series,
            title=(
                "Figure 2 — error vs ground truth (CDF), city-covered"
                " addresses only; 40 km = city range"
            ),
        ),
    )
    write_artifact(
        "figure2_gt_error_cdf.svg",
        render_cdf_svg(series, title="Figure 2: geolocation error vs ground truth"),
    )

    neta = overall["NetAcuity"].city_error_ecdf
    ip2l = overall["IP2Location-Lite"].city_error_ecdf
    # NetAcuity dominates at the city range and at 100 km.
    for threshold in (40.0, 100.0):
        for name, accuracy in overall.items():
            if name == "NetAcuity":
                continue
            assert neta.fraction_within(threshold) >= accuracy.city_error_ecdf.fraction_within(threshold)
    # IP2Location is the least accurate at the city range.
    assert ip2l.fraction_within(40) == min(
        a.city_error_ecdf.fraction_within(40) for a in overall.values()
    )
    # Even the best database has a long error tail (paper: hundreds of km).
    assert neta.fraction_within(200) < 1.0
