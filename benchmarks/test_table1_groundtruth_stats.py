"""Table 1 — ground-truth dataset statistics and regional distribution.

Paper values: DNS-based 11,857 addrs / 53 countries / 238 coordinates,
ARIN-dominated (9,588); RTT-proximity 4,838 addrs / 118 countries / 1,347
coordinates, RIPE-NCC-dominated (3,160).  Absolute counts scale with the
scenario; the regional shape and per-address country breadth are the
reproduction targets.
"""

from repro.geo import RIR
from repro.groundtruth import table1


def test_table1(benchmark, scenario, write_artifact):
    dns = scenario.dns_ground_truth.dataset
    rtt = scenario.rtt_ground_truth.dataset
    whois = scenario.internet.whois

    rows = benchmark.pedantic(
        lambda: table1(dns, rtt, whois), rounds=3, iterations=1
    )
    row_dns, row_rtt = rows

    lines = [
        "Table 1 — ground-truth location statistics and RIR distribution",
        f"(scenario scale: DNS {row_dns.total}, RTT {row_rtt.total};"
        " paper: 11,857 and 4,838)",
        row_dns.render(),
        row_rtt.render(),
    ]
    write_artifact("table1_groundtruth_stats", "\n".join(lines))

    # Shape: the DNS-based set is larger and ARIN-heavy; the RTT set is
    # RIPE-heavy and broader per address (Table 1).
    assert row_dns.total > row_rtt.total
    assert row_dns.per_rir[RIR.ARIN] == max(row_dns.per_rir.values())
    assert row_rtt.per_rir[RIR.RIPENCC] == max(row_rtt.per_rir.values())
    assert row_rtt.countries / row_rtt.total > row_dns.countries / row_dns.total
    # Every RIR is represented in the RTT set (118 countries in the paper).
    assert all(row_rtt.per_rir[rir] > 0 for rir in RIR)
