"""Ablation A5 — snapshot staleness (§5.2's 50-day argument, tested).

The paper geolocated its ground truth with database snapshots accessed
~50 days after the Ark collection and argued the interval "is unlikely to
affect our conclusions".  This ablation re-runs the accuracy evaluation
against snapshots aged 50 days and 16 months by the release-drift model
and measures how much the headline numbers actually move.
"""

from repro.core import evaluate_all, percent, render_table
from repro.geodb import refresh_snapshot

from conftest import BENCH_SEED

FIFTY_DAYS_MONTHS = 50 / 30
SIXTEEN_MONTHS = 16.0


def test_snapshot_staleness(benchmark, scenario, result, write_artifact):
    gazetteer = scenario.internet.gazetteer
    ground_truth = scenario.ground_truth

    def evaluate_aged(months: float):
        aged = {
            name: refresh_snapshot(
                database, gazetteer, months=months, seed=BENCH_SEED + 13
            )
            for name, database in scenario.databases.items()
        }
        return evaluate_all(aged, ground_truth)

    aged_50d = benchmark.pedantic(
        lambda: evaluate_aged(FIFTY_DAYS_MONTHS), rounds=1, iterations=1
    )
    aged_16m = evaluate_aged(SIXTEEN_MONTHS)

    rows = []
    for name in sorted(result.overall):
        fresh = result.overall[name]
        rows.append(
            [
                name,
                percent(fresh.city_accuracy),
                percent(aged_50d[name].city_accuracy),
                percent(aged_16m[name].city_accuracy),
            ]
        )
    write_artifact(
        "ablation_snapshot_staleness",
        render_table(
            ["database", "fresh city acc", "50 days later", "16 months later"],
            rows,
            title="A5 — ground-truth city accuracy vs snapshot age",
        ),
    )

    for name in result.overall:
        fresh = result.overall[name].city_accuracy
        # 50 days: within noise — the paper's claim holds in the model.
        assert abs(aged_50d[name].city_accuracy - fresh) < 0.03, name
        # 16 months: visible drift (staleness is not free forever).
        assert aged_16m[name].city_accuracy <= fresh + 0.01, name
    # Ranking is unchanged at 50 days.
    fresh_best = max(result.overall, key=lambda n: result.overall[n].city_accuracy)
    aged_best = max(aged_50d, key=lambda n: aged_50d[n].city_accuracy)
    assert fresh_best == aged_best
