"""Extension E1 — delay-based geolocation vs the databases.

The paper's §1 notes delay-based geolocation as "another viable option".
This bench runs constraint-based geolocation (CBG) from verified
landmarks against the ground-truth routers and compares its error profile
with the four databases': CBG needs active measurements and is coarse at
city level, but — unlike registry-biased databases — it cannot be pulled
to a registration country an ocean away.
"""

import random

from repro.core import Ecdf, percent, render_table
from repro.delaygeo import CbgGeolocator, measure_targets, select_landmarks

N_LANDMARKS = 60
N_TARGETS = 120


def test_cbg_vs_databases(benchmark, scenario, write_artifact):
    world = scenario.internet
    rng = random.Random(4242)
    landmarks = select_landmarks(scenario.probes, N_LANDMARKS, rng)
    records = list(scenario.ground_truth)[:N_TARGETS]
    truth = {r.address: r.location for r in records}
    measurements = measure_targets(
        world, landmarks, list(truth), rng
    )

    geolocator = CbgGeolocator()
    estimates = benchmark.pedantic(
        lambda: geolocator.geolocate_all(measurements), rounds=1, iterations=1
    )

    cbg_errors = Ecdf(
        [e.location.distance_km(truth[t]) for t, e in estimates.items()]
    )
    rows = [
        [
            "CBG (baseline)",
            cbg_errors.n,
            percent(cbg_errors.fraction_within(40)),
            percent(cbg_errors.fraction_within(200)),
            f"{cbg_errors.median():.0f} km",
        ]
    ]
    db_profiles = {}
    for name in sorted(scenario.databases):
        database = scenario.databases[name]
        errors = []
        for address, location in truth.items():
            record = database.lookup(address)
            if record is not None and record.has_coordinates:
                errors.append(record.location.distance_km(location))
        ecdf = Ecdf(errors)
        db_profiles[name] = ecdf
        rows.append(
            [
                name,
                ecdf.n,
                percent(ecdf.fraction_within(40)),
                percent(ecdf.fraction_within(200)),
                f"{ecdf.median():.0f} km",
            ]
        )
    write_artifact(
        "extension_cbg_vs_databases",
        render_table(
            ["method", "answers", "within 40 km", "within 200 km", "median error"],
            rows,
            title="E1 — CBG vs databases over ground-truth routers",
        ),
    )

    # CBG localizes at country scale: far better than chance, far worse
    # than NetAcuity at the city range.
    assert cbg_errors.n > 0.7 * len(truth)
    assert cbg_errors.median() < 1000.0
    assert db_profiles["NetAcuity"].fraction_within(40) > cbg_errors.fraction_within(40)
    # But CBG avoids the catastrophic transoceanic tail registry bias
    # creates for the cheap databases.
    assert cbg_errors.fraction_within(3000) >= db_profiles["IP2Location-Lite"].fraction_within(3000)
