"""End-to-end study wall-time: direct per-stage lookups vs one shared frame.

The columnar :class:`~repro.core.frame.LookupFrame` exists for exactly
one reason — the study asks every database the same per-address question
from ten stages, and the direct path re-answers it every time.  This
benchmark runs the *whole* study both ways on the same scenario, proves
the rendered results byte-identical, and records the end-to-end speedup
in ``BENCH_pipeline.json`` (section ``pipeline_frame``).

Timings are best-of-N with an explicit warm-up pass per mode: on the
1-core CI box a single-shot measurement is dominated by GC scheduling
and allocator noise, not by the code under test.
"""

from __future__ import annotations

import gc
import time

from repro.core.frame import LookupFrame
from repro.core.pipeline import RouterGeolocationStudy

RUNS = 5


def best_of(runs: int, run) -> float:
    """Seconds for one call, best of ``runs`` (noise floor)."""
    best = float("inf")
    for _ in range(runs):
        gc.collect()
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def test_pipeline_frame_speedup(scenario, record_perf):
    study = RouterGeolocationStudy.from_scenario(scenario)

    # Result-identity first (and warm-up: whois memo, lazy ground-truth
    # ordering, interpreter caches): a fast divergent pipeline is a bug.
    direct_result = study.run(use_frame=False)
    frame_result = study.run(use_frame=True)
    assert direct_result.render_summary() == frame_result.render_summary()
    assert direct_result.render_markdown() == frame_result.render_markdown()

    direct_s = best_of(RUNS, lambda: study.run(use_frame=False))
    frame_s = best_of(RUNS, lambda: study.run(use_frame=True))

    # The workers fan-out exists for the paper's 1.64 M-address scale; at
    # bench scale it falls back to serial (pool below the floor), so this
    # records the dispatch overhead staying negligible, not a second win.
    workers_study = RouterGeolocationStudy.from_scenario(scenario, frame_workers=2)
    workers_study.run(use_frame=True)
    frame_workers_s = best_of(RUNS, lambda: workers_study.run(use_frame=True))

    pool_size = len(
        LookupFrame.build(
            scenario.databases,
            [*scenario.ark_dataset.addresses, *scenario.ground_truth.addresses()],
        )
    )
    speedup = direct_s / frame_s
    record_perf(
        "pipeline_frame",
        {
            "pool_addresses": pool_size,
            "databases": len(scenario.databases),
            "direct_s": round(direct_s, 4),
            "frame_s": round(frame_s, 4),
            "frame_workers_s": round(frame_workers_s, 4),
            "speedup": round(speedup, 2),
        },
    )

    # The acceptance bar for the columnar refactor: the shared frame must
    # beat re-running every stage's own lookups by a wide, stable margin.
    assert speedup >= 1.5, (direct_s, frame_s)
