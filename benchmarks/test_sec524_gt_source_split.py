"""§5.2.4 — accuracy against the two ground-truth datasets separately.

Paper: NetAcuity is the *only* database more accurate on the DNS-based
data (74.2% vs 70.1% on RTT-proximity) — evidence it mines hostname
hints; MaxMind-Paid drops from 66.5% (RTT) to 43.9% (DNS).  Over the RTT
data NetAcuity still wins on the accuracy+coverage combination (70.1% at
99.6% coverage vs MaxMind-Paid's 66.5% at 50.3%).
"""

from repro.core import evaluate_by_source, percent, render_table
from repro.groundtruth import GroundTruthSource

PAPER = {
    ("dns-based", "NetAcuity"): 0.742,
    ("rtt-proximity", "NetAcuity"): 0.701,
    ("dns-based", "MaxMind-Paid"): 0.439,
    ("rtt-proximity", "MaxMind-Paid"): 0.665,
}


def test_source_split(benchmark, scenario, write_artifact):
    ground_truth = scenario.ground_truth
    by_source = benchmark.pedantic(
        lambda: evaluate_by_source(scenario.databases, ground_truth),
        rounds=3,
        iterations=1,
    )
    rows = []
    for source, results in by_source.items():
        for name in sorted(results):
            accuracy = results[name]
            paper = PAPER.get((source.value, name))
            rows.append(
                [
                    source.value,
                    name,
                    percent(accuracy.city_accuracy),
                    percent(accuracy.city_coverage),
                    f"(paper {paper:.1%})" if paper else "",
                ]
            )
    write_artifact(
        "sec524_gt_source_split",
        render_table(
            ["ground truth", "database", "city acc", "city cov", "paper acc"],
            rows,
            title="§5.2.4 — city-level accuracy by ground-truth source",
        ),
    )

    dns = by_source[GroundTruthSource.DNS]
    rtt = by_source[GroundTruthSource.RTT]
    # NetAcuity: better (or at worst equal) on the DNS-based data.
    assert dns["NetAcuity"].city_accuracy > rtt["NetAcuity"].city_accuracy - 0.03
    # Everyone else: clearly worse on the DNS-based data.
    for name in ("MaxMind-Paid", "MaxMind-GeoLite", "IP2Location-Lite"):
        assert dns[name].city_accuracy < rtt[name].city_accuracy
    # Over RTT data, NetAcuity wins on combined accuracy × coverage.
    neta_score = rtt["NetAcuity"].city_accuracy * rtt["NetAcuity"].city_coverage
    for name, accuracy in rtt.items():
        if name != "NetAcuity":
            assert neta_score > accuracy.city_accuracy * accuracy.city_coverage
