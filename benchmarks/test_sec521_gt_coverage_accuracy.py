"""§5.2.1 — coverage and accuracy over the ground-truth dataset.

Paper: country-level accuracy NetAcuity 89.4%, the other three 77.5–78.6%
(all far below the >97% vendors market); MaxMind city coverage over the
ground truth only 30.4% (GeoLite) / 41.3% (Paid); IP2Location/NetAcuity
near-full coverage.
"""

from repro.core import evaluate_all, percent, render_table

PAPER = {
    "IP2Location-Lite": (0.775, 1.00),
    "MaxMind-GeoLite": (0.775, 0.304),
    "MaxMind-Paid": (0.786, 0.413),
    "NetAcuity": (0.894, 0.996),
}


def test_gt_accuracy(benchmark, scenario, write_artifact):
    ground_truth = scenario.ground_truth
    overall = benchmark.pedantic(
        lambda: evaluate_all(scenario.databases, ground_truth),
        rounds=3,
        iterations=1,
    )
    rows = []
    for name in sorted(overall):
        accuracy = overall[name]
        paper_country, paper_citycov = PAPER[name]
        rows.append(
            [
                name,
                percent(accuracy.country_accuracy),
                f"(paper {paper_country:.1%})",
                percent(accuracy.city_coverage),
                f"(paper {paper_citycov:.1%})",
                percent(accuracy.city_accuracy),
            ]
        )
    write_artifact(
        "sec521_gt_coverage_accuracy",
        render_table(
            ["database", "country acc", "paper", "city cov", "paper", "city acc"],
            rows,
            title=f"§5.2.1 over {len(ground_truth)} ground-truth addresses",
        ),
    )

    # NetAcuity clearly ahead at country level; the rest in a tight band.
    neta = overall["NetAcuity"].country_accuracy
    others = [
        overall[name].country_accuracy for name in overall if name != "NetAcuity"
    ]
    assert neta > max(others) + 0.05
    assert all(0.70 <= rate <= 0.90 for rate in others)
    assert all(a.country_accuracy < 0.97 for a in overall.values())
    # MaxMind's thin city coverage over the GT, GeoLite below Paid.
    assert overall["MaxMind-GeoLite"].city_coverage < overall["MaxMind-Paid"].city_coverage
    assert overall["MaxMind-Paid"].city_coverage < 0.6
    assert overall["IP2Location-Lite"].city_coverage > 0.97
    assert overall["NetAcuity"].city_coverage > 0.97
