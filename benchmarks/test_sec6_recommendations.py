"""§6 — the recommendation engine reproduces the paper's advice.

Paper bullets: (1) use NetAcuity if a database is the only option,
treating its DNS-boosted accuracy as an upper bound; (2/3) MaxMind only
when low city coverage is acceptable, commercial over free; (4) avoid
IP2Location-Lite; (5) the cheap databases are comparable at ~78%
country-level accuracy; (6) don't trust city-level results in ARIN.
"""

from repro.core import build_recommendations


def test_recommendations(benchmark, result, write_artifact):
    recommendations = benchmark.pedantic(
        lambda: build_recommendations(
            result.coverage, result.overall, result.by_rir, result.by_source
        ),
        rounds=3,
        iterations=1,
    )
    write_artifact(
        "sec6_recommendations",
        "§6 — derived recommendations\n" + "\n".join(r.render() for r in recommendations),
    )

    keys = {r.key for r in recommendations}
    best = next(r for r in recommendations if r.key == "best-overall")
    assert "NetAcuity" in best.text
    assert "upper bound" in best.text  # the DNS-hint caveat
    assert any(k.startswith("low-coverage:MaxMind") for k in keys)
    assert "paid-over-free:MaxMind-Paid" in keys
    assert "avoid:IP2Location-Lite" in keys
    assert any(k.startswith("region-warning:") for k in keys)
