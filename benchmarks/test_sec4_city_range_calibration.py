"""§4 — calibrating the 40 km city range.

Paper: database city coordinates match GeoNames within 40 km more than
99% of the time, and any two databases' coordinates for the same city are
within 40 km more than 99% of the time — justifying 40 km as "the same
city" for every comparison in the study.
"""

from repro.core import calibrate_city_range, percent, render_table


def test_city_range(benchmark, scenario, write_artifact):
    calibration = benchmark.pedantic(
        lambda: calibrate_city_range(
            scenario.databases, scenario.internet.gazetteer, 40.0
        ),
        rounds=3,
        iterations=1,
    )
    rows = [
        [check.database, check.matched, check.unmatched, percent(check.within_rate)]
        for check in calibration.gazetteer_checks
    ]
    text = render_table(
        ["database", "matched cities", "unmatched", "within 40 km"],
        rows,
        title="§4 — database city coordinates vs gazetteer (paper: >99%)",
    )
    cross = calibration.cross_database
    text += (
        f"\n\ncross-database same-city pairs: {cross.pairs_compared},"
        f" within 40 km: {percent(cross.within_rate)} (paper: >99%)"
        f"\n40 km city range justified: {calibration.justified}"
    )
    write_artifact("sec4_city_range_calibration", text)

    assert calibration.justified
    for check in calibration.gazetteer_checks:
        assert check.within_rate > 0.99
    assert cross.within_rate > 0.99
    assert cross.pairs_compared > 50
