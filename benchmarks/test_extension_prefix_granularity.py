"""Extension E5 — prefix granularity (Poese et al.'s splitting, measured).

The related work found databases split large allocations into many small
prefixes without matching accuracy.  This bench profiles each snapshot's
row granularity against the registry's actual /20 delegations and checks
the structural link to §5.2.3: the more address space a vendor serves at
block level, the more exposed it is to block-granularity errors.
"""

from repro.core import percent, prefix_granularity_table, render_table


def test_prefix_granularity(benchmark, scenario, write_artifact):
    registry = scenario.internet.registry
    table = benchmark.pedantic(
        lambda: prefix_granularity_table(scenario.databases, registry),
        rounds=3,
        iterations=1,
    )

    rows = []
    for name in sorted(table):
        report = table[name]
        histogram = ", ".join(
            f"/{length}:{count}" for length, count in report.length_histogram.items()
        )
        rows.append(
            [
                name,
                report.entries,
                f"/{report.median_prefix_length}",
                percent(report.splitting_rate),
                percent(report.block_level_address_share),
                histogram,
            ]
        )
    write_artifact(
        "extension_prefix_granularity",
        render_table(
            ["database", "rows", "median len", "finer than delegation",
             "block-level space", "length histogram"],
            rows,
            title="E5 — snapshot row granularity vs /20 registry delegations",
        ),
    )

    # Poese et al.'s splitting: every vendor's rows are finer than the
    # registry's delegations almost everywhere.
    for name, report in table.items():
        assert report.splitting_rate > 0.9, name
    # NetAcuity's hint rows give it by far the most /32 rows.
    assert table["NetAcuity"].length_histogram.get(32, 0) > 4 * table[
        "IP2Location-Lite"
    ].length_histogram.get(32, 0)
    # IP2Location serves essentially all space at block granularity.
    assert table["IP2Location-Lite"].block_level_address_share > 0.9
