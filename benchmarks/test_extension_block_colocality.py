"""Extension E3 — /24 block co-locality (the paper's open question).

§5.2.3 blames block-level records for large errors but leaves block
co-locality unmeasured.  Over the synthetic world's true locations this
bench measures it directly, and derives the best-case error floor of
*any* database constrained to one location per /24.
"""

from repro.core import (
    block_level_error_bound,
    measure_block_colocality,
    percent,
    render_cdf_grid,
    render_table,
)


def test_block_colocality(benchmark, scenario, write_artifact):
    world = scenario.internet
    located = {
        interface.address: world.true_location(interface.address).location
        for interface in world.interfaces()
    }

    report = benchmark.pedantic(
        lambda: measure_block_colocality(located), rounds=1, iterations=1
    )
    bound = block_level_error_bound(report)

    text = render_table(
        ["quantity", "value"],
        [
            ["/24 blocks measured", report.measured_blocks],
            ["blocks with ≥2 interfaces", report.multi_address_blocks],
            ["co-located at 40 km", f"{report.colocated_blocks} ({percent(report.colocation_rate)})"],
            ["median block radius", f"{bound['median_radius_km']:.1f} km"],
            ["blocks no single record can serve", percent(bound["over_city_range"])],
        ],
        title="E3 — true geographic concentration of /24 blocks",
    )
    text += "\n\n" + render_cdf_grid(
        {"block span (multi-address /24s)": report.span_ecdf()},
        title="block-span CDF",
    )
    worst = report.worst_blocks(3)
    text += "\n\nworst blocks: " + ", ".join(
        f"{b.block} span {b.max_span_km:.0f} km over {b.distinct_sites} sites"
        for b in worst
    )
    write_artifact("extension_block_colocality", text)

    # Most blocks are city-coherent (operators number per site)...
    assert report.colocation_rate > 0.3
    # ...but a real tail of split blocks exists, so block-level records
    # are *structurally* unable to reach 100% city accuracy.
    assert bound["over_city_range"] > 0.0
    assert worst[0].max_span_km > 100.0
