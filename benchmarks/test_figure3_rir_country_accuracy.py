"""Figure 3 — country-level accuracy by RIR (stacked correct/incorrect).

Paper incorrect-fractions per RIR (IP2Loc, MM-GeoLite, MM-Paid, NetAcuity):
AFRINIC 6.2/6.1/6.1/6.1 · APNIC 19.8/7.3/7.2/6.4 · ARIN 23.0/21.1/19.6/11.4
· LACNIC 0/0/0/0 · RIPENCC 22.6/29.5/29.1/10.0.  NetAcuity is the most
accurate in every region.
"""

from repro.core import evaluate_by_rir, percent, render_table
from repro.geo import RIR, RIR_ORDER

PAPER_INCORRECT = {
    RIR.AFRINIC: {"IP2Location-Lite": 0.062, "MaxMind-GeoLite": 0.061,
                  "MaxMind-Paid": 0.061, "NetAcuity": 0.061},
    RIR.APNIC: {"IP2Location-Lite": 0.198, "MaxMind-GeoLite": 0.073,
                "MaxMind-Paid": 0.072, "NetAcuity": 0.064},
    RIR.ARIN: {"IP2Location-Lite": 0.230, "MaxMind-GeoLite": 0.211,
               "MaxMind-Paid": 0.196, "NetAcuity": 0.114},
    RIR.LACNIC: {"IP2Location-Lite": 0.0, "MaxMind-GeoLite": 0.0,
                 "MaxMind-Paid": 0.0, "NetAcuity": 0.0},
    RIR.RIPENCC: {"IP2Location-Lite": 0.226, "MaxMind-GeoLite": 0.295,
                  "MaxMind-Paid": 0.291, "NetAcuity": 0.100},
}


def test_figure3(benchmark, scenario, write_artifact):
    ground_truth = scenario.ground_truth
    whois = scenario.internet.whois
    by_rir = benchmark.pedantic(
        lambda: evaluate_by_rir(scenario.databases, ground_truth, whois),
        rounds=1,
        iterations=1,
    )
    rows = []
    for rir in RIR_ORDER:
        results = by_rir.get(rir)
        if not results:
            continue
        for name in sorted(results):
            accuracy = results[name]
            rows.append(
                [
                    rir.value,
                    name,
                    accuracy.country_correct,
                    accuracy.country_incorrect,
                    percent(1 - accuracy.country_accuracy),
                    f"(paper {PAPER_INCORRECT[rir][name]:.1%})",
                ]
            )
    write_artifact(
        "figure3_rir_country_accuracy",
        render_table(
            ["RIR", "database", "correct", "incorrect", "incorrect %", "paper"],
            rows,
            title="Figure 3 — country-level accuracy breakdown by RIR",
        ),
    )

    # NetAcuity most accurate in every sufficiently-populated region.
    for rir, results in by_rir.items():
        if results["NetAcuity"].total < 30:
            continue
        neta_err = 1 - results["NetAcuity"].country_accuracy
        for name, accuracy in results.items():
            assert neta_err <= (1 - accuracy.country_accuracy) + 0.02, (rir, name)
    # ARIN and RIPE NCC show double-digit incorrect rates for the cheap
    # databases — the paper's headline regional finding.
    for rir in (RIR.ARIN, RIR.RIPENCC):
        results = by_rir[rir]
        assert 1 - results["IP2Location-Lite"].country_accuracy > 0.10
        assert 1 - results["MaxMind-Paid"].country_accuracy > 0.10
