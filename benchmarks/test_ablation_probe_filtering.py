"""Ablation A3 — what the §3.2 probe filters actually buy.

Re-extracts the RTT-proximity ground truth with the disqualification
filters disabled and measures the ground truth's true-location error tail
with and without them: the filters should cut the worst errors (lying
probes assign a far-away location to an otherwise healthy router) at a
small cost in dataset size.
"""

from repro.core import percent, render_table
from repro.groundtruth import RttProximityConfig, build_rtt_ground_truth
from repro.groundtruth.rttproximity import RttProximityResult


def _unfiltered(scenario) -> RttProximityResult:
    # Disable the centroid filter (radius 0) and the nearby-consistency
    # filter (groups never flagged because the pair bound is the whole
    # planet).
    config = RttProximityConfig(
        threshold_ms=0.5,
        centroid_disqualify_km=0.0,
    )
    result = build_rtt_ground_truth(scenario.measurements, scenario.probes, config)
    return result


def _error_profile(world, dataset):
    errors = sorted(
        record.location.distance_km(world.true_location(record.address).location)
        for record in dataset
    )
    if not errors:
        return 0, 0.0, 0.0
    bad = sum(1 for error in errors if error > 100.0)
    return len(errors), bad / len(errors), errors[-1]


def test_probe_filtering_ablation(benchmark, scenario, write_artifact):
    world = scenario.internet

    filtered = benchmark.pedantic(
        lambda: build_rtt_ground_truth(
            scenario.measurements, scenario.probes, scenario.config.rtt_proximity
        ),
        rounds=1,
        iterations=1,
    )
    unfiltered = _unfiltered(scenario)

    n_f, bad_f, worst_f = _error_profile(world, filtered.dataset)
    n_u, bad_u, worst_u = _error_profile(world, unfiltered.dataset)

    write_artifact(
        "ablation_probe_filtering",
        render_table(
            ["variant", "addresses", ">100 km wrong", "worst error"],
            [
                ["filters on (paper)", n_f, percent(bad_f), f"{worst_f:.0f} km"],
                ["centroid filter off", n_u, percent(bad_u), f"{worst_u:.0f} km"],
            ],
            title="A3 — effect of §3.2 probe disqualification",
        ),
    )

    # The filters trade a few addresses for a cleaner tail.
    assert n_f <= n_u
    assert bad_f <= bad_u + 1e-9
    # And they never gut the dataset.
    assert n_f > 0.85 * n_u
