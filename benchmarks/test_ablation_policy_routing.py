"""Ablation A4 — do the findings survive BGP policy routing?

The baseline scenario routes traceroutes over latency-shortest paths.
Real forwarding follows Gao–Rexford export policies (valley-free paths),
which changes which interfaces Ark observes and which hops sit near
probes.  This ablation rebuilds the whole study under valley-free routing
and checks the paper's headline ordering is robust to the routing model.
"""

from repro.core import evaluate_all, percent, render_table
from repro.core.pipeline import RouterGeolocationStudy
from repro.scenario import ScenarioConfig, build_scenario

from conftest import BENCH_SEED


def test_policy_routing_ablation(benchmark, scenario, result, write_artifact):
    policy_scenario = build_scenario(
        config=ScenarioConfig(
            seed=BENCH_SEED, scale=scenario.config.scale / 2, routing="valley-free"
        )
    )
    policy_result = benchmark.pedantic(
        lambda: RouterGeolocationStudy.from_scenario(policy_scenario).run(),
        rounds=1,
        iterations=1,
    )

    rows = []
    for name in sorted(result.overall):
        rows.append(
            [
                name,
                percent(result.overall[name].country_accuracy),
                percent(policy_result.overall[name].country_accuracy),
                percent(result.overall[name].city_accuracy),
                percent(policy_result.overall[name].city_accuracy),
            ]
        )
    write_artifact(
        "ablation_policy_routing",
        render_table(
            ["database", "country (latency)", "country (valley-free)",
             "city (latency)", "city (valley-free)"],
            rows,
            title=(
                "A4 — study results under latency vs valley-free routing"
                f" (policy world: {policy_scenario.internet.describe()})"
            ),
        ),
    )

    overall = policy_result.overall
    # Headline ordering survives the routing model change.
    neta = overall["NetAcuity"]
    assert all(
        neta.country_accuracy >= overall[name].country_accuracy
        for name in overall
    )
    assert all(
        neta.city_accuracy * neta.city_coverage
        >= overall[name].city_accuracy * overall[name].city_coverage
        for name in overall
    )
    assert overall["MaxMind-GeoLite"].city_coverage < overall["MaxMind-Paid"].city_coverage
    mm_pair = policy_result.consistency.country_pair("MaxMind-GeoLite", "MaxMind-Paid")
    assert mm_pair.rate == max(p.rate for p in policy_result.consistency.country_pairs)
