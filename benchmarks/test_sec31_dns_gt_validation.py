"""§3.1 — DNS-based ground-truth correctness.

Paper: the 109 addresses shared with the RTT-proximity set agree within
10 km for 105 and within 43 km for all; against the later 1 ms-RTT
dataset, 92.45% of 384 common addresses agree within 100 km (87.8% within
40 km); over 16 months 69.1% of addresses kept their hostnames, 24%
changed them (67.7% of which kept their location) and 6.9% lost rDNS —
7.4% of all addresses moved.
"""

import random

from repro.dns import evolve
from repro.groundtruth import compare_datasets, hostname_churn_report


def test_overlap_with_rtt_proximity(benchmark, scenario, write_artifact):
    dns = scenario.dns_ground_truth.dataset
    rtt = scenario.rtt_ground_truth.dataset
    comparison = benchmark.pedantic(
        lambda: compare_datasets("DNS-based", dns, "RTT-proximity", rtt),
        rounds=3,
        iterations=1,
    )
    lines = [
        "§3.1 — DNS-based vs RTT-proximity overlap",
        f"common addresses: {comparison.common} (paper: 109)",
    ]
    if comparison.common:
        lines += [
            f"within 10 km: {comparison.within(10)} ({comparison.fraction_within(10):.1%};"
            " paper: 105/109)",
            f"within 43 km: {comparison.within(43)} ({comparison.fraction_within(43):.1%};"
            " paper: 109/109)",
        ]
        # The two methods must agree on nearly all common addresses.
        assert comparison.fraction_within(60) > 0.9
    write_artifact("sec31_dns_vs_rtt_overlap", "\n".join(lines))


def test_overlap_with_one_ms_dataset(benchmark, scenario, one_ms_dataset, write_artifact):
    dns = scenario.dns_ground_truth.dataset
    comparison = benchmark.pedantic(
        lambda: compare_datasets(
            "DNS-based", dns, "1ms-RTT-proximity", one_ms_dataset.dataset
        ),
        rounds=3,
        iterations=1,
    )
    lines = [
        "§3.1 — DNS-based vs later 1 ms-RTT-proximity dataset",
        f"common addresses: {comparison.common} (paper: 384)",
    ]
    if comparison.common >= 10:
        lines += [
            f"within 40 km:  {comparison.fraction_within(40):.1%} (paper: 87.8%)",
            f"within 100 km: {comparison.fraction_within(100):.1%} (paper: 92.45%)",
        ]
        assert comparison.fraction_within(100) > 0.85
        assert comparison.fraction_within(40) <= comparison.fraction_within(100)
    write_artifact("sec31_dns_vs_1ms_overlap", "\n".join(lines))


def test_hostname_churn(benchmark, scenario, write_artifact):
    dns = scenario.dns_ground_truth.dataset
    evolution = evolve(
        scenario.rdns,
        scenario.internet,
        scenario.hostname_factory,
        random.Random(1609),
    )
    report = benchmark.pedantic(
        lambda: hostname_churn_report(
            dns, scenario.rdns, evolution.service, scenario.drop
        ),
        rounds=3,
        iterations=1,
    )
    total = report.total
    lines = [
        "§3.1 — hostname churn over 16 months (DNS-based addresses)",
        f"same hostname:      {report.same_hostname} ({report.same_hostname / total:.1%};"
        " paper: 69.1%)",
        f"changed hostname:   {report.changed_hostname} ({report.changed_hostname / total:.1%};"
        " paper: 24%)",
        f"no rDNS any more:   {report.no_rdns} ({report.no_rdns / total:.1%}; paper: 6.9%)",
        f"changed, same loc:  {report.same_location} (paper: 67.7% of changed)",
        f"changed, moved:     {report.different_location}",
        f"changed, no rule:   {report.no_rule_match} (paper: 1.5% of changed)",
        f"moved overall:      {report.moved_fraction_of_all:.1%} (paper: 7.4%)",
    ]
    write_artifact("sec31_hostname_churn", "\n".join(lines))

    assert abs(report.same_hostname / total - 0.691) < 0.08
    assert abs(report.no_rdns / total - 0.069) < 0.05
    if report.changed_hostname >= 40:
        assert abs(report.same_location / report.changed_hostname - 0.677) < 0.15
    assert 0.02 < report.moved_fraction_of_all < 0.15
