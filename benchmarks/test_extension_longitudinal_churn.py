"""Extension E6 — longitudinal answer churn through the snapshot store.

The paper reasons from one epoch and checks (§5.2) that a ~50-day re-query
would not change its conclusions.  This extension runs the claim forward:
several aged vendor releases are published to a :class:`SnapshotStore` and
hot-swapped into a live engine, and we measure how much the *served*
answers churn per vendor versus how often the §5.1 cross-vendor consensus
actually flips.  The expected shape: every vendor churns measurably per
release, while the majority vote absorbs most of the single-vendor drift.
"""

from repro.scenario import run_longitudinal_churn

GENERATIONS = 4
MONTHS_STEP = 6.0


def test_longitudinal_churn_via_store(
    benchmark, scenario, tmp_path, record_perf, write_artifact
):
    report = benchmark.pedantic(
        lambda: run_longitudinal_churn(
            scenario,
            tmp_path / "store",
            generations=GENERATIONS,
            months_step=MONTHS_STEP,
            seed=2016,
        ),
        rounds=1,
        iterations=1,
    )

    write_artifact("extension_longitudinal_churn", report.render())
    record_perf("longitudinal_churn", report.to_dict())

    # Every release was served through a real store swap, none rolled back.
    assert report.swaps == GENERATIONS - 1
    assert report.rollbacks == 0
    assert len(report.steps) == GENERATIONS - 1
    for step in report.steps:
        assert step.generation >= 2
        assert step.probe_count == report.probe_count

    # Six months of drift changes answers for every vendor — the churn
    # model has teeth at every release, not just in aggregate.
    mean_churn = report.mean_answer_churn()
    assert mean_churn and all(rate > 0.0 for rate in mean_churn.values())

    # ...but the consensus absorbs most of it: across the whole sequence
    # the city-level vote flips less often than the noisiest vendor
    # rewrites its answers, and country flips are rarer still.
    flips = report.total_consensus_flips()
    total_probes = report.probe_count * len(report.steps)
    worst_vendor = max(mean_churn.values())
    assert flips["city"] / total_probes < worst_vendor
    assert flips["country"] <= flips["city"]
