"""Ablation A2 — RTT-proximity threshold: dataset size vs purity.

The paper uses 0.5 ms (≤50 km); Giotsas et al. used 1 ms (≤100 km).  The
sweep quantifies the trade: looser thresholds harvest more addresses but
bound each location more loosely, so the true-location error grows.
"""

from repro.core import percent, render_table
from repro.groundtruth import RttProximityConfig, build_rtt_ground_truth

THRESHOLDS_MS = (0.3, 0.5, 1.0, 2.0)


def test_rtt_threshold_sweep(benchmark, scenario, write_artifact):
    world = scenario.internet

    def sweep():
        return {
            threshold: build_rtt_ground_truth(
                scenario.measurements,
                scenario.probes,
                RttProximityConfig(threshold_ms=threshold),
            )
            for threshold in THRESHOLDS_MS
        }

    per_threshold = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    sizes = {}
    for threshold, extraction in per_threshold.items():
        records = list(extraction.dataset)
        sizes[threshold] = len(records)
        if records:
            bound_km = threshold * 100.0
            within_bound = sum(
                1
                for r in records
                if r.location.distance_km(world.true_location(r.address).location)
                <= bound_km + 10.0  # +probe jitter
            )
            median_err = sorted(
                r.location.distance_km(world.true_location(r.address).location)
                for r in records
            )[len(records) // 2]
            rows.append(
                [
                    f"{threshold:g} ms",
                    len(records),
                    f"{median_err:.1f} km",
                    percent(within_bound / len(records)),
                ]
            )
    write_artifact(
        "ablation_rtt_threshold",
        render_table(
            ["threshold", "addresses", "median true error", "within physical bound"],
            rows,
            title="A2 — RTT-proximity threshold sweep",
        ),
    )

    # Looser threshold, (weakly) larger dataset.
    ordered = [sizes[t] for t in THRESHOLDS_MS]
    assert ordered == sorted(ordered)
    assert sizes[2.0] > sizes[0.3]
    # The paper's threshold yields a usable dataset.
    assert sizes[0.5] > 50
    # Physical soundness at the paper's threshold: locations stay within
    # the 50 km bound (plus probe-location jitter) for honest probes.
    half_ms = list(per_threshold[0.5].dataset)
    close = sum(
        1
        for r in half_ms
        if r.location.distance_km(world.true_location(r.address).location) <= 60.0
    )
    assert close / len(half_ms) > 0.9
