"""Figures 5a/5b — city-level error CDFs by RIR (MaxMind-Paid, NetAcuity).

Paper: MaxMind-Paid covers only 41.29% of the ground truth at city level
but is relatively accurate where it answers (e.g. RIPE NCC 78.9% within
40 km on 31.3% coverage); NetAcuity covers 99.6% with consistent accuracy;
both are at their worst on ARIN addresses.
"""

from repro.core import evaluate_by_rir, render_cdf_grid, render_cdf_svg
from repro.geo import RIR


def test_figure5(benchmark, scenario, write_artifact):
    ground_truth = scenario.ground_truth
    whois = scenario.internet.whois
    by_rir = benchmark.pedantic(
        lambda: evaluate_by_rir(scenario.databases, ground_truth, whois),
        rounds=1,
        iterations=1,
    )

    sections = []
    for database in ("MaxMind-Paid", "NetAcuity"):
        series = {}
        for rir, results in sorted(by_rir.items(), key=lambda kv: kv[0].value):
            accuracy = results[database]
            if accuracy.city_covered:
                series[f"{rir.value} ({accuracy.city_covered})"] = accuracy.city_error_ecdf
        sections.append(
            render_cdf_grid(
                series,
                title=f"Figure 5 — {database}: error CDF by RIR (city-covered only)",
            )
        )
    write_artifact("figure5_rir_city_error", "\n\n".join(sections))
    for suffix, database in (("a", "MaxMind-Paid"), ("b", "NetAcuity")):
        series = {
            rir.value: results[database].city_error_ecdf
            for rir, results in sorted(by_rir.items(), key=lambda kv: kv[0].value)
            if results[database].city_covered
        }
        write_artifact(
            f"figure5{suffix}_rir_city_error.svg",
            render_cdf_svg(series, title=f"Figure 5{suffix}: {database} error by RIR"),
        )

    # ARIN is the weakest big region at city level for both databases.
    for database in ("MaxMind-Paid", "NetAcuity"):
        arin = by_rir[RIR.ARIN][database]
        ripe = by_rir[RIR.RIPENCC][database]
        assert arin.city_accuracy <= ripe.city_accuracy + 0.05, database
    # NetAcuity answers city-level essentially everywhere; MaxMind does not.
    total_gt = len(ground_truth)
    neta_covered = sum(r["NetAcuity"].city_covered for r in by_rir.values())
    mm_covered = sum(r["MaxMind-Paid"].city_covered for r in by_rir.values())
    assert neta_covered > 0.95 * total_gt
    assert mm_covered < 0.6 * total_gt
    # Where MaxMind does answer in RIPE NCC, it is decent (paper: 78.9%).
    assert by_rir[RIR.RIPENCC]["MaxMind-Paid"].city_accuracy > 0.45
