"""§5.2.3 — why ARIN city-level accuracy is poor (MaxMind-Paid dissection).

Paper: ARIN holds 64% of the ground truth; 2,793 ARIN addresses are not in
the US, yet MaxMind-Paid geolocates 70% of them to the US (registry data);
of the city-level answers among those, most are >1,000 km wrong.  Among
ARIN addresses genuinely in the US, 58.2% of city answers are >40 km off,
and ~91% of the wrong ones are block-level records vs ~78% of correct ones.
"""

from repro.core import arin_case_study, percent, render_table


def test_arin_case(benchmark, scenario, write_artifact):
    ground_truth = scenario.ground_truth
    whois = scenario.internet.whois
    database = scenario.databases["MaxMind-Paid"]

    case = benchmark.pedantic(
        lambda: arin_case_study(database, ground_truth, whois),
        rounds=3,
        iterations=1,
    )

    rows = [
        ["ARIN ground-truth addresses", case.arin_total, "10,608 (64%)"],
        ["...not located in the US", case.arin_non_us, "2,793"],
        ["...pulled to the US by the DB", f"{case.pulled_to_us} ({percent(case.pulled_rate)})", "1,955 (70%)"],
        ["...pulled with city-level answer", case.pulled_city_level, "519 (26.6%)"],
        ["...of those >1000 km wrong", case.pulled_city_far, "504"],
        ["US+ARIN city-level answers", case.us_arin_city_covered, "3,897"],
        ["...wrong at 40 km", f"{case.us_arin_city_wrong} ({percent(case.us_city_error_rate)})", "2,267 (58.2%)"],
        ["block-level share of wrong", percent(case.wrong_block_level_rate), "~91%"],
        ["block-level share of correct", percent(case.correct_block_level_rate), "~78%"],
    ]
    write_artifact(
        "sec523_arin_case_study",
        render_table(
            ["quantity", "measured", "paper"],
            rows,
            title="§5.2.3 — MaxMind-Paid ARIN case study",
        ),
    )

    # ARIN dominates the ground truth (paper: 64%).
    assert case.arin_total > 0.45 * len(ground_truth)
    # A large share of non-US ARIN addresses is pulled into the US.
    assert case.pulled_rate > 0.35
    # Pulled city-level answers are catastrophically wrong.
    if case.pulled_city_level >= 10:
        assert case.pulled_city_far / case.pulled_city_level > 0.8
    # Most US-ARIN city answers miss the city range.
    assert case.us_city_error_rate > 0.40
    # Wrong answers skew block-level relative to correct ones.
    assert case.wrong_block_level_rate >= case.correct_block_level_rate
