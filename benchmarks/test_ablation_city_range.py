"""Ablation A1 — sensitivity of the results to the city-range threshold.

The paper argues for 40 km (§4).  This ablation sweeps the threshold and
checks that the headline conclusions — the database ranking and the ARIN
weakness — are not artifacts of that particular radius.
"""

from repro.core import evaluate_all, percent, render_table

THRESHOLDS = (20.0, 40.0, 80.0)


def test_city_range_sweep(benchmark, scenario, write_artifact):
    ground_truth = scenario.ground_truth

    def sweep():
        return {
            threshold: evaluate_all(
                scenario.databases, ground_truth, city_range_km=threshold
            )
            for threshold in THRESHOLDS
        }

    per_threshold = benchmark.pedantic(sweep, rounds=1, iterations=1)

    names = sorted(scenario.databases)
    rows = []
    for threshold, results in per_threshold.items():
        rows.append(
            [f"{threshold:g} km"]
            + [percent(results[name].city_accuracy) for name in names]
        )
    write_artifact(
        "ablation_city_range",
        render_table(
            ["city range"] + names,
            rows,
            title="A1 — city-level accuracy vs city-range threshold",
        ),
    )

    for threshold, results in per_threshold.items():
        # NetAcuity wins the combined score at every threshold.
        neta = results["NetAcuity"]
        for name in names:
            if name == "NetAcuity":
                continue
            assert (
                neta.city_accuracy * neta.city_coverage
                >= results[name].city_accuracy * results[name].city_coverage
            ), (threshold, name)
    # Accuracy must be monotone in the threshold for every database.
    for name in names:
        series = [per_threshold[t][name].city_accuracy for t in THRESHOLDS]
        assert series == sorted(series), name
