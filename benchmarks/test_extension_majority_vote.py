"""Extension E2 — quantifying "agreement does not imply correctness".

Prior comparative studies scored databases against a majority vote of the
databases themselves.  §5.1 warns that the databases may agree on wrong
answers from "a common incorrect source … (e.g., registry data)", and
§5.2.2 finds 61–67% of the cheap databases' errors are shared.  This
bench scores each database both ways and measures the flattery: how many
points the vote-based methodology over-credits each product.
"""

from repro.core import (
    evaluate_all,
    majority_vote_reference,
    percent,
    render_table,
    score_against_majority,
    validate_majority_against_truth,
)


def test_majority_vote_methodology(benchmark, scenario, write_artifact):
    ground_truth = scenario.ground_truth
    addresses = list(ground_truth.addresses())

    def analysis():
        reference = majority_vote_reference(addresses, scenario.databases)
        scores = score_against_majority(scenario.databases, reference)
        outcome = validate_majority_against_truth(reference, ground_truth)
        return reference, scores, outcome

    reference, scores, outcome = benchmark.pedantic(analysis, rounds=1, iterations=1)
    against_truth = evaluate_all(scenario.databases, ground_truth)

    rows = []
    for name in sorted(scores):
        vote_rate = scores[name].country_rate
        truth_rate = against_truth[name].country_accuracy
        rows.append(
            [
                name,
                percent(vote_rate),
                percent(truth_rate),
                f"{(vote_rate - truth_rate) * 100:+.1f} pp",
            ]
        )
    text = render_table(
        ["database", "vs majority vote", "vs ground truth", "flattery"],
        rows,
        title="E2 — country-level score: vote-based vs ground-truth-based",
    )
    text += (
        f"\n\nmajority vote itself vs ground truth:"
        f" country {percent(outcome.country_vote_accuracy)}"
        f" (quorum on {outcome.country_votes_with_quorum}),"
        f" city {percent(outcome.city_vote_accuracy)}"
        f" (quorum on {outcome.city_votes_with_quorum})"
    )
    write_artifact("extension_majority_vote", text)

    # The vote reaches quorum almost everywhere, yet is itself wrong on a
    # double-digit share of router addresses.
    assert outcome.country_votes_with_quorum > 0.8 * len(addresses)
    assert outcome.country_vote_accuracy < 0.95
    # The registry-following databases are flattered by the vote.
    flattered = [
        name
        for name in scores
        if scores[name].country_rate
        > against_truth[name].country_accuracy + 0.02
    ]
    assert "IP2Location-Lite" in flattered
    assert "MaxMind-Paid" in flattered
    # NetAcuity, which deviates from the (often wrong) consensus, gains
    # least — voting *penalizes* the most accurate database.
    neta_gain = scores["NetAcuity"].country_rate - against_truth["NetAcuity"].country_accuracy
    ip2l_gain = scores["IP2Location-Lite"].country_rate - against_truth["IP2Location-Lite"].country_accuracy
    assert neta_gain < ip2l_gain
