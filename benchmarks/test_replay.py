"""Open-loop replay against a live server, plus the HTTP hot-path win.

The serving numbers elsewhere in this suite time Python callables; this
benchmark measures the only thing a user ever sees — HTTP round trips —
by replaying seeded Zipf traffic at a fixed offered rate against a real
:class:`GeoServer` and recording coordinated-omission-safe latency
quantiles, achieved throughput, and the server's own ``/statusz`` view
of the same window into the ``replay`` block of ``BENCH_pipeline.json``.

It also pins the PR's measured hot-path fix: the old response path
re-encoded the status line, ``Server`` and ``Date`` headers per request
and flushed headers and body as two socket writes (the second of which
could stall ~40 ms behind Nagle + delayed ACK on keep-alive
connections).  The new path assembles the head from precomputed
fragments — ``Date`` re-rendered at most once a second — and sends one
write.  A faithful replica of the old per-request encoding is timed
against the new ``_response_head`` so the before/after nanoseconds land
in the bench block next to the replay profile they improved.
"""

from __future__ import annotations

import time
from email.utils import formatdate
from http import HTTPStatus

from repro.loadgen import ReplayConfig, WorkloadConfig, ZipfWorkload, replay
from repro.serve import CompiledIndex, ServingEngine, compile_plane
from repro.serve.http import GeoServer, _response_head

#: Offered load for the profile run — modest enough for CI boxes, high
#: enough that scheduling and keep-alive behaviour actually matter.
RATE_RPS = 400.0
DURATION_S = 4.0
CLIENTS = 4

#: Hot-path microbench iterations (one iteration = one response head).
HEAD_ITERATIONS = 20_000


def _legacy_response_head(
    status: int,
    content_type: str,
    body_length: int,
    trace_id: str | None = None,
) -> bytes:
    """What the pre-fix path did per response: the stdlib
    ``send_response``/``send_header`` encoding sequence, every line a
    fresh %-format + ``encode`` and the ``Date`` header re-rendered from
    the clock each call."""
    buffer = [
        ("HTTP/1.1 %d %s\r\n" % (status, HTTPStatus(status).phrase)).encode(
            "latin-1", "strict"
        ),
        ("%s: %s\r\n" % ("Server", "repro-serve/1")).encode("latin-1", "strict"),
        ("%s: %s\r\n" % ("Date", formatdate(time.time(), usegmt=True))).encode(
            "latin-1", "strict"
        ),
        ("%s: %s\r\n" % ("Content-Type", content_type)).encode("latin-1", "strict"),
        ("%s: %s\r\n" % ("Content-Length", body_length)).encode("latin-1", "strict"),
    ]
    if trace_id is not None:
        buffer.append(
            ("%s: %s\r\n" % ("X-Request-Id", trace_id)).encode("latin-1", "strict")
        )
    buffer.append(b"\r\n")
    return b"".join(buffer)


def _time_heads(build) -> float:
    started = time.perf_counter()
    for i in range(HEAD_ITERATIONS):
        build(200, "application/json", 512 + (i & 63), "bench-trace-id")
    return time.perf_counter() - started


def test_replay_profile(scenario, record_perf):
    indexes = {
        name: CompiledIndex.compile(database)
        for name, database in sorted(scenario.databases.items())
    }
    plane = compile_plane(indexes)
    engine = ServingEngine(indexes, plane=plane)
    server = GeoServer(engine)
    server.start_background()
    try:
        pool: set[int] = set()
        for index in indexes.values():
            starts = [s for s, _e, answer in index.intervals() if answer >= 0]
            step = max(1, len(starts) // 4096)
            pool.update(starts[::step])
        workload = ZipfWorkload(
            sorted(pool), WorkloadConfig(seed=2016, zipf_s=1.1, miss_fraction=0.02)
        )
        report = replay(
            server.url,
            workload.addresses(),
            ReplayConfig(rate=RATE_RPS, duration_s=DURATION_S, clients=CLIENTS),
        )
    finally:
        server.stop()

    # The head microbench: identical output shape, then speed.  The new
    # head differs from the legacy bytes only when the cached Date line
    # is from an earlier second, so compare on a fresh second boundary.
    new_head = _response_head(200, "application/json", 512, "bench-trace-id")
    legacy_head = _legacy_response_head(200, "application/json", 512, "bench-trace-id")
    if new_head != legacy_head:  # date rolled between the two renders
        new_head = _response_head(200, "application/json", 512, "bench-trace-id")
        legacy_head = _legacy_response_head(
            200, "application/json", 512, "bench-trace-id"
        )
    assert new_head == legacy_head
    legacy_s = min(_time_heads(_legacy_response_head) for _ in range(3))
    new_s = min(_time_heads(_response_head) for _ in range(3))
    head_speedup = legacy_s / new_s

    section = report.to_dict()
    section["zipf_s"] = 1.1
    section["miss_fraction"] = 0.02
    section["pool"] = len(workload.pool)
    section["http_head_hot_path"] = {
        "iterations": HEAD_ITERATIONS,
        "legacy_ns_per_head": round(legacy_s / HEAD_ITERATIONS * 1e9, 1),
        "precomputed_ns_per_head": round(new_s / HEAD_ITERATIONS * 1e9, 1),
        "speedup": round(head_speedup, 2),
    }
    record_perf("replay", section)

    # Regression gates.  An open-loop driver that cannot keep up, a
    # non-zero error rate, or a p99 in coordinated-omission territory all
    # mean the serving stack (or the driver) regressed.
    assert report.errors == 0, report.errors
    assert report.achieved_rps >= 0.7 * RATE_RPS, report.achieved_rps
    assert report.latency_ms["p99"] <= 250.0, report.latency_ms
    # The healthy path must stay on the plane, and the server's own
    # window must agree with what the client measured.
    assert report.server is not None
    rates = report.server["rates"]["10s"]
    assert rates["error_rate"] == 0.0, rates
    assert rates["plane_hit_ratio"] >= 0.9, rates
    server_requests = rates["rps"] * 10.0
    assert abs(server_requests - report.requests) / report.requests < 0.25, (
        server_requests,
        report.requests,
    )
    # The header fix must stay a measured win, not a refactor.
    assert head_speedup >= 1.2, (legacy_s, new_s)
