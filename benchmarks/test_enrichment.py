"""Sustained enrichment firehose at bench scale, with regression gates.

The replay benchmark measures the serving stack from *outside* (HTTP
round trips); this one measures the streaming consumer the ISSUE-10
tentpole added: a paced synthetic firehose through the full
batch-lookup → consensus → whois → drift pipeline, in-process.  The
``enrichment`` block of ``BENCH_pipeline.json`` records sustained
events/s, end-to-end event latency quantiles, queue high-water marks,
and shed/drift counts, gated so a regression in any stage (batching,
fan-out, reordering, detection) fails the run rather than quietly
shifting the trajectory.
"""

from __future__ import annotations

from repro.enrich import EnrichConfig, EnrichmentPipeline, EventConfig, EventSource
from repro.loadgen import covered_pool
from repro.obs import MetricsRegistry
from repro.serve import CompiledIndex, ServingEngine, compile_plane

from benchmarks.conftest import BENCH_SEED

#: The acceptance floor is 2000 events/s sustained for 10 s; offer a
#: quarter more so the gate tests headroom, not the exact boundary.
RATE_EPS = 2500.0
DURATION_S = 10.0
WORKERS = 2


def test_enrichment_firehose_profile(scenario, record_perf):
    indexes = {
        name: CompiledIndex.compile(database)
        for name, database in sorted(scenario.databases.items())
    }
    engine = ServingEngine(
        indexes, plane=compile_plane(indexes), metrics=MetricsRegistry()
    )
    source = EventSource(
        covered_pool(indexes),
        EventConfig(seed=BENCH_SEED, rate=RATE_EPS, zipf_s=1.1, miss_fraction=0.02),
    )
    pipeline = EnrichmentPipeline(
        engine,
        whois=scenario.internet.whois,
        config=EnrichConfig(whois_workers=WORKERS, overload="block"),
        metrics=MetricsRegistry(),
    )
    report = pipeline.run(source.events(), rate=RATE_EPS, duration_s=DURATION_S)

    section = report.to_dict()
    section["rate_eps"] = RATE_EPS
    section["duration_s_target"] = DURATION_S
    section["reorder_high_water"] = pipeline.stats()["reorder_high_water"]
    record_perf("enrichment", section)

    # Regression gates: the acceptance criteria, asserted.
    expected = int(RATE_EPS * DURATION_S)
    assert report.offered == expected
    assert report.shed == 0, "block policy shed events at steady state"
    assert report.errors == 0, report.errors
    assert report.enriched == expected
    # Sustained throughput: the 10 s run may not stretch (a pipeline that
    # cannot keep up turns open-loop pacing into a longer wall clock).
    assert report.achieved_eps >= 2000.0, report.achieved_eps
    # Bounded queues: high water within configured capacity everywhere.
    for name, queue_stats in report.queues.items():
        assert queue_stats["high_water"] <= queue_stats["capacity"], (
            name,
            queue_stats,
        )
        assert queue_stats["rejected"] == 0, (name, queue_stats)
    # End-to-end p99 event latency: micro-batching plus fan-out should
    # stay well under a tenth of a second per event at bench scale.
    assert report.latency_ms["p99"] <= 100.0, report.latency_ms
    # The detector saw every event and never suppressed on a healthy run.
    assert report.drift["inspected"] == expected
    assert report.drift["suppressed"] == 0
