"""Extension E4 — router-level self-consistency (no ground truth needed).

All interfaces of one physical router are in one place; ITDK alias sets
therefore give a ground-truth-free coherence check: how often does a
database scatter a router's aliases beyond the 40 km city range, or even
across countries?  Plus the §3.2-style default-coordinate scan over the
databases themselves.
"""

import random

from repro.core import (
    default_coordinate_table,
    percent,
    render_table,
    router_consistency_table,
)
from repro.topology import AliasResolver


def test_router_consistency_and_defaults(benchmark, scenario, write_artifact):
    alias_map = AliasResolver(scenario.internet, completeness=1.0).resolve(
        scenario.ark_dataset.addresses, random.Random(8)
    )

    table = benchmark.pedantic(
        lambda: router_consistency_table(scenario.databases, alias_map),
        rounds=1,
        iterations=1,
    )
    defaults = default_coordinate_table(
        scenario.databases, scenario.ark_dataset.addresses
    )

    rows = []
    for name in sorted(table):
        report = table[name]
        rows.append(
            [
                name,
                report.routers_evaluated,
                percent(report.consistency_rate),
                percent(report.country_split_rate),
                percent(defaults[name].default_rate),
            ]
        )
    write_artifact(
        "extension_router_consistency",
        render_table(
            ["database", "routers (≥2 aliases)", "aliases within 40 km",
             "country-split routers", "default-coordinate answers"],
            rows,
            title="E4 — alias-set coherence and default-coordinate prevalence",
        ),
    )

    # Every database splits some routers — the check has teeth.
    assert any(report.consistency_rate < 1.0 for report in table.values())
    for report in table.values():
        assert report.routers_evaluated > 50
    # MaxMind's country-level answers sit on country centroids (the
    # documented convention); full-city databases barely use defaults.
    assert defaults["MaxMind-Paid"].default_rate > 0.2
    assert defaults["IP2Location-Lite"].default_rate < 0.05
    assert defaults["NetAcuity"].default_rate < 0.05
