"""The million-interface scale tier: compile cost, memory bound, identity.

The ROADMAP's north star is production scale — millions of addresses
against the serving stack — and this benchmark is where the repo proves
it reaches that regime.  It compiles the full serving build (streamed
world → streamed vendor snapshots → compiled indexes → answer plane)
for ``REPRO_SCALE_TIER_INTERFACES`` interfaces (default 1 M) through
the memory-bounded path, records counts, per-phase seconds, and peak
RSS into the ``scale_tier`` block of ``BENCH_pipeline.json``, and
gates the two claims that matter:

* **memory-bounded** — peak RSS stays far below what materializing a
  million per-address Python objects would cost;
* **byte-identical** — at bench scale, every vendor snapshot compiled
  through the streaming path serializes to exactly the bytes the
  materialized :class:`GeoDatabase` path produces (checked again, at
  test scale, in ``tests/geodb/test_stream_equivalence.py``).
"""

from __future__ import annotations

import os

from conftest import BENCH_SEED

from repro.geodb.generator import SnapshotGenerator
from repro.geodb.vendors import GENERATED_PROFILES, MAXMIND_GEOLITE_DERIVATION
from repro.scenario.build import build_scale_tier
from repro.serve import CompiledIndex, ServingEngine
from repro.serve.snapshot import save_index

SCALE_TIER_INTERFACES = int(
    os.environ.get("REPRO_SCALE_TIER_INTERFACES", "1000000")
)

#: The memory bound: a 1M-interface materialized world measures in the
#: gigabytes; the streamed build must stay a small fraction of that.
MAX_PEAK_RSS_KB = 2 * 1024 * 1024  # 2 GB, whole-process high-water mark


def test_scale_tier_compile(record_perf):
    tier = build_scale_tier(interfaces=SCALE_TIER_INTERFACES, seed=BENCH_SEED)
    stats = dict(tier.stats)

    assert stats["interfaces"] >= SCALE_TIER_INTERFACES
    assert stats["peak_rss_kb"] <= MAX_PEAK_RSS_KB, stats["peak_rss_kb"]
    assert set(tier.indexes) == {p.name for p in GENERATED_PROFILES} | {
        MAXMIND_GEOLITE_DERIVATION.name
    }

    # The tier must actually serve: the plane's precomputed answers have
    # to agree with the live per-vendor resolve path across the plan.
    engine = ServingEngine(tier.indexes, cache_size=None, plane=tier.plane)
    live = ServingEngine(tier.indexes, cache_size=None)
    for address in tier.world.sample_addresses(512):
        cell = engine.lookup_plane(address)
        outcome = live.lookup_outcome(address)
        assert dict(cell.answers) == dict(outcome.answers)

    record_perf("scale_tier", stats)


def test_streaming_compile_byte_identical(scenario, record_perf, tmp_path):
    """At bench scale the streamed compile is the materialized compile.

    Same generator seeding as ``build_scenario`` (including the rDNS
    hint engine), two compile paths, and the proof is the strongest one
    available: the serialized ``.rgix`` snapshot files are equal
    byte-for-byte.
    """
    config = scenario.config
    generator = SnapshotGenerator(
        scenario.internet,
        config.seed + config.database_seed_offset,
        rdns=scenario.rdns,
    )
    checked = []
    for profile in GENERATED_PROFILES:
        materialized = CompiledIndex.compile(scenario.databases[profile.name])
        streamed = CompiledIndex.compile_entries(
            profile.name, generator.iter_entries(profile)
        )
        materialized_path = tmp_path / f"{profile.name}.materialized.rgix"
        streamed_path = tmp_path / f"{profile.name}.streamed.rgix"
        save_index(materialized, materialized_path)
        save_index(streamed, streamed_path)
        assert materialized_path.read_bytes() == streamed_path.read_bytes(), (
            profile.name
        )
        checked.append(profile.name)

    record_perf(
        "scale_tier_equivalence",
        {"byte_identical_at_bench_scale": sorted(checked), "scale": config.scale},
    )
