"""Hot-path lookup throughput: hash-table walk vs compiled interval index.

The paper's core operation — and the serving layer's entire request path
— is one longest-prefix-match per address.  This benchmark times both
engines over the scenario's Ark interface addresses (the exact workload
§5.1 runs 1.64 M times per database) and records nanoseconds-per-lookup
in ``BENCH_pipeline.json``, so the perf trajectory tracks the hot path
itself rather than only stage wall-times.  The serving engine's live
request path and the precomputed cross-vendor answer plane are timed
next to the raw indexes, with the plane gated at 5x over the live path.
"""

from __future__ import annotations

import time

from repro.obs import MetricsRegistry
from repro.serve import CompiledIndex, ServingEngine, compile_plane

#: Enough probes for stable timing even at small bench scales.
MIN_PROBES = 200_000


def best_of(runs: int, probe, addresses) -> float:
    """Seconds for one full pass, best of ``runs`` (noise floor)."""
    best = float("inf")
    for _ in range(runs):
        started = time.perf_counter()
        for address in addresses:
            probe(address)
        best = min(best, time.perf_counter() - started)
    return best


def test_lookup_throughput(scenario, record_perf):
    addresses = [int(address) for address in scenario.ark_dataset.addresses]
    repeat = -(-MIN_PROBES // len(addresses))  # ceil
    workload = addresses * repeat

    section: dict[str, object] = {"probes": len(workload)}
    speedups = []
    indexes: dict[str, CompiledIndex] = {}
    for name, database in sorted(scenario.databases.items()):
        index = indexes[name] = CompiledIndex.compile(database)

        # Answer-identity first: a fast wrong index is worthless.
        for address in addresses:
            expected = database.probe(address)
            assert index.probe(address) == (
                expected.record if expected is not None else None
            )

        hash_s = best_of(5, database.probe, workload)
        compiled_s = best_of(5, index.probe, workload)
        speedup = hash_s / compiled_s
        speedups.append(speedup)
        section[name] = {
            "entries": len(database),
            "intervals": index.interval_count,
            "hash_table_ns_per_lookup": round(hash_s / len(workload) * 1e9, 1),
            "compiled_ns_per_lookup": round(compiled_s / len(workload) * 1e9, 1),
            "speedup": round(speedup, 2),
        }

    # The serving engine's full fail-closed request path with faults
    # disabled: four vendor probes plus the resilience machinery (health
    # gate, retries scaffold, outcome construction).  Recording it next
    # to the raw index numbers pins what fault tolerance costs when
    # nothing is broken — the answer should be "a dict and a dataclass".
    sample = addresses  # one pass, deduplicated (so the cache can win)
    uncached = ServingEngine(indexes, cache_size=None)
    engine_s = best_of(3, uncached.lookup_outcome, sample)
    cached = ServingEngine(indexes, cache_size=2 * len(sample))
    best_of(1, cached.lookup_outcome, sample)  # warm the cache
    cached_s = best_of(3, cached.lookup_outcome, sample)
    section["engine"] = {
        "lookups": len(sample),
        "engine_ns_per_lookup": round(engine_s / len(sample) * 1e9, 1),
        "engine_cached_ns_per_lookup": round(cached_s / len(sample) * 1e9, 1),
    }

    # The precomputed cross-vendor answer plane: the healthy path becomes
    # one bisect over the merged boundary array plus a cell read, with the
    # §5.1 consensus already tallied at compile time.  Identity first —
    # the plane must agree byte-for-byte with the live resolve path on
    # every bench address — then speed, gated at the ISSUE's 5x over the
    # live engine path.
    plane = compile_plane(indexes)
    plane_engine = ServingEngine(indexes, cache_size=None, plane=plane)
    for address in addresses:
        live = uncached.lookup_outcome(address)
        cell = plane_engine.lookup_plane(address)
        assert dict(cell.answers) == dict(live.answers)
        assert plane_engine.lookup_outcome(address) == live
        assert plane_engine.consensus(address) == uncached.consensus_of(live)
    plane_s = best_of(5, plane_engine.lookup_plane, sample)
    plane_speedup = engine_s / plane_s
    section["plane"] = {
        "intervals": plane.interval_count,
        "cells": plane.cell_count,
        "plane_ns_per_lookup": round(plane_s / len(sample) * 1e9, 1),
        "speedup_vs_engine": round(plane_speedup, 2),
    }

    # Telemetry overhead: the instrumented healthy path (plane hit with a
    # metrics registry attached) against the same path uninstrumented.
    # The contract: attaching metrics costs at most 15% on the fastest
    # path the server has — one pre-resolved CounterCell.add() per hit,
    # no window or trace work below the HTTP layer.
    instrumented = ServingEngine(
        indexes, cache_size=None, plane=plane, metrics=MetricsRegistry()
    )
    for address in addresses:  # identity holds with metrics attached
        assert instrumented.lookup_outcome(address) == uncached.lookup_outcome(
            address
        )
    bare_s = best_of(5, plane_engine.lookup_outcome, sample)
    instrumented_s = best_of(5, instrumented.lookup_outcome, sample)
    overhead = instrumented_s / bare_s
    section["telemetry"] = {
        "plane_outcome_ns_per_lookup": round(bare_s / len(sample) * 1e9, 1),
        "instrumented_ns_per_lookup": round(
            instrumented_s / len(sample) * 1e9, 1
        ),
        "overhead_ratio": round(overhead, 3),
    }

    record_perf("lookup_throughput", section)

    # The plane exists to close the engine/index gap: anything under 5x
    # means per-request Python is back on the healthy path.
    assert plane_speedup >= 5.0, (plane_s, engine_s)

    # The observability contract: metrics on the healthy plane path cost
    # one cell increment, bounded at 15% over the uninstrumented path.
    assert overhead <= 1.15, (instrumented_s, bare_s)

    # The cache must pay for itself on a repeat workload.
    assert cached_s < engine_s

    # The whole point of compiling: faster on every table, and measurably
    # faster overall.  The margin is thinnest where a table is /32-dense
    # (NetAcuity's dns-hint entries give the hash walk a one-probe fast
    # path, ~1.1x) and widest where answers resolve at coarser prefixes
    # (~1.5-1.7x), so the per-table bound stays loose for CI noise while
    # the mean pins the real win.
    assert all(speedup > 1.0 for speedup in speedups), speedups
    assert sum(speedups) / len(speedups) > 1.2, speedups
