"""§3.2 — RTT-proximity ground-truth correctness and probe filtering.

Paper: of 1,387 probes behind the 0.5 ms data, 19 sat on default country
coordinates (109 addresses removed); of 223 probes in RTT-nearby groups,
5 (2.2%) were disqualified for location inconsistencies (13 more
addresses removed), leaving 4,838 addresses.  Against the later 1 ms
dataset, 96.8%/97.4% of 1,661 common addresses agree within 40/100 km.
"""

from repro.groundtruth import build_rtt_ground_truth, compare_datasets


def test_probe_filtering(benchmark, scenario, write_artifact):
    stats_result = benchmark.pedantic(
        lambda: build_rtt_ground_truth(
            scenario.measurements, scenario.probes, scenario.config.rtt_proximity
        ),
        rounds=1,
        iterations=1,
    )
    s = stats_result.stats
    lines = [
        "§3.2 — RTT-proximity extraction and probe disqualification",
        f"candidate addresses (≤0.5 ms):        {s.candidate_addresses}",
        f"candidate probes:                     {s.candidate_probes} (paper: 1,387)",
        f"default-coordinate probes removed:    {s.centroid_probes_removed} (paper: 19)",
        f"addresses removed by centroid filter: {s.centroid_addresses_removed} (paper: 109)",
        f"RTT-nearby groups (≥2 probes):        {s.nearby_groups} (paper: 495)",
        f"inconsistent groups:                  {s.inconsistent_groups} (paper: 12, 2.4%)",
        f"nearby probes total/disqualified:     {s.nearby_probes_total}/{s.nearby_probes_disqualified}"
        " (paper: 223/5)",
        f"addresses removed by nearby filter:   {s.nearby_addresses_removed} (paper: 13)",
        f"final dataset:                        {s.final_addresses} (paper: 4,838)",
    ]
    write_artifact("sec32_probe_filtering", "\n".join(lines))

    # Filters fire, but remove only a small share — most probes are honest.
    assert s.final_addresses > 0.8 * s.candidate_addresses
    assert 0 < s.centroid_probes_removed < 0.1 * s.candidate_probes
    if s.nearby_probes_total >= 50:
        assert s.nearby_probes_disqualified / s.nearby_probes_total < 0.12
    # Accounting must close exactly.
    assert (
        s.final_addresses
        == s.candidate_addresses - s.centroid_addresses_removed - s.nearby_addresses_removed
    )


def test_overlap_with_one_ms_dataset(benchmark, scenario, one_ms_dataset, write_artifact):
    rtt = scenario.rtt_ground_truth.dataset
    comparison = benchmark.pedantic(
        lambda: compare_datasets(
            "RTT-proximity", rtt, "1ms-RTT-proximity", one_ms_dataset.dataset
        ),
        rounds=3,
        iterations=1,
    )
    lines = [
        "§3.2 — RTT-proximity vs later 1 ms dataset",
        f"common addresses: {comparison.common} (paper: 1,661)",
    ]
    if comparison.common >= 10:
        lines += [
            f"within 40 km:  {comparison.fraction_within(40):.1%} (paper: 96.8%)",
            f"within 100 km: {comparison.fraction_within(100):.1%} (paper: 97.4%)",
        ]
        assert comparison.fraction_within(40) > 0.9
        assert comparison.fraction_within(100) >= comparison.fraction_within(40)
    write_artifact("sec32_rtt_vs_1ms_overlap", "\n".join(lines))
