"""Shared benchmark fixtures: one paper-scale scenario per session.

Every benchmark regenerates one of the paper's tables or figures: it
times the analysis, asserts the qualitative *shape* the paper reports
(who wins, roughly by how much, where the crossovers are), and writes the
rendered artifact to ``benchmarks/output/`` so the reproduction can be
inspected next to the paper.

``REPRO_BENCH_SCALE`` (default 0.3) controls the world size; 1.0 builds
the full default world (~35 K interfaces) at a few minutes of setup.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.core.pipeline import RouterGeolocationStudy, StudyResult
from repro.scenario.build import Scenario, build_scenario

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2016"))

_OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def scenario() -> Scenario:
    return build_scenario(seed=BENCH_SEED, scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def study(scenario) -> RouterGeolocationStudy:
    return RouterGeolocationStudy.from_scenario(scenario)


@pytest.fixture(scope="session")
def result(study) -> StudyResult:
    return study.run()


@pytest.fixture(scope="session")
def one_ms_dataset(scenario):
    """A Giotsas-et-al.-like 1 ms-RTT-proximity dataset, collected in a
    *later*, independent measurement round (§3.1/§3.2 validation data)."""
    import random

    from repro.atlas import run_builtin_measurements
    from repro.groundtruth import RttProximityConfig, build_rtt_ground_truth

    rng = random.Random(BENCH_SEED + 777)
    measurements = run_builtin_measurements(
        scenario.internet, scenario.probes, scenario.atlas_targets, rng
    )
    return build_rtt_ground_truth(
        measurements, scenario.probes, RttProximityConfig(threshold_ms=1.0)
    )


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    _OUTPUT_DIR.mkdir(exist_ok=True)
    return _OUTPUT_DIR


@pytest.fixture()
def write_artifact(artifact_dir):
    """Write one experiment's rendered output next to the bench results."""

    def _write(name: str, text: str) -> None:
        filename = name if "." in name else f"{name}.txt"
        (artifact_dir / filename).write_text(text + "\n")

    return _write
