"""Shared benchmark fixtures: one paper-scale scenario per session.

Every benchmark regenerates one of the paper's tables or figures: it
times the analysis, asserts the qualitative *shape* the paper reports
(who wins, roughly by how much, where the crossovers are), and writes the
rendered artifact to ``benchmarks/output/`` so the reproduction can be
inspected next to the paper.

``REPRO_BENCH_SCALE`` (default 0.3) controls the world size; 1.0 builds
the full default world (~35 K interfaces) at a few minutes of setup.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
import time

import pytest

from repro.core.pipeline import RouterGeolocationStudy, StudyResult
from repro.scenario.build import Scenario, build_scenario

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2016"))

_OUTPUT_DIR = pathlib.Path(__file__).parent / "output"

#: Per-benchmark wall-times land here (repo root) so successive PRs have
#: a perf trajectory to compare against.
_BENCH_JSON = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"

_wall_times: dict[str, float] = {}

#: Named result sections benchmarks attach via ``record_perf`` (e.g. the
#: lookup-throughput numbers) — merged into BENCH_pipeline.json alongside
#: the wall-times.
_extra_sections: dict[str, object] = {}


def _environment_block() -> dict[str, object]:
    """Where this run's numbers came from — perf trajectories are only
    comparable across runs when the machine and interpreter match."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "perf_counter_resolution_s": time.get_clock_info("perf_counter").resolution,
        "gil_enabled": getattr(sys, "_is_gil_enabled", lambda: True)(),
    }


def pytest_runtest_logreport(report):
    """Collect the call-phase wall-time of every benchmark that ran."""
    if report.when == "call" and report.passed:
        _wall_times[report.nodeid.split("::", 1)[-1]] = round(report.duration, 4)


def pytest_sessionfinish(session, exitstatus):
    """Merge this run's results into the perf snapshot.

    Merging (rather than overwriting) lets a partial run — say, only the
    lookup-throughput benchmark — refresh its own numbers without erasing
    the rest of the trajectory.
    """
    if not _wall_times and not _extra_sections:
        return
    payload: dict[str, object] = {}
    if _BENCH_JSON.exists():
        try:
            payload = json.loads(_BENCH_JSON.read_text())
        except (OSError, json.JSONDecodeError):
            payload = {}
    payload["scale"] = BENCH_SCALE
    payload["seed"] = BENCH_SEED
    payload["environment"] = _environment_block()
    wall_times = dict(payload.get("wall_times_s", {}))
    wall_times.update(_wall_times)
    payload["wall_times_s"] = dict(sorted(wall_times.items()))
    payload.update(_extra_sections)
    _BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture()
def record_perf():
    """Attach one named result section to BENCH_pipeline.json."""

    def _record(key: str, value) -> None:
        _extra_sections[key] = value

    return _record


@pytest.fixture(scope="session")
def scenario() -> Scenario:
    return build_scenario(seed=BENCH_SEED, scale=BENCH_SCALE)


@pytest.fixture(scope="session")
def study(scenario) -> RouterGeolocationStudy:
    return RouterGeolocationStudy.from_scenario(scenario)


@pytest.fixture(scope="session")
def result(study) -> StudyResult:
    return study.run(all_databases=True)


@pytest.fixture(scope="session")
def one_ms_dataset(scenario):
    """A Giotsas-et-al.-like 1 ms-RTT-proximity dataset, collected in a
    *later*, independent measurement round (§3.1/§3.2 validation data)."""
    import random

    from repro.atlas import run_builtin_measurements
    from repro.groundtruth import RttProximityConfig, build_rtt_ground_truth

    rng = random.Random(BENCH_SEED + 777)
    measurements = run_builtin_measurements(
        scenario.internet, scenario.probes, scenario.atlas_targets, rng
    )
    return build_rtt_ground_truth(
        measurements, scenario.probes, RttProximityConfig(threshold_ms=1.0)
    )


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    _OUTPUT_DIR.mkdir(exist_ok=True)
    return _OUTPUT_DIR


@pytest.fixture()
def write_artifact(artifact_dir):
    """Write one experiment's rendered output next to the bench results."""

    def _write(name: str, text: str) -> None:
        filename = name if "." in name else f"{name}.txt"
        (artifact_dir / filename).write_text(text + "\n")

    return _write
