"""Flatten a database into disjoint longest-prefix-match intervals.

:func:`sweep_entry_intervals` partitions the IPv4 space by
longest-prefix-match answer in one pass over a database's sorted entry
list.  Two consumers build on the partition:

* the serving layer's :class:`~repro.serve.index.CompiledIndex`, which
  numbers the answers into a snapshot-friendly immutable index;
* the analysis layer's :class:`~repro.core.frame.LookupFrame`, which
  derives per-entry answer tables and resolves whole address pools with
  one C-level bisect per address.

It lives here — beside :class:`~repro.geodb.database.GeoDatabase` —
because both consumers need it and neither should import the other.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geodb.database import DatabaseEntry, GeoDatabase

__all__ = [
    "ADDRESS_SPACE_END",
    "merge_starts",
    "sweep_entry_intervals",
    "sweep_sorted_entries",
]

ADDRESS_SPACE_END = 1 << 32


def merge_starts(starts_lists: Iterable[Sequence[int]]) -> list[int]:
    """The union of several interval-start arrays, sorted ascending.

    Every input array is a per-database partition of the address space
    (``starts[0] == 0``, strictly increasing); the union is the boundary
    set of the *cross-database* partition: inside each merged interval no
    database's answer can change, so a per-interval answer precomputed
    there (the serving layer's :class:`~repro.serve.plane.AnswerPlane`)
    is exact everywhere.
    """
    merged: set[int] = set()
    for starts in starts_lists:
        merged.update(starts)
    if not merged:
        raise ValueError("merge_starts needs at least one interval array")
    return sorted(merged)


def sweep_entry_intervals(
    database: GeoDatabase,
) -> tuple[list[int], list[DatabaseEntry | None]]:
    """Partition the address space by ``database``'s LPM answer.

    Convenience wrapper over :func:`sweep_sorted_entries` for the order
    :meth:`GeoDatabase.entries` already maintains.
    """
    return sweep_sorted_entries(database.entries())


def sweep_sorted_entries(
    entries_in_order: Iterable[DatabaseEntry],
) -> tuple[list[int], list[DatabaseEntry | None]]:
    """Partition the address space by longest-prefix-match answer.

    Returns parallel lists ``(starts, entries)``: interval *i* covers
    ``[starts[i], starts[i+1])`` (the last runs to 2^32) and is answered
    by ``entries[i]`` (``None`` = no coverage); adjacent intervals never
    share an answer and ``starts[0] == 0``.

    CIDR prefixes can only nest or be disjoint, so one sweep over the
    entries in (start, length) order — the order
    :meth:`GeoDatabase.entries` maintains, and the order a streaming
    snapshot generator emits — with a stack of enclosing prefixes visits
    every point where the answer can change, without probing the lookup
    engine.  At each boundary the innermost active prefix answers.

    ``entries_in_order`` may be any iterable (including a generator that
    never materializes the full entry list — the scale tier's compile
    path); it is consumed exactly once and **must** be sorted by
    ``(network_address, prefixlen)``, which callers that stream should
    verify themselves (see :meth:`CompiledIndex.compile_entries`).
    """
    # Parallel output rows: interval i is [starts[i], starts[i+1]) with
    # answer entries[i].  Closing a prefix re-announces the enclosing
    # answer at the closed end; that point overwrites a just-emitted row
    # at the same address (a child starting or ending where its parent
    # does) and merges away a row that repeats its neighbour's answer
    # (prefixes are unique, so identity comparison is answer comparison).
    # The emit logic is inlined — it runs twice per database entry and
    # the call overhead is measurable at database scale.
    starts: list[int] = [0]
    entries: list[DatabaseEntry | None] = [None]
    stack_ends: list[int] = []  # innermost (smallest end) last
    stack_entries: list[DatabaseEntry] = []
    push_start = starts.append
    push_entry = entries.append
    for entry in entries_in_order:
        prefix = entry.prefix
        start = int(prefix.network_address)
        while stack_ends and stack_ends[-1] <= start:
            closed_end = stack_ends.pop()
            stack_entries.pop()
            outer = stack_entries[-1] if stack_entries else None
            if starts[-1] == closed_end:
                if len(starts) > 1 and entries[-2] is outer:
                    starts.pop()
                    entries.pop()
                else:
                    entries[-1] = outer
            elif entries[-1] is not outer:
                push_start(closed_end)
                push_entry(outer)
        # First visit of a unique prefix: it can never repeat the current
        # answer, so only the same-point overwrite case needs handling.
        if starts[-1] == start:
            entries[-1] = entry
        else:
            push_start(start)
            push_entry(entry)
        stack_ends.append(start + (1 << (32 - prefix.prefixlen)))
        stack_entries.append(entry)
    while stack_ends:
        closed_end = stack_ends.pop()
        stack_entries.pop()
        if closed_end >= ADDRESS_SPACE_END:
            continue
        outer = stack_entries[-1] if stack_entries else None
        if starts[-1] == closed_end:
            if len(starts) > 1 and entries[-2] is outer:
                starts.pop()
                entries.pop()
            else:
                entries[-1] = outer
        elif entries[-1] is not outer:
            push_start(closed_end)
            push_entry(outer)
    return starts, entries
