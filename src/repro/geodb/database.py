"""The geolocation database engine: longest-prefix-match IP lookup.

All four studied products are, mechanically, the same thing: a table of
address prefixes each carrying a location record, answered by
longest-prefix match.  :class:`GeoDatabase` implements that engine with
per-prefix-length hash tables — a lookup is at most 33 dictionary
probes, supports arbitrarily nested prefixes, and is fast enough to
geolocate millions of addresses (the paper queries 1.64 M addresses per
database).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.geodb.record import GeoRecord, Resolution
from repro.net.ip import IPv4Address, IPv4Network, parse_address, parse_network


@dataclass(frozen=True, slots=True)
class DatabaseEntry:
    """One table row: a prefix and its location record."""

    prefix: IPv4Network
    record: GeoRecord

    @property
    def is_block_level(self) -> bool:
        """True when the entry covers a whole /24 or more.

        §5.2.3 calls these *block-level* assignments and links them to the
        largest geolocation errors.
        """
        return self.prefix.prefixlen <= 24


class GeoDatabase:
    """An immutable snapshot of one vendor's database.

    The table itself never changes; an optional metrics registry can be
    attached to count lookups, misses, and per-resolution answers (the
    ``geodb.*`` counter family).  With no registry attached the lookup
    path is the original uninstrumented code plus one ``is None`` test.
    """

    def __init__(self, name: str, entries: Iterable[DatabaseEntry]):
        self.name = name
        self._metrics = None  # MetricsRegistry | None; see attach_metrics
        self._entries = tuple(
            sorted(entries, key=lambda e: (int(e.prefix.network_address), e.prefix.prefixlen))
        )
        # prefix length → {network int → entry}; lookups walk lengths
        # longest-first, giving exact longest-prefix-match semantics.
        self._tables: dict[int, dict[int, DatabaseEntry]] = {}
        for entry in self._entries:
            table = self._tables.setdefault(entry.prefix.prefixlen, {})
            key = int(entry.prefix.network_address)
            if key in table:
                raise ValueError(f"duplicate prefix in {name!r}: {entry.prefix}")
            table[key] = entry
        self._lengths_desc = sorted(self._tables, reverse=True)

    # -- observability -------------------------------------------------------

    def attach_metrics(self, metrics) -> None:
        """Emit ``geodb.*`` counters into ``metrics`` on every lookup.

        Pass ``None`` to detach and restore the uninstrumented path.
        """
        self._metrics = metrics

    def _note_lookup(self, entry: DatabaseEntry | None) -> None:
        metrics = self._metrics
        metrics.inc("geodb.lookups", database=self.name)
        if entry is None:
            metrics.inc("geodb.misses", database=self.name)
        else:
            metrics.inc(
                "geodb.resolution",
                database=self.name,
                resolution=entry.record.resolution.value,
            )
            metrics.observe(
                "geodb.prefix_length", entry.prefix.prefixlen, database=self.name
            )

    # -- lookup --------------------------------------------------------------

    def probe(self, addr: int) -> DatabaseEntry | None:
        """Raw longest-prefix match on a pre-validated address integer.

        The uninstrumented hot path: no parsing, no metrics.  The serving
        layer's index compiler and the lookup benchmarks call this in
        tight loops; everything else should go through :meth:`lookup`.
        """
        for length in self._lengths_desc:
            key = (addr >> (32 - length) << (32 - length)) if length else 0
            entry = self._tables[length].get(key)
            if entry is not None:
                return entry
        return None

    def lookup_entry(self, address: IPv4Address | str | int) -> DatabaseEntry | None:
        """The most-specific entry covering ``address``, or ``None``.

        Raises :class:`ValueError` (``"not an IPv4 address: …"``) for
        out-of-range integers and non-IPv4 text.
        """
        entry = self.probe(int(parse_address(address)))
        if self._metrics is not None:
            self._note_lookup(entry)
        return entry

    def lookup(self, address: IPv4Address | str | int) -> GeoRecord | None:
        """The location record for ``address``, or ``None`` (no coverage)."""
        entry = self.lookup_entry(address)
        return entry.record if entry is not None else None

    def resolution_of(self, address: IPv4Address | str | int) -> Resolution:
        """Shorthand: the answer's resolution (NONE when uncovered)."""
        record = self.lookup(address)
        return record.resolution if record is not None else Resolution.NONE

    # -- inspection ------------------------------------------------------------

    def entries(self) -> tuple[DatabaseEntry, ...]:
        """All entries, in address order."""
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DatabaseEntry]:
        return iter(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"GeoDatabase({self.name!r}, {len(self._entries)} entries)"

    def city_names(self) -> set[tuple[str, str]]:
        """Distinct (city, country) pairs in the table — the §4 city
        coordinate calibration iterates these."""
        return {
            (entry.record.city, entry.record.country)
            for entry in self._entries
            if entry.record.city is not None and entry.record.country is not None
        }


def single_prefix(network: str | IPv4Network, record: GeoRecord) -> DatabaseEntry:
    """Convenience constructor used heavily in tests and examples."""
    return DatabaseEntry(prefix=parse_network(network), record=record)
