"""Calibrated profiles for the four studied databases.

Numbers are tuned so the reproduction's evaluation recovers the paper's
*shape* — coverage levels, who wins where, the ARIN city-level collapse,
NetAcuity's DNS edge — with the synthetic world as substrate (see
EXPERIMENTS.md for measured-vs-paper values).  The product names follow
the paper's shorthand: MaxMind-Paid (GeoIP2), MaxMind-GeoLite (GeoLite2),
IP2Location-Lite (DB11-Lite), NetAcuity (Digital Element).
"""

from __future__ import annotations

from repro.geo.rir import RIR
from repro.geodb.errormodel import DerivationProfile, PerRir, VendorProfile

IP2LOCATION_LITE = VendorProfile(
    name="IP2Location-Lite",
    vendor_key=1,
    # Near-perfect coverage at both resolutions (§5.1): answers city-level
    # everywhere, even for registry-located blocks — the source of its
    # "covers everything, least accurate" character.
    country_coverage=1.0,
    registry_weight=PerRir(
        0.12,
        {RIR.ARIN: 0.15, RIR.APNIC: 0.20, RIR.LACNIC: 0.05, RIR.AFRINIC: 0.05},
    ),
    transit_registry_weight=PerRir(
        0.80,
        {RIR.ARIN: 0.90, RIR.RIPENCC: 0.84, RIR.APNIC: 0.78,
         RIR.LACNIC: 0.40, RIR.AFRINIC: 0.40},
    ),
    city_confidence=1.0,
    registry_city_resolution=1.0,
    dns_hint_weight=0.0,
    wrong_city_rate=PerRir(0.30, {RIR.ARIN: 0.38}),
    wrong_country_rate=0.032,
    split_rate=0.05,
    coord_jitter_km=2.5,
)

MAXMIND_PAID = VendorProfile(
    name="MaxMind-Paid",
    vendor_key=2,
    # 99.3% country coverage over the Ark set; city answers are
    # confidence-gated (61.6% overall, much lower in RIPE NCC, §5.2.2).
    country_coverage=0.993,
    registry_weight=PerRir(
        0.10,
        {RIR.ARIN: 0.12, RIR.LACNIC: 0.06, RIR.AFRINIC: 0.06},
    ),
    transit_registry_weight=PerRir(
        0.76,
        {RIR.ARIN: 0.88, RIR.RIPENCC: 0.82, RIR.APNIC: 0.34,
         RIR.LACNIC: 0.30, RIR.AFRINIC: 0.30},
    ),
    city_confidence=PerRir(
        0.80,
        {RIR.ARIN: 0.90, RIR.RIPENCC: 0.55, RIR.APNIC: 0.68},
    ),
    registry_city_resolution=0.27,
    dns_hint_weight=0.0,
    wrong_city_rate=PerRir(0.18, {RIR.ARIN: 0.25}),
    wrong_country_rate=0.026,
    split_rate=0.45,
    coord_jitter_km=1.5,
)

NETACUITY = VendorProfile(
    name="NetAcuity",
    vendor_key=3,
    # Near-perfect coverage plus hostname mining: the only vendor whose
    # accuracy improves on the DNS-based ground truth (§5.2.4).
    country_coverage=0.998,
    registry_weight=PerRir(
        0.06,
        {RIR.ARIN: 0.08, RIR.LACNIC: 0.04, RIR.AFRINIC: 0.04},
    ),
    transit_registry_weight=PerRir(
        0.60,
        {RIR.ARIN: 0.75, RIR.RIPENCC: 0.72, RIR.APNIC: 0.60,
         RIR.LACNIC: 0.30, RIR.AFRINIC: 0.30},
    ),
    city_confidence=1.0,
    registry_city_resolution=1.0,
    dns_hint_weight=0.68,
    wrong_city_rate=PerRir(0.22, {RIR.ARIN: 0.30}),
    wrong_country_rate=0.016,
    split_rate=0.25,
    coord_jitter_km=1.5,
)

#: GeoLite2 is derived from GeoIP2 rather than generated independently —
#: the two editions share a location feed (68% identical coordinates over
#: the Ark set, Figure 1) but the free edition names fewer cities.
MAXMIND_GEOLITE_DERIVATION = DerivationProfile(
    name="MaxMind-GeoLite",
    vendor_key=4,
    keep_city_rate=0.70,
    identical_rate=0.70,
    nearby_rate=0.17,
    country_flip_rate=0.004,
)

#: The paper's four databases, in its reporting order.
PAPER_DATABASE_NAMES: tuple[str, ...] = (
    "IP2Location-Lite",
    "MaxMind-GeoLite",
    "MaxMind-Paid",
    "NetAcuity",
)

GENERATED_PROFILES: tuple[VendorProfile, ...] = (
    IP2LOCATION_LITE,
    MAXMIND_PAID,
    NETACUITY,
)
