"""CSV interchange formats for database snapshots.

Two industry formats are supported, so snapshots can be exported, diffed,
and re-imported the way researchers handle the real products:

* **GeoLite2-style**: one CIDR prefix per row
  (``network,country_iso_code,subdivision_1_name,city_name,latitude,longitude``);
* **IP2Location-style**: inclusive integer address ranges
  (``"start","end","country","region","city","lat","lon"``), converted to
  the minimal covering set of CIDR prefixes on import.
"""

from __future__ import annotations

import csv
import io
import ipaddress
from typing import Iterable

from repro.geodb.database import DatabaseEntry, GeoDatabase
from repro.geodb.record import GeoRecord


class FormatError(ValueError):
    """Raised when a CSV snapshot cannot be parsed."""


_GEOLITE_HEADER = (
    "network",
    "country_iso_code",
    "subdivision_1_name",
    "city_name",
    "latitude",
    "longitude",
)

_IP2L_HEADER = ("ip_from", "ip_to", "country_code", "region", "city", "latitude", "longitude")


def _field(value: str | None) -> str:
    return "" if value is None else value


def _coord(value: float | None) -> str:
    return "" if value is None else f"{value:.4f}"


def export_geolite_csv(database: GeoDatabase) -> str:
    """Serialize a database in the GeoLite2 CSV shape."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(_GEOLITE_HEADER)
    for entry in database:
        record = entry.record
        writer.writerow(
            (
                str(entry.prefix),
                _field(record.country),
                _field(record.region),
                _field(record.city),
                _coord(record.latitude),
                _coord(record.longitude),
            )
        )
    return buffer.getvalue()


def import_geolite_csv(name: str, text: str) -> GeoDatabase:
    """Parse a GeoLite2-style CSV into a database."""
    try:
        rows = list(csv.reader(io.StringIO(text)))
    except csv.Error as exc:
        raise FormatError(f"malformed CSV: {exc}") from exc
    if not rows:
        raise FormatError("empty CSV")
    header = tuple(rows[0])
    if header != _GEOLITE_HEADER:
        raise FormatError(f"unexpected header: {header!r}")
    entries = []
    for row_number, row in enumerate(rows[1:], start=2):
        if not row:
            continue
        if len(row) != len(_GEOLITE_HEADER):
            raise FormatError(f"row {row_number}: expected {len(_GEOLITE_HEADER)} fields")
        network, country, region, city, lat, lon = row
        try:
            entries.append(
                DatabaseEntry(
                    prefix=ipaddress.IPv4Network(network),
                    record=GeoRecord(
                        country=country or None,
                        region=region or None,
                        city=city or None,
                        latitude=float(lat) if lat else None,
                        longitude=float(lon) if lon else None,
                    ),
                )
            )
        except ValueError as exc:
            raise FormatError(f"row {row_number}: {exc}") from exc
    return GeoDatabase(name, entries)


def export_ip2location_csv(database: GeoDatabase) -> str:
    """Serialize a database in the IP2Location range-CSV shape."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, quoting=csv.QUOTE_ALL, lineterminator="\n")
    for entry in database:
        record = entry.record
        start = int(entry.prefix.network_address)
        end = start + entry.prefix.num_addresses - 1
        writer.writerow(
            (
                start,
                end,
                _field(record.country),
                _field(record.region),
                _field(record.city),
                _coord(record.latitude),
                _coord(record.longitude),
            )
        )
    return buffer.getvalue()


def import_ip2location_csv(name: str, text: str) -> GeoDatabase:
    """Parse an IP2Location-style range CSV (no header, quoted fields)."""
    try:
        rows = list(csv.reader(io.StringIO(text)))
    except csv.Error as exc:
        raise FormatError(f"malformed CSV: {exc}") from exc
    entries: list[DatabaseEntry] = []
    for row_number, row in enumerate(rows, start=1):
        if not row:
            continue
        if len(row) != len(_IP2L_HEADER):
            raise FormatError(f"row {row_number}: expected {len(_IP2L_HEADER)} fields")
        start_s, end_s, country, region, city, lat, lon = row
        try:
            start = ipaddress.IPv4Address(int(start_s))
            end = ipaddress.IPv4Address(int(end_s))
            record = GeoRecord(
                country=country or None,
                region=region or None,
                city=city or None,
                latitude=float(lat) if lat else None,
                longitude=float(lon) if lon else None,
            )
            for prefix in ipaddress.summarize_address_range(start, end):
                entries.append(DatabaseEntry(prefix=prefix, record=record))
        except ValueError as exc:
            raise FormatError(f"row {row_number}: {exc}") from exc
    return GeoDatabase(name, entries)


def round_trip_check(database: GeoDatabase, addresses: Iterable) -> bool:
    """True when a GeoLite export→import answers identically on a probe
    set (sanity helper for snapshot handling)."""
    reimported = import_geolite_csv(database.name, export_geolite_csv(database))
    for address in addresses:
        original = database.lookup(address)
        copied = reimported.lookup(address)
        if original is None and copied is None:
            continue
        if original is None or copied is None:
            return False
        if (
            original.country != copied.country
            or original.city != copied.city
            or original.latitude != copied.latitude
        ):
            return False
    return True
