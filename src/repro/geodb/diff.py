"""Database snapshot diffing and temporal drift.

The paper works with *two* access epochs: the databases were queried
right after the Ark collection (March 2016) for consistency, and again in
early July 2016 — about 50 days later — for the ground-truth evaluation,
arguing the interval moves too few addresses to matter (§5.2).  This
module supports that workflow:

* :func:`refresh_snapshot` ages a snapshot by a number of months — a
  fraction of records is re-measured (possibly changing city), reflecting
  vendors' release cadence;
* :func:`diff_snapshots` compares two snapshots of the same product and
  classifies every prefix (unchanged / moved within the city range /
  moved beyond it / resolution change / added / removed) — the tool a
  researcher needs to decide whether two epochs are interchangeable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.geodb.database import DatabaseEntry, GeoDatabase
from repro.geodb.errormodel import mix
from repro.geodb.record import GeoRecord
from repro.geo.gazetteer import Gazetteer

DEFAULT_CITY_RANGE_KM = 40.0

_REFRESH_STREAM = 29


@dataclass(frozen=True, slots=True)
class SnapshotDiff:
    """Classification of every prefix across two snapshots."""

    name_a: str
    name_b: str
    unchanged: int
    nudged: int  # same place, coordinates within the city range
    moved: int  # relocated beyond the city range
    resolution_changed: int  # city↔country transitions
    added: int
    removed: int

    @property
    def total_common(self) -> int:
        return self.unchanged + self.nudged + self.moved + self.resolution_changed

    @property
    def moved_rate(self) -> float:
        return self.moved / self.total_common if self.total_common else 0.0

    def render(self) -> str:
        """One-line text summary of the diff."""
        return (
            f"{self.name_a} → {self.name_b}: {self.unchanged} unchanged,"
            f" {self.nudged} nudged, {self.moved} moved (> city range),"
            f" {self.resolution_changed} resolution changes,"
            f" +{self.added} added, -{self.removed} removed"
        )


def diff_snapshots(
    snapshot_a: GeoDatabase,
    snapshot_b: GeoDatabase,
    *,
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
) -> SnapshotDiff:
    """Classify every prefix between two snapshots of one product."""
    entries_a = {entry.prefix: entry.record for entry in snapshot_a}
    entries_b = {entry.prefix: entry.record for entry in snapshot_b}
    unchanged = nudged = moved = resolution_changed = 0
    for prefix, record_a in entries_a.items():
        record_b = entries_b.get(prefix)
        if record_b is None:
            continue
        if record_a == record_b:
            unchanged += 1
            continue
        a_city = record_a.has_city
        b_city = record_b.has_city
        if a_city != b_city:
            resolution_changed += 1
            continue
        if record_a.has_coordinates and record_b.has_coordinates:
            distance = record_a.location.distance_km(record_b.location)
            if distance <= city_range_km:
                nudged += 1
            else:
                moved += 1
        else:
            resolution_changed += 1
    added = sum(1 for prefix in entries_b if prefix not in entries_a)
    removed = sum(1 for prefix in entries_a if prefix not in entries_b)
    return SnapshotDiff(
        name_a=snapshot_a.name,
        name_b=snapshot_b.name,
        unchanged=unchanged,
        nudged=nudged,
        moved=moved,
        resolution_changed=resolution_changed,
        added=added,
        removed=removed,
    )


def refresh_snapshot(
    snapshot: GeoDatabase,
    gazetteer: Gazetteer,
    *,
    months: float,
    seed: int,
    monthly_remeasure_rate: float = 0.015,
    move_given_remeasure: float = 0.35,
) -> GeoDatabase:
    """A later release of the same product.

    Per month, ``monthly_remeasure_rate`` of prefixes get re-measured:
    most only have their coordinates nudged (fresher data for the same
    place), ``move_given_remeasure`` relocate to a different city in the
    same country.  50 days ≈ 1.6 months at the default rate re-measures
    ~2.5% of prefixes and moves <1% — the paper's "unlikely to affect our
    conclusions" regime.
    """
    if months < 0:
        raise ValueError(f"months must be non-negative: {months!r}")
    if not 0.0 <= monthly_remeasure_rate <= 1.0:
        raise ValueError("monthly_remeasure_rate out of range")
    touch_probability = min(1.0, monthly_remeasure_rate * months)
    entries = []
    for entry in snapshot:
        record = entry.record
        rng = random.Random(
            mix(seed, _REFRESH_STREAM, int(entry.prefix.network_address), entry.prefix.prefixlen)
        )
        if record.city is None or rng.random() >= touch_probability:
            entries.append(entry)
            continue
        if rng.random() < move_given_remeasure:
            candidates = [
                city
                for city in gazetteer.in_country(record.country)
                if city.name != record.city
            ]
            if candidates:
                city = rng.choice(candidates)
                entries.append(
                    DatabaseEntry(
                        prefix=entry.prefix,
                        record=GeoRecord(
                            country=city.country,
                            region=city.region,
                            city=city.name,
                            latitude=round(city.location.lat, 4),
                            longitude=round(city.location.lon, 4),
                            source=record.source,
                        ),
                    )
                )
                continue
        nudge = record.location.destination(rng.uniform(0, 360), rng.uniform(0.1, 3.0))
        entries.append(
            DatabaseEntry(
                prefix=entry.prefix,
                record=GeoRecord(
                    country=record.country,
                    region=record.region,
                    city=record.city,
                    latitude=round(nudge.lat, 4),
                    longitude=round(nudge.lon, 4),
                    source=record.source,
                ),
            )
        )
    return GeoDatabase(snapshot.name, entries)
