"""Geolocation records: what a database answers for an address.

A record mirrors the answer shape of MaxMind GeoIP2 / GeoLite2,
IP2Location DB11, and NetAcuity lookups: country code, optional
region/city names, and coordinates.  The paper distinguishes two
resolutions (§4): *country-level* (country code present) and *city-level*
(a city name and city coordinates present) — coverage and accuracy are
reported separately per resolution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.geo.coordinates import GeoPoint


class Resolution(enum.Enum):
    """The finest location detail a record carries."""

    NONE = "none"
    COUNTRY = "country"
    CITY = "city"


class LocationSource(enum.Enum):
    """Where a generated record's location came from (synthetic metadata).

    Real databases do not disclose this; the generator records it so the
    reproduction can verify mechanisms (e.g. §5.2.3's registry-driven
    errors) rather than just totals.  Analyses must not use it as input.
    """

    REGISTRY = "registry"
    MEASURED = "measured"
    DNS_HINT = "dns_hint"


@dataclass(frozen=True, slots=True)
class GeoRecord:
    """One database answer.

    ``country`` is an ISO alpha-2 code.  City-level records carry ``city``
    and city coordinates; country-level records carry the country's
    default (centroid) coordinates, exactly the convention the paper's
    §3.2 exploits to spot default locations.
    """

    country: str | None
    region: str | None = None
    city: str | None = None
    latitude: float | None = None
    longitude: float | None = None
    source: LocationSource | None = None

    def __post_init__(self) -> None:
        if self.city is not None and self.country is None:
            raise ValueError("a city-level record must carry a country")
        if (self.latitude is None) != (self.longitude is None):
            raise ValueError("latitude and longitude must come together")

    @property
    def resolution(self) -> Resolution:
        if self.city is not None:
            return Resolution.CITY
        if self.country is not None:
            return Resolution.COUNTRY
        return Resolution.NONE

    @property
    def has_country(self) -> bool:
        return self.country is not None

    @property
    def has_city(self) -> bool:
        return self.city is not None

    @property
    def has_coordinates(self) -> bool:
        return self.latitude is not None

    @property
    def location(self) -> GeoPoint | None:
        """Coordinates as a :class:`GeoPoint`, if present."""
        if self.latitude is None or self.longitude is None:
            return None
        return GeoPoint(self.latitude, self.longitude)
