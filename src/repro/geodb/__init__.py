"""Geolocation database substrate: engine, formats, and vendor generators."""

from repro.geodb.database import DatabaseEntry, GeoDatabase, single_prefix
from repro.geodb.diff import SnapshotDiff, diff_snapshots, refresh_snapshot
from repro.geodb.errormodel import DerivationProfile, PerRir, VendorProfile, mix
from repro.geodb.formats import (
    FormatError,
    export_geolite_csv,
    export_ip2location_csv,
    import_geolite_csv,
    import_ip2location_csv,
    round_trip_check,
)
from repro.geodb.generator import SnapshotGenerator, blocks_of
from repro.geodb.record import GeoRecord, LocationSource, Resolution
from repro.geodb.vendors import (
    GENERATED_PROFILES,
    IP2LOCATION_LITE,
    MAXMIND_GEOLITE_DERIVATION,
    MAXMIND_PAID,
    NETACUITY,
    PAPER_DATABASE_NAMES,
)

__all__ = [
    "DatabaseEntry",
    "GeoDatabase",
    "single_prefix",
    "SnapshotDiff",
    "diff_snapshots",
    "refresh_snapshot",
    "DerivationProfile",
    "PerRir",
    "VendorProfile",
    "mix",
    "FormatError",
    "export_geolite_csv",
    "export_ip2location_csv",
    "import_geolite_csv",
    "import_ip2location_csv",
    "round_trip_check",
    "SnapshotGenerator",
    "blocks_of",
    "GeoRecord",
    "LocationSource",
    "Resolution",
    "GENERATED_PROFILES",
    "IP2LOCATION_LITE",
    "MAXMIND_GEOLITE_DERIVATION",
    "MAXMIND_PAID",
    "NETACUITY",
    "PAPER_DATABASE_NAMES",
]
