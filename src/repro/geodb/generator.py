"""Snapshot generation: world truth + vendor error model → databases.

``SnapshotGenerator`` derives each vendor's table from the synthetic
world's true interface locations, block by block (/24 — the granularity
unit of §5.2.3).  The generation is fully deterministic in the scenario
seed, uses a *shared* registry draw per block so vendor errors correlate
the way the paper observed, and annotates every record with its synthetic
:class:`~repro.geodb.record.LocationSource` so mechanism-level tests can
check *why* an answer is wrong, not only that it is.

Every random draw is keyed ``mix(seed, stream, block-or-address)`` —
never an order-dependent shared stream — so generation is a pure
function of the (block, profile) pair.  That is what makes the
**streaming** path possible: :meth:`SnapshotGenerator.iter_entries`
yields the same entries one block at a time, already in the global
``(network_address, prefixlen)`` order :class:`GeoDatabase` would sort
them into, so a million-interface snapshot can be swept straight into a
:class:`~repro.serve.index.CompiledIndex` without the entry list (or the
database's per-length hash tables) ever existing in memory.
:class:`StreamingSnapshotGenerator` runs the same error model over a
:class:`~repro.topology.stream.StreamedWorld`, whose blocks are
synthesized from integer run arrays on demand.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Mapping, NamedTuple, Sequence

from repro.dns.drop import DropEngine
from repro.dns.hints import HintDictionary
from repro.dns.hostnames import HostnameFactory
from repro.dns.rdns import RdnsService
from repro.geo.countries import COUNTRIES
from repro.geo.gazetteer import City
from repro.geo.rir import RIR
from repro.geodb.database import DatabaseEntry, GeoDatabase
from repro.geodb.errormodel import DerivationProfile, VendorProfile, mix
from repro.geodb.record import GeoRecord, LocationSource
from repro.geodb.vendors import (
    GENERATED_PROFILES,
    MAXMIND_GEOLITE_DERIVATION,
    MAXMIND_PAID,
)
from repro.net.ip import IPv4Address, IPv4Network, block_of, parse_network
from repro.topology.builder import SyntheticInternet

_SHARED_REGISTRY_STREAM = 101
_REGISTRY_CITY_STREAM = 7
_CITY_OFFSET_STREAM = 55
_DNS_HINT_STREAM = 13
_SWIP_STREAM = 17

#: Probability that a block's whois record names the actual deployment
#: site rather than the organization's HQ (operators SWIP some reassigned
#: blocks with per-site addresses).  Shared across vendors: they all read
#: the same registry.
DEFAULT_SWIP_ACCURACY = 0.25


class BlockView(NamedTuple):
    """One /24 of world truth, as the error model consumes it.

    The materialized path reads these out of dictionaries built from a
    :class:`~repro.topology.builder.SyntheticInternet`; the streaming
    path synthesizes them one at a time from integer run arrays.  Either
    way, ``addresses`` is ascending and ``majority`` uses the shared
    deterministic tie-break (highest count, then highest city key).
    """

    network: IPv4Network
    addresses: Sequence[IPv4Address]
    majority: City


def _entry_order(entry: DatabaseEntry) -> tuple[int, int]:
    """The global sort key :class:`GeoDatabase` applies to entries."""
    return int(entry.prefix.network_address), entry.prefix.prefixlen


class SnapshotGenerator:
    """Generates the study's database snapshots from one world."""

    def __init__(
        self,
        internet: SyntheticInternet,
        seed: int,
        rdns: RdnsService | None = None,
        addresses: Iterable[IPv4Address] | None = None,
        swip_accuracy: float = DEFAULT_SWIP_ACCURACY,
    ):
        if not 0.0 <= swip_accuracy <= 1.0:
            raise ValueError(f"swip_accuracy out of range: {swip_accuracy!r}")
        self.internet = internet
        self.seed = seed
        self.swip_accuracy = swip_accuracy
        self._rdns = rdns
        self._drop = self._build_drop_engine() if rdns is not None else None
        pool = (
            sorted(set(addresses))
            if addresses is not None
            else [interface.address for interface in internet.interfaces()]
        )
        # /24 block → member interface addresses (ascending).
        self._blocks: dict[IPv4Network, list[IPv4Address]] = {}
        for address in pool:
            if not internet.is_interface(address):
                raise ValueError(f"not an interface address: {address}")
            self._blocks.setdefault(block_of(address), []).append(address)
        self._majority_city: dict[IPv4Network, City] = {
            block: self._majority(block_addresses)
            for block, block_addresses in self._blocks.items()
        }
        self._city_index = {
            city.key: index for index, city in enumerate(internet.gazetteer)
        }
        self._registry_city_cache: dict[int, City | None] = {}
        self._city_offset_cache: dict[tuple[int, tuple], tuple[float, float]] = {}

    # -- world-derived inputs ------------------------------------------------

    def _build_drop_engine(self) -> DropEngine:
        """An aggressive hint decoder with rules for every hinted domain in
        the world — the 'vendor that mines rDNS hard' configuration."""
        hints = HintDictionary(self.internet.gazetteer)
        factory = HostnameFactory(hints)
        engine = DropEngine.with_all_rules(hints)
        for autonomous_system in self.internet.ases.values():
            domain = autonomous_system.domain
            if domain is None:
                continue
            convention = factory.convention_for(domain)
            if convention is not None and convention.domain == domain:
                engine.add_rule(convention)
        return engine

    def _majority(self, addresses: list[IPv4Address]) -> City:
        counts: dict[tuple, tuple[int, City]] = {}
        for address in addresses:
            city = self.internet.true_location(address)
            count, _ = counts.get(city.key, (0, city))
            counts[city.key] = (count + 1, city)
        # Deterministic tie-break on the city key.
        return max(counts.items(), key=lambda item: (item[1][0], item[0]))[1][1]

    def _iter_blocks(self) -> Iterator[BlockView]:
        """Every /24 of the pool in ascending address order.

        The materialized path reads the dictionaries built in the
        constructor (insertion order is ascending — the pool was
        sorted); :class:`StreamingSnapshotGenerator` overrides this to
        pull block views straight from a streamed world.
        """
        for block, addresses in self._blocks.items():
            yield BlockView(block, addresses, self._majority_city[block])

    def _true_city(self, address: IPv4Address) -> City:
        return self.internet.true_location(address)

    def _registry_city(self, view: BlockView) -> City | None:
        """The city a registry-mining vendor would assign to this block.

        Usually the holding organization's HQ — a deterministic
        population-weighted pick inside the delegation's *registered*
        country — but some blocks are SWIPed with per-site whois records
        that name the true deployment city.  Both cases are shared across
        vendors: everyone reads the same registry."""
        block = view.network
        block_key = int(block.network_address)
        swip_draw = random.Random(mix(self.seed, _SWIP_STREAM, block_key)).random()
        if swip_draw < self.swip_accuracy:
            return view.majority
        delegation = self.internet.registry.lookup(block.network_address)
        key = int(delegation.prefix.network_address)
        if key not in self._registry_city_cache:
            cities = self.internet.gazetteer.in_country(delegation.registered_country)
            if not cities:
                self._registry_city_cache[key] = None
            else:
                rng = random.Random(mix(self.seed, _REGISTRY_CITY_STREAM, key))
                weights = [city.population for city in cities]
                self._registry_city_cache[key] = rng.choices(
                    list(cities), weights=weights, k=1
                )[0]
        return self._registry_city_cache[key]

    def _shared_registry_draw(self, block: IPv4Network) -> float:
        rng = random.Random(
            mix(self.seed, _SHARED_REGISTRY_STREAM, int(block.network_address))
        )
        return rng.random()

    def _vendor_rng(self, vendor_key: int, block: IPv4Network) -> random.Random:
        return random.Random(mix(self.seed, vendor_key, int(block.network_address)))

    def _city_coords(self, vendor_key: int, city: City, jitter_km: float) -> tuple[float, float]:
        """Vendor-consistent coordinates for a city: the gazetteer point
        plus a small fixed per-vendor offset (databases quote one
        coordinate per city; different vendors quote slightly different
        ones — §4 found them within 40 km of GeoNames >99% of the time)."""
        cache_key = (vendor_key, city.key)
        if cache_key not in self._city_offset_cache:
            rng = random.Random(
                mix(self.seed, _CITY_OFFSET_STREAM, vendor_key, self._city_index[city.key])
            )
            point = city.location.destination(
                rng.uniform(0, 360), rng.uniform(0, jitter_km)
            )
            self._city_offset_cache[cache_key] = (round(point.lat, 4), round(point.lon, 4))
        return self._city_offset_cache[cache_key]

    def _wrong_city(self, city: City, rng: random.Random) -> City:
        """A plausible mistake: a different city in the same country."""
        candidates = [
            c for c in self.internet.gazetteer.in_country(city.country)
            if c.key != city.key
        ]
        if not candidates:
            return city
        weights = [c.population for c in candidates]
        return rng.choices(candidates, weights=weights, k=1)[0]

    # -- record construction ---------------------------------------------------

    def _city_record(
        self, vendor_key: int, city: City, jitter_km: float, source: LocationSource
    ) -> GeoRecord:
        lat, lon = self._city_coords(vendor_key, city, jitter_km)
        return GeoRecord(
            country=city.country,
            region=city.region,
            city=city.name,
            latitude=lat,
            longitude=lon,
            source=source,
        )

    @staticmethod
    def _country_record(country: str, source: LocationSource) -> GeoRecord:
        info = COUNTRIES.get(country)
        return GeoRecord(
            country=country,
            latitude=info.centroid_lat,
            longitude=info.centroid_lon,
            source=source,
        )

    def _decoded_city(self, address: IPv4Address) -> City | None:
        if self._rdns is None or self._drop is None:
            return None
        hostname = self._rdns.lookup(address)
        if hostname is None:
            return None
        return self._drop.geolocate(hostname)

    # -- generation --------------------------------------------------------------

    def _block_entries(
        self, profile: VendorProfile, view: BlockView
    ) -> list[DatabaseEntry]:
        """One vendor's rows for one /24 — the whole error model.

        Both generation paths run through here, so the per-block RNG
        draw *order* (coverage gate, shared registry draw, per-address
        hint adoption, then the vendor stream) is fixed in exactly one
        place — reordering any draw would silently re-roll every world.
        """
        block, addresses, majority = view
        entries: list[DatabaseEntry] = []
        delegation = self.internet.registry.lookup(block.network_address)
        rir = delegation.rir
        holder_is_transit = self.internet.ases[delegation.asn].is_transit
        vrng = self._vendor_rng(profile.vendor_key, block)
        if vrng.random() >= profile.country_coverage:
            return entries  # the vendor simply has no row here
        use_registry = self._shared_registry_draw(block) < profile.registry_weight_for(
            rir, holder_is_transit
        )
        hinted: dict[IPv4Address, City] = {}
        if profile.dns_hint_weight > 0 and self._rdns is not None:
            # Adoption is per address: the vendor judges each hostname's
            # hint individually (trust in a token, freshness, parse
            # confidence), not whole /24s at a time.  (The adoption draws
            # use their own per-address streams, so skipping them when no
            # rDNS snapshot exists changes nothing downstream.)
            for address in addresses:
                adopt = random.Random(
                    mix(self.seed, _DNS_HINT_STREAM, profile.vendor_key, int(address))
                ).random()
                if adopt >= profile.dns_hint_weight:
                    continue
                decoded = self._decoded_city(address)
                if decoded is not None:
                    hinted[address] = decoded
        for address, city in hinted.items():
            entries.append(
                DatabaseEntry(
                    prefix=parse_network(f"{address}/32"),
                    record=self._city_record(
                        profile.vendor_key, city, profile.coord_jitter_km,
                        LocationSource.DNS_HINT,
                    ),
                )
            )
        if holder_is_transit and vrng.random() < profile.wrong_country_rate.get(rir):
            # An idiosyncratic, vendor-specific mistake on infrastructure
            # space (stale data, mis-grouped blocks): the whole block is
            # placed in a neighbouring country.  These errors are not
            # shared across vendors — they are what keeps the paper's
            # shared-error fraction at ~61–67% rather than 100% (§5.2.2).
            wrong_country = self._neighbor_country(majority.country, vrng)
            wrong_cities = self.internet.gazetteer.in_country(wrong_country)
            if wrong_cities and vrng.random() < profile.city_confidence.get(rir):
                record = self._city_record(
                    profile.vendor_key, wrong_cities[0],
                    profile.coord_jitter_km, LocationSource.MEASURED,
                )
            else:
                record = self._country_record(
                    wrong_country, LocationSource.MEASURED
                )
            entries.append(DatabaseEntry(prefix=block, record=record))
            return entries
        if use_registry:
            registry_city = self._registry_city(view)
            if registry_city is None:
                return entries
            if vrng.random() < profile.registry_city_resolution:
                record = self._city_record(
                    profile.vendor_key, registry_city, profile.coord_jitter_km,
                    LocationSource.REGISTRY,
                )
            else:
                record = self._country_record(
                    registry_city.country, LocationSource.REGISTRY
                )
            entries.append(DatabaseEntry(prefix=block, record=record))
            return entries
        # Measured path: the vendor's own geolocation of the block.
        if vrng.random() >= profile.city_confidence.get(rir):
            entries.append(
                DatabaseEntry(
                    prefix=block,
                    record=self._country_record(
                        majority.country, LocationSource.MEASURED
                    ),
                )
            )
            return entries
        if vrng.random() < profile.split_rate:
            # High-confidence, per-address measurements.
            for address in addresses:
                if address in hinted:
                    continue
                true_city = self._true_city(address)
                city = (
                    self._wrong_city(true_city, vrng)
                    if vrng.random() < profile.wrong_city_rate.get(rir)
                    else true_city
                )
                entries.append(
                    DatabaseEntry(
                        prefix=parse_network(f"{address}/32"),
                        record=self._city_record(
                            profile.vendor_key, city, profile.coord_jitter_km,
                            LocationSource.MEASURED,
                        ),
                    )
                )
        else:
            city = (
                self._wrong_city(majority, vrng)
                if vrng.random() < profile.wrong_city_rate.get(rir)
                else majority
            )
            entries.append(
                DatabaseEntry(
                    prefix=block,
                    record=self._city_record(
                        profile.vendor_key, city, profile.coord_jitter_km,
                        LocationSource.MEASURED,
                    ),
                )
            )
        return entries

    def generate(self, profile: VendorProfile) -> GeoDatabase:
        """One vendor snapshot."""
        entries: list[DatabaseEntry] = []
        for view in self._iter_blocks():
            entries.extend(self._block_entries(profile, view))
        return GeoDatabase(profile.name, entries)

    def iter_entries(self, profile: VendorProfile) -> Iterator[DatabaseEntry]:
        """Stream one vendor's entries in global sorted order.

        Yields exactly what ``GeoDatabase(profile.name, ...).entries()``
        would hold after :meth:`generate` — same entries, same
        ``(network_address, prefixlen)`` order — without materializing
        the entry list.  All of a block's entries start inside the /24
        and blocks arrive ascending, so sorting each block's handful of
        rows locally yields the global order; that is what lets a
        million-interface snapshot flow straight into
        :meth:`CompiledIndex.compile_entries` in bounded memory.
        """
        for view in self._iter_blocks():
            block_entries = self._block_entries(profile, view)
            if len(block_entries) > 1:
                block_entries.sort(key=_entry_order)
            yield from block_entries

    def _derived_entry(
        self, entry: DatabaseEntry, derivation: DerivationProfile
    ) -> DatabaseEntry:
        """One base entry mapped through a derivation profile.

        Prefix-preserving and keyed only by ``(seed, vendor, prefix)``,
        so deriving a sorted entry stream keeps it sorted — the
        streaming GeoLite path relies on that.
        """
        record = entry.record
        drng = random.Random(
            mix(
                self.seed,
                derivation.vendor_key,
                int(entry.prefix.network_address),
                entry.prefix.prefixlen,
            )
        )
        if record.city is None:
            if record.country is not None and drng.random() < derivation.country_flip_rate:
                flipped = self._neighbor_country(record.country, drng)
                return DatabaseEntry(
                    prefix=entry.prefix,
                    record=self._country_record(flipped, record.source),
                )
            return entry
        if drng.random() >= derivation.keep_city_rate:
            return DatabaseEntry(
                prefix=entry.prefix,
                record=self._country_record(record.country, record.source),
            )
        draw = drng.random()
        if draw < derivation.identical_rate:
            return entry
        if draw < derivation.identical_rate + derivation.nearby_rate:
            lo, hi = derivation.nearby_jitter_km
            nudged = record.location.destination(
                drng.uniform(0, 360), drng.uniform(lo, hi)
            )
            return DatabaseEntry(
                prefix=entry.prefix,
                record=GeoRecord(
                    country=record.country,
                    region=record.region,
                    city=record.city,
                    latitude=round(nudged.lat, 4),
                    longitude=round(nudged.lon, 4),
                    source=record.source,
                ),
            )
        # Older vintage: a different city in the same country.
        try:
            current = self.internet.gazetteer.match(
                record.city, record.country, region=record.region
            )
        except KeyError:
            return entry
        other = self._wrong_city(current, drng)
        return DatabaseEntry(
            prefix=entry.prefix,
            record=self._city_record(
                derivation.vendor_key, other, 2.0, record.source
            ),
        )

    def derive(self, base: GeoDatabase, derivation: DerivationProfile) -> GeoDatabase:
        """A free edition derived from a commercial snapshot (GeoLite2)."""
        return GeoDatabase(
            derivation.name,
            [self._derived_entry(entry, derivation) for entry in base],
        )

    def iter_derived(
        self,
        base_entries: Iterable[DatabaseEntry],
        derivation: DerivationProfile,
    ) -> Iterator[DatabaseEntry]:
        """Stream a derived edition from a (sorted) base entry stream.

        The per-entry transform never changes the prefix, so feeding
        :meth:`iter_entries` output through here yields the derived
        snapshot's entries in the same global sorted order — the
        streaming equivalent of :meth:`derive`.
        """
        for entry in base_entries:
            yield self._derived_entry(entry, derivation)

    def _neighbor_country(self, country: str, rng: random.Random) -> str:
        """A different country in the same region (a country-flip error)."""
        from repro.geo.rir import rir_for_country

        region = rir_for_country(country)
        candidates = [
            c for c in self.internet.gazetteer.countries()
            if c != country and rir_for_country(c) is region
        ]
        if not candidates:
            return country
        return rng.choice(candidates)

    def generate_paper_set(self) -> dict[str, GeoDatabase]:
        """All four studied databases, keyed by the paper's names."""
        databases: dict[str, GeoDatabase] = {}
        for profile in GENERATED_PROFILES:
            databases[profile.name] = self.generate(profile)
        databases[MAXMIND_GEOLITE_DERIVATION.name] = self.derive(
            databases[MAXMIND_PAID.name], MAXMIND_GEOLITE_DERIVATION
        )
        return databases


class StreamingSnapshotGenerator(SnapshotGenerator):
    """The same error model over a streamed (million-interface) world.

    Skips every per-address materialization the base constructor does:
    no block dictionaries, no majority table, no rDNS engine (the scale
    tier has no hostname substrate, so hint adoption is off — exactly
    the ``rdns=None`` configuration of the materialized path).  Blocks
    come from ``world.iter_blocks()`` one at a time; everything else —
    registry lookups, AS roles, gazetteer, per-block RNG streams — runs
    unchanged, so the output for a given world is the same whether its
    blocks were dictionaries or synthesized run views.

    ``world`` is anything with the :class:`~repro.topology.stream.StreamedWorld`
    surface: ``registry``, ``ases``, ``gazetteer``, ``true_location`` and
    ``iter_blocks``.
    """

    def __init__(
        self,
        world,
        seed: int,
        swip_accuracy: float = DEFAULT_SWIP_ACCURACY,
    ):
        if not 0.0 <= swip_accuracy <= 1.0:
            raise ValueError(f"swip_accuracy out of range: {swip_accuracy!r}")
        self.internet = world
        self.seed = seed
        self.swip_accuracy = swip_accuracy
        self._rdns = None
        self._drop = None
        self._blocks = {}
        self._majority_city = {}
        self._city_index = {
            city.key: index for index, city in enumerate(world.gazetteer)
        }
        self._registry_city_cache = {}
        self._city_offset_cache = {}

    def _iter_blocks(self) -> Iterator[BlockView]:
        return self.internet.iter_blocks()


def blocks_of(addresses: Iterable[IPv4Address]) -> Mapping[IPv4Network, list[IPv4Address]]:
    """Group addresses by /24 block (public helper used by analyses)."""
    grouped: dict[IPv4Network, list[IPv4Address]] = {}
    for address in sorted(set(addresses)):
        grouped.setdefault(block_of(address), []).append(address)
    return grouped
