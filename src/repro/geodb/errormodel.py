"""Vendor error-model primitives.

The reproduction cannot ship the real MaxMind/IP2Location/NetAcuity
tables, so each vendor snapshot is *generated* from the simulation truth
through a calibrated error model (DESIGN.md §5).  The model is built
around the mechanisms the paper identifies, not ad-hoc noise:

* **registry bias** — some blocks are located from RIR registration data,
  which names the organization's home country/HQ city, not the router's
  site.  Vendors mine the same registries, so this choice is driven by a
  *shared* per-block draw compared against each vendor's propensity —
  giving correlated, agreeing-but-wrong answers (§5.2.3, Figure 4's
  2,277 shared errors);
* **block granularity** — registry answers and low-confidence answers
  cover whole /24-or-larger blocks with one location, so interfaces not
  co-located with their block's majority get large errors;
* **confidence-gated city resolution** — a vendor may know the country
  but decline to name a city (MaxMind's low city coverage, §5.2.1);
* **hostname mining** — a vendor may decode rDNS location hints and
  answer per-address (NetAcuity's edge on DNS-based ground truth,
  §5.2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo.rir import RIR


def mix(*parts: int) -> int:
    """Deterministic 64-bit mixer for seeding nested RNG streams.

    ``hash()`` on strings is randomized per process, so seeds are derived
    from integers only — scenario builds must be bit-reproducible.
    """
    acc = 0x9E3779B97F4A7C15
    for part in parts:
        acc ^= (part & 0xFFFFFFFFFFFFFFFF) + 0x9E3779B97F4A7C15 + ((acc << 6) & 0xFFFFFFFFFFFFFFFF) + (acc >> 2)
        acc &= 0xFFFFFFFFFFFFFFFF
        # SplitMix64 finalizer round.
        acc = (acc ^ (acc >> 30)) * 0xBF58476D1CE4E5B9 & 0xFFFFFFFFFFFFFFFF
        acc = (acc ^ (acc >> 27)) * 0x94D049BB133111EB & 0xFFFFFFFFFFFFFFFF
        acc ^= acc >> 31
    return acc


@dataclass(frozen=True, slots=True)
class PerRir:
    """A float parameter with optional per-RIR overrides."""

    default: float
    overrides: dict[RIR, float] = field(default_factory=dict)

    def get(self, rir: RIR) -> float:
        """The value for a region (the default unless overridden)."""
        return self.overrides.get(rir, self.default)

    def __post_init__(self) -> None:
        for value in (self.default, *self.overrides.values()):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"probability out of range: {value!r}")


def as_per_rir(value: "PerRir | float") -> PerRir:
    """Coerce a bare float into a uniform :class:`PerRir`."""
    if isinstance(value, PerRir):
        return value
    return PerRir(default=float(value))


@dataclass(frozen=True, slots=True)
class VendorProfile:
    """Everything that distinguishes one vendor's snapshot generation.

    ``registry_weight`` is compared against the shared per-block registry
    draw: vendors with larger weights adopt a superset of the registry-
    located blocks of vendors with smaller weights, producing correlated
    errors.  All probabilities may vary by RIR.
    """

    name: str
    vendor_key: int  # stable integer for RNG stream separation
    country_coverage: float = 1.0
    registry_weight: PerRir | float = 0.3
    #: Registry propensity for blocks announced by *transit* ASes.  Backbone
    #: infrastructure produces almost no end-user signal (logins, ad views,
    #: GPS-tagged clients), so vendors fall back on registration data there
    #: far more than for eyeball space — the paper's §5.2.3 mechanism.
    #: ``None`` means "same as registry_weight".
    transit_registry_weight: PerRir | float | None = None
    city_confidence: PerRir | float = 1.0
    registry_city_resolution: float = 1.0
    dns_hint_weight: float = 0.0
    wrong_city_rate: PerRir | float = 0.1
    #: Idiosyncratic country mistakes on the vendor's own measured path —
    #: stale data, mis-grouped blocks, bad client signals.  Unlike registry
    #: errors these are NOT shared across vendors, which is what keeps the
    #: paper's shared-error fraction at ~61–67% rather than ~100% (§5.2.2).
    wrong_country_rate: PerRir | float = 0.0
    split_rate: float = 0.2
    coord_jitter_km: float = 2.0

    def __post_init__(self) -> None:
        for probability in (
            self.country_coverage,
            self.registry_city_resolution,
            self.dns_hint_weight,
            self.split_rate,
        ):
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"probability out of range: {probability!r}")
        if self.coord_jitter_km < 0:
            raise ValueError("coordinate jitter must be non-negative")
        # Normalize the flexible fields once, at construction.
        object.__setattr__(self, "registry_weight", as_per_rir(self.registry_weight))
        object.__setattr__(self, "city_confidence", as_per_rir(self.city_confidence))
        object.__setattr__(self, "wrong_city_rate", as_per_rir(self.wrong_city_rate))
        object.__setattr__(self, "wrong_country_rate", as_per_rir(self.wrong_country_rate))
        if self.transit_registry_weight is not None:
            object.__setattr__(
                self, "transit_registry_weight", as_per_rir(self.transit_registry_weight)
            )

    def registry_weight_for(self, rir: RIR, is_transit: bool) -> float:
        """The effective registry propensity for a block."""
        if is_transit and self.transit_registry_weight is not None:
            return self.transit_registry_weight.get(rir)
        return self.registry_weight.get(rir)


@dataclass(frozen=True, slots=True)
class DerivationProfile:
    """How a free edition is derived from its commercial sibling.

    Models the GeoLite2↔GeoIP2 relationship: same location feed, fewer
    city answers, an older vintage for some records.  Fractions are
    conditioned on records that stay city-level in both editions and are
    calibrated to Figure 1 (68% identical coordinates, ~11.4% moved to a
    different city) and the 99.6% country agreement of §5.1.
    """

    name: str
    vendor_key: int
    keep_city_rate: float = 0.70  # city kept at all (43% vs 61.6% coverage)
    identical_rate: float = 0.68  # of kept: byte-identical record
    nearby_rate: float = 0.205  # of kept: same city, coords nudged < 40 km
    # remainder of kept: a different city (older measurement vintage)
    country_flip_rate: float = 0.004  # 99.6% country agreement
    nearby_jitter_km: tuple[float, float] = (1.0, 25.0)

    def __post_init__(self) -> None:
        for probability in (
            self.keep_city_rate,
            self.identical_rate,
            self.nearby_rate,
            self.country_flip_rate,
        ):
            if not 0.0 <= probability <= 1.0:
                raise ValueError(f"probability out of range: {probability!r}")
        if self.identical_rate + self.nearby_rate > 1.0:
            raise ValueError("identical + nearby fractions exceed 1")
