"""GeoNames-like city gazetteer.

The paper uses the GeoNames geographical database in two roles (§4):

* to check that a geolocation database's coordinates for a named city are
  really that city's coordinates (match on name + region + country, then
  measure the distance), and
* implicitly, as the universe of city locations.

:class:`Gazetteer` reproduces those query patterns over the embedded
world-city dataset, and additionally serves the synthetic substrate as the
universe from which router, probe, and monitor sites are drawn.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.geo.coordinates import GeoPoint
from repro.geo.rir import RIR, rir_for_country
from repro.geo.worldcities import CITY_ROWS


class UnknownCityError(KeyError):
    """Raised when a (name, country) pair is not in the gazetteer."""


@dataclass(frozen=True, slots=True)
class City:
    """A gazetteer entry: a named populated place with coordinates."""

    name: str
    country: str  # ISO alpha-2
    region: str
    location: GeoPoint
    population: int

    @property
    def rir(self) -> RIR:
        """The RIR serving this city's country."""
        return rir_for_country(self.country)

    @property
    def key(self) -> tuple[str, str, str]:
        """Canonical (name, region, country) matching key, lower-cased."""
        return (self.name.lower(), self.region.lower(), self.country.upper())


def _normalize(text: str) -> str:
    return text.strip().lower()


class Gazetteer:
    """Indexed, read-only collection of cities.

    Supports the paper's name+region+country matching (§4) plus the spatial
    and per-country queries the synthetic world builder needs.
    """

    def __init__(self, cities: Iterable[City]):
        self._cities: tuple[City, ...] = tuple(cities)
        if not self._cities:
            raise ValueError("a gazetteer needs at least one city")
        self._by_key: dict[tuple[str, str, str], City] = {}
        self._by_name_country: dict[tuple[str, str], City] = {}
        self._by_country: dict[str, list[City]] = {}
        for city in self._cities:
            self._by_key[city.key] = city
            self._by_name_country[(_normalize(city.name), city.country.upper())] = city
            self._by_country.setdefault(city.country.upper(), []).append(city)

    @classmethod
    def default(cls) -> "Gazetteer":
        """The embedded ~540-city world gazetteer."""
        return cls(
            City(name, country, region, GeoPoint(lat, lon), population)
            for name, country, region, lat, lon, population in CITY_ROWS
        )

    def __len__(self) -> int:
        return len(self._cities)

    def __iter__(self) -> Iterator[City]:
        return iter(self._cities)

    def match(self, name: str, country: str, region: str | None = None) -> City:
        """Find a city by name and country (and region, if given).

        Mirrors the paper's GeoNames matching: region and country are used
        to disambiguate cities sharing a name.
        """
        country_key = country.strip().upper()
        if region is not None:
            city = self._by_key.get((_normalize(name), _normalize(region), country_key))
            if city is not None:
                return city
        city = self._by_name_country.get((_normalize(name), country_key))
        if city is None:
            raise UnknownCityError(f"{name}, {region or '?'}, {country}")
        return city

    def in_country(self, country: str) -> Sequence[City]:
        """All cities in a country, largest first."""
        cities = self._by_country.get(country.strip().upper(), [])
        return tuple(sorted(cities, key=lambda c: (-c.population, c.name)))

    def in_rir(self, rir: RIR) -> Sequence[City]:
        """All cities in an RIR's service region, largest first."""
        return tuple(
            sorted(
                (city for city in self._cities if city.rir is rir),
                key=lambda c: (-c.population, c.name),
            )
        )

    def countries(self) -> tuple[str, ...]:
        """Sorted alpha-2 codes of countries with at least one city."""
        return tuple(sorted(self._by_country))

    def nearest(self, point: GeoPoint, *, country: str | None = None) -> City:
        """The city nearest to ``point``, optionally restricted to a country.

        Used when a synthetic database snaps a noisy coordinate back onto a
        plausible named city, and by the evaluation when attributing an
        arbitrary coordinate to a city.
        """
        candidates: Iterable[City]
        if country is not None:
            candidates = self.in_country(country)
            if not candidates:
                raise UnknownCityError(f"no cities in {country!r}")
        else:
            candidates = self._cities
        return min(candidates, key=lambda c: (c.location.distance_km(point), c.name))

    def within(self, point: GeoPoint, radius_km: float) -> Sequence[City]:
        """All cities within ``radius_km`` of ``point``, nearest first."""
        hits = [
            (city.location.distance_km(point), city)
            for city in self._cities
            if city.location.distance_km(point) <= radius_km
        ]
        hits.sort(key=lambda pair: (pair[0], pair[1].name))
        return tuple(city for _, city in hits)
