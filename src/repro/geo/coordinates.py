"""Geographic coordinates and great-circle geometry.

This module is the geometric foundation of the reproduction: every
distance the paper reports (city-range thresholds, pairwise database
disagreement, ground-truth error) is a great-circle distance between two
(latitude, longitude) pairs.  We use the haversine formula on a spherical
Earth, which is accurate to ~0.5% — far below the 40 km city-range
granularity the study operates at.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

#: Mean Earth radius in kilometres (IUGG value).
EARTH_RADIUS_KM = 6371.0088

#: Circumference-derived upper bound on any great-circle distance (km).
MAX_GREAT_CIRCLE_KM = math.pi * EARTH_RADIUS_KM


class InvalidCoordinateError(ValueError):
    """Raised when a latitude/longitude pair is outside the valid range."""


@dataclass(frozen=True, slots=True)
class GeoPoint:
    """A point on the Earth's surface.

    Latitude is in degrees north (``-90..90``), longitude in degrees east
    (``-180..180``).  Instances are immutable and hashable so they can be
    used as dictionary keys (e.g. counting unique ground-truth coordinates
    for Table 1).
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not (-90.0 <= self.lat <= 90.0):
            raise InvalidCoordinateError(f"latitude out of range: {self.lat!r}")
        if not (-180.0 <= self.lon <= 180.0):
            raise InvalidCoordinateError(f"longitude out of range: {self.lon!r}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return haversine_km(self.lat, self.lon, other.lat, other.lon)

    def destination(self, bearing_deg: float, distance_km: float) -> "GeoPoint":
        """The point ``distance_km`` away along the initial ``bearing_deg``.

        Used by the synthetic substrate to displace locations by a known
        distance (e.g. modelling a database that places an interface in a
        city 120 km away from its true site).
        """
        if distance_km < 0:
            raise ValueError(f"distance must be non-negative: {distance_km!r}")
        ang = distance_km / EARTH_RADIUS_KM
        lat1 = math.radians(self.lat)
        lon1 = math.radians(self.lon)
        brg = math.radians(bearing_deg)
        lat2 = math.asin(
            math.sin(lat1) * math.cos(ang)
            + math.cos(lat1) * math.sin(ang) * math.cos(brg)
        )
        lon2 = lon1 + math.atan2(
            math.sin(brg) * math.sin(ang) * math.cos(lat1),
            math.cos(ang) - math.sin(lat1) * math.sin(lat2),
        )
        return GeoPoint(math.degrees(lat2), normalize_longitude(math.degrees(lon2)))

    def initial_bearing_to(self, other: "GeoPoint") -> float:
        """Initial great-circle bearing towards ``other`` in degrees [0, 360)."""
        lat1 = math.radians(self.lat)
        lat2 = math.radians(other.lat)
        dlon = math.radians(other.lon - self.lon)
        x = math.sin(dlon) * math.cos(lat2)
        y = math.cos(lat1) * math.sin(lat2) - math.sin(lat1) * math.cos(lat2) * math.cos(dlon)
        bearing = math.degrees(math.atan2(x, y)) % 360.0
        # Float modulo can round a tiny negative up to exactly 360.0.
        return 0.0 if bearing >= 360.0 else bearing

    def round_to(self, decimals: int = 4) -> "GeoPoint":
        """Coordinates rounded to ``decimals`` places.

        Geolocation databases publish coordinates with limited precision;
        rounding lets the consistency analysis treat near-identical records
        (e.g. the two MaxMind editions sharing location feeds) as identical.
        """
        return GeoPoint(round(self.lat, decimals), round(self.lon, decimals))


def normalize_longitude(lon: float) -> float:
    """Wrap a longitude into ``[-180, 180]``."""
    wrapped = math.fmod(lon + 180.0, 360.0)
    if wrapped < 0:
        wrapped += 360.0
    return wrapped - 180.0


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two lat/lon pairs in kilometres."""
    rlat1 = math.radians(lat1)
    rlat2 = math.radians(lat2)
    dlat = math.radians(lat2 - lat1)
    dlon = math.radians(lon2 - lon1)
    a = (
        math.sin(dlat / 2.0) ** 2
        + math.cos(rlat1) * math.cos(rlat2) * math.sin(dlon / 2.0) ** 2
    )
    # Clamp for floating-point safety near antipodes.
    a = min(1.0, max(0.0, a))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))


def centroid(points: Iterable[GeoPoint]) -> GeoPoint:
    """Spherical centroid of a non-empty collection of points.

    Computed via the mean of the 3-D unit vectors, which behaves correctly
    across the antimeridian (a naive lat/lon average does not).
    """
    xs = ys = zs = 0.0
    count = 0
    for point in points:
        lat = math.radians(point.lat)
        lon = math.radians(point.lon)
        xs += math.cos(lat) * math.cos(lon)
        ys += math.cos(lat) * math.sin(lon)
        zs += math.sin(lat)
        count += 1
    if count == 0:
        raise ValueError("centroid of an empty collection is undefined")
    xs /= count
    ys /= count
    zs /= count
    hyp = math.hypot(xs, ys)
    return GeoPoint(math.degrees(math.atan2(zs, hyp)), math.degrees(math.atan2(ys, xs)))
