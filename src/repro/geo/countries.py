"""ISO-3166 country registry with geographic centroids.

The paper uses country information in three places:

* country-level coverage/consistency/accuracy comparisons use ISO alpha-2
  codes (§4);
* probe disqualification removes RIPE Atlas probes sitting on *default
  country coordinates* — the geographic centre of a country, e.g.
  N51°00' E09°00' for Germany (§3.2);
* the regional breakdown groups countries by their Regional Internet
  Registry (§5.2.2).

This module provides the country registry used by every substrate: the
gazetteer, the RIR delegation registry, the probe location model, and the
database error models.  Centroids follow the CIA World Factbook style
"geographic centre" convention the paper references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping


class UnknownCountryError(KeyError):
    """Raised when a country code is not present in the registry."""


@dataclass(frozen=True, slots=True)
class Country:
    """A country with ISO codes and a geographic-centre coordinate."""

    alpha2: str
    alpha3: str
    name: str
    centroid_lat: float
    centroid_lon: float


# alpha2, alpha3, name, centroid lat, centroid lon.
# Centroids are the conventional "geographic centre" values used when a
# location record only carries a country (the paper's default-coordinate
# disqualification relies on these, §3.2).
_COUNTRY_ROWS: tuple[tuple[str, str, str, float, float], ...] = (
    ("AD", "AND", "Andorra", 42.5, 1.5),
    ("AE", "ARE", "United Arab Emirates", 24.0, 54.0),
    ("AF", "AFG", "Afghanistan", 33.0, 65.0),
    ("AL", "ALB", "Albania", 41.0, 20.0),
    ("AM", "ARM", "Armenia", 40.0, 45.0),
    ("AO", "AGO", "Angola", -12.5, 18.5),
    ("AR", "ARG", "Argentina", -34.0, -64.0),
    ("AT", "AUT", "Austria", 47.3333, 13.3333),
    ("AU", "AUS", "Australia", -27.0, 133.0),
    ("AZ", "AZE", "Azerbaijan", 40.5, 47.5),
    ("BA", "BIH", "Bosnia and Herzegovina", 44.0, 18.0),
    ("BD", "BGD", "Bangladesh", 24.0, 90.0),
    ("BE", "BEL", "Belgium", 50.8333, 4.0),
    ("BF", "BFA", "Burkina Faso", 13.0, -2.0),
    ("BG", "BGR", "Bulgaria", 43.0, 25.0),
    ("BH", "BHR", "Bahrain", 26.0, 50.55),
    ("BO", "BOL", "Bolivia", -17.0, -65.0),
    ("BR", "BRA", "Brazil", -10.0, -55.0),
    ("BW", "BWA", "Botswana", -22.0, 24.0),
    ("BY", "BLR", "Belarus", 53.0, 28.0),
    ("CA", "CAN", "Canada", 60.0, -95.0),
    ("CD", "COD", "DR Congo", 0.0, 25.0),
    ("CH", "CHE", "Switzerland", 47.0, 8.0),
    ("CI", "CIV", "Ivory Coast", 8.0, -5.0),
    ("CL", "CHL", "Chile", -30.0, -71.0),
    ("CM", "CMR", "Cameroon", 6.0, 12.0),
    ("CN", "CHN", "China", 35.0, 105.0),
    ("CO", "COL", "Colombia", 4.0, -72.0),
    ("CR", "CRI", "Costa Rica", 10.0, -84.0),
    ("CY", "CYP", "Cyprus", 35.0, 33.0),
    ("CZ", "CZE", "Czechia", 49.75, 15.5),
    ("DE", "DEU", "Germany", 51.0, 9.0),
    ("DK", "DNK", "Denmark", 56.0, 10.0),
    ("DO", "DOM", "Dominican Republic", 19.0, -70.6667),
    ("DZ", "DZA", "Algeria", 28.0, 3.0),
    ("EC", "ECU", "Ecuador", -2.0, -77.5),
    ("EE", "EST", "Estonia", 59.0, 26.0),
    ("EG", "EGY", "Egypt", 27.0, 30.0),
    ("ES", "ESP", "Spain", 40.0, -4.0),
    ("ET", "ETH", "Ethiopia", 8.0, 38.0),
    ("FI", "FIN", "Finland", 64.0, 26.0),
    ("FR", "FRA", "France", 46.0, 2.0),
    ("GB", "GBR", "United Kingdom", 54.0, -2.0),
    ("GE", "GEO", "Georgia", 42.0, 43.5),
    ("GH", "GHA", "Ghana", 8.0, -2.0),
    ("GR", "GRC", "Greece", 39.0, 22.0),
    ("GT", "GTM", "Guatemala", 15.5, -90.25),
    ("HK", "HKG", "Hong Kong", 22.25, 114.1667),
    ("HN", "HND", "Honduras", 15.0, -86.5),
    ("HR", "HRV", "Croatia", 45.1667, 15.5),
    ("HU", "HUN", "Hungary", 47.0, 20.0),
    ("ID", "IDN", "Indonesia", -5.0, 120.0),
    ("IE", "IRL", "Ireland", 53.0, -8.0),
    ("IL", "ISR", "Israel", 31.5, 34.75),
    ("IN", "IND", "India", 20.0, 77.0),
    ("IQ", "IRQ", "Iraq", 33.0, 44.0),
    ("IR", "IRN", "Iran", 32.0, 53.0),
    ("IS", "ISL", "Iceland", 65.0, -18.0),
    ("IT", "ITA", "Italy", 42.8333, 12.8333),
    ("JM", "JAM", "Jamaica", 18.25, -77.5),
    ("JO", "JOR", "Jordan", 31.0, 36.0),
    ("JP", "JPN", "Japan", 36.0, 138.0),
    ("KE", "KEN", "Kenya", 1.0, 38.0),
    ("KH", "KHM", "Cambodia", 13.0, 105.0),
    ("KR", "KOR", "South Korea", 37.0, 127.5),
    ("KW", "KWT", "Kuwait", 29.3375, 47.6581),
    ("KZ", "KAZ", "Kazakhstan", 48.0, 68.0),
    ("LA", "LAO", "Laos", 18.0, 105.0),
    ("LB", "LBN", "Lebanon", 33.8333, 35.8333),
    ("LK", "LKA", "Sri Lanka", 7.0, 81.0),
    ("LT", "LTU", "Lithuania", 56.0, 24.0),
    ("LU", "LUX", "Luxembourg", 49.75, 6.1667),
    ("LV", "LVA", "Latvia", 57.0, 25.0),
    ("MA", "MAR", "Morocco", 32.0, -5.0),
    ("MD", "MDA", "Moldova", 47.0, 29.0),
    ("MG", "MDG", "Madagascar", -20.0, 47.0),
    ("MK", "MKD", "North Macedonia", 41.8333, 22.0),
    ("MM", "MMR", "Myanmar", 22.0, 98.0),
    ("MN", "MNG", "Mongolia", 46.0, 105.0),
    ("MT", "MLT", "Malta", 35.8333, 14.5833),
    ("MU", "MUS", "Mauritius", -20.2833, 57.55),
    ("MX", "MEX", "Mexico", 23.0, -102.0),
    ("MY", "MYS", "Malaysia", 2.5, 112.5),
    ("MZ", "MOZ", "Mozambique", -18.25, 35.0),
    ("NA", "NAM", "Namibia", -22.0, 17.0),
    ("NG", "NGA", "Nigeria", 10.0, 8.0),
    ("NI", "NIC", "Nicaragua", 13.0, -85.0),
    ("NL", "NLD", "Netherlands", 52.5, 5.75),
    ("NO", "NOR", "Norway", 62.0, 10.0),
    ("NP", "NPL", "Nepal", 28.0, 84.0),
    ("NZ", "NZL", "New Zealand", -41.0, 174.0),
    ("OM", "OMN", "Oman", 21.0, 57.0),
    ("PA", "PAN", "Panama", 9.0, -80.0),
    ("PE", "PER", "Peru", -10.0, -76.0),
    ("PH", "PHL", "Philippines", 13.0, 122.0),
    ("PK", "PAK", "Pakistan", 30.0, 70.0),
    ("PL", "POL", "Poland", 52.0, 20.0),
    ("PT", "PRT", "Portugal", 39.5, -8.0),
    ("PY", "PRY", "Paraguay", -23.0, -58.0),
    ("QA", "QAT", "Qatar", 25.5, 51.25),
    ("RO", "ROU", "Romania", 46.0, 25.0),
    ("RS", "SRB", "Serbia", 44.0, 21.0),
    ("RU", "RUS", "Russia", 60.0, 100.0),
    ("RW", "RWA", "Rwanda", -2.0, 30.0),
    ("SA", "SAU", "Saudi Arabia", 25.0, 45.0),
    ("SE", "SWE", "Sweden", 62.0, 15.0),
    ("SG", "SGP", "Singapore", 1.3667, 103.8),
    ("SI", "SVN", "Slovenia", 46.1167, 14.8167),
    ("SK", "SVK", "Slovakia", 48.6667, 19.5),
    ("SN", "SEN", "Senegal", 14.0, -14.0),
    ("SV", "SLV", "El Salvador", 13.8333, -88.9167),
    ("TH", "THA", "Thailand", 15.0, 100.0),
    ("TN", "TUN", "Tunisia", 34.0, 9.0),
    ("TR", "TUR", "Turkey", 39.0, 35.0),
    ("TW", "TWN", "Taiwan", 23.5, 121.0),
    ("TZ", "TZA", "Tanzania", -6.0, 35.0),
    ("UA", "UKR", "Ukraine", 49.0, 32.0),
    ("UG", "UGA", "Uganda", 1.0, 32.0),
    ("US", "USA", "United States", 38.0, -97.0),
    ("UY", "URY", "Uruguay", -33.0, -56.0),
    ("UZ", "UZB", "Uzbekistan", 41.0, 64.0),
    ("VE", "VEN", "Venezuela", 8.0, -66.0),
    ("VN", "VNM", "Vietnam", 16.1667, 107.8333),
    ("ZA", "ZAF", "South Africa", -29.0, 24.0),
    ("ZM", "ZMB", "Zambia", -15.0, 30.0),
    ("ZW", "ZWE", "Zimbabwe", -20.0, 30.0),
)


class CountryRegistry:
    """Lookup table over the embedded ISO-3166 subset.

    Indexed by both alpha-2 and alpha-3 codes, case-insensitively, mirroring
    how geolocation databases report either code family (§4).
    """

    def __init__(self, rows: tuple[tuple[str, str, str, float, float], ...] = _COUNTRY_ROWS):
        self._by_alpha2: dict[str, Country] = {}
        self._by_alpha3: dict[str, Country] = {}
        for alpha2, alpha3, name, lat, lon in rows:
            country = Country(alpha2, alpha3, name, lat, lon)
            self._by_alpha2[alpha2] = country
            self._by_alpha3[alpha3] = country

    def get(self, code: str) -> Country:
        """Return the country for an alpha-2 or alpha-3 code."""
        key = code.strip().upper()
        if len(key) == 2 and key in self._by_alpha2:
            return self._by_alpha2[key]
        if len(key) == 3 and key in self._by_alpha3:
            return self._by_alpha3[key]
        raise UnknownCountryError(code)

    def __contains__(self, code: str) -> bool:
        try:
            self.get(code)
        except UnknownCountryError:
            return False
        return True

    def __iter__(self) -> Iterator[Country]:
        return iter(self._by_alpha2.values())

    def __len__(self) -> int:
        return len(self._by_alpha2)

    def alpha2_codes(self) -> tuple[str, ...]:
        """All registered alpha-2 codes, sorted."""
        return tuple(sorted(self._by_alpha2))

    def centroids(self) -> Mapping[str, tuple[float, float]]:
        """Alpha-2 → (lat, lon) geographic-centre map (default coordinates)."""
        return {
            code: (country.centroid_lat, country.centroid_lon)
            for code, country in self._by_alpha2.items()
        }


#: Module-level shared registry; the data is immutable so sharing is safe.
COUNTRIES = CountryRegistry()
