"""Geographic substrate: coordinates, countries, RIRs, and the gazetteer."""

from repro.geo.coordinates import (
    EARTH_RADIUS_KM,
    MAX_GREAT_CIRCLE_KM,
    GeoPoint,
    InvalidCoordinateError,
    centroid,
    haversine_km,
    normalize_longitude,
)
from repro.geo.countries import COUNTRIES, Country, CountryRegistry, UnknownCountryError
from repro.geo.gazetteer import City, Gazetteer, UnknownCityError
from repro.geo.rir import RIR, RIR_ORDER, countries_served_by, rir_for_country

__all__ = [
    "EARTH_RADIUS_KM",
    "MAX_GREAT_CIRCLE_KM",
    "GeoPoint",
    "InvalidCoordinateError",
    "centroid",
    "haversine_km",
    "normalize_longitude",
    "COUNTRIES",
    "Country",
    "CountryRegistry",
    "UnknownCountryError",
    "City",
    "Gazetteer",
    "UnknownCityError",
    "RIR",
    "RIR_ORDER",
    "countries_served_by",
    "rir_for_country",
]
