"""Regional Internet Registries and country→RIR assignment.

The paper's regional analysis (§5.2.2, Table 1, Figures 3 and 5) groups
ground-truth addresses by the RIR that delegated them, learned by querying
the Team Cymru whois service.  Our substrate reproduces that structure: the
delegation registry in :mod:`repro.net.registry` hands address blocks to
RIRs, and each RIR serves the countries mapped here.

The mapping follows the real service regions: ARIN (US, Canada, parts of
the Caribbean), RIPE NCC (Europe, Middle East, Central Asia), APNIC
(Asia-Pacific), LACNIC (Latin America), AFRINIC (Africa).
"""

from __future__ import annotations

import enum

from repro.geo.countries import COUNTRIES, UnknownCountryError


class RIR(enum.Enum):
    """The five Regional Internet Registries."""

    ARIN = "ARIN"
    RIPENCC = "RIPENCC"
    APNIC = "APNIC"
    LACNIC = "LACNIC"
    AFRINIC = "AFRINIC"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Canonical display order used by the paper's tables (Table 1 columns).
RIR_ORDER: tuple[RIR, ...] = (
    RIR.ARIN,
    RIR.APNIC,
    RIR.AFRINIC,
    RIR.LACNIC,
    RIR.RIPENCC,
)

_ARIN = {"US", "CA", "JM", "DO"}
_LACNIC = {
    "MX", "GT", "HN", "SV", "NI", "CR", "PA", "CO", "VE", "EC", "PE", "BO",
    "BR", "PY", "UY", "AR", "CL",
}
_AFRINIC = {
    "DZ", "MA", "TN", "EG", "SN", "CI", "GH", "BF", "NG", "CM", "CD", "ET",
    "KE", "UG", "RW", "TZ", "AO", "ZM", "ZW", "MZ", "MG", "MU", "BW", "NA",
    "ZA",
}
_APNIC = {
    "CN", "HK", "TW", "JP", "KR", "MN", "IN", "PK", "BD", "LK", "NP", "MM",
    "TH", "LA", "KH", "VN", "MY", "SG", "ID", "PH", "AU", "NZ",
}
# Everything else in the registry (Europe, Middle East, Central Asia) is
# RIPE NCC territory.


def rir_for_country(alpha2: str) -> RIR:
    """The RIR whose service region contains the given country.

    Raises :class:`~repro.geo.countries.UnknownCountryError` for codes not
    present in the embedded registry, so callers cannot silently
    mis-bucket an address.
    """
    code = alpha2.strip().upper()
    if code not in COUNTRIES:
        raise UnknownCountryError(alpha2)
    if code in _ARIN:
        return RIR.ARIN
    if code in _LACNIC:
        return RIR.LACNIC
    if code in _AFRINIC:
        return RIR.AFRINIC
    if code in _APNIC:
        return RIR.APNIC
    return RIR.RIPENCC


def countries_served_by(rir: RIR) -> tuple[str, ...]:
    """Sorted alpha-2 codes of the countries in an RIR's service region."""
    return tuple(
        sorted(
            country.alpha2
            for country in COUNTRIES
            if rir_for_country(country.alpha2) is rir
        )
    )
