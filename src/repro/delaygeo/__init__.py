"""Delay-based geolocation: the paper's §1 alternative to databases."""

from repro.delaygeo.cbg import (
    BASELINE,
    BASELINE_MS_PER_KM,
    Bestline,
    CbgEstimate,
    CbgGeolocator,
    fit_bestline,
    fit_bestlines,
)
from repro.delaygeo.model import (
    DelayMeasurement,
    Landmark,
    calibration_matrix,
    measure_targets,
    select_landmarks,
)

__all__ = [
    "BASELINE",
    "BASELINE_MS_PER_KM",
    "Bestline",
    "CbgEstimate",
    "CbgGeolocator",
    "fit_bestline",
    "fit_bestlines",
    "DelayMeasurement",
    "Landmark",
    "calibration_matrix",
    "measure_targets",
    "select_landmarks",
]
