"""Delay measurements for active geolocation.

The paper positions delay-based geolocation as the main alternative to
databases (§1): "Delay-based geolocation, where delay measurements are
mapped to location constraints [14, 22, 24, 32, 33], is another viable
option, especially with more public measurement platforms becoming
available."  This package implements that option over the same synthetic
Internet, so the two approaches can be compared head-to-head on the
paper's ground truth.

This module provides the measurement layer: landmarks (probes with
trusted locations), ping-style RTT measurement toward targets via the
shared traceroute engine, and the landmark-to-landmark calibration
matrix that constraint-based methods train on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.atlas.probes import AtlasProbe
from repro.geo.coordinates import GeoPoint
from repro.net.ip import IPv4Address
from repro.topology.builder import SyntheticInternet
from repro.topology.traceroute import TracerouteEngine


@dataclass(frozen=True, slots=True)
class Landmark:
    """A vantage point with a trusted location.

    Unlike Atlas probes in the RTT-proximity method, landmarks for active
    geolocation are assumed *verified* (anchors, university hosts); the
    conversion below therefore uses the probe's true location, modelling
    the curated landmark sets delay-based systems rely on.
    """

    landmark_id: int
    router_id: int
    location: GeoPoint

    @classmethod
    def from_probe(cls, probe: AtlasProbe) -> "Landmark":
        return cls(
            landmark_id=probe.probe_id,
            router_id=probe.router_id,
            location=probe.true_location,
        )


@dataclass(frozen=True, slots=True)
class DelayMeasurement:
    """One landmark's minimum observed RTT toward a target address."""

    landmark: Landmark
    target: IPv4Address
    min_rtt_ms: float


def select_landmarks(
    probes: Sequence[AtlasProbe],
    count: int,
    rng: random.Random,
) -> tuple[Landmark, ...]:
    """A geographically-spread landmark subset drawn from probes."""
    if count <= 0:
        raise ValueError(f"landmark count must be positive: {count!r}")
    by_city: dict[tuple[str, str], list[AtlasProbe]] = {}
    for probe in probes:
        by_city.setdefault((probe.city.country, probe.city.name), []).append(probe)
    cities = sorted(by_city)
    rng.shuffle(cities)
    return tuple(
        Landmark.from_probe(rng.choice(by_city[city]))
        for city in cities[: min(count, len(cities))]
    )


def _min_rtt_to(
    engine: TracerouteEngine,
    router_id: int,
    target: IPv4Address,
    attempts: int,
) -> float | None:
    """Ping-like minimum RTT: repeated traces, end-to-end RTT of the best."""
    best: float | None = None
    for _ in range(attempts):
        result = engine.trace_or_none(router_id, target)
        if result is None or not result.reached:
            continue
        rtt = result.hops[-1].rtt_ms
        if rtt is not None and (best is None or rtt < best):
            best = rtt
    return best


def measure_targets(
    internet: SyntheticInternet,
    landmarks: Sequence[Landmark],
    targets: Iterable[IPv4Address],
    rng: random.Random,
    *,
    attempts: int = 3,
    engine: TracerouteEngine | None = None,
) -> dict[IPv4Address, list[DelayMeasurement]]:
    """Measure every (landmark, target) pair; unreachable pairs are skipped."""
    if not landmarks:
        raise ValueError("at least one landmark is required")
    if attempts < 1:
        raise ValueError(f"attempts must be at least 1: {attempts!r}")
    if engine is None:
        engine = TracerouteEngine(
            internet, rng, hop_loss_rate=0.0, last_mile_rtt_ms=(0.05, 0.3)
        )
    measurements: dict[IPv4Address, list[DelayMeasurement]] = {}
    for target in sorted(set(targets)):
        per_target: list[DelayMeasurement] = []
        for landmark in landmarks:
            rtt = _min_rtt_to(engine, landmark.router_id, target, attempts)
            if rtt is None:
                continue
            per_target.append(
                DelayMeasurement(landmark=landmark, target=target, min_rtt_ms=rtt)
            )
        if per_target:
            measurements[target] = per_target
    return measurements


def calibration_matrix(
    internet: SyntheticInternet,
    landmarks: Sequence[Landmark],
    rng: random.Random,
    *,
    attempts: int = 3,
    engine: TracerouteEngine | None = None,
) -> Mapping[int, list[tuple[float, float]]]:
    """Landmark-to-landmark (distance_km, rtt_ms) training pairs.

    Constraint-based geolocation calibrates each landmark's delay-distance
    conversion on measurements between landmarks, whose locations are all
    known (the CBG "bestline" training set).
    """
    if engine is None:
        engine = TracerouteEngine(
            internet, rng, hop_loss_rate=0.0, last_mile_rtt_ms=(0.05, 0.3)
        )
    pairs: dict[int, list[tuple[float, float]]] = {lm.landmark_id: [] for lm in landmarks}
    for source in landmarks:
        for destination in landmarks:
            if source.landmark_id == destination.landmark_id:
                continue
            router = internet.routers[destination.router_id]
            if not router.interfaces:
                continue
            rtt = _min_rtt_to(
                engine, source.router_id, router.interfaces[0].address, attempts
            )
            if rtt is None:
                continue
            distance = source.location.distance_km(destination.location)
            pairs[source.landmark_id].append((distance, rtt))
    return pairs
