"""Constraint-Based Geolocation (CBG) — Gueye et al., ToN 2006.

CBG turns each landmark's RTT to the target into a *distance constraint*:
the target lies within a disk around the landmark whose radius is the
delay-to-distance conversion of the measured RTT.  The target's estimated
position is the centre of the intersection of all disks; the intersection
size is the method's confidence region.

Two conversions are implemented:

* **baseline** — the physical bound (RTT × 100 km/ms ÷ 2 each way is
  folded into :func:`repro.topology.rtt.max_distance_km`): always sound,
  often loose;
* **bestline** — CBG's per-landmark calibration: landmark-to-landmark
  measurements fit the tightest line ``rtt = m·d + b`` lying *below* all
  training points, so converted distances shrink toward reality while
  remaining (empirically) sound.

The intersection centre is found numerically with scipy: minimize the
total squared constraint violation, seeded at the lowest-RTT landmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy.optimize import minimize

from repro.delaygeo.model import DelayMeasurement
from repro.geo.coordinates import GeoPoint, haversine_km
from repro.topology.rtt import FIBER_KM_PER_MS, max_distance_km

#: Baseline slope of the delay/distance relation (ms per km, round trip).
BASELINE_MS_PER_KM = 2.0 / FIBER_KM_PER_MS


@dataclass(frozen=True, slots=True)
class Bestline:
    """A landmark's calibrated delay→distance conversion ``rtt = m·d + b``."""

    slope_ms_per_km: float
    intercept_ms: float

    def distance_km(self, rtt_ms: float) -> float:
        """Convert an RTT into a (calibrated) distance upper bound."""
        return max(0.0, (rtt_ms - self.intercept_ms) / self.slope_ms_per_km)


#: The uncalibrated, physically-sound conversion.
BASELINE = Bestline(slope_ms_per_km=BASELINE_MS_PER_KM, intercept_ms=0.0)


def fit_bestline(training: Sequence[tuple[float, float]]) -> Bestline:
    """Fit a CBG bestline from (distance_km, rtt_ms) training pairs.

    Following Gueye et al., the bestline is the line lying *below* every
    training point (so converted distances never under-cover the truth on
    the training set) that hugs the point cloud as closely as possible:
    among the lower-convex-hull edges with physically-sound slope
    (≥ the speed-of-light slope), pick the one minimizing the total
    vertical distance to all points.  Falls back to the physical baseline
    when training is empty or degenerate.
    """
    if not training:
        return BASELINE
    points = sorted({(float(d), float(r)) for d, r in training})
    if len(points) == 1:
        distance, rtt = points[0]
        if distance <= 0:
            return BASELINE
        slope = max(BASELINE_MS_PER_KM, rtt / distance)
        return Bestline(slope_ms_per_km=slope, intercept_ms=0.0)

    # Lower convex hull (Andrew's monotone chain, lower part).
    hull: list[tuple[float, float]] = []
    for point in points:
        while len(hull) >= 2:
            (x1, y1), (x2, y2) = hull[-2], hull[-1]
            if (x2 - x1) * (point[1] - y1) - (y2 - y1) * (point[0] - x1) <= 0:
                hull.pop()
            else:
                break
        hull.append(point)

    best: Bestline | None = None
    best_cost = float("inf")
    for (x1, y1), (x2, y2) in zip(hull, hull[1:]):
        if x2 <= x1:
            continue
        slope = (y2 - y1) / (x2 - x1)
        if slope < BASELINE_MS_PER_KM:
            continue  # physically impossible conversion
        intercept = y1 - slope * x1
        if intercept < 0:
            # Negative intercept means negative delay at zero distance —
            # CBG discards such candidate lines as non-physical (they are
            # artifacts of steep hull edges chasing far outliers).
            continue
        cost = sum(rtt - (slope * distance + intercept) for distance, rtt in points)
        if cost < best_cost:
            best_cost = cost
            best = Bestline(slope_ms_per_km=slope, intercept_ms=intercept)
    return best if best is not None else BASELINE


def fit_bestlines(
    matrix: Mapping[int, Sequence[tuple[float, float]]]
) -> dict[int, Bestline]:
    """Per-landmark bestlines from a calibration matrix."""
    return {landmark_id: fit_bestline(pairs) for landmark_id, pairs in matrix.items()}


@dataclass(frozen=True, slots=True)
class CbgEstimate:
    """A CBG answer: position, confidence, and the constraints behind it."""

    target: object  # IPv4Address, kept generic for reuse
    location: GeoPoint
    #: Largest constraint violation at the estimate (0 = feasible point).
    residual_km: float
    #: Radius of the tightest constraint — an optimistic error bound.
    tightest_constraint_km: float
    landmarks_used: int

    @property
    def feasible(self) -> bool:
        """True when the disks genuinely intersect at the estimate."""
        return self.residual_km <= 1.0


class CbgGeolocator:
    """Multilateration over delay constraints."""

    def __init__(self, bestlines: Mapping[int, Bestline] | None = None):
        self._bestlines = dict(bestlines) if bestlines is not None else {}

    def _conversion_for(self, landmark_id: int) -> Bestline:
        return self._bestlines.get(landmark_id, BASELINE)

    def constraints(
        self, measurements: Sequence[DelayMeasurement]
    ) -> list[tuple[GeoPoint, float]]:
        """(centre, radius_km) disks implied by the measurements."""
        disks = []
        for measurement in measurements:
            conversion = self._conversion_for(measurement.landmark.landmark_id)
            radius = min(
                conversion.distance_km(measurement.min_rtt_ms),
                max_distance_km(measurement.min_rtt_ms),
            )
            disks.append((measurement.landmark.location, radius))
        return disks

    def geolocate(self, measurements: Sequence[DelayMeasurement]) -> CbgEstimate:
        """Estimate the target's position from its delay constraints."""
        if not measurements:
            raise ValueError("CBG needs at least one measurement")
        disks = self.constraints(measurements)
        # Start at the lowest-RTT landmark: the target is closest to it.
        seed_index = min(
            range(len(measurements)), key=lambda i: measurements[i].min_rtt_ms
        )
        seed = disks[seed_index][0]

        centres = np.array([[c.lat, c.lon] for c, _ in disks])
        radii = np.array([r for _, r in disks])

        def violation(x: np.ndarray) -> float:
            lat = float(np.clip(x[0], -90.0, 90.0))
            lon = float(((x[1] + 180.0) % 360.0) - 180.0)
            total = 0.0
            for (clat, clon), radius in zip(centres, radii):
                distance = haversine_km(lat, lon, clat, clon)
                excess = distance - radius
                if excess > 0:
                    total += excess * excess
            return total

        fit = minimize(
            violation,
            np.array([seed.lat, seed.lon]),
            method="Nelder-Mead",
            options={"xatol": 1e-3, "fatol": 1e-2, "maxiter": 400},
        )
        lat = float(np.clip(fit.x[0], -90.0, 90.0))
        lon = float(((fit.x[1] + 180.0) % 360.0) - 180.0)
        estimate = GeoPoint(lat, lon)

        worst = 0.0
        for (centre, radius) in disks:
            excess = estimate.distance_km(centre) - radius
            worst = max(worst, excess)
        return CbgEstimate(
            target=measurements[0].target,
            location=estimate,
            residual_km=max(0.0, worst),
            tightest_constraint_km=float(radii.min()),
            landmarks_used=len(measurements),
        )

    def geolocate_all(
        self,
        measurements_by_target: Mapping[object, Sequence[DelayMeasurement]],
    ) -> dict[object, CbgEstimate]:
        """Geolocate every target that has at least one measurement."""
        return {
            target: self.geolocate(per_target)
            for target, per_target in measurements_by_target.items()
            if per_target
        }
