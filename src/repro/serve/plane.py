"""The answer plane: cross-vendor consensus resolved at compile time.

``BENCH_pipeline.json`` showed the raw compiled-index bisect at ~200 ns
per lookup while the full :class:`~repro.serve.engine.ServingEngine`
path cost ~5 µs — per-request Python orchestration (outcome objects,
per-vendor dict plumbing, consensus re-derivation) ate a ~20x gap.  The
paper's observation makes that work removable: each vendor's answers
*and* their majority/disagreement structure (§5.1) are static properties
of the database snapshots, so they can be resolved once per snapshot set
instead of once per request — the same move the columnar
:class:`~repro.core.frame.LookupFrame` makes for the analysis pipeline,
applied to serving.

:func:`compile_plane` merges every vendor's
:class:`~repro.serve.index.CompiledIndex` partition into one sorted
cross-vendor boundary array (:func:`repro.geodb.intervals.merge_starts`:
inside a merged interval no vendor's answer can change) and precomputes,
per merged interval, the full answer *cell*: every vendor's
:class:`~repro.serve.index.IndexAnswer`, and the §5.1 consensus —
majority country/location with vote counts (via
:func:`repro.core.majority.majority_of_records`, never a reimplemented
tally), disagreement flags, and the quorum verdict.  Adjacent intervals
with identical cells merge, and identical cells share one
:class:`PlaneAnswer` object, so a healthy-path lookup is one C-level
``bisect`` plus one list read — no per-request vote, no per-vendor
plumbing.

The plane only ever encodes the *healthy* answer: the serving engine
consults it exclusively while every vendor is healthy and no fault
injector is armed, and falls back to the live per-vendor resolve path
the moment anything is degraded — so the PR 5 fail-closed contract
(flags, quarantine, typed errors) is untouched, which the chaos matrix
re-proves with the plane attached.

Planes persist as ``.rgpl`` files next to the ``.rgix`` snapshots they
were compiled from, with the same two-digest integrity scheme (header
SHA-256 + payload SHA-256): every corrupt byte raises
:class:`~repro.serve.snapshot.SnapshotError`, never a silently wrong
precomputed answer.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import struct
from bisect import bisect_right
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.majority import DEFAULT_CITY_RANGE_KM, majority_of_records
from repro.geo.coordinates import GeoPoint
from repro.geodb.intervals import merge_starts
from repro.geodb.record import GeoRecord
from repro.net.ip import IPv4Address, parse_address
from repro.serve.engine import ConsensusAnswer, LookupOutcome
from repro.serve.index import CompiledIndex, IndexAnswer
from repro.serve.snapshot import (
    SnapshotError,
    _label_generation,
    _record_from_row,
    _record_to_row,
)

__all__ = [
    "AnswerPlane",
    "DEFAULT_QUORUM_MIN",
    "PLANE_SUFFIX",
    "PlaneAnswer",
    "compile_plane",
    "load_plane",
    "save_plane",
]

#: File extension for persisted answer planes (``plane.rgpl``).
PLANE_SUFFIX = ".rgpl"

#: Matches :class:`~repro.serve.engine.ResiliencePolicy.quorum_min`'s
#: default — the engine refuses a plane compiled under a different rule.
DEFAULT_QUORUM_MIN = 2

_MAGIC = b"RGPL"
_FORMAT_VERSION = 1
_HEADER_DIGEST_BYTES = 32
_PAYLOAD_OFFSET = 8 + _HEADER_DIGEST_BYTES  # magic + header length + digest


@dataclass(frozen=True, slots=True)
class PlaneAnswer:
    """One merged interval's fully precomputed cross-vendor answer.

    ``answers`` is the exact mapping a healthy
    :class:`~repro.serve.engine.LookupOutcome` would carry (one key per
    vendor, ``None`` = healthy-but-no-coverage); the remaining fields are
    the §5.1 consensus the live path would re-derive per request.  Cells
    are shared across every request that lands in their intervals —
    treat all containers as read-only, exactly like cached outcomes.
    """

    answers: Mapping[str, IndexAnswer | None]
    country: str | None
    country_votes: int
    location: GeoPoint | None
    location_votes: int
    voters: int
    country_disagreement: bool
    city_disagreement: bool
    quorum: bool

    def outcome_at(self, address: IPv4Address) -> LookupOutcome:
        """This cell as a healthy :class:`LookupOutcome` for ``address``."""
        return LookupOutcome(address=address, answers=self.answers)

    def consensus_at(self, address: IPv4Address) -> ConsensusAnswer:
        """This cell as a healthy :class:`ConsensusAnswer` for ``address``."""
        return ConsensusAnswer(
            address=address,
            country=self.country,
            country_votes=self.country_votes,
            location=self.location,
            location_votes=self.location_votes,
            voters=self.voters,
            country_disagreement=self.country_disagreement,
            city_disagreement=self.city_disagreement,
            degraded=False,
            quorum=self.quorum,
        )


class AnswerPlane:
    """Every vendor's answer and the consensus, precomputed per interval.

    Internals (immutable after construction): ``_starts`` — the merged
    cross-vendor interval boundaries, strictly increasing from 0;
    ``_cell_ids`` — per-interval index into ``_cells``; ``_cells`` — the
    deduplicated :class:`PlaneAnswer` table.  The hot probe is a closure
    with state bound in positional defaults over a one-slot-shifted cell
    list, exactly the :class:`~repro.serve.index.CompiledIndex` trick —
    one ``bisect_right`` plus one list read per lookup.

    Construct via :func:`compile_plane` (from compiled indexes) or
    :func:`load_plane` (from a ``.rgpl`` file).
    """

    __slots__ = (
        "names",
        "vendor_intervals",
        "city_range_km",
        "quorum_min",
        "_starts",
        "_cell_ids",
        "_cells",
        "probe",
    )

    def __init__(
        self,
        names: Sequence[str],
        vendor_intervals: Mapping[str, int],
        starts: Sequence[int],
        cell_ids: Sequence[int],
        cells: Sequence[PlaneAnswer],
        *,
        city_range_km: float = DEFAULT_CITY_RANGE_KM,
        quorum_min: int = DEFAULT_QUORUM_MIN,
    ):
        if len(starts) != len(cell_ids):
            raise ValueError("starts and cell_ids must be parallel arrays")
        if not starts or starts[0] != 0:
            raise ValueError("plane interval table must start at address 0")
        if cells and not all(0 <= i < len(cells) for i in cell_ids):
            raise ValueError("cell_ids reference cells outside the table")
        self.names = tuple(names)
        self.vendor_intervals = dict(vendor_intervals)
        self.city_range_km = city_range_km
        self.quorum_min = quorum_min
        self._starts = list(starts)
        self._cell_ids = list(cell_ids)
        self._cells = tuple(cells)

        # One slot of leading padding so the bisect result indexes the
        # cell list directly (bisect_right over starts beginning at 0
        # returns at least 1 for any valid address).
        shifted = [None, *(self._cells[i] for i in self._cell_ids)]

        def probe(
            addr: int,
            _bisect=bisect_right,
            _starts=self._starts,
            _cells=shifted,
        ) -> PlaneAnswer:
            """The precomputed cell for a pre-validated address integer."""
            return _cells[_bisect(_starts, addr)]

        self.probe = probe

    # -- lookup --------------------------------------------------------------

    def lookup(self, address: IPv4Address | str | int) -> PlaneAnswer:
        """The precomputed cross-vendor answer cell for ``address``."""
        return self.probe(int(parse_address(address)))

    def locate(self, addr: int) -> tuple[PlaneAnswer, int]:
        """The answer cell *and* the merged-interval ordinal for a
        pre-validated address integer.

        The traced serving path uses the ordinal as span attribution —
        "which precomputed interval answered this request" — without
        paying for it on the untraced hot path, which stays on
        :attr:`probe`.
        """
        interval = bisect_right(self._starts, addr) - 1
        return self._cells[self._cell_ids[interval]], interval

    # -- inspection ----------------------------------------------------------

    @property
    def interval_count(self) -> int:
        """Merged cross-vendor intervals covering the address space."""
        return len(self._starts)

    @property
    def cell_count(self) -> int:
        """Distinct precomputed answer cells (shared across intervals)."""
        return len(self._cells)

    def parts(
        self,
    ) -> tuple[list[int], list[int], tuple[PlaneAnswer, ...]]:
        """The persistence-serialisable components (treat as read-only)."""
        return self._starts, self._cell_ids, self._cells

    def stats(self) -> dict[str, object]:
        """A JSON-ready summary for ``/statusz`` and CLI banners."""
        return {
            "vendors": list(self.names),
            "intervals": self.interval_count,
            "cells": self.cell_count,
            "city_range_km": self.city_range_km,
            "quorum_min": self.quorum_min,
        }

    def __len__(self) -> int:
        return self.interval_count

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"AnswerPlane({', '.join(self.names)};"
            f" {self.interval_count} intervals, {self.cell_count} cells)"
        )


def _build_cell(
    names: Sequence[str],
    answers: Sequence[IndexAnswer | None],
    start: int,
    city_range_km: float,
    quorum_min: int,
) -> PlaneAnswer:
    """Precompute one cell: the outcome mapping plus the §5.1 consensus."""
    records = [answer.record for answer in answers if answer is not None]
    vote = majority_of_records(
        parse_address(start), records, city_range_km=city_range_km
    )
    countries = {r.country for r in records if r.country is not None}
    coordinates = [
        r.location for r in records if r.has_city and r.has_coordinates
    ]
    city_disagreement = any(
        a.distance_km(b) > city_range_km
        for i, a in enumerate(coordinates)
        for b in coordinates[i + 1 :]
    )
    return PlaneAnswer(
        answers=dict(zip(names, answers)),
        country=vote.country,
        country_votes=vote.country_votes,
        location=vote.location,
        location_votes=vote.location_votes,
        voters=vote.voters,
        country_disagreement=len(countries) > 1,
        city_disagreement=city_disagreement,
        quorum=vote.voters >= quorum_min,
    )


def compile_plane(
    indexes: Mapping[str, CompiledIndex],
    *,
    city_range_km: float = DEFAULT_CITY_RANGE_KM,
    quorum_min: int = DEFAULT_QUORUM_MIN,
) -> AnswerPlane:
    """Merge compiled vendor indexes into one precomputed answer plane.

    The boundary array is the union of every vendor's interval starts
    (:func:`~repro.geodb.intervals.merge_starts`): inside each merged
    interval no vendor's answer can change, so probing each vendor once
    at the interval start answers the whole interval.  Cells repeat
    heavily across the address space — identical per-vendor answer
    tuples share one :class:`PlaneAnswer`, and equal-cell neighbours
    merge into one interval.
    """
    if not indexes:
        raise ValueError("an answer plane needs at least one compiled index")
    names = tuple(sorted(indexes))
    probes = [indexes[name].probe_answer for name in names]
    merged = merge_starts([indexes[name].parts()[0] for name in names])

    starts: list[int] = []
    cell_ids: list[int] = []
    cells: list[PlaneAnswer] = []
    seen: dict[tuple[IndexAnswer | None, ...], int] = {}
    for start in merged:
        answers = tuple(probe(start) for probe in probes)
        cell_id = seen.get(answers)
        if cell_id is None:
            cell_id = seen[answers] = len(cells)
            cells.append(
                _build_cell(names, answers, start, city_range_km, quorum_min)
            )
        if cell_ids and cell_ids[-1] == cell_id:
            continue  # same answer as the previous interval: merge
        starts.append(start)
        cell_ids.append(cell_id)

    return AnswerPlane(
        names=names,
        vendor_intervals={
            name: indexes[name].interval_count for name in names
        },
        starts=starts,
        cell_ids=cell_ids,
        cells=cells,
        city_range_km=city_range_km,
        quorum_min=quorum_min,
    )


# -- persistence (.rgpl) -----------------------------------------------------
#
# Same container discipline as .rgix format v2: RGPL magic, header
# length, SHA-256 of the header, JSON header (version, vendors + their
# source interval counts, consensus parameters, counts, payload length
# and checksum), then the payload — starts and cell ids packed to
# fixed-width integers, and a JSON tail holding the deduplicated
# record/answer/cell tables.


def _pack_payload(plane: AnswerPlane) -> bytes:
    starts, cell_ids, cells = plane.parts()
    record_ids: dict[GeoRecord, int] = {}
    record_rows: list[list] = []
    answer_ids: dict[IndexAnswer, int] = {}
    answer_rows: list[list] = []
    cell_rows: list[list] = []
    for cell in cells:
        vendor_answers: list[int] = []
        for name in plane.names:
            answer = cell.answers[name]
            if answer is None:
                vendor_answers.append(-1)
                continue
            answer_id = answer_ids.get(answer)
            if answer_id is None:
                record_id = record_ids.get(answer.record)
                if record_id is None:
                    record_id = record_ids[answer.record] = len(record_rows)
                    record_rows.append(_record_to_row(answer.record))
                answer_id = answer_ids[answer] = len(answer_rows)
                answer_rows.append([answer.prefix, record_id])
            vendor_answers.append(answer_id)
        location = (
            [cell.location.lat, cell.location.lon]
            if cell.location is not None
            else None
        )
        cell_rows.append(
            [
                vendor_answers,
                cell.country,
                cell.country_votes,
                location,
                cell.location_votes,
                cell.voters,
                int(cell.country_disagreement),
                int(cell.city_disagreement),
                int(cell.quorum),
            ]
        )
    count = len(starts)
    tail = json.dumps(
        {"records": record_rows, "answers": answer_rows, "cells": cell_rows},
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    return b"".join(
        (
            struct.pack(f"<{count}I", *starts),
            struct.pack(f"<{count}I", *cell_ids),
            tail,
        )
    )


def save_plane(plane: AnswerPlane, path: str | pathlib.Path) -> pathlib.Path:
    """Write ``plane`` as one ``.rgpl`` file and return its path."""
    path = pathlib.Path(path)
    payload = _pack_payload(plane)
    header = json.dumps(
        {
            "format": "repro-answer-plane",
            "version": _FORMAT_VERSION,
            "vendors": list(plane.names),
            "vendor_intervals": plane.vendor_intervals,
            "city_range_km": plane.city_range_km,
            "quorum_min": plane.quorum_min,
            "intervals": plane.interval_count,
            "cells": plane.cell_count,
            "payload_bytes": len(payload),
            "checksum_sha256": hashlib.sha256(payload).hexdigest(),
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    try:
        with open(path, "wb") as handle:
            handle.write(_MAGIC)
            handle.write(struct.pack("<I", len(header)))
            handle.write(hashlib.sha256(header).digest())
            handle.write(header)
            handle.write(payload)
    except OSError as exc:
        raise SnapshotError(f"cannot write answer plane {path}: {exc}") from exc
    return path


def _cell_from_row(
    row: list, names: Sequence[str], answers: Sequence[IndexAnswer]
) -> PlaneAnswer:
    (
        vendor_answers,
        country,
        country_votes,
        location,
        location_votes,
        voters,
        country_disagreement,
        city_disagreement,
        quorum,
    ) = row
    return PlaneAnswer(
        answers={
            name: answers[answer_id] if answer_id >= 0 else None
            for name, answer_id in zip(names, vendor_answers)
        },
        country=country,
        country_votes=int(country_votes),
        location=GeoPoint(location[0], location[1]) if location else None,
        location_votes=int(location_votes),
        voters=int(voters),
        country_disagreement=bool(country_disagreement),
        city_disagreement=bool(city_disagreement),
        quorum=bool(quorum),
    )


def load_plane(
    path: str | pathlib.Path, *, generation: int | None = None
) -> AnswerPlane:
    """Load and verify one ``.rgpl`` answer-plane file.

    The same trust ladder as ``.rgix``: magic, header digest, format
    version, payload length, payload checksum — every mismatch is a
    :class:`~repro.serve.snapshot.SnapshotError` naming the file, never
    a half-loaded plane serving silently wrong precomputed answers.
    ``generation`` labels failures with the snapshot-store generation
    being loaded, as in :func:`~repro.serve.snapshot.load_index`.
    """
    try:
        return _load_plane(path)
    except SnapshotError as exc:
        _label_generation(exc, generation)


def _load_plane(path: str | pathlib.Path) -> AnswerPlane:
    path = pathlib.Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read answer plane {path}: {exc}") from exc

    if len(blob) < 8 or blob[:4] != _MAGIC:
        raise SnapshotError(f"{path} is not an answer plane (bad magic)")
    (header_len,) = struct.unpack_from("<I", blob, 4)
    if len(blob) < _PAYLOAD_OFFSET + header_len:
        raise SnapshotError(f"{path} is truncated (header cut short)")
    stored_digest = blob[8:_PAYLOAD_OFFSET]
    header_bytes = blob[_PAYLOAD_OFFSET : _PAYLOAD_OFFSET + header_len]
    if hashlib.sha256(header_bytes).digest() != stored_digest:
        raise SnapshotError(f"{path} failed header checksum verification")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"{path} has an unreadable header: {exc}") from exc

    version = header.get("version")
    if version != _FORMAT_VERSION:
        raise SnapshotError(
            f"{path} uses answer-plane format version {version!r};"
            f" this build reads version {_FORMAT_VERSION}"
        )
    payload = blob[_PAYLOAD_OFFSET + header_len :]
    if len(payload) != header.get("payload_bytes"):
        raise SnapshotError(
            f"{path} is truncated: payload is {len(payload)} bytes,"
            f" header promises {header.get('payload_bytes')}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("checksum_sha256"):
        raise SnapshotError(
            f"{path} failed checksum verification"
            f" (stored {header.get('checksum_sha256')}, computed {digest})"
        )

    # Verified bytes from here on: any failure is a malformed-at-write
    # plane, surfaced as the typed error rather than a bare internal one.
    try:
        names = tuple(str(name) for name in header["vendors"])
        count = int(header["intervals"])
        if count < 0 or 8 * count > len(payload):
            raise ValueError(
                f"interval count {count} does not fit a {len(payload)}-byte payload"
            )
        starts = struct.unpack_from(f"<{count}I", payload, 0)
        cell_ids = struct.unpack_from(f"<{count}I", payload, 4 * count)
        tail = json.loads(payload[8 * count :].decode("utf-8"))
        records = [_record_from_row(row) for row in tail["records"]]
        answers = [
            IndexAnswer(prefix=str(prefix), record=records[record_id])
            for prefix, record_id in tail["answers"]
        ]
        cells = [
            _cell_from_row(row, names, answers) for row in tail["cells"]
        ]
        return AnswerPlane(
            names=names,
            vendor_intervals={
                str(name): int(value)
                for name, value in header["vendor_intervals"].items()
            },
            starts=starts,
            cell_ids=cell_ids,
            cells=cells,
            city_range_km=float(header["city_range_km"]),
            quorum_min=int(header["quorum_min"]),
        )
    except (
        struct.error,
        UnicodeDecodeError,
        json.JSONDecodeError,
        KeyError,
        IndexError,
        TypeError,
        ValueError,
    ) as exc:
        raise SnapshotError(f"{path} holds an invalid answer plane: {exc}") from exc
