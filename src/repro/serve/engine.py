"""The serving engine: all vendor indexes behind one lookup API.

A :class:`ServingEngine` is what a deployment actually runs: the four
vendor tables compiled to :class:`~repro.serve.index.CompiledIndex`
form, an address-keyed LRU cache in front of them, batch lookup with
thread fan-out, and a consensus view that reuses the study's own
majority-vote machinery (:func:`repro.core.majority.majority_location`)
— the §5.1 warning that databases can agree *and* be wrong is exactly
why the API reports disagreement flags next to the majority answer
rather than a single merged location.

Metrics land in the ``serve.*`` family of the attached
:class:`~repro.obs.metrics.MetricsRegistry` (lookups, cache hits/misses,
batch sizes, consensus calls), mirroring how the analysis pipeline
reports ``geodb.*``.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Mapping, Sequence

from repro.core.majority import DEFAULT_CITY_RANGE_KM, majority_location
from repro.geo.coordinates import GeoPoint
from repro.geodb.database import GeoDatabase
from repro.net.ip import IPv4Address, parse_address
from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import LruCache
from repro.serve.index import CompiledIndex, IndexAnswer
from repro.serve.snapshot import load_index_set

__all__ = ["ConsensusAnswer", "ServingEngine"]

#: Batches at least this large fan out across worker threads.
DEFAULT_BATCH_THRESHOLD = 256

DEFAULT_CACHE_SIZE = 4096


@dataclass(frozen=True, slots=True)
class ConsensusAnswer:
    """The multi-vendor view of one address.

    ``country``/``location`` are the majority vote's answers (``None``
    when no quorum forms); the disagreement flags are the §5.1
    consistency notion — ``country_disagreement`` when any two answering
    databases name different ISO codes, ``city_disagreement`` when any
    two city-level answers sit farther apart than the city range.
    """

    address: IPv4Address
    country: str | None
    country_votes: int
    location: GeoPoint | None
    location_votes: int
    voters: int
    country_disagreement: bool
    city_disagreement: bool


class ServingEngine:
    """Concurrent multi-database lookup over compiled indexes.

    Indexes are immutable and shared; the only mutable state is the LRU
    cache, which locks internally — the engine is safe to query from many
    threads at once (the HTTP layer does exactly that).
    """

    def __init__(
        self,
        indexes: Mapping[str, CompiledIndex],
        *,
        cache_size: int | None = DEFAULT_CACHE_SIZE,
        metrics: MetricsRegistry | None = None,
        city_range_km: float = DEFAULT_CITY_RANGE_KM,
        batch_threshold: int = DEFAULT_BATCH_THRESHOLD,
        max_workers: int = 4,
    ):
        if not indexes:
            raise ValueError("a serving engine needs at least one database index")
        if batch_threshold < 1:
            raise ValueError(f"batch_threshold must be positive: {batch_threshold!r}")
        if max_workers < 1:
            raise ValueError(f"max_workers must be positive: {max_workers!r}")
        self._indexes = dict(sorted(indexes.items()))
        self._cache = LruCache(cache_size) if cache_size else None
        self._metrics = metrics
        self.city_range_km = city_range_km
        self.batch_threshold = batch_threshold
        self.max_workers = max_workers

    # -- construction --------------------------------------------------------

    @classmethod
    def from_databases(
        cls, databases: Mapping[str, GeoDatabase], **kwargs
    ) -> "ServingEngine":
        """Compile every database and serve the compiled set."""
        return cls(
            {name: CompiledIndex.compile(db) for name, db in databases.items()},
            **kwargs,
        )

    @classmethod
    def from_scenario(cls, scenario, **kwargs) -> "ServingEngine":
        """Serve a built scenario's four vendor snapshots."""
        return cls.from_databases(scenario.databases, **kwargs)

    @classmethod
    def from_snapshot_dir(cls, directory, **kwargs) -> "ServingEngine":
        """Serve compiled snapshots written by ``repro compile``."""
        return cls(load_index_set(directory), **kwargs)

    # -- observability -------------------------------------------------------

    def attach_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Emit ``serve.*`` counters into ``metrics`` (``None`` detaches)."""
        self._metrics = metrics

    def cache_stats(self) -> dict[str, float] | None:
        """The LRU cache's counter snapshot (``None`` when uncached)."""
        return self._cache.stats() if self._cache is not None else None

    # -- lookup --------------------------------------------------------------

    def database_names(self) -> tuple[str, ...]:
        return tuple(self._indexes)

    def lookup(
        self, address: IPv4Address | str | int
    ) -> dict[str, IndexAnswer | None]:
        """Every database's answer (matched prefix + record) for one address."""
        addr = int(parse_address(address))
        metrics = self._metrics
        if metrics is not None:
            metrics.inc("serve.lookups")
        cache = self._cache
        if cache is not None:
            try:
                answers = cache.get(addr)
            except KeyError:
                pass
            else:
                if metrics is not None:
                    metrics.inc("serve.cache_hits")
                return dict(answers)
            if metrics is not None:
                metrics.inc("serve.cache_misses")
        answers = {
            name: index.probe_answer(addr) for name, index in self._indexes.items()
        }
        if cache is not None:
            cache.put(addr, answers)
        return dict(answers)

    def lookup_batch(
        self, addresses: Sequence[IPv4Address | str | int] | Iterable
    ) -> list[dict[str, IndexAnswer | None]]:
        """Answers for many addresses, in input order.

        Small batches run inline; batches of at least ``batch_threshold``
        addresses fan out across a thread pool in contiguous chunks (the
        index probe releases no locks worth contending on, and chunking
        keeps per-task overhead negligible).
        """
        addresses = list(addresses)
        metrics = self._metrics
        if metrics is not None:
            metrics.inc("serve.batch_lookups")
            metrics.observe("serve.batch_size", len(addresses))
        if len(addresses) < self.batch_threshold:
            return [self.lookup(address) for address in addresses]
        chunk = -(-len(addresses) // self.max_workers)  # ceil division
        chunks = [addresses[i : i + chunk] for i in range(0, len(addresses), chunk)]
        with ThreadPoolExecutor(max_workers=self.max_workers) as executor:
            parts = executor.map(lambda part: [self.lookup(a) for a in part], chunks)
            return [answer for part in parts for answer in part]

    def consensus(self, address: IPv4Address | str | int) -> ConsensusAnswer:
        """Majority answer plus cross-database disagreement flags."""
        addr = parse_address(address)
        if self._metrics is not None:
            self._metrics.inc("serve.consensus")
        vote = majority_location(
            addr, self._indexes, city_range_km=self.city_range_km
        )

        records = [
            answer.record
            for answer in self.lookup(addr).values()
            if answer is not None
        ]
        countries = {r.country for r in records if r.country is not None}
        coordinates = [
            r.location for r in records if r.has_city and r.has_coordinates
        ]
        city_disagreement = any(
            a.distance_km(b) > self.city_range_km
            for a, b in combinations(coordinates, 2)
        )
        return ConsensusAnswer(
            address=addr,
            country=vote.country,
            country_votes=vote.country_votes,
            location=vote.location,
            location_votes=vote.location_votes,
            voters=vote.voters,
            country_disagreement=len(countries) > 1,
            city_disagreement=city_disagreement,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ServingEngine({', '.join(self._indexes)};"
            f" cache={'off' if self._cache is None else self._cache.capacity})"
        )
