"""The serving engine: all vendor indexes behind one fail-closed lookup API.

A :class:`ServingEngine` is what a deployment actually runs: the four
vendor tables compiled to :class:`~repro.serve.index.CompiledIndex`
form, an address-keyed LRU cache in front of them, batch lookup with
thread fan-out, and a consensus view that reuses the study's own
majority-vote machinery (:func:`repro.core.majority.majority_of_records`)
— the §5.1 warning that databases can agree *and* be wrong is exactly
why the API reports disagreement flags next to the majority answer
rather than a single merged location.

Since vendors fail in production (see :mod:`repro.faults` for the fault
matrix this is tested against), every request resolves to a
:class:`LookupOutcome` under an explicit degradation contract:

* a vendor probe that raises is retried per :class:`ResiliencePolicy`
  and, past a consecutive-failure threshold, the vendor is
  **quarantined** — skipped entirely until an exponentially growing
  cooldown expires, when one half-open probe decides recovery;
* an optional per-request **deadline budget** bounds tail latency: once
  the budget is spent, remaining vendors are skipped rather than probed;
* any answer produced with vendors missing carries ``degraded=True``
  (and the consensus a truthful ``quorum`` flag) — *Overconfident
  Coordinates* is why degradation is flagged, never silent;
* when no vendor can answer at all, the engine raises the typed
  :class:`~repro.serve.errors.NoHealthyVendors` instead of fabricating
  an empty answer.

With an :class:`~repro.serve.plane.AnswerPlane` attached, the healthy
path skips all of that machinery: every vendor's answer and the §5.1
consensus were already resolved per merged cross-vendor interval at
compile time, so a lookup is one C-level bisect plus array reads.  The
plane is consulted only while every vendor is healthy *and* no fault
injector is armed (the injector's fault gates live in the per-vendor
probe wrappers, so a chaos engine must run the live path for faults to
fire at all); the moment anything degrades, requests fall back to the
live per-vendor resolve path above — the fail-closed contract is
untouched, it just stops being paid for when nothing is broken.

Since PR 8 every piece of state a lookup touches — indexes, cache,
plane, per-vendor health — lives inside one :class:`_Generation`
object, and the engine holds exactly one reference to it.  A lookup
captures that reference once on entry and never re-reads it, so
:meth:`ServingEngine.swap` can atomically replace the entire served
snapshot set under live traffic (Gouel et al.'s longitudinal refresh
problem) with a single assignment: in-flight lookups finish on the
generation they started with, new lookups see the new one, and a torn
or mixed-generation answer is structurally impossible.  The
:mod:`repro.serve.store` watcher drives swaps (and rollbacks) from the
on-disk generation store.

Metrics land in the ``serve.*`` family of the attached
:class:`~repro.obs.metrics.MetricsRegistry` (lookups, cache hits/misses,
batch sizes, consensus calls, vendor errors/retries/quarantines,
generation swaps/rollbacks), with plane traffic split out as
``plane.*`` (hits vs live fallbacks), mirroring how the analysis
pipeline reports ``geodb.*``.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from itertools import combinations
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.majority import DEFAULT_CITY_RANGE_KM, majority_of_records
from repro.geo.coordinates import GeoPoint
from repro.geodb.database import GeoDatabase
from repro.net.ip import IPv4Address, parse_address
from repro.obs.metrics import MetricsRegistry
from repro.serve.cache import LruCache
from repro.serve.errors import NoHealthyVendors, ServeError, VendorError
from repro.serve.index import CompiledIndex, IndexAnswer
from repro.serve.snapshot import load_index_set

__all__ = [
    "ConsensusAnswer",
    "LookupOutcome",
    "ResiliencePolicy",
    "ServingEngine",
]

#: Batches at least this large fan out across worker threads.
DEFAULT_BATCH_THRESHOLD = 256

DEFAULT_CACHE_SIZE = 4096


@dataclass(frozen=True, slots=True)
class ResiliencePolicy:
    """How the engine behaves when a vendor backend misbehaves.

    ``retries`` extra attempts (with ``retry_backoff_s`` doubling
    between them) absorb transient errors; ``quarantine_threshold``
    consecutive failures quarantine the vendor for ``cooldown_s``
    (doubling per re-quarantine up to ``cooldown_max_s``, then one
    half-open probe decides recovery).  ``deadline_ms`` is the
    per-request time budget — ``None`` disables it.  ``quorum_min`` is
    the least number of answering vendors for a consensus to claim
    quorum.
    """

    retries: int = 1
    retry_backoff_s: float = 0.0
    quarantine_threshold: int = 3
    cooldown_s: float = 0.5
    cooldown_max_s: float = 30.0
    deadline_ms: float | None = None
    quorum_min: int = 2

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError(f"retries must be non-negative: {self.retries!r}")
        if self.quarantine_threshold < 1:
            raise ValueError(
                f"quarantine_threshold must be positive: {self.quarantine_threshold!r}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be positive: {self.deadline_ms!r}")


DEFAULT_POLICY = ResiliencePolicy()


class _VendorHealth:
    """Mutable per-vendor circuit state (guarded by its generation's lock).

    ``blocked_until`` doubles as the fast-path gate: 0.0 for a healthy
    vendor (one falsy check per lookup), a monotonic deadline while
    quarantined, ``inf`` for a vendor whose snapshot never loaded.
    """

    __slots__ = (
        "status",
        "blocked_until",
        "consecutive_failures",
        "cooldown_s",
        "quarantines",
        "last_error",
    )

    def __init__(self, cooldown_s: float, *, status: str = "healthy"):
        self.status = status
        self.blocked_until = math.inf if status == "missing" else 0.0
        self.consecutive_failures = 0
        self.cooldown_s = cooldown_s
        self.quarantines = 0
        self.last_error: str | None = (
            "snapshot missing at load time" if status == "missing" else None
        )

    def snapshot(self) -> dict[str, object]:
        return {
            "state": self.status,
            "consecutive_failures": self.consecutive_failures,
            "quarantines": self.quarantines,
            "cooldown_s": self.cooldown_s,
            "last_error": self.last_error,
        }


class _Generation:
    """One loaded snapshot set: everything a lookup touches, behind a
    single reference.

    A lookup captures ``engine._gen`` exactly once at entry and reads
    only this object afterwards, so a concurrent :meth:`ServingEngine.\
swap` (one reference assignment) can never hand it another
    generation's indexes, cache, plane, or health table: in-flight
    lookups finish on the generation they started with, and every field
    of their answer comes from that one generation.  The cache and the
    health table are *per generation* for the same reason — a cached
    outcome from generation N must never be served by generation N+1.
    """

    __slots__ = (
        "gen_id",
        "source",
        "indexes",
        "cache",
        "plane",
        "plane_live",
        "health",
        "health_lock",
        "healthy",
        "missing",
        "activated_monotonic",
        "activated_unix",
    )

    def __init__(
        self,
        gen_id: int,
        source: str,
        indexes: Mapping[str, CompiledIndex],
        cache,
        plane,
        plane_live,
        health: dict[str, _VendorHealth],
        missing: tuple[str, ...],
        activated_monotonic: float,
    ):
        self.gen_id = gen_id
        self.source = source
        self.indexes = indexes
        self.cache = cache
        self.plane = plane
        self.plane_live = plane_live
        self.health = health
        self.health_lock = threading.Lock()
        self.missing = missing
        # The plane's fast gate: True only while every vendor is fully
        # healthy (no quarantine, no missing snapshot, no failure streak
        # mid-count).  Flipped under the health lock, read without it —
        # a plain bool attribute read is atomic, and a stale False only
        # costs one live-path resolve, never correctness.
        self.healthy = not missing
        self.activated_monotonic = activated_monotonic
        self.activated_unix = time.time()

    def vendor_names(self) -> tuple[str, ...]:
        """Served plus expected-but-missing vendors, in answer order."""
        return (*self.indexes, *self.missing)


@dataclass(frozen=True, slots=True)
class LookupOutcome:
    """One request's full, honestly-labelled result.

    ``answers`` holds every vendor that answered this request (``None``
    value = the vendor is healthy and has no coverage — itself a final,
    correct answer).  Vendors absent from ``answers`` are accounted for
    exactly once across ``errors`` (failed this request, post-retries),
    ``quarantined`` (skipped: circuit open or snapshot missing), and
    ``skipped`` (not probed: the deadline budget ran out).  Treat the
    containers as read-only — outcomes are shared via the cache.
    """

    address: IPv4Address
    answers: Mapping[str, IndexAnswer | None]
    errors: Mapping[str, str] = field(default_factory=dict)
    quarantined: tuple[str, ...] = ()
    skipped: tuple[str, ...] = ()
    deadline_exceeded: bool = False

    @property
    def degraded(self) -> bool:
        """True when any vendor's answer is missing from this result."""
        return bool(
            self.errors or self.quarantined or self.skipped or self.deadline_exceeded
        )

    def unavailable(self) -> tuple[str, ...]:
        """Every vendor that did not answer, sorted."""
        return tuple(sorted({*self.errors, *self.quarantined, *self.skipped}))


@dataclass(frozen=True, slots=True)
class ConsensusAnswer:
    """The multi-vendor view of one address.

    ``country``/``location`` are the majority vote's answers (``None``
    when no quorum forms); the disagreement flags are the §5.1
    consistency notion — ``country_disagreement`` when any two answering
    databases name different ISO codes, ``city_disagreement`` when any
    two city-level answers sit farther apart than the city range.
    ``degraded`` is True when the vote ran over fewer vendors than the
    engine serves (failures/quarantine/deadline); ``quorum`` is True
    when at least ``ResiliencePolicy.quorum_min`` vendors answered.
    """

    address: IPv4Address
    country: str | None
    country_votes: int
    location: GeoPoint | None
    location_votes: int
    voters: int
    country_disagreement: bool
    city_disagreement: bool
    degraded: bool = False
    quorum: bool = True


class ServingEngine:
    """Concurrent multi-database lookup over compiled indexes.

    Indexes are immutable and shared; the mutable state — the LRU cache
    and the per-vendor health table — locks internally, so the engine is
    safe to query from many threads at once (the HTTP layer does exactly
    that).  Pass a :class:`repro.faults.FaultInjector` as ``injector``
    to wrap the indexes and cache in its deterministic fault gates; with
    ``injector=None`` (the default) the request path is untouched.

    The served snapshot set is a *generation* (``generation_id``,
    reported on ``/statusz``): :meth:`swap` atomically replaces it under
    live traffic, :meth:`close` stops any registered store watchers and
    refuses further swaps.
    """

    def __init__(
        self,
        indexes: Mapping[str, CompiledIndex],
        *,
        cache_size: int | None = DEFAULT_CACHE_SIZE,
        metrics: MetricsRegistry | None = None,
        city_range_km: float = DEFAULT_CITY_RANGE_KM,
        batch_threshold: int = DEFAULT_BATCH_THRESHOLD,
        max_workers: int = 4,
        policy: ResiliencePolicy | None = None,
        injector=None,
        plane=None,
        expected: Iterable[str] | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        generation_id: int = 0,
        generation_source: str = "boot",
    ):
        if batch_threshold < 1:
            raise ValueError(f"batch_threshold must be positive: {batch_threshold!r}")
        if max_workers < 1:
            raise ValueError(f"max_workers must be positive: {max_workers!r}")
        self._injector = injector
        self.attach_metrics(metrics)
        self.city_range_km = city_range_km
        self.batch_threshold = batch_threshold
        self.max_workers = max_workers
        self._policy = policy if policy is not None else DEFAULT_POLICY
        self._clock = clock
        self._sleep = sleep
        self._cache_size = cache_size
        # Generation lifecycle state: one swap at a time, counted, and
        # fenced off after close() so a late watcher poll cannot swap a
        # generation into a dead engine.
        self._swap_lock = threading.Lock()
        self._closed = False
        self._watchers: list = []
        self._swaps = 0
        self._rollbacks = 0
        self._gen = self._build_generation(
            indexes,
            plane,
            expected=expected,
            gen_id=generation_id,
            source=generation_source,
        )
        # Batch fan-out pool: created lazily on the first large batch and
        # reused for the engine's lifetime (thread startup per request is
        # exactly the orchestration cost this layer exists to avoid).
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    def _build_generation(
        self,
        indexes: Mapping[str, CompiledIndex],
        plane,
        *,
        expected: Iterable[str] | None,
        gen_id: int,
        source: str,
    ) -> _Generation:
        """Assemble one fully-initialised generation, ready to swap in.

        Everything mutable a lookup needs is built fresh here — cache,
        health table, plane gate — so activating the generation is one
        reference assignment with no shared state left behind.
        """
        if not indexes:
            raise ValueError("a serving engine needs at least one database index")
        indexes = dict(sorted(indexes.items()))
        injector = self._injector
        if injector is not None:
            indexes = injector.wrap_indexes(indexes)
        cache = LruCache(self._cache_size) if self._cache_size else None
        if injector is not None:
            cache = injector.wrap_cache(cache)
        missing = tuple(sorted(set(expected or ()) - set(indexes)))
        health = {
            name: _VendorHealth(self._policy.cooldown_s) for name in indexes
        }
        for name in missing:
            health[name] = _VendorHealth(
                self._policy.cooldown_s, status="missing"
            )
        if plane is not None:
            self._check_plane(plane, indexes, missing)
        # An armed injector gates faults inside the per-vendor probe
        # wrappers; the plane would route around them, so chaos engines
        # always run the live path (same spirit as the cache storms).
        plane_live = plane if injector is None else None
        return _Generation(
            gen_id=gen_id,
            source=source,
            indexes=indexes,
            cache=cache,
            plane=plane,
            plane_live=plane_live,
            health=health,
            missing=missing,
            activated_monotonic=self._clock(),
        )

    def _check_plane(
        self,
        plane,
        indexes: Mapping[str, CompiledIndex],
        missing: tuple[str, ...],
    ) -> None:
        """Refuse a plane whose compile-time parameters disagree with this
        engine — a mismatched plane would serve subtly different answers."""
        vendor_names = sorted((*indexes, *missing))
        if sorted(plane.names) != vendor_names:
            raise ValueError(
                f"answer plane covers vendors {sorted(plane.names)},"
                f" engine serves {vendor_names}"
            )
        if plane.city_range_km != self.city_range_km:
            raise ValueError(
                f"answer plane compiled with city_range_km="
                f"{plane.city_range_km}, engine uses {self.city_range_km}"
            )
        if plane.quorum_min != self._policy.quorum_min:
            raise ValueError(
                f"answer plane compiled with quorum_min={plane.quorum_min},"
                f" engine policy uses {self._policy.quorum_min}"
            )
        for name, index in indexes.items():
            intervals = getattr(index, "interval_count", None)
            expected_intervals = plane.vendor_intervals.get(name)
            if intervals is not None and intervals != expected_intervals:
                raise ValueError(
                    f"answer plane was compiled over {name} with"
                    f" {expected_intervals} intervals; the served index has"
                    f" {intervals} — recompile the plane with its snapshots"
                )

    # -- construction --------------------------------------------------------

    @classmethod
    def from_databases(
        cls, databases: Mapping[str, GeoDatabase], **kwargs
    ) -> "ServingEngine":
        """Compile every database and serve the compiled set."""
        return cls(
            {name: CompiledIndex.compile(db) for name, db in databases.items()},
            **kwargs,
        )

    @classmethod
    def from_scenario(cls, scenario, **kwargs) -> "ServingEngine":
        """Serve a built scenario's four vendor snapshots."""
        return cls.from_databases(scenario.databases, **kwargs)

    @classmethod
    def from_snapshot_dir(cls, directory, **kwargs) -> "ServingEngine":
        """Serve compiled snapshots written by ``repro compile``.

        ``expected=[names]`` pins the vendor set: vendors named there but
        absent on disk are served as statically quarantined (every
        answer flagged degraded) instead of silently dropped.
        """
        return cls(load_index_set(directory), **kwargs)

    # -- generation lifecycle ------------------------------------------------

    def swap(
        self,
        indexes: Mapping[str, CompiledIndex],
        plane=None,
        *,
        generation_id: int | None = None,
        source: str = "swap",
        rollback: bool = False,
    ) -> int:
        """Atomically replace the served snapshot set under live traffic.

        Builds a fresh :class:`_Generation` (new cache, new health
        table, plane handshake re-checked) and activates it with a
        single reference assignment: in-flight lookups finish on the old
        generation, the next lookup sees the new one, and no request can
        ever observe fields from both.  The candidate must serve exactly
        the engine's current vendor set — a generation that drops or
        renames a vendor is a publishing error, refused with
        ``ValueError`` before anything changes.

        ``rollback=True`` marks this swap as a restore (the store
        watcher re-activating a previous generation); it is counted in
        ``rollbacks`` and ``serve.generation_rollbacks`` alongside the
        swap itself.  Raises :class:`~repro.serve.errors.ServeError`
        after :meth:`close` — a dead engine must not accept a new
        generation.  Returns the new generation id.
        """
        with self._swap_lock:
            if self._closed:
                raise ServeError(
                    "engine is closed: refusing generation swap"
                )
            current = self._gen
            gen_id = (
                generation_id if generation_id is not None else current.gen_id + 1
            )
            incoming = set(indexes)
            expected = set(current.vendor_names())
            if incoming != expected:
                raise ValueError(
                    f"generation {gen_id} serves vendors {sorted(incoming)},"
                    f" engine serves {sorted(expected)} — a swap must keep"
                    f" the vendor set"
                )
            gen = self._build_generation(
                indexes, plane, expected=None, gen_id=gen_id, source=source
            )
            # The swap itself: one reference assignment.  Everything a
            # lookup reads hangs off this attribute, captured once per
            # request, so there is no torn state to observe.
            self._gen = gen
            self._swaps += 1
            if rollback:
                self._rollbacks += 1
        if self._metrics is not None:
            self._metrics.inc("serve.generation_swaps")
            if rollback:
                self._metrics.inc("serve.generation_rollbacks")
        return gen_id

    def note_rollback(self) -> None:
        """Count a rejected candidate generation (no swap happened).

        The store watcher calls this when validation refuses a published
        candidate and the serving generation stays in place — the
        rollback counter and ``serve.generation_rollbacks`` must reflect
        every restore *decision*, not only restores that re-loaded an
        older generation.
        """
        with self._swap_lock:
            self._rollbacks += 1
        if self._metrics is not None:
            self._metrics.inc("serve.generation_rollbacks")

    @property
    def generation_id(self) -> int:
        """The currently served generation's id."""
        return self._gen.gen_id

    @property
    def generation_age_s(self) -> float:
        """Seconds since the current generation was activated."""
        return max(0.0, self._clock() - self._gen.activated_monotonic)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran; swaps are refused from then on."""
        return self._closed

    def generation_info(self) -> dict[str, object]:
        """The staleness block ``/statusz`` serves: which generation is
        live, how old it is, and how often the engine has swapped or
        rolled back."""
        gen = self._gen
        return {
            "id": gen.gen_id,
            "source": gen.source,
            "activated_unix": round(gen.activated_unix, 3),
            "age_s": round(max(0.0, self._clock() - gen.activated_monotonic), 3),
            "swaps": self._swaps,
            "rollbacks": self._rollbacks,
        }

    def register_watcher(self, watcher) -> None:
        """Track a store watcher so :meth:`close` stops its thread.

        Anything with a ``stop()`` method qualifies; registration after
        close is refused for the same reason swaps are.
        """
        with self._swap_lock:
            if self._closed:
                raise ServeError(
                    "engine is closed: refusing to register a store watcher"
                )
            self._watchers.append(watcher)

    def canary_coverage(self, addresses: Sequence[int]) -> dict[str, int]:
        """Per-vendor count of ``addresses`` (integers) with coverage on
        the current generation.

        The store watcher's regression probe baseline: probes the raw
        indexes directly — no cache, no metrics, no outcome objects — so
        a validation pass never distorts the serving counters.
        """
        gen = self._gen
        return {
            name: sum(
                1 for addr in addresses if index.probe_answer(addr) is not None
            )
            for name, index in gen.indexes.items()
        }

    # -- observability -------------------------------------------------------

    def attach_metrics(self, metrics: MetricsRegistry | None) -> None:
        """Emit ``serve.*`` counters into ``metrics`` (``None`` detaches).

        An attached fault injector follows along, so its ``faults.*``
        counters land in the same registry ``/statusz`` snapshots.

        The plane hot path answers in ~1 µs, so it cannot afford two
        registry ``inc`` calls per request; instead the counters it
        feeds are pre-resolved here into multi-name
        :class:`~repro.obs.metrics.CounterCell` slots — one locked add
        per plane hit updates ``serve.lookups`` and ``plane.hits`` (and,
        for consensus hits, ``serve.consensus``) at once, keeping the
        counts exact for the hammer tests' reconciliation.
        """
        self._metrics = metrics
        if metrics is not None:
            self._cell_plane_hit = metrics.cell("serve.lookups", "plane.hits")
            self._cell_plane_consensus = metrics.cell(
                "serve.lookups", "serve.consensus", "plane.hits"
            )
        else:
            self._cell_plane_hit = None
            self._cell_plane_consensus = None
        if self._injector is not None:
            self._injector.attach_metrics(metrics)

    def cache_stats(self) -> dict[str, float] | None:
        """The LRU cache's counter snapshot (``None`` when uncached)."""
        cache = self._gen.cache
        return cache.stats() if cache is not None else None

    def plane_stats(self) -> dict[str, object] | None:
        """The attached answer plane's ``/statusz`` block (``None`` when
        no plane is attached).

        ``active`` is False while the plane is configured but bypassed —
        a fault injector is armed, or some vendor is currently degraded —
        so an operator can see at a glance whether traffic is riding the
        precomputed path or the live one.
        """
        gen = self._gen
        plane = gen.plane
        if plane is None:
            return None
        return {
            "active": gen.plane_live is not None and gen.healthy,
            **plane.stats(),
        }

    def health_snapshot(self) -> dict[str, dict[str, object]]:
        """Per-vendor circuit state for ``/statusz`` (sorted by vendor)."""
        gen = self._gen
        with gen.health_lock:
            return {
                name: health.snapshot()
                for name, health in sorted(gen.health.items())
            }

    @property
    def degraded(self) -> bool:
        """True while any served vendor is quarantined or missing."""
        gen = self._gen
        with gen.health_lock:
            return any(h.status != "healthy" for h in gen.health.values())

    def degraded_vendors(self) -> tuple[str, ...]:
        """The vendors currently not healthy, sorted — the enrichment
        drift detector's suppression signal, named individually so an
        operator can tell *which* database's alerts went quiet."""
        gen = self._gen
        with gen.health_lock:
            return tuple(
                sorted(
                    name
                    for name, health in gen.health.items()
                    if health.status != "healthy"
                )
            )

    # -- health bookkeeping --------------------------------------------------

    def _record_success(self, name: str, gen: _Generation | None = None) -> None:
        gen = gen if gen is not None else self._gen
        health = gen.health[name]
        if not health.consecutive_failures and not health.blocked_until:
            return  # steady healthy state: skip the lock entirely
        with gen.health_lock:
            health.status = "healthy"
            health.blocked_until = 0.0
            health.consecutive_failures = 0
            health.cooldown_s = self._policy.cooldown_s
            health.last_error = None
            gen.healthy = not gen.missing and all(
                h.status == "healthy" and not h.consecutive_failures
                for h in gen.health.values()
            )
        if self._metrics is not None:
            self._metrics.inc("serve.vendor_recoveries", vendor=name)

    def _record_failure(
        self, name: str, error: BaseException, gen: _Generation | None = None
    ) -> None:
        policy = self._policy
        gen = gen if gen is not None else self._gen
        quarantine = False
        with gen.health_lock:
            gen.healthy = False  # any failure streak bypasses the plane
            health = gen.health[name]
            health.consecutive_failures += 1
            health.last_error = f"{error.__class__.__name__}: {error}"
            rearmed = health.status == "quarantined"  # failed half-open probe
            if rearmed or health.consecutive_failures >= policy.quarantine_threshold:
                quarantine = True
                health.status = "quarantined"
                health.blocked_until = self._clock() + health.cooldown_s
                health.quarantines += 1
                health.cooldown_s = min(
                    health.cooldown_s * 2, policy.cooldown_max_s
                )
        if self._metrics is not None:
            self._metrics.inc("serve.vendor_errors", vendor=name)
            if quarantine:
                self._metrics.inc("serve.quarantines", vendor=name)

    # -- lookup --------------------------------------------------------------

    def database_names(self) -> tuple[str, ...]:
        return tuple(self._gen.indexes)

    def vendor_names(self) -> tuple[str, ...]:
        """Served plus expected-but-missing vendors, in answer order."""
        return self._gen.vendor_names()

    def _probe_vendor(
        self,
        gen: _Generation,
        name: str,
        index,
        addr: int,
        deadline: float | None,
    ) -> tuple[bool, IndexAnswer | None | VendorError]:
        """One vendor's answer with retries: ``(ok, answer-or-error)``."""
        policy = self._policy
        # A half-open probe (quarantined vendor past its cooldown) gets
        # exactly one attempt: it either proves recovery or re-arms the
        # quarantine with a doubled cooldown.
        attempts = 1 if gen.health[name].blocked_until else 1 + policy.retries
        last_error: BaseException | None = None
        for attempt in range(attempts):
            if attempt:
                if self._metrics is not None:
                    self._metrics.inc("serve.retries", vendor=name)
                pause = policy.retry_backoff_s * (2 ** (attempt - 1))
                if pause:
                    if deadline is not None and self._clock() + pause >= deadline:
                        break  # a backoff past the deadline helps nobody
                    self._sleep(pause)
            try:
                answer = index.probe_answer(addr)
            except Exception as exc:  # any vendor failure degrades, never leaks
                last_error = exc
                if self._metrics is not None:
                    self._metrics.inc(
                        "serve.vendor_exceptions",
                        vendor=name,
                        error=exc.__class__.__name__,
                    )
                continue
            self._record_success(name, gen)
            return True, answer
        assert last_error is not None
        self._record_failure(name, last_error, gen)
        return False, VendorError(name, last_error)

    def _resolve(
        self, gen: _Generation, parsed: IPv4Address, addr: int, trace=None
    ) -> LookupOutcome:
        clock = self._clock
        policy = self._policy
        deadline = (
            clock() + policy.deadline_ms / 1000.0
            if policy.deadline_ms is not None
            else None
        )
        resolve_span = -1
        if trace is not None:
            resolve_span = trace.begin(
                "resolve", address=str(parsed), generation=gen.gen_id
            )
        answers: dict[str, IndexAnswer | None] = {}
        errors: dict[str, str] = {}
        quarantined: list[str] = list(gen.missing)
        skipped: list[str] = []
        deadline_exceeded = False
        for name, index in gen.indexes.items():
            blocked_until = gen.health[name].blocked_until
            if blocked_until and clock() < blocked_until:
                quarantined.append(name)
                continue
            if deadline is not None and clock() >= deadline:
                deadline_exceeded = True
                skipped.append(name)
                continue
            if trace is not None:
                started = time.perf_counter()
                ok, value = self._probe_vendor(gen, name, index, addr, deadline)
                trace.add(
                    f"probe:{name}",
                    (time.perf_counter() - started) * 1000.0,
                    parent=resolve_span,
                    ok=ok,
                )
            else:
                ok, value = self._probe_vendor(gen, name, index, addr, deadline)
            if ok:
                answers[name] = value
            else:
                errors[name] = str(value)
        outcome = LookupOutcome(
            address=parsed,
            answers=answers,
            errors=errors,
            quarantined=tuple(quarantined),
            skipped=tuple(skipped),
            deadline_exceeded=deadline_exceeded,
        )
        if trace is not None:
            trace.end(
                resolve_span,
                degraded=outcome.degraded,
                quarantined=list(outcome.quarantined),
                skipped=list(outcome.skipped),
            )
            trace.note_path("degraded" if outcome.degraded else "live")
        if self._metrics is not None:
            if deadline_exceeded:
                self._metrics.inc("serve.deadline_exceeded")
            if outcome.degraded:
                self._metrics.inc("serve.degraded_lookups")
        return outcome

    def lookup_outcome(
        self, address: IPv4Address | str | int, *, trace=None
    ) -> LookupOutcome:
        """Resolve one address against every vendor, fail-closed.

        Returns a :class:`LookupOutcome`; raises the typed
        :class:`~repro.serve.errors.NoHealthyVendors` when not a single
        vendor could answer.  Only non-degraded outcomes enter the
        cache, so a cached answer is always a fully-healthy one.  With a
        healthy answer plane attached the outcome comes straight from
        the precomputed cell — one bisect, no vendor probes, no cache
        traffic.

        The generation reference is captured exactly once, here: every
        index probe, cache access, and health check below runs against
        that one generation even if a swap lands mid-request.

        ``trace`` (a :class:`~repro.obs.reqtrace.RequestTrace`) records
        span rows and the path attribution (``plane``/``cache``/
        ``live``/``degraded``) the HTTP layer surfaces on ``/tracez``;
        the default ``None`` keeps the hot path untraced.
        """
        parsed = parse_address(address)
        addr = int(parsed)
        metrics = self._metrics
        gen = self._gen
        plane = gen.plane_live
        if plane is not None and gen.healthy:
            # The precomputed path: one cell.add() feeds serve.lookups
            # *and* plane.hits — a second registry inc here would cost
            # more than the lookup itself.
            cell = self._cell_plane_hit
            if cell is not None:
                cell.add()
            if trace is not None:
                started = time.perf_counter()
                answer, interval = plane.locate(addr)
                trace.add(
                    "plane.probe",
                    (time.perf_counter() - started) * 1000.0,
                    interval=interval,
                    generation=gen.gen_id,
                )
                trace.note_path("plane")
                return answer.outcome_at(parsed)
            return plane.probe(addr).outcome_at(parsed)
        if metrics is not None:
            metrics.inc("serve.lookups")
            if plane is not None:
                metrics.inc("plane.fallbacks")
        cache = gen.cache
        if cache is not None:
            try:
                outcome = cache.get(addr)
            except KeyError:
                pass
            else:
                if metrics is not None:
                    metrics.inc("serve.cache_hits")
                if trace is not None:
                    trace.add("cache.hit", 0.0, address=str(parsed))
                    trace.note_path("cache")
                return outcome
            if metrics is not None:
                metrics.inc("serve.cache_misses")
        outcome = self._resolve(gen, parsed, addr, trace)
        if not outcome.answers:
            raise NoHealthyVendors(
                f"no healthy vendor could answer {parsed}:"
                f" {', '.join(outcome.unavailable()) or 'no vendors'}"
            )
        if cache is not None and not outcome.degraded:
            cache.put(addr, outcome)
        return outcome

    def lookup_plane(self, address: IPv4Address | str | int):
        """The precomputed :class:`~repro.serve.plane.PlaneAnswer` for
        ``address``, or ``None`` when the plane cannot answer.

        This is the raw healthy hot path — one bisect plus a list read,
        with no outcome or consensus objects constructed per request.
        ``None`` means no plane is attached, a fault injector is armed,
        or some vendor is currently degraded; the caller falls back to
        :meth:`lookup_outcome` / :meth:`consensus`, which themselves
        consult the plane when possible.
        """
        gen = self._gen
        plane = gen.plane_live
        if plane is None or not gen.healthy:
            return None
        return plane.probe(int(parse_address(address)))

    def lookup(
        self, address: IPv4Address | str | int
    ) -> dict[str, IndexAnswer | None]:
        """Every database's answer (matched prefix + record) for one address.

        The legacy flat shape: one key per served vendor.  A degraded
        vendor's value is ``None`` here — callers that must distinguish
        "no coverage" from "unavailable" use :meth:`lookup_outcome`.
        """
        return self._flatten(self.lookup_outcome(address))

    def _flatten(self, outcome: LookupOutcome) -> dict[str, IndexAnswer | None]:
        answers = outcome.answers
        return {name: answers.get(name) for name in self.vendor_names()}

    def outcome_batch(
        self,
        addresses: Sequence[IPv4Address | str | int] | Iterable,
        *,
        trace=None,
    ) -> list[LookupOutcome | ServeError]:
        """Outcomes for many addresses, in input order.

        Per-address serving errors come back as values (the typed error
        object), not raises — one dead address space must not fail a
        batch.  Small batches run inline; batches of at least
        ``batch_threshold`` addresses fan out in contiguous chunks over
        one persistent thread pool (created lazily on the first large
        batch and reused — paying thread startup per request was
        measurable under sustained load; the index probe releases no
        locks worth contending on, and chunking keeps per-task overhead
        negligible).
        """
        addresses = list(addresses)
        metrics = self._metrics
        if metrics is not None:
            metrics.inc("serve.batch_lookups")
            metrics.observe("serve.batch_size", len(addresses))
        batch_span = -1
        if trace is not None:
            batch_span = trace.begin("batch", size=len(addresses))

        def one(address) -> LookupOutcome | ServeError:
            try:
                return self.lookup_outcome(address, trace=trace)
            except ServeError as exc:
                return exc

        if len(addresses) < self.batch_threshold:
            results = [one(address) for address in addresses]
        else:
            chunk = -(-len(addresses) // self.max_workers)  # ceil division
            chunks = [
                addresses[i : i + chunk] for i in range(0, len(addresses), chunk)
            ]
            parts = self._executor().map(lambda part: [one(a) for a in part], chunks)
            results = [outcome for part in parts for outcome in part]
        if trace is not None:
            trace.end(batch_span)
        return results

    def _executor(self) -> ThreadPoolExecutor:
        """The lazily-created persistent batch pool (double-checked)."""
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = self._pool = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="repro-serve-batch",
                    )
        return pool

    def close(self) -> None:
        """Stop store watchers, refuse future swaps, shut the batch pool.

        Idempotent; the HTTP server calls this from its shutdown path.
        Lookups still work afterwards (a later large batch simply
        recreates the pool) — but the *generation* is frozen: swaps and
        watcher registration raise, and every registered watcher thread
        is stopped and joined here, so no reload thread outlives the
        engine it was feeding.
        """
        with self._swap_lock:
            self._closed = True
            watchers, self._watchers = self._watchers, []
        for watcher in watchers:
            watcher.stop()
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def lookup_batch(
        self, addresses: Sequence[IPv4Address | str | int] | Iterable
    ) -> list[dict[str, IndexAnswer | None]]:
        """Flat answers for many addresses, in input order (legacy shape).

        A per-address :class:`ServeError` is raised only after the whole
        batch has drained, so the batch metrics that were already counted
        (``serve.batch_lookups``, ``serve.batch_size``) always describe
        work that actually ran; batch callers that want per-item errors
        use :meth:`outcome_batch`.
        """
        results = []
        error: ServeError | None = None
        for outcome in self.outcome_batch(addresses):
            if isinstance(outcome, ServeError):
                if error is None:
                    error = outcome
                continue
            results.append(self._flatten(outcome))
        if error is not None:
            raise error
        return results

    def consensus_of(self, outcome: LookupOutcome) -> ConsensusAnswer:
        """Majority answer plus disagreement/degradation flags for an
        already-resolved outcome (no second lookup pass)."""
        if self._metrics is not None:
            self._metrics.inc("serve.consensus")
        records = [
            answer.record
            for answer in outcome.answers.values()
            if answer is not None
        ]
        vote = majority_of_records(
            outcome.address, records, city_range_km=self.city_range_km
        )
        countries = {r.country for r in records if r.country is not None}
        coordinates = [
            r.location for r in records if r.has_city and r.has_coordinates
        ]
        city_disagreement = any(
            a.distance_km(b) > self.city_range_km
            for a, b in combinations(coordinates, 2)
        )
        return ConsensusAnswer(
            address=outcome.address,
            country=vote.country,
            country_votes=vote.country_votes,
            location=vote.location,
            location_votes=vote.location_votes,
            voters=vote.voters,
            country_disagreement=len(countries) > 1,
            city_disagreement=city_disagreement,
            degraded=outcome.degraded,
            quorum=vote.voters >= self._policy.quorum_min,
        )

    def consensus(self, address: IPv4Address | str | int) -> ConsensusAnswer:
        """Majority answer plus cross-database disagreement flags.

        On the healthy plane path the vote was already tallied at compile
        time, so this is a bisect and a field copy rather than a fresh
        majority computation per request.
        """
        gen = self._gen
        plane = gen.plane_live
        if plane is not None and gen.healthy:
            parsed = parse_address(address)
            cell = self._cell_plane_consensus
            if cell is not None:
                cell.add()
            return plane.probe(int(parsed)).consensus_at(parsed)
        return self.consensus_of(self.lookup_outcome(address))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        gen = self._gen
        return (
            f"ServingEngine({', '.join(gen.indexes)}; gen={gen.gen_id};"
            f" cache={'off' if gen.cache is None else gen.cache.capacity};"
            f" plane={'off' if gen.plane is None else gen.plane.cell_count})"
        )
