"""A bounded LRU cache for lookup answers.

Router-interface traffic is heavily skewed — a serving fleet sees the
same interfaces over and over — so a small address-keyed cache absorbs
most of the probe volume.  The cache is deliberately minimal: a bounded
:class:`~collections.OrderedDict` behind a lock (the serving engine is
queried from HTTP handler threads and batch-executor threads
concurrently), with hit/miss counters the ``/statusz`` endpoint surfaces.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

__all__ = ["LruCache"]

_MISSING = object()


class LruCache:
    """Bounded least-recently-used mapping with hit/miss accounting.

    ``None`` is a legitimate cached value (an address with no coverage is
    still a final answer), so :meth:`get` distinguishes "cached None" from
    "absent" by raising :class:`KeyError` on a miss.
    """

    def __init__(self, capacity: int):
        if not isinstance(capacity, int) or capacity < 1:
            raise ValueError(f"cache capacity must be a positive integer: {capacity!r}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable) -> Any:
        """The cached value for ``key``; raises ``KeyError`` on a miss."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                raise KeyError(key)
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the oldest entry if full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            if len(self._data) >= self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1
            self._data[key] = value

    def clear(self) -> None:
        """Drop all entries (counters are preserved)."""
        with self._lock:
            self._data.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        """JSON-ready counter snapshot for ``/statusz``."""
        return {
            "capacity": self.capacity,
            "size": len(self._data),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 6),
        }

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"LruCache({len(self._data)}/{self.capacity}, hit_rate={self.hit_rate:.2f})"
