"""The compiled lookup index: longest-prefix match as one bisect probe.

:class:`GeoDatabase` answers a lookup by walking per-prefix-length hash
tables — up to 33 dictionary probes, each with a Python-level shift and
mask.  That is fine for an analysis pipeline but it *is* the hot path of
a serving system, executed once per request.  :class:`CompiledIndex`
flattens a database into the serving-friendly shape: the 2^32 address
space is partitioned into disjoint, sorted integer intervals, each
answered by the entry that longest-prefix-matches every address inside
it.  A lookup is then a single :func:`bisect.bisect_right` (binary
search in C) plus one list indexing — no per-length walk at all.

Compilation runs once per database — a single sweep over the sorted
entry list with a stack of enclosing prefixes, O(N) after the sort the
database already maintains — and the result is immutable, making it
safe to share across serving threads and to persist as a snapshot
(:mod:`repro.serve.snapshot`).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.geodb.database import DatabaseEntry, GeoDatabase
from repro.geodb.intervals import ADDRESS_SPACE_END as _ADDRESS_SPACE_END
from repro.geodb.intervals import sweep_entry_intervals, sweep_sorted_entries
from repro.geodb.record import GeoRecord
from repro.net.ip import IPv4Address, parse_address

__all__ = ["CompiledIndex", "IndexAnswer", "sweep_entry_intervals"]


def _number_intervals(
    interval_entries: Sequence[DatabaseEntry | None],
) -> tuple[list[int], tuple[tuple[str, int], ...], tuple[GeoRecord, ...]]:
    """Number a sweep's answering entries in address order.

    Shared by :meth:`CompiledIndex.compile` and
    :meth:`CompiledIndex.compile_entries` so both paths produce the same
    ``(answers, entries, records)`` tables for the same sweep — entry ids
    by first appearance, records deduplicated by value.
    """
    record_ids: dict[GeoRecord, int] = {}
    records: list[GeoRecord] = []
    entry_ids: dict[int, int] = {}  # id(entry) → entry number
    entries: list[tuple[str, int]] = []

    answers: list[int] = []
    for entry in interval_entries:
        if entry is None:
            answer = -1
        else:
            answer = entry_ids.get(id(entry))
            if answer is None:
                record_id = record_ids.get(entry.record)
                if record_id is None:
                    record_id = record_ids[entry.record] = len(records)
                    records.append(entry.record)
                answer = entry_ids[id(entry)] = len(entries)
                entries.append((str(entry.prefix), record_id))
        answers.append(answer)
    return answers, tuple(entries), tuple(records)


@dataclass(frozen=True, slots=True)
class IndexAnswer:
    """One resolved lookup: the matched prefix and its record.

    The prefix is kept in CIDR text form — *Lost in the Prefix* argues
    consumers need the per-prefix answer surface, and the HTTP layer
    reports it verbatim.
    """

    prefix: str
    record: GeoRecord


class CompiledIndex:
    """A :class:`GeoDatabase` flattened into disjoint sorted intervals.

    Internals (all immutable after construction):

    * ``_starts`` — interval start addresses, strictly increasing,
      beginning at 0; interval *i* covers ``[_starts[i], _starts[i+1])``
      (the last interval ends at 2^32);
    * ``_answers`` — per-interval entry id into ``_entries`` (−1 = no
      coverage); adjacent intervals never share an answer (merged at
      compile time);
    * ``_entries`` — ``(prefix_cidr, record_id)`` pairs, one per original
      database entry that actually answers some interval;
    * ``_records`` — deduplicated :class:`GeoRecord` objects.

    The hot path deliberately avoids :mod:`array` storage: ``bisect`` over
    an ``array`` boxes a fresh ``int`` per comparison, which measurably
    loses to the hash-table walk — plain lists keep the probe in C all the
    way.  (Snapshots still pack to fixed-width integers on disk.)

    Construct via :meth:`compile` (from a database) or :meth:`from_parts`
    (from a loaded snapshot).
    """

    __slots__ = (
        "name",
        "source_entries",
        "_starts",
        "_answers",
        "_entries",
        "_records",
        "_interval_records",
        "_interval_answers",
        "probe",
        "probe_answer",
    )

    def __init__(
        self,
        name: str,
        source_entries: int,
        starts: Sequence[int],
        answers: Sequence[int],
        entries: Sequence[tuple[str, int]],
        records: Sequence[GeoRecord],
    ):
        if len(starts) != len(answers):
            raise ValueError("starts and answers must be parallel arrays")
        if not starts or starts[0] != 0:
            raise ValueError("interval table must start at address 0")
        self.name = name
        self.source_entries = source_entries
        self._starts = list(starts)
        self._answers = list(answers)
        self._entries = tuple((str(prefix), int(rid)) for prefix, rid in entries)
        self._records = tuple(records)
        # Pre-resolved per-interval answers: a probe is then exactly one
        # bisect plus one list indexing, no id→entry→record hops.
        self._interval_records: list[GeoRecord | None] = [
            self._records[self._entries[a][1]] if a >= 0 else None
            for a in self._answers
        ]
        self._interval_answers: list[IndexAnswer | None] = [
            IndexAnswer(prefix=self._entries[a][0], record=self._records[self._entries[a][1]])
            if a >= 0
            else None
            for a in self._answers
        ]

        # The probes are bound as closures tuned for per-request cost:
        #
        # * state rides in *positional* defaults — filled from the cheap
        #   ``__defaults__`` fast path, where keyword-only defaults cost a
        #   dict lookup each per call, and ``self.`` attribute loads cost
        #   even more;
        # * the per-interval lists are shifted one slot so the bisect
        #   result indexes directly — ``bisect_right`` always returns at
        #   least 1 here because ``_starts[0] == 0`` never exceeds a
        #   valid address.
        #
        # Don't pass the defaults; they exist only to pre-bind the state.
        shifted_records = [None, *self._interval_records]
        shifted_answers = [None, *self._interval_answers]

        def probe(
            addr: int,
            _bisect=bisect_right,
            _starts=self._starts,
            _records=shifted_records,
        ) -> GeoRecord | None:
            """Raw record lookup on a pre-validated address integer."""
            return _records[_bisect(_starts, addr)]

        def probe_answer(
            addr: int,
            _bisect=bisect_right,
            _starts=self._starts,
            _answers=shifted_answers,
        ) -> IndexAnswer | None:
            """Raw prefix+record lookup on a pre-validated address integer."""
            return _answers[_bisect(_starts, addr)]

        self.probe = probe
        self.probe_answer = probe_answer

    # -- construction --------------------------------------------------------

    @classmethod
    def compile(cls, database: GeoDatabase) -> "CompiledIndex":
        """Flatten ``database`` into the interval form.

        The partition comes from :func:`sweep_entry_intervals`; a second
        pass numbers the answering entries in address order, so the
        output is identical to probing the original engine at every
        prefix boundary.
        """
        starts, interval_entries = sweep_entry_intervals(database)
        answers, entries, records = _number_intervals(interval_entries)
        return cls(
            name=database.name,
            source_entries=len(database),
            starts=starts,
            answers=answers,
            entries=entries,
            records=records,
        )

    @classmethod
    def compile_entries(
        cls, name: str, entries_in_order: Iterable[DatabaseEntry]
    ) -> "CompiledIndex":
        """Flatten a *stream* of sorted entries into the interval form.

        The scale tier's compile path: the entries never become a
        :class:`GeoDatabase` (no per-length hash tables, no entry tuple)
        — they flow from a streaming generator through the interval
        sweep one at a time, and only the compiled interval arrays
        materialize.  Given the entries a database would hold, in the
        ``(network_address, prefixlen)`` order :meth:`GeoDatabase.entries`
        maintains, the result is identical to ``compile(GeoDatabase(name,
        entries))`` — proven byte-identical snapshot-for-snapshot in the
        equivalence tests.  Out-of-order input is detected and refused
        (a silent mis-sweep would mis-answer the whole space).
        """
        count = 0

        def ordered() -> Iterator[DatabaseEntry]:
            nonlocal count
            previous = (-1, -1)
            for entry in entries_in_order:
                key = (int(entry.prefix.network_address), entry.prefix.prefixlen)
                if key < previous:
                    raise ValueError(
                        f"entry stream out of order at {entry.prefix}"
                        f" (start {key[0]:#x} after {previous[0]:#x})"
                    )
                previous = key
                count += 1
                yield entry

        starts, interval_entries = sweep_sorted_entries(ordered())
        answers, entries, records = _number_intervals(interval_entries)
        return cls(
            name=name,
            source_entries=count,
            starts=starts,
            answers=answers,
            entries=entries,
            records=records,
        )

    @classmethod
    def from_parts(
        cls,
        name: str,
        source_entries: int,
        starts: Sequence[int],
        answers: Sequence[int],
        entries: Sequence[tuple[str, int]],
        records: Sequence[GeoRecord],
    ) -> "CompiledIndex":
        """Rebuild an index from snapshot components (validating shape)."""
        return cls(
            name=name,
            source_entries=source_entries,
            starts=starts,
            answers=answers,
            entries=entries,
            records=records,
        )

    # -- lookup --------------------------------------------------------------

    def lookup(self, address: IPv4Address | str | int) -> GeoRecord | None:
        """The location record for ``address``, or ``None`` (no coverage).

        Signature- and answer-compatible with :meth:`GeoDatabase.lookup`,
        so index mappings drop into code written against databases (the
        consensus logic reuses :func:`repro.core.majority.majority_location`
        this way).
        """
        return self.probe(int(parse_address(address)))

    def lookup_answer(self, address: IPv4Address | str | int) -> IndexAnswer | None:
        """The matched prefix *and* record, or ``None`` (no coverage)."""
        return self.probe_answer(int(parse_address(address)))

    # -- inspection ----------------------------------------------------------

    @property
    def interval_count(self) -> int:
        return len(self._starts)

    def intervals(self) -> Iterator[tuple[int, int, int]]:
        """``(start, end, answer_id)`` triples covering the address space."""
        for i, start in enumerate(self._starts):
            end = self._starts[i + 1] if i + 1 < len(self._starts) else _ADDRESS_SPACE_END
            yield start, end, self._answers[i]

    def parts(
        self,
    ) -> tuple[list[int], list[int], tuple[tuple[str, int], ...], tuple[GeoRecord, ...]]:
        """The snapshot-serialisable components (treat as read-only)."""
        return self._starts, self._answers, self._entries, self._records

    def __len__(self) -> int:
        return self.interval_count

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"CompiledIndex({self.name!r}, {self.interval_count} intervals"
            f" from {self.source_entries} entries)"
        )
