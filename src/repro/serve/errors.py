"""Typed failure modes of the serving layer.

The fail-closed contract — *a correct answer, a flagged degraded
answer, or a typed error, never an unflagged wrong answer* — needs the
"typed error" leg to actually be typed.  Everything the serving layer
refuses to do is an instance of :class:`ServeError`:

* :class:`~repro.serve.snapshot.SnapshotError` — a snapshot file could
  not be written, read, or trusted (load-time faults land here);
* :class:`VendorError` — one vendor backend failed a request even after
  retries (the engine quarantines the vendor and degrades the answer;
  this type surfaces in per-vendor error reports, not as a raise);
* :class:`NoHealthyVendors` — every vendor is failed or quarantined, so
  there is no honest answer to give (the HTTP layer maps this to 503).
"""

from __future__ import annotations

__all__ = ["NoHealthyVendors", "ServeError", "VendorError"]


class ServeError(RuntimeError):
    """Base for every typed serving-layer failure."""


class VendorError(ServeError):
    """One vendor backend failed a lookup (after retries)."""

    def __init__(self, vendor: str, cause: BaseException):
        super().__init__(f"{vendor}: {cause.__class__.__name__}: {cause}")
        self.vendor = vendor
        self.cause = cause


class NoHealthyVendors(ServeError):
    """No vendor could answer: all failed, quarantined, or missing."""
