"""The serving layer: compiled indexes, snapshots, caching, and HTTP.

The analysis pipeline asks "how accurate are these databases?"; this
package asks "how do you *serve* them?" — the ROADMAP's production
north star.  Six pieces:

* :mod:`repro.serve.index` — :class:`CompiledIndex`, the database
  flattened into disjoint sorted intervals answered by one ``bisect``
  probe (replacing the per-prefix-length hash-table walk on the hot
  path);
* :mod:`repro.serve.plane` — :class:`AnswerPlane`, every vendor's
  intervals merged into one cross-vendor partition with the per-vendor
  answers *and* the §5.1 consensus precomputed per interval at compile
  time (``.rgpl`` files beside the ``.rgix`` set); the engine's healthy
  path becomes one bisect plus array reads and falls back to the live
  resolve path the moment any vendor degrades;
* :mod:`repro.serve.snapshot` — versioned, checksummed persistence
  (``repro compile`` writes ``*.rgix`` files a server loads at boot;
  header and payload are both digest-protected, so corrupt bytes raise
  :class:`SnapshotError` rather than serving garbage);
* :mod:`repro.serve.cache` — a bounded, thread-safe LRU in front of the
  indexes, with hit/miss accounting;
* :mod:`repro.serve.engine` / :mod:`repro.serve.http` —
  :class:`ServingEngine` (single, batch, and consensus lookups across
  all vendors) behind a stdlib JSON HTTP API (``repro serve``) that
  reports ``serve.*`` metrics on ``/statusz``;
* :mod:`repro.serve.errors` — the typed failure surface
  (:class:`ServeError` and friends) behind the fail-closed contract:
  vendors that fail are quarantined per :class:`ResiliencePolicy`,
  every :class:`LookupOutcome` labels its own degradation, and the
  fault matrix in :mod:`repro.faults` proves it;
* :mod:`repro.serve.store` — the snapshot lifecycle plane:
  :class:`SnapshotStore` (versioned, manifest-digested generations on
  disk, atomic publish and ``CURRENT`` pointer) and :class:`StoreWatcher`
  (validate → canary-probe → hot swap into a running engine, with
  automatic rollback on any failure), so databases refresh under live
  traffic without a restart.
"""

from repro.serve.cache import LruCache
from repro.serve.engine import (
    ConsensusAnswer,
    LookupOutcome,
    ResiliencePolicy,
    ServingEngine,
)
from repro.serve.errors import NoHealthyVendors, ServeError, VendorError
from repro.serve.http import GeoServer
from repro.serve.index import CompiledIndex, IndexAnswer
from repro.serve.plane import (
    PLANE_SUFFIX,
    AnswerPlane,
    PlaneAnswer,
    compile_plane,
    load_plane,
    save_plane,
)
from repro.serve.snapshot import (
    SNAPSHOT_SUFFIX,
    SnapshotError,
    load_index,
    load_index_set,
    save_index,
    save_index_set,
)
from repro.serve.store import (
    GenerationRecord,
    SnapshotStore,
    StoreError,
    StoreWatcher,
)

__all__ = [
    "AnswerPlane",
    "CompiledIndex",
    "ConsensusAnswer",
    "GenerationRecord",
    "GeoServer",
    "IndexAnswer",
    "LookupOutcome",
    "LruCache",
    "NoHealthyVendors",
    "PLANE_SUFFIX",
    "PlaneAnswer",
    "ResiliencePolicy",
    "SNAPSHOT_SUFFIX",
    "ServeError",
    "ServingEngine",
    "SnapshotError",
    "SnapshotStore",
    "StoreError",
    "StoreWatcher",
    "VendorError",
    "compile_plane",
    "load_index",
    "load_index_set",
    "load_plane",
    "save_index",
    "save_index_set",
    "save_plane",
]
