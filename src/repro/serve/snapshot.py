"""Versioned, checksummed persistence for compiled indexes.

A production geolocation service does not rebuild its database on every
boot — it loads a versioned snapshot compiled offline (Gouel et al.'s
longitudinal study works entirely in terms of such daily snapshots).
This module gives :class:`~repro.serve.index.CompiledIndex` that shape
with a stdlib-only container:

``RGIX`` file layout, format version 2 (all integers little-endian)::

    bytes 0..3      magic  b"RGIX"
    bytes 4..7      header length H (uint32)
    bytes 8..39     SHA-256 digest of the header (raw 32 bytes)
    bytes 40..40+H  JSON header: format version, database name, counts,
                    payload byte length, SHA-256 checksum of the payload
    payload         starts  (intervals × uint32, packed)
                    answers (intervals × int32, packed)
                    JSON tail: entries [[prefix, record_id], …] and
                    records [[country, region, city, lat, lon, source], …]

Loading verifies the magic, the header digest, the format version, the
payload checksum, and (when the caller names one) the database — with
the digest covering the header, *every* corrupt byte in the file is
caught, including flips inside the counts or the database name that
version 1 would have trusted.  Every mismatch raises
:class:`SnapshotError` (a :class:`~repro.serve.errors.ServeError`) with
a message that says which file failed and why — never a bare
``struct.error`` and never a half-loaded index — because a serving
fleet loading a corrupt or mislabeled snapshot must refuse loudly, not
serve wrong answers quietly.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import struct
from typing import Mapping

from repro.geodb.record import GeoRecord, LocationSource
from repro.serve.errors import ServeError
from repro.serve.index import CompiledIndex

__all__ = [
    "SNAPSHOT_SUFFIX",
    "SnapshotError",
    "load_index",
    "load_index_set",
    "save_index",
    "save_index_set",
]

_MAGIC = b"RGIX"
_FORMAT_VERSION = 2
_HEADER_DIGEST_BYTES = 32
_PAYLOAD_OFFSET = 8 + _HEADER_DIGEST_BYTES  # magic + header length + digest

#: File extension for compiled-index snapshots (``NetAcuity.rgix``).
SNAPSHOT_SUFFIX = ".rgix"


class SnapshotError(ServeError):
    """A snapshot file could not be written, read, or trusted."""


def _label_generation(exc: SnapshotError, generation: int | None):
    """Re-raise ``exc`` prefixed with the generation being loaded.

    The store's rollback log must say *which* published generation a
    corrupt file belonged to — "generation 7: NetAcuity.rgix failed
    checksum verification" is actionable; the bare filename of a staging
    directory is not.
    """
    if generation is None:
        raise exc
    raise SnapshotError(f"generation {generation}: {exc}") from exc


def _record_to_row(record: GeoRecord) -> list:
    source = record.source.value if record.source is not None else None
    return [
        record.country,
        record.region,
        record.city,
        record.latitude,
        record.longitude,
        source,
    ]


def _record_from_row(row: list) -> GeoRecord:
    country, region, city, latitude, longitude, source = row
    return GeoRecord(
        country=country,
        region=region,
        city=city,
        latitude=latitude,
        longitude=longitude,
        source=LocationSource(source) if source is not None else None,
    )


def _pack_payload(index: CompiledIndex) -> bytes:
    starts, answers, entries, records = index.parts()
    count = len(starts)
    tail = json.dumps(
        {
            "entries": [[prefix, record_id] for prefix, record_id in entries],
            "records": [_record_to_row(record) for record in records],
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    return b"".join(
        (
            struct.pack(f"<{count}I", *starts),
            struct.pack(f"<{count}i", *answers),
            tail,
        )
    )


def save_index(index: CompiledIndex, path: str | pathlib.Path) -> pathlib.Path:
    """Write ``index`` as one snapshot file and return its path."""
    path = pathlib.Path(path)
    payload = _pack_payload(index)
    header = json.dumps(
        {
            "format": "repro-compiled-index",
            "version": _FORMAT_VERSION,
            "database": index.name,
            "source_entries": index.source_entries,
            "intervals": index.interval_count,
            "payload_bytes": len(payload),
            "checksum_sha256": hashlib.sha256(payload).hexdigest(),
        },
        separators=(",", ":"),
        sort_keys=True,
    ).encode("utf-8")
    try:
        with open(path, "wb") as handle:
            handle.write(_MAGIC)
            handle.write(struct.pack("<I", len(header)))
            handle.write(hashlib.sha256(header).digest())
            handle.write(header)
            handle.write(payload)
    except OSError as exc:
        raise SnapshotError(f"cannot write snapshot {path}: {exc}") from exc
    return path


def load_index(
    path: str | pathlib.Path,
    *,
    expect_name: str | None = None,
    generation: int | None = None,
) -> CompiledIndex:
    """Load and verify one snapshot file.

    ``expect_name`` pins the database the caller intends to serve; a
    snapshot for any other database is rejected even if internally valid.
    ``generation`` labels every failure with the snapshot-store
    generation being loaded (``generation 7: <file> failed …``), so a
    rollback log is actionable on its own.
    """
    try:
        return _load_index(path, expect_name=expect_name)
    except SnapshotError as exc:
        _label_generation(exc, generation)


def _load_index(
    path: str | pathlib.Path, *, expect_name: str | None = None
) -> CompiledIndex:
    path = pathlib.Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc

    if len(blob) < 8 or blob[:4] != _MAGIC:
        raise SnapshotError(f"{path} is not a compiled-index snapshot (bad magic)")
    (header_len,) = struct.unpack_from("<I", blob, 4)
    if len(blob) < _PAYLOAD_OFFSET + header_len:
        raise SnapshotError(f"{path} is truncated (header cut short)")
    stored_digest = blob[8:_PAYLOAD_OFFSET]
    header_bytes = blob[_PAYLOAD_OFFSET : _PAYLOAD_OFFSET + header_len]
    if hashlib.sha256(header_bytes).digest() != stored_digest:
        raise SnapshotError(
            f"{path} failed header checksum verification (corrupt header,"
            f" corrupt digest, or a pre-v{_FORMAT_VERSION} snapshot —"
            f" recompile with `repro compile`)"
        )
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"{path} has an unreadable header: {exc}") from exc

    version = header.get("version")
    if version != _FORMAT_VERSION:
        raise SnapshotError(
            f"{path} uses snapshot format version {version!r};"
            f" this build reads version {_FORMAT_VERSION}"
        )
    name = header.get("database")
    if expect_name is not None and name != expect_name:
        raise SnapshotError(
            f"{path} holds database {name!r}, expected {expect_name!r}"
        )

    payload = blob[_PAYLOAD_OFFSET + header_len :]
    if len(payload) != header.get("payload_bytes"):
        raise SnapshotError(
            f"{path} is truncated: payload is {len(payload)} bytes,"
            f" header promises {header.get('payload_bytes')}"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header.get("checksum_sha256"):
        raise SnapshotError(
            f"{path} failed checksum verification"
            f" (stored {header.get('checksum_sha256')}, computed {digest})"
        )

    # Everything below parses *verified* bytes, so a failure here is a
    # malformed-at-write-time snapshot rather than bit rot — but it must
    # still surface as the typed error, never a bare struct/Key/Value
    # error from the internals.
    try:
        count = int(header["intervals"])
        if count < 0 or 8 * count > len(payload):
            raise ValueError(
                f"interval count {count} does not fit a {len(payload)}-byte payload"
            )
        starts = struct.unpack_from(f"<{count}I", payload, 0)
        answers = struct.unpack_from(f"<{count}i", payload, 4 * count)
        tail = json.loads(payload[8 * count :].decode("utf-8"))
        entries = [(prefix, record_id) for prefix, record_id in tail["entries"]]
        records = [_record_from_row(row) for row in tail["records"]]
        return CompiledIndex.from_parts(
            name=name,
            source_entries=int(header["source_entries"]),
            starts=starts,
            answers=answers,
            entries=entries,
            records=records,
        )
    except (
        struct.error,
        UnicodeDecodeError,
        json.JSONDecodeError,
        KeyError,
        IndexError,
        TypeError,
        ValueError,
    ) as exc:
        raise SnapshotError(f"{path} holds an invalid index: {exc}") from exc


def save_index_set(
    indexes: Mapping[str, CompiledIndex], directory: str | pathlib.Path
) -> pathlib.Path:
    """Write one snapshot per index into ``directory`` (created if needed)."""
    directory = pathlib.Path(directory)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as exc:
        raise SnapshotError(f"cannot create snapshot directory {directory}: {exc}") from exc
    for name, index in sorted(indexes.items()):
        save_index(index, directory / f"{name}{SNAPSHOT_SUFFIX}")
    return directory


def load_index_set(
    directory: str | pathlib.Path, *, generation: int | None = None
) -> dict[str, CompiledIndex]:
    """Load every ``*.rgix`` snapshot in ``directory``, keyed by database.

    Each file's database name must match its file stem — the on-disk
    layout is part of the format.  ``generation`` labels failures with
    the store generation, as in :func:`load_index`.
    """
    directory = pathlib.Path(directory)
    paths = sorted(directory.glob(f"*{SNAPSHOT_SUFFIX}"))
    if not paths:
        _label_generation(
            SnapshotError(
                f"no {SNAPSHOT_SUFFIX} snapshots found in {directory}"
            ),
            generation,
        )
    return {
        path.stem: load_index(
            path, expect_name=path.stem, generation=generation
        )
        for path in paths
    }
