"""A stdlib HTTP JSON front end for the serving engine.

Endpoints (all JSON):

* ``GET /lookup?ip=A.B.C.D`` — every database's answer (matched prefix +
  record) plus the consensus block; a degraded answer (vendor failed,
  quarantined, or deadline-skipped) says so explicitly via ``degraded``
  and ``degraded_vendors``;
* ``POST /batch`` — body ``{"ips": [...]}``; per-address results in
  input order, with per-address errors inlined rather than failing the
  whole batch;
* ``GET /healthz`` — liveness: served databases, and ``degraded`` once
  any vendor is quarantined or missing;
* ``GET /statusz`` — the full ``serve.*``/``faults.*`` metrics snapshot
  (request and error counters, per-endpoint latency histograms with
  p50/p99 estimates, rolling-window rates over the last 10s/60s, cache
  stats) plus the per-vendor quarantine state and the live snapshot
  generation (id, source, age, swap/rollback counters);
* ``GET /metricsz`` — the same registry in Prometheus text exposition
  format (0.0.4), ready for a real scraper;
* ``GET /tracez`` — span trees for the slowest recent requests, each
  attributed to the path that produced its answer (``plane``/``cache``/
  ``live``/``degraded``, ``mixed`` for heterogeneous batches).

Serving requests (``/lookup``, ``/batch``) are traced: the handler
honours a client-sent ``X-Request-Id`` (sanitised) or mints one, threads
the :class:`~repro.obs.reqtrace.RequestTrace` through the engine so
plane probes / cache hits / per-vendor live probes land as span rows,
echoes the id in the ``X-Request-Id`` response header and the JSON body,
and — with ``serve --slow-ms`` — logs a one-line slow-request record to
stderr.  Introspection endpoints carry the
``endpoint_class="introspection"`` label on their request/latency
series, keeping monitoring traffic out of the rolling windows and the
serving p99.

Documented status codes: 200 on success; 400 malformed input; 404
unknown route; 405 wrong method on a known route (with ``Allow``); 411
missing, unparseable, or negative Content-Length; 413 oversized batch
or request body; 500 unexpected handler error; 503 when no vendor can
answer (the engine's typed
:class:`~repro.serve.errors.NoHealthyVendors`).  Every 4xx/5xx
increments ``serve.errors``.  The declared body length is validated as
``0 <= length <= MAX_BODY_BYTES`` *before* any read: a negative length
must never reach ``rfile.read`` (``read(-n)`` reads to EOF, which hangs
the worker forever on a keep-alive connection), and a huge one must be
refused without buffering it.

Built on :class:`http.server.ThreadingHTTPServer` — one thread per
request, which the engine tolerates because compiled indexes are
immutable and the cache locks internally.  :meth:`GeoServer.run` installs
a graceful shutdown path: ``SIGINT``/``KeyboardInterrupt`` drains the
listener and closes the socket instead of dying mid-response.
"""

from __future__ import annotations

import json
import re
import sys
import threading
import time
from email.utils import formatdate
from http import HTTPStatus
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.net.ip import parse_address
from repro.obs.metrics import MetricsRegistry
from repro.obs.prom import CONTENT_TYPE as _PROM_CONTENT_TYPE
from repro.obs.prom import render_prometheus
from repro.obs.reqtrace import RequestTrace, TraceRing
from repro.serve.engine import ConsensusAnswer, LookupOutcome, ServingEngine
from repro.serve.errors import NoHealthyVendors, ServeError
from repro.serve.index import IndexAnswer

__all__ = ["GeoServer", "MAX_BATCH_SIZE", "MAX_BODY_BYTES"]

#: Refuse batches larger than this — a serving endpoint must bound the
#: work one request can demand.
MAX_BATCH_SIZE = 10_000

#: Refuse request bodies larger than this before reading a single byte
#: (a full MAX_BATCH_SIZE batch of dotted quads is well under 256 KiB).
MAX_BODY_BYTES = 1 << 20

#: Known routes per method — the contract behind 404 vs 405.
_ROUTES = {
    "GET": ("/lookup", "/healthz", "/statusz", "/metricsz", "/tracez"),
    "POST": ("/batch",),
}

#: Endpoints that observe the server rather than serve geolocation — their
#: request/error/latency series carry ``endpoint_class="introspection"``
#: so scrape traffic cannot distort the serving windows or p99.
_INTROSPECTION = frozenset({"healthz", "statusz", "metricsz", "tracez"})

#: A client-sent ``X-Request-Id`` is honoured only in this shape — anything
#: else (header injection, unbounded length) gets a freshly minted id.
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")


def _endpoint_class(endpoint: str) -> str:
    return "introspection" if endpoint in _INTROSPECTION else "serving"


# -- precomputed response heads ---------------------------------------------
#
# The stdlib send_response/send_header path re-encodes the status line,
# Server header, Date header, and every per-request header with a fresh
# %-format + .encode() each — and, worse, flushes the header block and the
# body as *two* socket writes.  Under keep-alive the second small write
# can sit behind Nagle waiting on the peer's delayed ACK (~40 ms observed
# in replay), turning sub-ms service into tens of ms on the wire.  The
# serving path therefore assembles the whole response head from
# precomputed byte fragments — status+Server lines cached per status
# code, the Date line re-rendered at most once per second — and sends
# head+body as one write.

_STATUS_HEADS: dict[int, bytes] = {}
_JSON_TYPE_LINE = b"Content-Type: application/json\r\n"
#: (whole-second timestamp, rendered ``Date:`` line) — replaced
#: atomically; a race re-renders the same second's bytes, harmlessly.
_DATE_LINE: tuple[int, bytes] = (0, b"")


def _status_head(status: int) -> bytes:
    head = _STATUS_HEADS.get(status)
    if head is None:
        try:
            phrase = HTTPStatus(status).phrase
        except ValueError:
            phrase = ""
        head = _STATUS_HEADS[status] = (
            f"HTTP/1.1 {status} {phrase}\r\nServer: {_Handler.server_version}\r\n"
        ).encode("latin-1")
    return head


def _date_line() -> bytes:
    global _DATE_LINE
    now = int(time.time())
    second, line = _DATE_LINE
    if second != now:
        line = f"Date: {formatdate(now, usegmt=True)}\r\n".encode("latin-1")
        _DATE_LINE = (now, line)
    return line


def _response_head(
    status: int,
    content_type: str,
    body_length: int,
    trace_id: str | None = None,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """The full header block for one response, as a single bytes object.

    Emits exactly what the old send_response/send_header sequence did —
    status line, ``Server``, ``Date``, ``Content-Type``,
    ``Content-Length``, optional ``X-Request-Id``, any extras, blank
    line — so clients observe an identical response shape.
    """
    parts = [
        _status_head(status),
        _date_line(),
        _JSON_TYPE_LINE
        if content_type == "application/json"
        else f"Content-Type: {content_type}\r\n".encode("latin-1"),
        b"Content-Length: %d\r\n" % body_length,
    ]
    if trace_id is not None:
        parts.append(f"X-Request-Id: {trace_id}\r\n".encode("latin-1"))
    if extra_headers:
        for name, value in extra_headers.items():
            parts.append(f"{name}: {value}\r\n".encode("latin-1"))
    parts.append(b"\r\n")
    return b"".join(parts)


def _answer_to_json(answer: IndexAnswer | None) -> dict[str, Any] | None:
    if answer is None:
        return None
    record = answer.record
    return {
        "prefix": answer.prefix,
        "country": record.country,
        "region": record.region,
        "city": record.city,
        "latitude": record.latitude,
        "longitude": record.longitude,
        "resolution": record.resolution.value,
    }


def _outcome_answers_json(
    engine: ServingEngine, outcome: LookupOutcome
) -> dict[str, Any]:
    return {
        name: _answer_to_json(outcome.answers.get(name))
        for name in engine.vendor_names()
    }


def _consensus_to_json(consensus: ConsensusAnswer) -> dict[str, Any]:
    return {
        "country": consensus.country,
        "country_votes": consensus.country_votes,
        "location": (
            {"latitude": consensus.location.lat, "longitude": consensus.location.lon}
            if consensus.location is not None
            else None
        ),
        "location_votes": consensus.location_votes,
        "voters": consensus.voters,
        "country_disagreement": consensus.country_disagreement,
        "city_disagreement": consensus.city_disagreement,
        "degraded": consensus.degraded,
        "quorum": consensus.quorum,
    }


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"
    #: Responses go out as one write, so Nagle has nothing to batch —
    #: but disable it anyway: any stray small write (an error path, a
    #: future streaming endpoint) must not stall behind a delayed ACK.
    disable_nagle_algorithm = True

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Per-request stderr chatter is replaced by ``serve.*`` metrics."""

    @property
    def engine(self) -> ServingEngine:
        return self.server.engine  # type: ignore[attr-defined]

    @property
    def metrics(self) -> MetricsRegistry:
        return self.server.metrics  # type: ignore[attr-defined]

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        endpoint: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        trace = getattr(self, "_trace", None)
        head = _response_head(
            status,
            content_type,
            len(body),
            trace.trace_id if trace is not None else None,
            headers,
        )
        if headers and headers.get("Connection") == "close":
            # send_header("Connection", "close") used to flip this flag;
            # writing the raw head must keep the same keep-alive teardown.
            self.close_connection = True
        # All bookkeeping lands BEFORE the response bytes hit the wire:
        # once a client holds its response it must be able to see its own
        # request on /statusz and /tracez.  (The old order was masked by
        # Nagle's delay; the single-write path made the race observable.)
        self._status = status
        endpoint_class = _endpoint_class(endpoint)
        self.metrics.inc(
            "serve.requests",
            endpoint=endpoint,
            endpoint_class=endpoint_class,
            status=status,
        )
        if status >= 400:
            self.metrics.inc(
                "serve.errors", endpoint=endpoint, endpoint_class=endpoint_class
            )
        if trace is not None:
            trace.finish(status=status)
            # Path attribution is counted once per request, here at the
            # edge — never per lookup on the plane hot path.
            self.metrics.inc(
                "serve.path", path=trace.path or "none", endpoint=endpoint
            )
            self.server.traces.record(trace)  # type: ignore[attr-defined]
            self._trace = None
        self.wfile.write(head + body)

    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        endpoint: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._send_body(status, body, "application/json", endpoint, headers)

    def _timed(self, endpoint: str, handler) -> None:
        server = self.server
        trace = None
        if endpoint not in _INTROSPECTION:
            requested = self.headers.get("X-Request-Id")
            trace = RequestTrace(
                endpoint,
                trace_id=(
                    requested
                    if requested and _TRACE_ID_RE.match(requested)
                    else None
                ),
            )
        self._trace = trace
        started = time.perf_counter()
        try:
            handler(endpoint)
        except NoHealthyVendors as exc:
            # The engine refused to fabricate an answer: fail closed with
            # the service-unavailable code, not a fake empty 200.
            self._send_json(503, {"error": str(exc)}, endpoint)
        except Exception as exc:  # the server must outlive any one request
            self._send_json(500, {"error": f"internal error: {exc}"}, endpoint)
        finally:
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            self.metrics.observe(
                "serve.latency_ms",
                elapsed_ms,
                endpoint=endpoint,
                endpoint_class=_endpoint_class(endpoint),
            )
            if trace is not None:
                if self._trace is trace:
                    # No response ever went out (the socket died before
                    # _send_body ran): retain the trace here so the
                    # request is still visible to /tracez.
                    trace.finish(status=self._status)
                    self.metrics.inc(
                        "serve.path",
                        path=trace.path or "none",
                        endpoint=endpoint,
                    )
                    server.traces.record(trace)
                slow_ms = server.slow_ms
                if slow_ms is not None and elapsed_ms >= slow_ms:
                    print(
                        f"slow request: endpoint={endpoint}"
                        f" trace={trace.trace_id} ms={elapsed_ms:.1f}"
                        f" status={trace.status} path={trace.path or 'none'}"
                        f" spans={trace.span_count()}",
                        file=sys.stderr,
                        flush=True,
                    )
                self._trace = None

    def _route(self, method: str) -> None:
        self._trace = None
        self._status = None
        url = urlsplit(self.path)
        path = url.path
        if path not in _ROUTES[method]:
            allowed = [m for m, paths in _ROUTES.items() if path in paths]
            if allowed:
                # Known route, wrong verb: 405 with the Allow header the
                # RFC requires, so clients can self-correct.
                self._send_json(
                    405,
                    {"error": f"{method} not allowed on {path}"},
                    path.lstrip("/"),
                    headers={"Allow": ", ".join(allowed)},
                )
            else:
                self._send_json(
                    404, {"error": f"no such endpoint: {path}"}, "unknown"
                )
            return
        if path == "/lookup":
            self._timed("lookup", lambda ep: self._handle_lookup(url, ep))
        elif path == "/healthz":
            self._timed("healthz", self._handle_healthz)
        elif path == "/statusz":
            self._timed("statusz", self._handle_statusz)
        elif path == "/metricsz":
            self._timed("metricsz", self._handle_metricsz)
        elif path == "/tracez":
            self._timed("tracez", self._handle_tracez)
        elif path == "/batch":
            self._timed("batch", self._handle_batch)

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._route("POST")

    def _handle_lookup(self, url, endpoint: str) -> None:
        query = url.query
        if (
            query.startswith("ip=")
            and "&" not in query
            and "%" not in query
            and "+" not in query
        ):
            # The overwhelmingly common shape — a single plain dotted
            # quad — skips parse_qs (dict + list + decode machinery per
            # request).  Anything percent-encoded, plus-encoded, or
            # multi-parameter falls through to the general parser, which
            # keeps behaviour identical on every non-trivial query.
            ip = query[3:]
            if not ip:
                self._send_json(
                    400,
                    {"error": "exactly one ip=… query parameter required"},
                    endpoint,
                )
                return
        else:
            values = parse_qs(url.query).get("ip", [])
            if len(values) != 1:
                self._send_json(
                    400,
                    {"error": "exactly one ip=… query parameter required"},
                    endpoint,
                )
                return
            ip = values[0]
        engine = self.engine
        trace = self._trace
        try:
            outcome = engine.lookup_outcome(ip, trace=trace)
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)}, endpoint)
            return
        consensus = engine.consensus_of(outcome)
        payload = {
            "ip": ip,
            "answers": _outcome_answers_json(engine, outcome),
            "consensus": _consensus_to_json(consensus),
            "degraded": outcome.degraded,
            "degraded_vendors": list(outcome.unavailable()),
        }
        if trace is not None:
            payload["trace_id"] = trace.trace_id
        self._send_json(200, payload, endpoint)

    def _handle_batch(self, endpoint: str) -> None:
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._send_json(411, {"error": "Content-Length required"}, endpoint)
            return
        if length < 0:
            # int() happily parses "-17"; rfile.read(-17) would read to
            # EOF and hang this worker forever on a keep-alive socket.
            self._send_json(
                411,
                {"error": f"invalid Content-Length: {length}"},
                endpoint,
                headers={"Connection": "close"},
            )
            return
        if length > MAX_BODY_BYTES:
            # Refuse before reading: the body stays unread on the socket,
            # so drop the connection rather than let it poison keep-alive.
            self._send_json(
                413,
                {"error": f"request body too large: {length} > {MAX_BODY_BYTES}"},
                endpoint,
                headers={"Connection": "close"},
            )
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"invalid JSON body: {exc}"}, endpoint)
            return
        ips = payload.get("ips") if isinstance(payload, dict) else None
        if not isinstance(ips, list):
            self._send_json(
                400, {"error": 'body must be {"ips": [address, ...]}'}, endpoint
            )
            return
        if len(ips) > MAX_BATCH_SIZE:
            self._send_json(
                413,
                {"error": f"batch too large: {len(ips)} > {MAX_BATCH_SIZE}"},
                endpoint,
            )
            return

        # Validate up front so the fan-out only sees clean addresses;
        # invalid entries come back as per-item errors, not a failed batch.
        engine = self.engine
        results: list[dict[str, Any] | None] = [None] * len(ips)
        valid: list[tuple[int, Any]] = []
        for i, ip in enumerate(ips):
            try:
                valid.append((i, parse_address(ip)))
            except ValueError as exc:
                results[i] = {"ip": str(ip), "error": str(exc)}
        trace = self._trace
        outcomes = engine.outcome_batch(
            [address for _, address in valid], trace=trace
        )
        for (i, address), outcome in zip(valid, outcomes):
            if isinstance(outcome, ServeError):
                # A typed serving error is a per-item result too: the
                # batch survives, the item is honestly unanswerable.
                results[i] = {"ip": str(address), "error": str(outcome)}
                continue
            item: dict[str, Any] = {
                "ip": str(address),
                "answers": _outcome_answers_json(engine, outcome),
            }
            if outcome.degraded:
                item["degraded"] = True
                item["degraded_vendors"] = list(outcome.unavailable())
            results[i] = item
        response: dict[str, Any] = {"count": len(results), "results": results}
        if trace is not None:
            response["trace_id"] = trace.trace_id
        self._send_json(200, response, endpoint)

    def _handle_healthz(self, endpoint: str) -> None:
        engine = self.engine
        degraded = engine.degraded
        self._send_json(
            200,
            {
                "status": "degraded" if degraded else "ok",
                "degraded": degraded,
                "databases": list(engine.database_names()),
            },
            endpoint,
        )

    def _handle_statusz(self, endpoint: str) -> None:
        metrics = self.metrics
        self._send_json(
            200,
            {
                "counters": metrics.counters_snapshot(),
                "histograms": metrics.histograms_snapshot(quantiles=True),
                "families": list(metrics.families()),
                "windows": self.server.windows_block(),  # type: ignore[attr-defined]
                "cache": self.engine.cache_stats(),
                "plane": self.engine.plane_stats(),
                "generation": self.engine.generation_info(),
                "vendors": self.engine.health_snapshot(),
                "traces": {
                    "capacity": self.server.traces.capacity,  # type: ignore[attr-defined]
                    "retained": len(self.server.traces),  # type: ignore[attr-defined]
                },
            },
            endpoint,
        )

    def _handle_metricsz(self, endpoint: str) -> None:
        text = render_prometheus(self.metrics)
        self._send_body(
            200, text.encode("utf-8"), _PROM_CONTENT_TYPE, endpoint
        )

    def _handle_tracez(self, endpoint: str) -> None:
        ring: TraceRing = self.server.traces  # type: ignore[attr-defined]
        slowest = ring.slowest()
        self._send_json(
            200,
            {
                "capacity": ring.capacity,
                "count": len(slowest),
                "slowest": slowest,
            },
            endpoint,
        )


class GeoServer(ThreadingHTTPServer):
    """The serving engine bound to a listening socket.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction.  Use :meth:`run` for a foreground server with graceful
    ``SIGINT`` shutdown (the CLI), or :meth:`start_background` /
    :meth:`stop` from tests.
    """

    daemon_threads = True

    def __init__(
        self,
        engine: ServingEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        metrics: MetricsRegistry | None = None,
        slow_ms: float | None = None,
        trace_capacity: int = 32,
    ):
        super().__init__((host, port), _Handler)
        self.engine = engine
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Requests at least this slow get a one-line stderr record
        #: (``serve --slow-ms``); ``None`` disables the log.
        self.slow_ms = slow_ms
        #: The N slowest recent request traces, served on ``/tracez``.
        self.traces = TraceRing(trace_capacity)
        engine.attach_metrics(self.metrics)
        # Rolling windows behind the registry: serving traffic only
        # (endpoint_class filters keep /statusz scrapes out of their own
        # numbers), fed by the request-level inc calls.
        register = self.metrics.track_window
        register("requests", "serve.requests", endpoint_class="serving")
        register("errors", "serve.errors", endpoint_class="serving")
        register("cache_hits", "serve.cache_hits")
        register("cache_misses", "serve.cache_misses")
        for path in ("plane", "cache", "live", "degraded"):
            register(f"path_{path}", "serve.path", path=path)
        # Staleness gauges: which snapshot generation is live and how old
        # it is, read from the engine at scrape time (a swap mid-scrape
        # just reads whichever generation is live at that instant).
        self.metrics.register_gauge(
            "serve.generation_id", lambda: float(engine.generation_id)
        )
        self.metrics.register_gauge(
            "serve.generation_age_s", lambda: engine.generation_age_s
        )

    def windows_block(self) -> dict[str, Any]:
        """The ``/statusz`` rolling-window view: raw per-alias windows
        plus derived rates (RPS, error rate, hit ratios) per horizon."""
        windows = self.metrics.windows_snapshot()

        def total(alias: str, span: str) -> float:
            return windows.get(alias, {}).get(span, {}).get("total", 0.0)

        rates: dict[str, dict[str, float]] = {}
        for span in ("10s", "60s"):
            requests = total("requests", span)
            hits = total("cache_hits", span)
            misses = total("cache_misses", span)
            rates[span] = {
                "rps": round(requests / int(span[:-1]), 6),
                "error_rate": round(
                    total("errors", span) / requests if requests else 0.0, 6
                ),
                "plane_hit_ratio": round(
                    total("path_plane", span) / requests if requests else 0.0, 6
                ),
                "cache_hit_ratio": round(
                    hits / (hits + misses) if hits + misses else 0.0, 6
                ),
            }
        return {"aliases": windows, "rates": rates}

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def server_close(self) -> None:
        """Release the socket, then shut down the engine's batch pool.

        Part of every shutdown path (:meth:`run` and :meth:`stop` both
        end here), so the persistent batch executor never outlives the
        server that was feeding it.  Engine ``close`` is idempotent.
        """
        super().server_close()
        self.engine.close()

    def run(self) -> None:
        """Serve until ``KeyboardInterrupt``, then drain and close."""
        try:
            self.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.server_close()

    def start_background(self) -> threading.Thread:
        """Serve from a daemon thread; pair with :meth:`stop`."""
        thread = threading.Thread(
            target=self.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
        )
        thread.start()
        return thread

    def stop(self) -> None:
        """Stop the background listener and release the socket."""
        self.shutdown()
        self.server_close()
