"""A stdlib HTTP JSON front end for the serving engine.

Endpoints (all JSON):

* ``GET /lookup?ip=A.B.C.D`` — every database's answer (matched prefix +
  record) plus the consensus block;
* ``POST /batch`` — body ``{"ips": [...]}``; per-address results in
  input order, with per-address errors inlined rather than failing the
  whole batch;
* ``GET /healthz`` — liveness: served databases and interval counts;
* ``GET /statusz`` — the full ``serve.*`` metrics snapshot (request and
  error counters, per-endpoint latency histograms, cache stats).

Built on :class:`http.server.ThreadingHTTPServer` — one thread per
request, which the engine tolerates because compiled indexes are
immutable and the cache locks internally.  :meth:`GeoServer.run` installs
a graceful shutdown path: ``SIGINT``/``KeyboardInterrupt`` drains the
listener and closes the socket instead of dying mid-response.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.net.ip import parse_address
from repro.obs.metrics import MetricsRegistry
from repro.serve.engine import ConsensusAnswer, ServingEngine
from repro.serve.index import IndexAnswer

__all__ = ["GeoServer", "MAX_BATCH_SIZE"]

#: Refuse batches larger than this — a serving endpoint must bound the
#: work one request can demand.
MAX_BATCH_SIZE = 10_000


def _answer_to_json(answer: IndexAnswer | None) -> dict[str, Any] | None:
    if answer is None:
        return None
    record = answer.record
    return {
        "prefix": answer.prefix,
        "country": record.country,
        "region": record.region,
        "city": record.city,
        "latitude": record.latitude,
        "longitude": record.longitude,
        "resolution": record.resolution.value,
    }


def _consensus_to_json(consensus: ConsensusAnswer) -> dict[str, Any]:
    return {
        "country": consensus.country,
        "country_votes": consensus.country_votes,
        "location": (
            {"latitude": consensus.location.lat, "longitude": consensus.location.lon}
            if consensus.location is not None
            else None
        ),
        "location_votes": consensus.location_votes,
        "voters": consensus.voters,
        "country_disagreement": consensus.country_disagreement,
        "city_disagreement": consensus.city_disagreement,
    }


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Per-request stderr chatter is replaced by ``serve.*`` metrics."""

    @property
    def engine(self) -> ServingEngine:
        return self.server.engine  # type: ignore[attr-defined]

    @property
    def metrics(self) -> MetricsRegistry:
        return self.server.metrics  # type: ignore[attr-defined]

    def _send_json(self, status: int, payload: dict[str, Any], endpoint: str) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self.metrics.inc("serve.requests", endpoint=endpoint, status=status)
        if status >= 400:
            self.metrics.inc("serve.errors", endpoint=endpoint)

    def _timed(self, endpoint: str, handler) -> None:
        started = time.perf_counter()
        try:
            handler(endpoint)
        except Exception as exc:  # the server must outlive any one request
            self._send_json(500, {"error": f"internal error: {exc}"}, endpoint)
        finally:
            self.metrics.observe(
                "serve.latency_ms",
                (time.perf_counter() - started) * 1000.0,
                endpoint=endpoint,
            )

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        url = urlsplit(self.path)
        if url.path == "/lookup":
            self._timed("lookup", lambda ep: self._handle_lookup(url, ep))
        elif url.path == "/healthz":
            self._timed("healthz", self._handle_healthz)
        elif url.path == "/statusz":
            self._timed("statusz", self._handle_statusz)
        else:
            self._send_json(404, {"error": f"no such endpoint: {url.path}"}, "unknown")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if urlsplit(self.path).path == "/batch":
            self._timed("batch", self._handle_batch)
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"}, "unknown")

    def _handle_lookup(self, url, endpoint: str) -> None:
        values = parse_qs(url.query).get("ip", [])
        if len(values) != 1:
            self._send_json(
                400, {"error": "exactly one ip=… query parameter required"}, endpoint
            )
            return
        ip = values[0]
        try:
            answers = self.engine.lookup(ip)
            consensus = self.engine.consensus(ip)
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)}, endpoint)
            return
        self._send_json(
            200,
            {
                "ip": ip,
                "answers": {
                    name: _answer_to_json(answer) for name, answer in answers.items()
                },
                "consensus": _consensus_to_json(consensus),
            },
            endpoint,
        )

    def _handle_batch(self, endpoint: str) -> None:
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._send_json(411, {"error": "Content-Length required"}, endpoint)
            return
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_json(400, {"error": f"invalid JSON body: {exc}"}, endpoint)
            return
        ips = payload.get("ips") if isinstance(payload, dict) else None
        if not isinstance(ips, list):
            self._send_json(
                400, {"error": 'body must be {"ips": [address, ...]}'}, endpoint
            )
            return
        if len(ips) > MAX_BATCH_SIZE:
            self._send_json(
                413,
                {"error": f"batch too large: {len(ips)} > {MAX_BATCH_SIZE}"},
                endpoint,
            )
            return

        # Validate up front so the fan-out only sees clean addresses;
        # invalid entries come back as per-item errors, not a failed batch.
        results: list[dict[str, Any] | None] = [None] * len(ips)
        valid: list[tuple[int, Any]] = []
        for i, ip in enumerate(ips):
            try:
                valid.append((i, parse_address(ip)))
            except ValueError as exc:
                results[i] = {"ip": str(ip), "error": str(exc)}
        answers = self.engine.lookup_batch([address for _, address in valid])
        for (i, address), answer in zip(valid, answers):
            results[i] = {
                "ip": str(address),
                "answers": {
                    name: _answer_to_json(one) for name, one in answer.items()
                },
            }
        self._send_json(200, {"count": len(results), "results": results}, endpoint)

    def _handle_healthz(self, endpoint: str) -> None:
        engine = self.engine
        self._send_json(
            200,
            {
                "status": "ok",
                "databases": list(engine.database_names()),
            },
            endpoint,
        )

    def _handle_statusz(self, endpoint: str) -> None:
        metrics = self.metrics
        self._send_json(
            200,
            {
                "counters": metrics.counters_snapshot(),
                "histograms": metrics.histograms_snapshot(),
                "families": list(metrics.families()),
                "cache": self.engine.cache_stats(),
            },
            endpoint,
        )


class GeoServer(ThreadingHTTPServer):
    """The serving engine bound to a listening socket.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction.  Use :meth:`run` for a foreground server with graceful
    ``SIGINT`` shutdown (the CLI), or :meth:`start_background` /
    :meth:`stop` from tests.
    """

    daemon_threads = True

    def __init__(
        self,
        engine: ServingEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        metrics: MetricsRegistry | None = None,
    ):
        super().__init__((host, port), _Handler)
        self.engine = engine
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        engine.attach_metrics(self.metrics)

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.server_address[0]}:{self.port}"

    def run(self) -> None:
        """Serve until ``KeyboardInterrupt``, then drain and close."""
        try:
            self.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.server_close()

    def start_background(self) -> threading.Thread:
        """Serve from a daemon thread; pair with :meth:`stop`."""
        thread = threading.Thread(
            target=self.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
        )
        thread.start()
        return thread

    def stop(self) -> None:
        """Stop the background listener and release the socket."""
        self.shutdown()
        self.server_close()
