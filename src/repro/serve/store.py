"""The snapshot store: versioned generations, hot reload, and rollback.

The paper's tables are one snapshot in time, but the databases it
studies refresh continuously — Gouel et al.'s longitudinal study (see
PAPERS.md) shows answers churn meaningfully between releases, so a
serving deployment must *replace* its snapshot set under live traffic,
not restart for every vendor drop.  This module is that lifecycle plane:
an out-of-process compiler publishes generations into a
:class:`SnapshotStore` directory, and a :class:`StoreWatcher` inside the
server validates each candidate and swaps it into the running
:class:`~repro.serve.engine.ServingEngine` atomically — or rejects it
and keeps serving the previous generation.

On-disk layout (everything under one store root)::

    store/
      CURRENT                    text: the live generation id ("000007")
      generations/
        000006/
          MANIFEST.json          generation id, build metadata, and the
                                 SHA-256 digest of every payload file
          NetAcuity.rgix …       one compiled snapshot per vendor
          plane.rgpl             the precomputed answer plane (optional)
        000007/
          …

Three rules make the store crash-safe with nothing but POSIX rename:

* a generation directory is **staged** under a temporary name and
  renamed into ``generations/`` only after every payload file and the
  manifest are fully written — a reader can never see a half-published
  generation under its final name;
* the manifest is written *last* inside the staging directory (itself
  via temp-file + ``os.replace``), so a directory without a readable
  manifest is by definition an aborted publish, skipped by every reader;
* ``CURRENT`` is a one-line file updated via temp-file + ``os.replace``
  — the pointer flip is the publish commit point, and a torn ``CURRENT``
  is impossible.

Trust: :meth:`SnapshotStore.load` re-hashes every payload file against
the manifest digests *before* handing bytes to the ``.rgix``/``.rgpl``
parsers, and every failure is a :class:`StoreError` (or a
generation-labelled :class:`~repro.serve.snapshot.SnapshotError`)
naming the generation and file — a rollback log must be actionable on
its own.  A rejected candidate gets a ``REJECTED`` marker (with the
reason) so operators can audit what was refused and why, and so the
watcher never retries a known-bad generation.

Validation in :meth:`StoreWatcher.poll_once` is three gates, in cost
order: digest verification + parse (the load itself), the engine's
plane handshake (vendors / city range / quorum / interval counts —
re-checked by :meth:`~repro.serve.engine.ServingEngine.swap`), and a
**canary regression probe**: the candidate must keep per-vendor answer
coverage over a fixed probe set within ``canary_max_drop`` of the
serving generation's baseline.  A vendor file that parses perfectly but
lost half its address space (the classic truncated-export incident) is
caught here, before any request sees it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.serve.engine import ServingEngine
from repro.serve.errors import ServeError
from repro.serve.index import CompiledIndex
from repro.serve.plane import PLANE_SUFFIX, load_plane, save_plane
from repro.serve.snapshot import (
    SNAPSHOT_SUFFIX,
    SnapshotError,
    load_index,
    save_index,
)

__all__ = [
    "GenerationRecord",
    "SnapshotStore",
    "StoreError",
    "StoreWatcher",
]

_MANIFEST = "MANIFEST.json"
_REJECTED = "REJECTED"
_CURRENT = "CURRENT"
_GENERATIONS = "generations"
_MANIFEST_FORMAT = "repro-snapshot-generation"
_MANIFEST_VERSION = 1
_PLANE_FILE = f"plane{PLANE_SUFFIX}"

#: Default watcher poll interval — fast enough for the publish→serve
#: latency to feel immediate, slow enough to cost nothing.
DEFAULT_POLL_INTERVAL_S = 2.0

#: A candidate vendor may lose at most this fraction of the canary
#: probe set's coverage relative to the serving generation.
DEFAULT_CANARY_MAX_DROP = 0.25


class StoreError(ServeError):
    """The snapshot store is missing, malformed, or refused an operation."""


def _sha256_file(path: pathlib.Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _write_atomic(path: pathlib.Path, data: str) -> None:
    """Write ``data`` to ``path`` via temp file + ``os.replace``.

    The replace is the commit point: a crash mid-write leaves either the
    old content or a stray ``.tmp`` file, never a torn ``path``.
    """
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(data, encoding="utf-8")
    os.replace(tmp, path)


@dataclass(frozen=True, slots=True)
class GenerationRecord:
    """One generation as the manifest describes it."""

    generation: int
    path: pathlib.Path
    created_unix: float
    metadata: Mapping[str, object] = field(default_factory=dict)
    vendors: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    plane: Mapping[str, object] | None = None
    rejected: bool = False
    reason: str | None = None

    def to_dict(self) -> dict[str, object]:
        """A JSON-ready row for ``snapshot list`` and reports."""
        row: dict[str, object] = {
            "generation": self.generation,
            "created_unix": round(self.created_unix, 3),
            "vendors": sorted(self.vendors),
            "plane": self.plane is not None,
            "metadata": dict(self.metadata),
        }
        if self.rejected:
            row["rejected"] = True
            row["reason"] = self.reason
        return row


class SnapshotStore:
    """Versioned snapshot generations under one directory.

    The store itself is a pure disk protocol — it holds no locks a
    server thread could contend on and keeps no state beyond its root
    path, so the publisher (the CLI, a cron job) and the consumer (the
    watcher inside the server) can live in different processes.
    """

    def __init__(self, root: str | pathlib.Path, *, create: bool = True):
        self.root = pathlib.Path(root)
        self.generations_dir = self.root / _GENERATIONS
        if create:
            self.generations_dir.mkdir(parents=True, exist_ok=True)
        elif not self.generations_dir.is_dir():
            raise StoreError(
                f"{self.root} is not a snapshot store"
                f" (no {_GENERATIONS}/ directory)"
            )

    # -- layout helpers ------------------------------------------------------

    def generation_path(self, generation: int) -> pathlib.Path:
        return self.generations_dir / f"{generation:06d}"

    def _manifest_path(self, generation: int) -> pathlib.Path:
        return self.generation_path(generation) / _MANIFEST

    def _read_manifest(self, generation: int) -> GenerationRecord:
        path = self._manifest_path(generation)
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise StoreError(
                f"generation {generation}: cannot read manifest: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise StoreError(
                f"generation {generation}: manifest is not valid JSON"
                f" ({exc}) — aborted publish or corrupt store"
            ) from exc
        if manifest.get("format") != _MANIFEST_FORMAT:
            raise StoreError(
                f"generation {generation}: manifest format"
                f" {manifest.get('format')!r} is not {_MANIFEST_FORMAT!r}"
            )
        if manifest.get("generation") != generation:
            raise StoreError(
                f"generation {generation}: manifest claims generation"
                f" {manifest.get('generation')!r} — directory was moved or"
                f" hand-edited"
            )
        rejected_path = self.generation_path(generation) / _REJECTED
        rejected = rejected_path.exists()
        reason = None
        if rejected:
            try:
                reason = rejected_path.read_text(encoding="utf-8").strip() or None
            except OSError:
                reason = None
        return GenerationRecord(
            generation=generation,
            path=self.generation_path(generation),
            created_unix=float(manifest.get("created_unix", 0.0)),
            metadata=dict(manifest.get("metadata") or {}),
            vendors=dict(manifest.get("vendors") or {}),
            plane=manifest.get("plane"),
            rejected=rejected,
            reason=reason,
        )

    def _generation_ids(self) -> list[int]:
        ids = []
        for entry in self.generations_dir.iterdir():
            if entry.is_dir() and entry.name.isdigit():
                ids.append(int(entry.name))
        return sorted(ids)

    # -- publish -------------------------------------------------------------

    def publish(
        self,
        indexes: Mapping[str, CompiledIndex],
        plane=None,
        *,
        metadata: Mapping[str, object] | None = None,
    ) -> GenerationRecord:
        """Write a new generation and commit ``CURRENT`` to it.

        The generation id is the successor of the newest id on disk
        (rejected generations included — ids are never reused, so logs
        stay unambiguous).  Files are staged under a temporary directory
        name, the manifest is written last, and the rename into
        ``generations/`` plus the ``CURRENT`` flip are each atomic.
        """
        if not indexes:
            raise StoreError("refusing to publish a generation with no vendors")
        generation = (self._generation_ids() or [0])[-1] + 1
        final = self.generation_path(generation)
        staging = self.generations_dir / f".staging-{generation:06d}"
        if staging.exists():
            for leftover in staging.iterdir():
                leftover.unlink()
            staging.rmdir()
        staging.mkdir()
        try:
            vendors: dict[str, dict[str, object]] = {}
            for name, index in sorted(indexes.items()):
                filename = f"{name}{SNAPSHOT_SUFFIX}"
                path = save_index(index, staging / filename)
                vendors[name] = {
                    "file": filename,
                    "sha256": _sha256_file(path),
                    "bytes": path.stat().st_size,
                }
            plane_entry = None
            if plane is not None:
                path = save_plane(plane, staging / _PLANE_FILE)
                plane_entry = {
                    "file": _PLANE_FILE,
                    "sha256": _sha256_file(path),
                    "bytes": path.stat().st_size,
                }
            created_unix = time.time()
            manifest = {
                "format": _MANIFEST_FORMAT,
                "version": _MANIFEST_VERSION,
                "generation": generation,
                "created_unix": round(created_unix, 3),
                "metadata": dict(metadata or {}),
                "vendors": vendors,
                "plane": plane_entry,
            }
            # The manifest is the staging directory's commit marker: it
            # goes down last, atomically, so no reader ever trusts a
            # directory whose payload files are still streaming out.
            _write_atomic(
                staging / _MANIFEST,
                json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            )
        except BaseException:
            for leftover in staging.iterdir():
                leftover.unlink()
            staging.rmdir()
            raise
        os.replace(staging, final)
        self.set_current(generation)
        return GenerationRecord(
            generation=generation,
            path=final,
            created_unix=created_unix,
            metadata=dict(metadata or {}),
            vendors=vendors,
            plane=plane_entry,
        )

    # -- pointer -------------------------------------------------------------

    def current_id(self) -> int | None:
        """The generation ``CURRENT`` points at (``None`` when unset)."""
        try:
            text = (self.root / _CURRENT).read_text(encoding="utf-8").strip()
        except OSError:
            return None
        if not text.isdigit():
            raise StoreError(
                f"{self.root / _CURRENT} holds {text!r}, not a generation id"
            )
        return int(text)

    def latest_id(self) -> int | None:
        """The newest generation id on disk, rejected or not."""
        ids = self._generation_ids()
        return ids[-1] if ids else None

    def set_current(self, generation: int) -> None:
        """Point ``CURRENT`` at ``generation`` (which must exist on disk)."""
        if not self.generation_path(generation).is_dir():
            raise StoreError(
                f"cannot point {_CURRENT} at generation {generation}:"
                f" {self.generation_path(generation)} does not exist"
            )
        _write_atomic(self.root / _CURRENT, f"{generation:06d}\n")

    # -- inspection ----------------------------------------------------------

    def generations(self) -> list[GenerationRecord]:
        """Every readable generation, oldest first.

        Directories without a readable, self-consistent manifest are
        aborted publishes (or vandalism); they are skipped here, not
        raised — listing the store must work while one publish is broken.
        """
        records = []
        for generation in self._generation_ids():
            try:
                records.append(self._read_manifest(generation))
            except StoreError:
                continue
        return records

    # -- load ----------------------------------------------------------------

    def load(
        self, generation: int
    ) -> tuple[GenerationRecord, dict[str, CompiledIndex], object | None]:
        """Load one generation, fully verified.

        Every payload file is re-hashed against the manifest digest
        *before* it is parsed — a flipped byte is reported as this
        generation's trust failure, never as a parser internal — and the
        ``.rgix``/``.rgpl`` loaders run with ``generation=`` so their own
        checks stay labelled too.
        """
        record = self._read_manifest(generation)
        directory = record.path
        indexes: dict[str, CompiledIndex] = {}
        for name, entry in sorted(record.vendors.items()):
            path = directory / str(entry["file"])
            self._verify_digest(generation, path, entry)
            indexes[name] = load_index(
                path, expect_name=name, generation=generation
            )
        plane = None
        if record.plane is not None:
            path = directory / str(record.plane["file"])
            self._verify_digest(generation, path, record.plane)
            plane = load_plane(path, generation=generation)
        if not indexes:
            raise StoreError(
                f"generation {generation}: manifest lists no vendors"
            )
        return record, indexes, plane

    @staticmethod
    def _verify_digest(
        generation: int, path: pathlib.Path, entry: Mapping[str, object]
    ) -> None:
        if not path.is_file():
            raise StoreError(
                f"generation {generation}: {path.name} is listed in the"
                f" manifest but missing on disk"
            )
        digest = _sha256_file(path)
        if digest != entry.get("sha256"):
            raise StoreError(
                f"generation {generation}: {path.name} failed digest"
                f" verification (manifest {entry.get('sha256')},"
                f" computed {digest})"
            )

    # -- rollback ------------------------------------------------------------

    def _newest_good(self, *, below: int | None = None) -> int | None:
        for generation in reversed(self._generation_ids()):
            if below is not None and generation >= below:
                continue
            if (self.generation_path(generation) / _REJECTED).exists():
                continue
            try:
                self._read_manifest(generation)
            except StoreError:
                continue
            return generation
        return None

    def reject(self, generation: int, reason: str) -> int | None:
        """Mark ``generation`` rejected and restore ``CURRENT`` to the
        newest non-rejected generation.

        Returns the restored generation id (``None`` when nothing good
        remains — the store is then empty of servable generations and
        ``CURRENT`` is left untouched for the post-mortem).
        """
        directory = self.generation_path(generation)
        if directory.is_dir():
            _write_atomic(directory / _REJECTED, reason.rstrip() + "\n")
        restored = self._newest_good()
        if restored is not None and self.current_id() != restored:
            self.set_current(restored)
        return restored

    def rollback(self) -> int:
        """Point ``CURRENT`` one good generation back (operator command).

        Unlike :meth:`reject`, this does not mark anything bad — it is
        the manual "give me yesterday's database" lever; the abandoned
        generation stays eligible for a later roll-forward.
        """
        current = self.current_id()
        if current is None:
            raise StoreError(f"{self.root} has no {_CURRENT} to roll back")
        previous = self._newest_good(below=current)
        if previous is None:
            raise StoreError(
                f"generation {current} is the oldest good generation —"
                f" nothing to roll back to"
            )
        self.set_current(previous)
        return previous

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"SnapshotStore({self.root}; current={self.current_id()})"


class StoreWatcher:
    """Polls a store's ``CURRENT`` pointer and hot-swaps the engine.

    One daemon thread (started by :meth:`start`; :meth:`poll_once` is
    also callable directly — the tests and the longitudinal scenario
    drive it synchronously).  Every poll is one ``CURRENT`` read; only a
    pointer change triggers the load → validate → swap pipeline.  The
    watcher registers itself with the engine, so
    :meth:`~repro.serve.engine.ServingEngine.close` stops the thread —
    no reload thread ever outlives the engine it feeds.
    """

    def __init__(
        self,
        store: SnapshotStore,
        engine: ServingEngine,
        *,
        interval_s: float = DEFAULT_POLL_INTERVAL_S,
        canary_addresses: Sequence[int] = (),
        canary_max_drop: float = DEFAULT_CANARY_MAX_DROP,
        metrics=None,
        trace_sink=None,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive: {interval_s!r}")
        if not 0.0 <= canary_max_drop <= 1.0:
            raise ValueError(
                f"canary_max_drop must be a fraction: {canary_max_drop!r}"
            )
        self.store = store
        self.engine = engine
        self.interval_s = interval_s
        self.canary_addresses = tuple(canary_addresses)
        self.canary_max_drop = canary_max_drop
        self._metrics = metrics
        self._trace_sink = trace_sink
        self._baseline: dict[str, int] | None = None
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self.last_error: str | None = None
        engine.register_watcher(self)

    # -- wiring --------------------------------------------------------------

    def attach_metrics(self, metrics) -> None:
        """Emit ``store.*`` counters into ``metrics`` (``None`` detaches).

        The CLI builds the watcher before the server owns a registry;
        this is how the server's registry is threaded in afterwards,
        mirroring :meth:`ServingEngine.attach_metrics`.
        """
        self._metrics = metrics

    def attach_trace_sink(self, sink) -> None:
        """Record swap traces into ``sink`` (a
        :class:`~repro.obs.reqtrace.TraceRing`); ``None`` detaches."""
        self._trace_sink = sink

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start the poll thread (idempotent while running)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop_event.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-store-watcher", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        """Stop and join the poll thread (idempotent; engine.close calls
        this, and the watcher thread itself may land here via a swap
        failure — joining yourself is skipped)."""
        self._stop_event.set()
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=10.0)

    def _run(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            try:
                self.poll_once()
            except Exception as exc:  # the poll loop must survive anything
                self.last_error = f"{exc.__class__.__name__}: {exc}"

    # -- the reload pipeline -------------------------------------------------

    def poll_once(self) -> str:
        """One poll: ``"noop"``, ``"swapped"``, or ``"rolled_back"``.

        A candidate that fails load, digest, handshake, or the canary
        probe is rejected in the store (``REJECTED`` marker + ``CURRENT``
        restored) and counted as a rollback on the engine — the serving
        generation is untouched in every failure path.
        """
        target = self.store.current_id()
        if target is None or target == self.engine.generation_id:
            return "noop"
        trace = self._begin_trace()
        load_span = -1 if trace is None else trace.begin(
            "swap.load", generation=target
        )
        try:
            record, indexes, plane = self.store.load(target)
        except ServeError as exc:
            if trace is not None:
                trace.end(load_span, ok=False)
            return self._reject(target, str(exc), trace)
        if trace is not None:
            trace.end(load_span, ok=True, vendors=len(indexes))

        validate_span = -1 if trace is None else trace.begin(
            "swap.validate", generation=target
        )
        reason = self._validate(indexes, plane)
        if trace is not None:
            trace.end(validate_span, ok=reason is None)
        if reason is not None:
            return self._reject(target, reason, trace)

        swap_span = -1 if trace is None else trace.begin(
            "swap.activate", generation=target
        )
        try:
            self.engine.swap(
                indexes,
                plane,
                generation_id=record.generation,
                source="store",
                rollback=target < self.engine.generation_id,
            )
        except (ServeError, ValueError) as exc:
            if trace is not None:
                trace.end(swap_span, ok=False)
            return self._reject(target, str(exc), trace)
        if trace is not None:
            trace.end(swap_span, ok=True)
            self._finish_trace(trace)
        self.last_error = None
        # The new generation is the next candidate's regression baseline.
        if self.canary_addresses:
            self._baseline = self.engine.canary_coverage(self.canary_addresses)
        return "swapped"

    def _validate(self, indexes, plane) -> str | None:
        """The pre-swap gates; returns the rejection reason or ``None``.

        Vendor-set and plane-handshake mismatches are also enforced by
        :meth:`ServingEngine.swap` itself — checking here just keeps the
        rejection on the cheap path, before a generation object is built.
        """
        expected = set(self.engine.vendor_names())
        incoming = set(indexes)
        if incoming != expected:
            return (
                f"vendor set changed: candidate serves {sorted(incoming)},"
                f" engine serves {sorted(expected)}"
            )
        if self.canary_addresses:
            if self._baseline is None:
                self._baseline = self.engine.canary_coverage(
                    self.canary_addresses
                )
            for name, index in sorted(indexes.items()):
                baseline = self._baseline.get(name, 0)
                if not baseline:
                    continue
                covered = sum(
                    1
                    for addr in self.canary_addresses
                    if index.probe_answer(addr) is not None
                )
                floor = baseline * (1.0 - self.canary_max_drop)
                if covered < floor:
                    return (
                        f"canary regression: {name} answers {covered}/"
                        f"{len(self.canary_addresses)} probe addresses,"
                        f" serving generation answers {baseline}"
                        f" (allowed drop {self.canary_max_drop:.0%})"
                    )
        return None

    def _reject(self, generation: int, reason: str, trace) -> str:
        self.last_error = reason
        restored = self.store.reject(generation, reason)
        self.engine.note_rollback()
        if self._metrics is not None:
            self._metrics.inc("store.rejected_generations")
        if trace is not None:
            trace.add(
                "swap.rollback",
                0.0,
                generation=generation,
                restored=restored,
                reason=reason,
            )
            self._finish_trace(trace)
        return "rolled_back"

    # -- tracing -------------------------------------------------------------

    def _begin_trace(self):
        if self._trace_sink is None:
            return None
        from repro.obs.reqtrace import RequestTrace

        return RequestTrace("swap")

    def _finish_trace(self, trace) -> None:
        trace.finish(status=200)
        self._trace_sink.record(trace)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"StoreWatcher({self.store.root};"
            f" engine_gen={self.engine.generation_id})"
        )
