"""The fault matrix: every way this system is allowed to break.

Gouel et al.'s longitudinal study shows geolocation snapshots drift and
rot continuously in production; Klein et al.'s *Overconfident
Coordinates* argues an answer without an honest confidence signal is
worse than no answer.  Together they set the serving layer's failure
contract — *never an unflagged wrong answer* — and this module
enumerates the concrete faults that contract is proved against:

===================== =====================================================
fault kind            what it models
===================== =====================================================
``snapshot_bitflip``  silent on-disk corruption of a ``.rgix`` snapshot
``snapshot_truncate`` a partially-written / partially-copied snapshot
``snapshot_magic``    a mislabeled or foreign file in the snapshot dir
``index_missing``     a vendor whose snapshot never arrived
``lookup_raise``      a vendor backend erroring at request time
``lookup_delay``      a vendor backend stalling (latency spike)
``cache_evict``       an eviction storm emptying the serving LRU
===================== =====================================================

The first four are *load-time* faults (they corrupt bytes before the
engine boots); the last three are *runtime* faults a
:class:`~repro.faults.inject.FaultInjector` fires inside the request
path.  :func:`full_matrix` expands the kinds against a vendor list —
the sweep `tests/faults/` runs cell by cell — and
:func:`default_chaos_specs` is the moderate mixed workload behind
``repro serve --chaos-seed``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "FaultKind",
    "FaultSpec",
    "RUNTIME_KINDS",
    "SNAPSHOT_KINDS",
    "STORE_KINDS",
    "StoreFaultKind",
    "default_chaos_specs",
    "full_matrix",
]


class FaultKind(enum.Enum):
    """One row of the fault matrix."""

    SNAPSHOT_BITFLIP = "snapshot_bitflip"
    SNAPSHOT_TRUNCATE = "snapshot_truncate"
    SNAPSHOT_MAGIC = "snapshot_magic"
    INDEX_MISSING = "index_missing"
    LOOKUP_RAISE = "lookup_raise"
    LOOKUP_DELAY = "lookup_delay"
    CACHE_EVICT = "cache_evict"


#: Faults applied to snapshot bytes on disk, before the engine boots.
SNAPSHOT_KINDS: tuple[FaultKind, ...] = (
    FaultKind.SNAPSHOT_BITFLIP,
    FaultKind.SNAPSHOT_TRUNCATE,
    FaultKind.SNAPSHOT_MAGIC,
    FaultKind.INDEX_MISSING,
)

#: Faults fired inside the request path of a running engine.
RUNTIME_KINDS: tuple[FaultKind, ...] = (
    FaultKind.LOOKUP_RAISE,
    FaultKind.LOOKUP_DELAY,
    FaultKind.CACHE_EVICT,
)


class StoreFaultKind(enum.Enum):
    """One way a snapshot-store *generation* breaks on disk.

    A separate enum from :class:`FaultKind` on purpose: these faults
    target the lifecycle plane (a published generation directory with a
    manifest), not a bare snapshot directory, and adding them to
    :class:`FaultKind` would silently widen :func:`full_matrix` — the
    chaos sweep the whole fail-closed contract is gated on.

    ===================== ==================================================
    ``manifest_partial``  a manifest cut short mid-write (publisher crash)
    ``payload_corrupt``   a vendor ``.rgix`` whose bytes rotted after the
                          manifest digest was taken
    ``plane_missing``     a ``plane.rgpl`` the manifest promises but the
                          filesystem lost
    ===================== ==================================================

    Applied by :meth:`~repro.faults.inject.FaultInjector.\
sabotage_generation`; the store suite proves each one is rejected with
    the serving generation untouched.
    """

    MANIFEST_PARTIAL = "manifest_partial"
    PAYLOAD_CORRUPT = "payload_corrupt"
    PLANE_MISSING = "plane_missing"


#: Faults applied to a published snapshot-store generation directory.
STORE_KINDS: tuple[StoreFaultKind, ...] = tuple(StoreFaultKind)


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One armed fault: a kind, an optional vendor, and a firing rate.

    ``vendor=None`` targets every vendor; ``rate`` is the per-call
    probability a runtime fault fires (snapshot faults always apply).
    ``delay_s`` sizes a :attr:`FaultKind.LOOKUP_DELAY` stall.
    """

    kind: FaultKind
    vendor: str | None = None
    rate: float = 1.0
    delay_s: float = 0.05

    def __post_init__(self):
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1]: {self.rate!r}")
        if self.delay_s < 0:
            raise ValueError(f"fault delay must be non-negative: {self.delay_s!r}")

    def targets(self, vendor: str) -> bool:
        """Whether this spec applies to ``vendor``."""
        return self.vendor is None or self.vendor == vendor

    def describe(self) -> str:
        scope = self.vendor if self.vendor is not None else "*"
        return f"{self.kind.value}[{scope}]@{self.rate:g}"


def full_matrix(vendors: Sequence[str]) -> list[FaultSpec]:
    """Every (kind, vendor) cell at rate 1.0 — the chaos sweep's axis."""
    return [
        FaultSpec(kind=kind, vendor=vendor)
        for kind in FaultKind
        for vendor in vendors
    ]


def default_chaos_specs(vendors: Sequence[str] | None = None) -> list[FaultSpec]:
    """A moderate mixed runtime workload (``repro serve --chaos-seed``).

    Rates are low enough that the service stays mostly healthy — the
    point is to watch quarantine, retry, and the ``degraded`` flag work
    under a live drill, not to take the service down.
    """
    targets: tuple[str | None, ...] = tuple(vendors) if vendors else (None,)
    specs: list[FaultSpec] = []
    for vendor in targets:
        specs.append(FaultSpec(FaultKind.LOOKUP_RAISE, vendor=vendor, rate=0.02))
        specs.append(
            FaultSpec(FaultKind.LOOKUP_DELAY, vendor=vendor, rate=0.05, delay_s=0.01)
        )
    specs.append(FaultSpec(FaultKind.CACHE_EVICT, rate=0.01))
    return specs
