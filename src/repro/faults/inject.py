"""Deterministic, seedable fault injection around the serving layer.

A :class:`FaultInjector` owns a set of armed :class:`FaultSpec`\\ s and a
seed; everything it does — which bit of a snapshot flips, which request
a vendor error fires on, when the cache storm hits — derives from
``random.Random`` streams keyed by ``(seed, kind, vendor)``, so a single
seed reproduces an entire chaos run exactly.

The injector never patches hot-path code.  It *wraps*:

* :meth:`FaultInjector.wrap_indexes` returns the same mapping with the
  targeted vendors behind :class:`FaultyIndex` proxies (untargeted
  vendors are passed through untouched);
* :meth:`FaultInjector.wrap_cache` fronts the serving LRU with a
  :class:`ChaoticCache` that forces eviction storms (a cache fault may
  cost hit rate, never correctness);
* :meth:`FaultInjector.sabotage_snapshots` corrupts ``.rgix`` bytes on
  disk, modelling the load-time half of the matrix.

With no injector constructed, the serving layer runs the exact
uninstrumented code — disabled fault injection costs nothing.
"""

from __future__ import annotations

import pathlib
import random
import time
from typing import Callable, Mapping, Sequence

from repro.faults.matrix import (
    RUNTIME_KINDS,
    SNAPSHOT_KINDS,
    FaultKind,
    FaultSpec,
    StoreFaultKind,
)

__all__ = ["ChaoticCache", "FaultInjector", "FaultyIndex", "InjectedFault"]


class InjectedFault(RuntimeError):
    """The error a ``lookup_raise`` fault throws inside a vendor probe.

    Deliberately a distinct type: the chaos suite asserts the serving
    layer survives it, and nothing else in the codebase raises it, so a
    leaked ``InjectedFault`` in a response always means a missing
    degradation path.
    """


class FaultyIndex:
    """A compiled index behind a deterministic fault gate.

    Delegates every probe to the wrapped index after consulting the
    armed specs: a ``lookup_delay`` stalls the call, a ``lookup_raise``
    throws :class:`InjectedFault`.  Answers that do come back are the
    wrapped index's own, untouched — the injector breaks availability
    and latency, never correctness.
    """

    def __init__(
        self,
        base,
        specs: Sequence[FaultSpec],
        rngs: Sequence[random.Random],
        *,
        sleep: Callable[[float], None],
        on_fire: Callable[[FaultSpec, str], None],
    ):
        self._base = base
        self._armed = tuple(zip(specs, rngs))
        self._sleep = sleep
        self._on_fire = on_fire

    # The serving engine reads these for health reporting and repr.
    @property
    def name(self) -> str:
        return self._base.name

    @property
    def source_entries(self) -> int:
        return self._base.source_entries

    @property
    def interval_count(self) -> int:
        return self._base.interval_count

    @property
    def wrapped(self):
        """The pristine index underneath (tests compare answers to it)."""
        return self._base

    def _gate(self) -> None:
        for spec, rng in self._armed:
            if spec.rate < 1.0 and rng.random() >= spec.rate:
                continue
            if not self._on_fire(spec, self._base.name):
                continue  # injector disarmed: probe runs fault-free
            if spec.kind is FaultKind.LOOKUP_DELAY:
                self._sleep(spec.delay_s)
            elif spec.kind is FaultKind.LOOKUP_RAISE:
                raise InjectedFault(
                    f"injected fault in {self._base.name}: {spec.describe()}"
                )

    # -- the probe surface ServingEngine and LookupFrame use -----------------

    def probe(self, addr: int):
        self._gate()
        return self._base.probe(addr)

    def probe_answer(self, addr: int):
        self._gate()
        return self._base.probe_answer(addr)

    def lookup(self, address):
        self._gate()
        return self._base.lookup(address)

    def lookup_answer(self, address):
        self._gate()
        return self._base.lookup_answer(address)

    def __len__(self) -> int:
        return len(self._base)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        armed = ", ".join(spec.describe() for spec, _ in self._armed)
        return f"FaultyIndex({self._base!r}, {armed})"


class ChaoticCache:
    """A serving cache under an eviction storm.

    Before a fraction of ``get`` calls the wrapped cache is cleared —
    the worst case a real eviction storm (cold restart, hostile key
    churn, memory pressure) produces.  Every other operation delegates,
    so the cache stays *correct* under the storm; only its hit rate
    suffers, which is exactly the degradation being tested.
    """

    def __init__(
        self,
        base,
        specs: Sequence[FaultSpec],
        rngs: Sequence[random.Random],
        *,
        on_fire: Callable[[FaultSpec, str], None],
    ):
        self._base = base
        self._armed = tuple(zip(specs, rngs))
        self._on_fire = on_fire
        self.storms = 0

    @property
    def capacity(self) -> int:
        return self._base.capacity

    def get(self, key):
        for spec, rng in self._armed:
            if spec.rate < 1.0 and rng.random() >= spec.rate:
                continue
            if not self._on_fire(spec, "cache"):
                continue
            self.storms += 1
            self._base.clear()
        return self._base.get(key)

    def put(self, key, value) -> None:
        self._base.put(key, value)

    def clear(self) -> None:
        self._base.clear()

    def stats(self) -> dict[str, float]:
        return {**self._base.stats(), "storms": self.storms}

    def __len__(self) -> int:
        return len(self._base)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ChaoticCache({self._base!r}, storms={self.storms})"


class FaultInjector:
    """A seeded fault plan plus the machinery to apply it.

    ``enabled`` gates every runtime fault: :meth:`disarm` lets a chaos
    test (or an operator drill) switch the faults off mid-run and watch
    quarantined vendors heal, without rebuilding the engine.
    """

    def __init__(
        self,
        seed: int,
        specs: Sequence[FaultSpec],
        *,
        metrics=None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.seed = int(seed)
        self.specs = tuple(specs)
        self.enabled = True
        self._metrics = metrics
        self._sleep = sleep
        self.fired: int = 0

    # -- determinism ---------------------------------------------------------

    def _rng(self, *scope: str) -> random.Random:
        """An independent, reproducible stream for one (kind, target) cell."""
        return random.Random("|".join((str(self.seed), *scope)))

    def _on_fire(self, spec: FaultSpec, target: str) -> bool:
        """Count and record one firing; ``False`` when disarmed (no fault)."""
        if not self.enabled:
            return False
        self.fired += 1
        if self._metrics is not None:
            self._metrics.inc(
                "faults.injected", kind=spec.kind.value, target=target
            )
        return True

    def attach_metrics(self, metrics) -> None:
        """Emit ``faults.*`` counters into ``metrics`` (``None`` detaches).

        The serving engine propagates its own registry here, so an
        injector built before the server's registry exists (the CLI's
        ``--chaos-seed`` path) still lands on ``/statusz``.
        """
        self._metrics = metrics

    def disarm(self) -> None:
        """Stop firing runtime faults (wrapped objects stay in place)."""
        self.enabled = False

    def rearm(self) -> None:
        self.enabled = True

    # -- runtime faults ------------------------------------------------------

    def _runtime_specs_for(self, vendor: str) -> list[FaultSpec]:
        return [
            spec
            for spec in self.specs
            if spec.kind in RUNTIME_KINDS
            and spec.kind is not FaultKind.CACHE_EVICT
            and spec.targets(vendor)
        ]

    def wrap_indexes(self, indexes: Mapping[str, object]) -> dict[str, object]:
        """The same mapping with targeted vendors behind fault gates."""
        wrapped: dict[str, object] = {}
        for name, index in indexes.items():
            specs = self._runtime_specs_for(name)
            if not specs:
                wrapped[name] = index
                continue
            rngs = [self._rng(spec.kind.value, name) for spec in specs]
            wrapped[name] = FaultyIndex(
                index, specs, rngs, sleep=self._sleep, on_fire=self._on_fire
            )
        return wrapped

    def wrap_cache(self, cache):
        """``cache`` behind an eviction-storm gate (or unchanged)."""
        if cache is None:
            return None
        specs = [s for s in self.specs if s.kind is FaultKind.CACHE_EVICT]
        if not specs:
            return cache
        rngs = [self._rng(spec.kind.value, "cache") for spec in specs]
        return ChaoticCache(cache, specs, rngs, on_fire=self._on_fire)

    # -- load-time faults ----------------------------------------------------

    def sabotage_snapshots(self, directory: str | pathlib.Path) -> list[str]:
        """Apply every armed snapshot fault to ``directory``'s ``.rgix`` files.

        Returns human-readable descriptions of what was done (the chaos
        suite logs them); deterministic in file order and in every byte
        touched.
        """
        directory = pathlib.Path(directory)
        applied: list[str] = []
        for spec in self.specs:
            if spec.kind not in SNAPSHOT_KINDS:
                continue
            for path in sorted(directory.glob("*.rgix")):
                if not spec.targets(path.stem):
                    continue
                rng = self._rng(spec.kind.value, path.stem)
                description = self._corrupt(path, spec.kind, rng)
                applied.append(f"{path.name}: {description}")
                if self._metrics is not None:
                    self._metrics.inc(
                        "faults.injected", kind=spec.kind.value, target=path.stem
                    )
        return applied

    def sabotage_generation(
        self, directory: str | pathlib.Path, kind: StoreFaultKind
    ) -> str:
        """Apply one store fault to a published generation directory.

        Models the lifecycle failures a publisher/filesystem produces
        *after* :class:`~repro.serve.store.SnapshotStore` wrote a valid
        generation: a manifest cut short, a payload rotting under its
        recorded digest, a promised plane file gone.  Deterministic per
        ``(seed, kind, directory-name)`` stream, same as every other
        fault.  Returns a human-readable description for the chaos log.
        """
        directory = pathlib.Path(directory)
        rng = self._rng("store", kind.value, directory.name)
        if self._metrics is not None:
            self._metrics.inc(
                "faults.injected", kind=kind.value, target=directory.name
            )
        if kind is StoreFaultKind.MANIFEST_PARTIAL:
            path = directory / "MANIFEST.json"
            blob = path.read_bytes()
            keep = rng.randrange(1, len(blob))  # non-empty, strictly shorter
            path.write_bytes(blob[:keep])
            return f"{path.name}: truncated to {keep}/{len(blob)} bytes"
        if kind is StoreFaultKind.PAYLOAD_CORRUPT:
            targets = sorted(directory.glob("*.rgix"))
            if not targets:
                raise ValueError(f"no .rgix payloads to corrupt in {directory}")
            path = targets[rng.randrange(len(targets))]
            blob = path.read_bytes()
            bit = rng.randrange(len(blob) * 8)
            corrupted = bytearray(blob)
            corrupted[bit // 8] ^= 1 << (bit % 8)
            path.write_bytes(bytes(corrupted))
            return f"{path.name}: flipped bit {bit}"
        if kind is StoreFaultKind.PLANE_MISSING:
            path = directory / "plane.rgpl"
            if not path.exists():
                raise ValueError(f"{directory} holds no plane.rgpl to delete")
            path.unlink()
            return f"{path.name}: deleted"
        raise ValueError(f"not a store fault: {kind}")  # pragma: no cover

    @staticmethod
    def _corrupt(
        path: pathlib.Path, kind: FaultKind, rng: random.Random
    ) -> str:
        blob = path.read_bytes()
        if kind is FaultKind.INDEX_MISSING:
            path.unlink()
            return "deleted"
        if kind is FaultKind.SNAPSHOT_MAGIC:
            path.write_bytes(b"XGIX" + blob[4:])
            return "magic overwritten"
        if kind is FaultKind.SNAPSHOT_TRUNCATE:
            keep = rng.randrange(len(blob))  # strictly shorter
            path.write_bytes(blob[:keep])
            return f"truncated to {keep}/{len(blob)} bytes"
        if kind is FaultKind.SNAPSHOT_BITFLIP:
            bit = rng.randrange(len(blob) * 8)
            corrupted = bytearray(blob)
            corrupted[bit // 8] ^= 1 << (bit % 8)
            path.write_bytes(bytes(corrupted))
            return f"flipped bit {bit}"
        raise ValueError(f"not a snapshot fault: {kind}")  # pragma: no cover

    def __repr__(self) -> str:  # pragma: no cover - trivial
        armed = ", ".join(spec.describe() for spec in self.specs)
        state = "armed" if self.enabled else "disarmed"
        return f"FaultInjector(seed={self.seed}, {state}: {armed})"
