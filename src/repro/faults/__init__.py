"""Fault injection for the serving layer: break it on purpose, on a seed.

Production geolocation serving degrades constantly — snapshots rot
(Gouel et al.), backends stall, caches churn — and the ROADMAP's
"heavy traffic" goal requires the system to *fail closed*: a fault may
cost coverage or latency, never an unflagged wrong answer.  This
package supplies the controlled failures that contract is proved
against:

* :mod:`repro.faults.matrix` — the fault matrix
  (:class:`FaultKind` / :class:`FaultSpec`), :func:`full_matrix` for
  the exhaustive sweep and :func:`default_chaos_specs` for the
  ``repro serve --chaos-seed`` drill mix;
* :mod:`repro.faults.inject` — :class:`FaultInjector`, the seeded
  engine that wraps compiled indexes (:class:`FaultyIndex`) and the
  serving cache (:class:`ChaoticCache`) and sabotages ``.rgix``
  snapshot bytes on disk; every decision derives from the one seed.

:class:`StoreFaultKind` extends the matrix to the snapshot-store
lifecycle plane (partial manifest, rotten payload, missing plane file)
via :meth:`FaultInjector.sabotage_generation` — kept out of
:class:`FaultKind` so the existing :func:`full_matrix` sweep is
unchanged.

Everything here is strictly additive: with no injector constructed the
serving layer executes its unmodified hot path.
"""

from repro.faults.inject import (
    ChaoticCache,
    FaultInjector,
    FaultyIndex,
    InjectedFault,
)
from repro.faults.matrix import (
    RUNTIME_KINDS,
    SNAPSHOT_KINDS,
    STORE_KINDS,
    FaultKind,
    FaultSpec,
    StoreFaultKind,
    default_chaos_specs,
    full_matrix,
)

__all__ = [
    "ChaoticCache",
    "FaultInjector",
    "FaultKind",
    "FaultSpec",
    "FaultyIndex",
    "InjectedFault",
    "RUNTIME_KINDS",
    "SNAPSHOT_KINDS",
    "STORE_KINDS",
    "StoreFaultKind",
    "default_chaos_specs",
    "full_matrix",
]
