"""RIPE-Atlas-like probes with crowdsourced locations.

RIPE Atlas probes are hosted by volunteers who self-report the probe's
location.  The paper's §3.2 is all about the consequences: most hosts
report a correct city-level location, but some leave the default *country
centroid* coordinates, and some move a probe without updating the map.
The RTT-proximity ground truth is only as good as these locations, which
is why the paper disqualifies suspicious probes before trusting them.

:class:`ProbeLocationModel` reproduces those failure modes, and each
:class:`AtlasProbe` carries both its *true* position (simulation
omniscience, used to verify the method) and its *reported* position (all
a study ever sees).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.geo.coordinates import GeoPoint
from repro.geo.countries import COUNTRIES
from repro.geo.gazetteer import City
from repro.geo.rir import RIR, rir_for_country
from repro.topology.builder import SyntheticInternet


@dataclass(frozen=True, slots=True)
class AtlasProbe:
    """One probe: a small box in somebody's network."""

    probe_id: int
    router_id: int  # first-hop router it is cabled to
    city: City  # true host city
    true_location: GeoPoint
    reported_location: GeoPoint
    reported_country: str

    @property
    def location_error_km(self) -> float:
        """Distance between reality and the crowdsourced position."""
        return self.true_location.distance_km(self.reported_location)


@dataclass(frozen=True, slots=True)
class ReleasedProbe:
    """Probe metadata as it appears in a public release.

    Public probe lists carry only the *self-reported* location — exactly
    the information the RTT-proximity method consumes.  The extraction in
    :mod:`repro.groundtruth.rttproximity` duck-types on these three fields,
    so released probes are drop-in replacements for live
    :class:`AtlasProbe` objects (which additionally carry simulation truth
    that must never leave the simulator).
    """

    probe_id: int
    reported_location: GeoPoint
    reported_country: str


@dataclass(frozen=True, slots=True)
class ProbeLocationModel:
    """How self-reported probe locations go wrong.

    Paper calibration (§3.2): of 1,387 probes behind the 0.5 ms data, 19
    (~1.4%) sat on default country-centroid coordinates; of 223 probes in
    RTT-nearby groups, 5 (~2.2%) were disqualified for inconsistent
    locations — so a few percent of probes are simply somewhere else.
    """

    correct_jitter_km: float = 3.0
    default_centroid_rate: float = 0.015
    wrong_city_rate: float = 0.022

    def __post_init__(self) -> None:
        if self.correct_jitter_km < 0:
            raise ValueError("jitter must be non-negative")
        if not 0 <= self.default_centroid_rate + self.wrong_city_rate <= 1:
            raise ValueError("error rates must sum to at most 1")

    def report_location(
        self,
        true_location: GeoPoint,
        city: City,
        gazetteer_cities: tuple[City, ...],
        rng: random.Random,
    ) -> tuple[GeoPoint, str]:
        """The (reported location, reported country) a host registers."""
        draw = rng.random()
        if draw < self.default_centroid_rate:
            country = COUNTRIES.get(city.country)
            return GeoPoint(country.centroid_lat, country.centroid_lon), city.country
        if draw < self.default_centroid_rate + self.wrong_city_rate:
            # Host reported an old address: a different city entirely.
            other = gazetteer_cities[rng.randrange(len(gazetteer_cities))]
            while other.key == city.key:
                other = gazetteer_cities[rng.randrange(len(gazetteer_cities))]
            return _jitter(other.location, self.correct_jitter_km, rng), other.country
        return _jitter(true_location, 1.0, rng), city.country


def _jitter(point: GeoPoint, radius_km: float, rng: random.Random) -> GeoPoint:
    if radius_km <= 0:
        return point
    return point.destination(rng.uniform(0, 360), rng.uniform(0, radius_km))


#: Probe-count share per region, mirroring RIPE Atlas's Europe-heavy
#: deployment (and hence Table 1's RTT-proximity regional distribution).
DEFAULT_REGION_WEIGHTS: dict[RIR, float] = {
    RIR.RIPENCC: 0.56,
    RIR.ARIN: 0.21,
    RIR.APNIC: 0.12,
    RIR.AFRINIC: 0.06,
    RIR.LACNIC: 0.05,
}


def deploy_probes(
    internet: SyntheticInternet,
    count: int,
    rng: random.Random,
    *,
    model: ProbeLocationModel | None = None,
    region_weights: dict[RIR, float] | None = None,
) -> tuple[AtlasProbe, ...]:
    """Place ``count`` probes in stub networks with region-weighted density.

    Every probe hangs off a stub access router; its true position is the
    router's city plus a few km of last-mile jitter.
    """
    if count <= 0:
        raise ValueError(f"probe count must be positive: {count!r}")
    model = model if model is not None else ProbeLocationModel()
    weights = region_weights if region_weights is not None else DEFAULT_REGION_WEIGHTS
    by_region: dict[RIR, list[int]] = {rir: [] for rir in RIR}
    for router in internet.routers.values():
        if router.role == "access" and not router.autonomous_system.is_transit:
            by_region[rir_for_country(router.city.country)].append(router.router_id)
    available_regions = [rir for rir in RIR if by_region[rir]]
    if not available_regions:
        raise ValueError("world has no stub access routers to host probes")
    gazetteer_cities = tuple(internet.gazetteer)
    probes = []
    for probe_id in range(count):
        region = rng.choices(
            available_regions,
            weights=[weights.get(r, 0.01) for r in available_regions],
            k=1,
        )[0]
        router_id = rng.choice(by_region[region])
        city = internet.routers[router_id].city
        # Last-mile jitter stays small enough that the engine's minimum
        # last-mile RTT still covers the probe→router distance (keeps the
        # 0.5 ms ⇒ ≤50 km inversion physically sound end to end).
        true_location = _jitter(city.location, 5.0, rng)
        reported, reported_country = model.report_location(
            true_location, city, gazetteer_cities, rng
        )
        probes.append(
            AtlasProbe(
                probe_id=10_000 + probe_id,
                router_id=router_id,
                city=city,
                true_location=true_location,
                reported_location=reported,
                reported_country=reported_country,
            )
        )
    return tuple(probes)
