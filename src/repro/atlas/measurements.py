"""RIPE-Atlas-style built-in measurements.

Every RIPE Atlas probe continuously runs *built-in* measurements toward
well-known anycast targets (DNS root servers and friends).  The paper
mines one day of these traceroutes for hops within 0.5 ms of a probe
(§2.3.2).  This module reproduces the whole pipeline:

* :func:`select_builtin_targets` — a root-server-like global target set;
* :func:`run_builtin_measurements` — one traceroute per (probe, target),
  three RTT attempts per hop, via the shared traceroute engine;
* a JSON codec matching the shape of real Atlas traceroute results
  (``prb_id``, ``dst_addr``, ``result: [{hop, result: [{from, rtt}]}]``),
  so downstream code parses measurements exactly as the paper's scripts
  parsed the Atlas dumps.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

from repro.net.ip import IPv4Address, parse_address
from repro.topology.builder import SyntheticInternet
from repro.topology.traceroute import TracerouteEngine
from repro.atlas.probes import AtlasProbe


class MeasurementParseError(ValueError):
    """Raised for malformed measurement JSON."""


@dataclass(frozen=True, slots=True)
class HopReply:
    """One reply within a hop: responding interface and its RTT."""

    from_address: IPv4Address
    rtt_ms: float


@dataclass(frozen=True, slots=True)
class MeasurementHop:
    """A TTL step: up to three replies (or none, for ``*``)."""

    hop: int
    replies: tuple[HopReply, ...]

    def min_rtt_ms(self) -> float | None:
        """The smallest observed RTT — the value proximity filters use."""
        if not self.replies:
            return None
        return min(reply.rtt_ms for reply in self.replies)


@dataclass(frozen=True, slots=True)
class BuiltinMeasurement:
    """One built-in traceroute from one probe toward one target."""

    msm_id: int
    probe_id: int
    target: IPv4Address
    hops: tuple[MeasurementHop, ...]

    def to_dict(self) -> dict:
        """Serialize in the Atlas result shape."""
        return {
            "fw": 4790,
            "msm_id": self.msm_id,
            "prb_id": self.probe_id,
            "dst_addr": str(self.target),
            "proto": "ICMP",
            "result": [
                {
                    "hop": hop.hop,
                    "result": (
                        [
                            {"from": str(reply.from_address), "rtt": reply.rtt_ms}
                            for reply in hop.replies
                        ]
                        if hop.replies
                        else [{"x": "*"}]
                    ),
                }
                for hop in self.hops
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BuiltinMeasurement":
        """Parse the Atlas result shape; tolerant of ``*`` entries."""
        try:
            hops = []
            for hop_entry in payload["result"]:
                replies = []
                for reply in hop_entry.get("result", ()):
                    if "from" not in reply or "rtt" not in reply:
                        continue  # '*' losses and late/error replies
                    replies.append(
                        HopReply(
                            from_address=parse_address(reply["from"]),
                            rtt_ms=float(reply["rtt"]),
                        )
                    )
                hops.append(MeasurementHop(hop=int(hop_entry["hop"]), replies=tuple(replies)))
            return cls(
                msm_id=int(payload["msm_id"]),
                probe_id=int(payload["prb_id"]),
                target=parse_address(payload["dst_addr"]),
                hops=tuple(hops),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise MeasurementParseError(f"malformed measurement: {exc}") from exc


def to_json_lines(measurements) -> str:
    """Serialize measurements one-JSON-object-per-line (Atlas dump style)."""
    return "\n".join(json.dumps(m.to_dict(), separators=(",", ":")) for m in measurements)


def parse_json_lines(text: str, *, skip_malformed: bool = False):
    """Parse an Atlas-style dump.  Malformed lines raise unless skipped."""
    measurements = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
            measurements.append(BuiltinMeasurement.from_dict(payload))
        except (json.JSONDecodeError, MeasurementParseError) as exc:
            if skip_malformed:
                continue
            raise MeasurementParseError(f"line {line_number}: {exc}") from exc
    return measurements


def select_builtin_targets(
    internet: SyntheticInternet, count: int, rng: random.Random
) -> tuple[IPv4Address, ...]:
    """Root-server-like targets: interfaces of transit routers spread
    across distinct cities worldwide."""
    if count <= 0:
        raise ValueError(f"target count must be positive: {count!r}")
    by_city: dict[tuple[str, str], list[IPv4Address]] = {}
    for router in internet.routers.values():
        if router.autonomous_system.is_transit and router.interfaces:
            by_city.setdefault(
                (router.city.country, router.city.name), []
            ).append(router.interfaces[0].address)
    cities = sorted(by_city)
    rng.shuffle(cities)
    return tuple(
        rng.choice(by_city[city]) for city in cities[: min(count, len(cities))]
    )


def run_builtin_measurements(
    internet: SyntheticInternet,
    probes: tuple[AtlasProbe, ...],
    targets: tuple[IPv4Address, ...],
    rng: random.Random,
    *,
    engine: TracerouteEngine | None = None,
    attempts: int = 3,
) -> list[BuiltinMeasurement]:
    """Run one traceroute per (probe, target) pair.

    Atlas sends three packets per TTL, so each responding hop gets up to
    ``attempts`` RTT samples around the engine's hop RTT — the jitter is
    what makes min-RTT filtering meaningful.
    """
    if not probes:
        raise ValueError("at least one probe is required")
    if not targets:
        raise ValueError("at least one target is required")
    if attempts < 1:
        raise ValueError(f"attempts must be at least 1: {attempts!r}")
    if engine is None:
        engine = TracerouteEngine(
            internet, rng, hop_loss_rate=0.02, last_mile_rtt_ms=(0.06, 0.35)
        )
    measurements = []
    for msm_index, target in enumerate(targets):
        # One shortest-path tree per target root, shared by all probes.
        destination_paths = engine.paths_from(internet.home_router_for(target))
        for probe in probes:
            result = engine.trace_with_tree(probe.router_id, target, destination_paths)
            hops = []
            for hop in result.hops:
                if hop.address is None or hop.rtt_ms is None:
                    hops.append(MeasurementHop(hop=hop.ttl, replies=()))
                    continue
                replies = tuple(
                    HopReply(
                        from_address=hop.address,
                        rtt_ms=round(hop.rtt_ms + rng.uniform(0.0, 0.25), 3),
                    )
                    for _ in range(attempts)
                )
                hops.append(MeasurementHop(hop=hop.ttl, replies=replies))
            measurements.append(
                BuiltinMeasurement(
                    msm_id=5000 + msm_index,
                    probe_id=probe.probe_id,
                    target=target,
                    hops=tuple(hops),
                )
            )
    return measurements
