"""RIPE-Atlas-like measurement platform: probes and built-in traceroutes."""

from repro.atlas.measurements import (
    BuiltinMeasurement,
    HopReply,
    MeasurementHop,
    MeasurementParseError,
    parse_json_lines,
    run_builtin_measurements,
    select_builtin_targets,
    to_json_lines,
)
from repro.atlas.probes import (
    DEFAULT_REGION_WEIGHTS,
    AtlasProbe,
    ProbeLocationModel,
    ReleasedProbe,
    deploy_probes,
)

__all__ = [
    "BuiltinMeasurement",
    "HopReply",
    "MeasurementHop",
    "MeasurementParseError",
    "parse_json_lines",
    "run_builtin_measurements",
    "select_builtin_targets",
    "to_json_lines",
    "DEFAULT_REGION_WEIGHTS",
    "AtlasProbe",
    "ReleasedProbe",
    "ProbeLocationModel",
    "deploy_probes",
]
