"""Rolling-window rates: a ring buffer of per-second buckets.

Lifetime counters answer "how much, ever"; an operator watching a live
server needs "how much, *lately*" — requests per second over the last
10s, the error rate over the last minute, whether the cache hit ratio
just fell off a cliff.  Gouel et al.'s longitudinal study (PAPERS.md) is
the same observation at database scale: behaviour is a function of time,
so the telemetry plane must be able to window it.

A :class:`RollingWindow` keeps one bucket per second over a fixed
horizon.  Slot ``t % horizon`` belongs to second ``t``; writing a new
second reclaims the slot lazily, so there is no background thread and no
per-second housekeeping — memory is exactly ``horizon`` floats plus
``horizon`` stamps, forever.  Queries sum the slots whose stamp falls in
``(now - last_s, now]``; the current (partial) second is included, so a
rate read mid-second slightly underestimates — live dashboards prefer
fresh-and-approximate over stale-and-exact.

Instances lock internally: the HTTP handler threads and the batch pool
add concurrently while ``/statusz`` reads.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence

__all__ = ["DEFAULT_HORIZON_S", "RollingWindow"]

#: Default window horizon — long enough for the 60s rates ``/statusz``
#: reports, small enough that every window is trivially bounded.
DEFAULT_HORIZON_S = 60


class RollingWindow:
    """Per-second event buckets over the last ``horizon_s`` seconds."""

    __slots__ = ("horizon_s", "_clock", "_counts", "_stamps", "_lock")

    def __init__(
        self,
        horizon_s: int = DEFAULT_HORIZON_S,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        if horizon_s < 1:
            raise ValueError(f"horizon_s must be positive: {horizon_s!r}")
        self.horizon_s = int(horizon_s)
        self._clock = clock
        self._counts = [0.0] * self.horizon_s
        #: The absolute second each slot last recorded; -1 = never used.
        self._stamps = [-1] * self.horizon_s
        self._lock = threading.Lock()

    def add(self, value: float = 1.0, *, now: float | None = None) -> None:
        """Record ``value`` against the current second."""
        second = int(self._clock() if now is None else now)
        index = second % self.horizon_s
        with self._lock:
            if self._stamps[index] != second:
                # The slot still holds data from `second - horizon_s`
                # (or nothing): that second just left the window.
                self._stamps[index] = second
                self._counts[index] = value
            else:
                self._counts[index] += value

    def total(self, last_s: int | None = None) -> float:
        """Sum of values recorded over the last ``last_s`` seconds.

        ``last_s`` is clamped to the horizon — a window cannot answer
        further back than it remembers.
        """
        span = self.horizon_s if last_s is None else min(int(last_s), self.horizon_s)
        if span < 1:
            return 0.0
        now = int(self._clock())
        cutoff = now - span
        with self._lock:
            return sum(
                count
                for count, stamp in zip(self._counts, self._stamps)
                if cutoff < stamp <= now
            )

    def rate(self, last_s: int | None = None) -> float:
        """Events per second over the last ``last_s`` seconds."""
        span = self.horizon_s if last_s is None else min(int(last_s), self.horizon_s)
        if span < 1:
            return 0.0
        return self.total(span) / span

    def snapshot(self, horizons: Sequence[int] = (10, 60)) -> dict[str, dict[str, float]]:
        """JSON-ready totals and rates for each requested horizon."""
        result: dict[str, dict[str, float]] = {}
        for span in horizons:
            span = min(int(span), self.horizon_s)
            total = self.total(span)
            result[f"{span}s"] = {
                "total": round(total, 6),
                "per_s": round(total / span, 6) if span else 0.0,
            }
        return result

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RollingWindow({self.horizon_s}s, total={self.total():g})"
