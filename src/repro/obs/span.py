"""Nestable tracing spans over ``time.perf_counter``.

A :class:`Tracer` hands out :class:`Span` context managers; spans opened
while another span is active become its children, so a traced run yields
a tree mirroring the call structure (scenario build phases, the ten
pipeline stages).  Each span records wall-time, an item count, and
arbitrary key/value attributes.

:data:`NOOP_TRACER` is the default everywhere instrumentation is
optional: it satisfies the same interface with a single reused span
object and never allocates per call, so the uninstrumented hot path pays
nothing.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator

__all__ = ["NOOP_TRACER", "NoopTracer", "Span", "Tracer", "render_span_tree"]


class Span:
    """One timed region: name, wall-time, item count, attributes, children."""

    __slots__ = ("name", "attributes", "children", "items", "_start", "_elapsed")

    def __init__(self, name: str, **attributes: Any):
        self.name = name
        self.attributes: dict[str, Any] = dict(attributes)
        self.children: list[Span] = []
        self.items: int | None = None
        self._start = time.perf_counter()
        self._elapsed: float | None = None

    # -- recording -----------------------------------------------------------

    def set(self, **attributes: Any) -> None:
        """Attach (or overwrite) key/value attributes."""
        self.attributes.update(attributes)

    def count(self, items: int) -> None:
        """Record how many items this span processed."""
        self.items = int(items)

    def close(self) -> None:
        """Freeze the span's wall-time (idempotent)."""
        if self._elapsed is None:
            self._elapsed = time.perf_counter() - self._start

    # -- inspection ----------------------------------------------------------

    @property
    def duration(self) -> float:
        """Wall-clock seconds; elapsed-so-far while the span is open."""
        if self._elapsed is None:
            return time.perf_counter() - self._start
        return self._elapsed

    @property
    def closed(self) -> bool:
        return self._elapsed is not None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready nested representation of this span's subtree."""
        node: dict[str, Any] = {"name": self.name, "duration_s": round(self.duration, 6)}
        if self.items is not None:
            node["items"] = self.items
        if self.attributes:
            node["attributes"] = dict(self.attributes)
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"Span({self.name!r}, {self.duration:.4f}s, {state})"


class _SpanContext:
    """Context manager binding one span to one tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._pop(self._span)


class Tracer:
    """Records a forest of spans; spans nest through a live stack."""

    enabled = True

    def __init__(self, listener: Callable[[Span, int], None] | None = None):
        #: Completed and in-flight top-level spans, in start order.
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._listener = listener

    def span(self, name: str, **attributes: Any) -> _SpanContext:
        """Open a span; use as ``with tracer.span("stage") as sp:``."""
        return _SpanContext(self, Span(name, **attributes))

    # -- stack maintenance (driven by _SpanContext) --------------------------

    def _push(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.close()
        depth = len(self._stack) - 1
        popped = self._stack.pop()
        assert popped is span, "span stack corrupted"
        if self._listener is not None:
            self._listener(span, depth)

    # -- inspection ----------------------------------------------------------

    def find(self, name: str) -> Span | None:
        """The first span named ``name`` anywhere in the forest."""
        for root in self.roots:
            for span in root.walk():
                if span.name == name:
                    return span
        return None

    def to_dict(self) -> list[dict[str, Any]]:
        """All root span trees, JSON-ready."""
        return [root.to_dict() for root in self.roots]


class _NoopSpan:
    """Inert span: accepts the recording API, stores nothing."""

    __slots__ = ()
    name = "noop"
    attributes: dict[str, Any] = {}
    children: list[Span] = []
    items = None
    duration = 0.0
    closed = True

    def set(self, **attributes: Any) -> None:
        pass

    def count(self, items: int) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


class NoopTracer:
    """The zero-cost default: every ``span()`` is the same inert object."""

    enabled = False
    roots: tuple[Span, ...] = ()
    _SPAN = _NoopSpan()

    def span(self, name: str, **attributes: Any) -> _NoopSpan:
        """The shared inert span; nothing is recorded."""
        return self._SPAN

    def find(self, name: str) -> None:
        """Always ``None``: a no-op tracer holds no spans."""
        return None

    def to_dict(self) -> list[dict[str, Any]]:
        """Always empty: a no-op tracer holds no spans."""
        return []


#: Shared no-op tracer — the default for every instrumentable call site.
NOOP_TRACER = NoopTracer()


def render_span_tree(root: Span, *, total: float | None = None) -> str:
    """The span tree as aligned text with per-span share-of-total.

    ``total`` defaults to the root's own duration, so direct children of
    the root read as share-of-stage-total (the §-stage breakdown the
    ``repro trace`` subcommand prints).
    """
    if total is None:
        total = root.duration or 1e-12

    rows: list[tuple[str, float, float, str]] = []

    def visit(span: Span, depth: int) -> None:
        extras = []
        if span.items is not None:
            extras.append(f"items={span.items}")
        extras += [f"{key}={value}" for key, value in span.attributes.items()]
        rows.append(
            ("  " * depth + span.name, span.duration, span.duration / total, "  ".join(extras))
        )
        for child in span.children:
            visit(child, depth + 1)

    visit(root, 0)
    name_width = max(len(name) for name, _, _, _ in rows)
    lines = []
    for name, duration, share, extras in rows:
        line = f"{name.ljust(name_width)}  {duration * 1000:10.1f} ms  {share:6.1%}"
        if extras:
            line += f"  {extras}"
        lines.append(line)
    return "\n".join(lines)
