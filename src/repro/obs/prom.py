"""Prometheus text exposition (format 0.0.4) for the metrics registry.

``/metricsz`` is the boundary where the study's internal telemetry meets
real monitoring tooling, so this module is strict in both directions:

* :func:`render_prometheus` emits the registry — counters as
  ``<ns>_<name>_total``, bucketed histograms as ``_bucket``/``_sum``/
  ``_count`` families with cumulative ``le`` bounds, quantile estimates
  as companion gauges, rolling windows as per-second-rate gauges — with
  metric names sanitised to the Prometheus charset and label values
  escaped per the spec (``\\``, ``\"``, ``\n``).
* :func:`validate_exposition` re-parses an exposition body line by line
  and returns every violation it finds: grammar (name/label charset,
  sample syntax), structure (``HELP`` before ``TYPE``, no duplicate
  series), and histogram laws (``le`` strictly increasing, cumulative
  counts non-decreasing, terminal ``+Inf`` bucket equal to ``_count``).
  The test suite and the CI telemetry job both scrape ``/metricsz``
  through it, so a regression in the renderer fails loudly rather than
  silently producing text a scraper drops.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["CONTENT_TYPE", "render_prometheus", "validate_exposition"]

#: The content type ``/metricsz`` answers with — version 0.0.4 is the
#: plain-text format every Prometheus scraper accepts.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_QUANTILE_SUFFIXES = ("p50", "p90", "p99", "p999")


def _metric_name(namespace: str, name: str) -> str:
    """``serve.latency_ms`` -> ``repro_serve_latency_ms``."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    return f"{namespace}_{cleaned}" if namespace else cleaned


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Iterable[tuple[str, str]]) -> str:
    pairs = [
        f'{re.sub(r"[^a-zA-Z0-9_]", "_", key)}="{_escape_label_value(str(value))}"'
        for key, value in labels
    ]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else f"{bound:.9g}"


def render_prometheus(registry: "MetricsRegistry", *, namespace: str = "repro") -> str:
    """The whole registry in Prometheus text exposition format.

    Counters become ``<ns>_<name>_total`` counter families; histograms
    become histogram families plus one gauge family per quantile
    (``..._p50`` etc. — Prometheus histograms carry buckets, not
    precomputed quantiles, so the estimates ride alongside); registered
    callback gauges (``registry.register_gauge``) are read at render
    time and emitted as gauge families; rolling windows become
    ``<ns>_window_per_s`` gauges labelled by alias and horizon.
    Families are emitted sorted, each prefixed by its ``# HELP`` /
    ``# TYPE`` pair exactly once.
    """
    lines: list[str] = []

    # -- counters ------------------------------------------------------------
    by_family: dict[str, list[tuple[tuple[tuple[str, str], ...], int]]] = {}
    for name, labels, value in registry.counter_series():
        by_family.setdefault(name, []).append((labels, value))
    for name in sorted(by_family):
        metric = _metric_name(namespace, name) + "_total"
        lines.append(f'# HELP {metric} Cumulative count of "{name}" events.')
        lines.append(f"# TYPE {metric} counter")
        for labels, value in by_family[name]:
            lines.append(f"{metric}{_render_labels(labels)} {value}")

    # -- histograms ----------------------------------------------------------
    hist_family: dict[str, list[tuple[tuple[tuple[str, str], ...], dict]]] = {}
    for name, labels, exposition in registry.histogram_series():
        hist_family.setdefault(name, []).append((labels, exposition))
    for name in sorted(hist_family):
        metric = _metric_name(namespace, name)
        lines.append(f'# HELP {metric} Log-bucketed distribution of "{name}".')
        lines.append(f"# TYPE {metric} histogram")
        for labels, exposition in hist_family[name]:
            for bound, cumulative in exposition["buckets"]:
                bucket_labels = _render_labels(
                    [*labels, ("le", _format_bound(bound))]
                )
                lines.append(f"{metric}_bucket{bucket_labels} {cumulative}")
            rendered = _render_labels(labels)
            lines.append(f"{metric}_sum{rendered} {_format_value(exposition['sum'])}")
            lines.append(f"{metric}_count{rendered} {exposition['count']}")
        for suffix in _QUANTILE_SUFFIXES:
            gauge = f"{metric}_{suffix}"
            quantile = f"0.{suffix[1:]}"
            lines.append(
                f'# HELP {gauge} Estimated {quantile}-quantile of "{name}".'
            )
            lines.append(f"# TYPE {gauge} gauge")
            for labels, exposition in hist_family[name]:
                if not exposition["count"]:
                    continue
                value = exposition["quantiles"][suffix]
                lines.append(f"{gauge}{_render_labels(labels)} {_format_value(value)}")

    # -- gauges --------------------------------------------------------------
    gauge_family: dict[str, list[tuple[tuple[tuple[str, str], ...], float]]] = {}
    for name, labels, value in registry.gauge_series():
        gauge_family.setdefault(name, []).append((labels, value))
    for name in sorted(gauge_family):
        metric = _metric_name(namespace, name)
        lines.append(f'# HELP {metric} Current value of "{name}".')
        lines.append(f"# TYPE {metric} gauge")
        for labels, value in gauge_family[name]:
            lines.append(f"{metric}{_render_labels(labels)} {_format_value(value)}")

    # -- rolling windows -----------------------------------------------------
    windows = registry.windows_snapshot()
    if windows:
        metric = _metric_name(namespace, "window_per_s")
        lines.append(
            f"# HELP {metric} Rolling-window event rate (events per second)."
        )
        lines.append(f"# TYPE {metric} gauge")
        for alias in sorted(windows):
            for horizon, stats in windows[alias].items():
                rendered = _render_labels(
                    [("horizon", horizon), ("window", alias)]
                )
                lines.append(f"{metric}{rendered} {_format_value(stats['per_s'])}")

    return "\n".join(lines) + "\n" if lines else ""


# -- validation --------------------------------------------------------------

_NAME_PATTERN = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_HELP_RE = re.compile(rf"^# HELP ({_NAME_PATTERN}) (.+)$")
_TYPE_RE = re.compile(
    rf"^# TYPE ({_NAME_PATTERN}) (counter|gauge|histogram|summary|untyped)$"
)
_SAMPLE_RE = re.compile(
    rf"^({_NAME_PATTERN})(?:\{{(.*)\}})? (\+Inf|-Inf|NaN"
    r"|-?(?:[0-9]+(?:\.[0-9]+)?|\.[0-9]+)(?:[eE][+-]?[0-9]+)?)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\["\\n]|\\\\)*)"')

_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)  # "NaN" parses to nan


def _parse_labels(
    body: str, lineno: int, errors: list[str]
) -> tuple[tuple[str, str], ...] | None:
    labels: list[tuple[str, str]] = []
    position = 0
    while position < len(body):
        match = _LABEL_RE.match(body, position)
        if not match:
            errors.append(f"line {lineno}: malformed label at {body[position:]!r}")
            return None
        labels.append((match.group(1), match.group(2)))
        position = match.end()
        if position < len(body):
            if body[position] != ",":
                errors.append(
                    f"line {lineno}: expected ',' between labels, "
                    f"got {body[position]!r}"
                )
                return None
            position += 1
    return tuple(labels)


def _base_metric(name: str, types: dict[str, str]) -> str | None:
    """The family a sample belongs to, resolving histogram suffixes."""
    if name in types:
        return name
    for suffix in _HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def validate_exposition(text: str) -> list[str]:
    """Every format violation in ``text`` (empty list = valid).

    Checks the line grammar (names, labels, values), the comment
    structure (``HELP`` before ``TYPE``, one of each per family, no
    samples for undeclared families, no duplicate series), and the
    histogram laws (strictly increasing ``le`` bounds, non-decreasing
    cumulative counts, a terminal ``+Inf`` bucket whose count equals the
    family's ``_count`` sample).
    """
    errors: list[str] = []
    helps: dict[str, int] = {}
    types: dict[str, str] = {}
    seen_series: set[tuple[str, tuple[tuple[str, str], ...]]] = set()
    # histogram family -> series labels (minus `le`) -> list of (le, count)
    buckets: dict[str, dict[tuple, list[tuple[float, float, int]]]] = {}
    counts: dict[str, dict[tuple, float]] = {}
    sums: dict[str, set[tuple]] = {}

    lines = text.split("\n")
    if text and not text.endswith("\n"):
        errors.append("exposition must end with a newline")
    if lines and lines[-1] == "":
        lines.pop()

    for lineno, line in enumerate(lines, start=1):
        if not line:
            continue
        if line.startswith("#"):
            help_match = _HELP_RE.match(line)
            if help_match:
                name = help_match.group(1)
                if name in helps:
                    errors.append(f"line {lineno}: duplicate HELP for {name}")
                helps[name] = lineno
                continue
            type_match = _TYPE_RE.match(line)
            if type_match:
                name = type_match.group(1)
                if name in types:
                    errors.append(f"line {lineno}: duplicate TYPE for {name}")
                if name not in helps:
                    errors.append(f"line {lineno}: TYPE for {name} without HELP")
                types[name] = type_match.group(2)
                continue
            errors.append(f"line {lineno}: unparseable comment {line!r}")
            continue

        sample = _SAMPLE_RE.match(line)
        if not sample:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name, label_body, value_text = sample.groups()
        labels = _parse_labels(label_body or "", lineno, errors)
        if labels is None:
            continue
        value = _parse_value(value_text)

        series = (name, labels)
        if series in seen_series:
            errors.append(f"line {lineno}: duplicate series {name}{label_body or ''}")
        seen_series.add(series)

        base = _base_metric(name, types)
        if base is None:
            errors.append(f"line {lineno}: sample {name} has no preceding TYPE")
            continue

        if types[base] == "histogram":
            bare = tuple(pair for pair in labels if pair[0] != "le")
            if name == base + "_bucket":
                le_values = [pair[1] for pair in labels if pair[0] == "le"]
                if len(le_values) != 1:
                    errors.append(f"line {lineno}: _bucket needs exactly one le label")
                    continue
                try:
                    bound = _parse_value(le_values[0])
                except ValueError:
                    errors.append(
                        f"line {lineno}: unparseable le value {le_values[0]!r}"
                    )
                    continue
                buckets.setdefault(base, {}).setdefault(bare, []).append(
                    (bound, value, lineno)
                )
            elif name == base + "_count":
                counts.setdefault(base, {})[bare] = value
            elif name == base + "_sum":
                sums.setdefault(base, set()).add(bare)
        elif types[base] == "counter" and value < 0:
            errors.append(f"line {lineno}: counter {name} has negative value {value}")

    for base, series_map in buckets.items():
        for bare, entries in series_map.items():
            previous_bound = -math.inf
            previous_count = -math.inf
            for bound, cumulative, lineno in entries:
                if bound <= previous_bound:
                    errors.append(
                        f"line {lineno}: {base}_bucket le bounds not increasing"
                    )
                if cumulative < previous_count:
                    errors.append(
                        f"line {lineno}: {base}_bucket counts decrease at "
                        f"le={_format_bound(bound)}"
                    )
                previous_bound, previous_count = bound, cumulative
            last_bound, last_count, lineno = entries[-1]
            if not math.isinf(last_bound):
                errors.append(f"line {lineno}: {base}_bucket missing +Inf bucket")
            family_counts = counts.get(base, {})
            if bare not in family_counts:
                errors.append(f"{base}: histogram series missing _count sample")
            elif math.isinf(last_bound) and last_count != family_counts[bare]:
                errors.append(
                    f"line {lineno}: {base} +Inf bucket {last_count:g} != "
                    f"_count {family_counts[bare]:g}"
                )
            if bare not in sums.get(base, set()):
                errors.append(f"{base}: histogram series missing _sum sample")

    return errors
