"""Per-request tracing: lightweight span records and the slow-trace ring.

The study pipeline's :class:`~repro.obs.span.Tracer` records one tree
per *run*; a server needs one tiny tree per *request* — cheap enough to
build on every lookup, rich enough to answer "why was this request slow,
and which path produced its answer" ("Overconfident Coordinates" argues
a geolocation system must be able to attribute *how* an answer was made;
the trace's ``path`` field is exactly that attribution: ``plane``,
``cache``, ``live``, ``degraded``, or ``mixed`` for a batch that rode
several).

A :class:`RequestTrace` is created at the HTTP edge (honouring a
client-sent ``X-Request-Id`` or minting one), threaded through the
engine, and fed flat :class:`SpanRecord` rows — name, parent index,
start offset, duration, attributes.  Rows are capped per trace (a 10K
batch must not materialise 10K span objects; overflow is counted, not
stored).  :meth:`RequestTrace.to_dict` rebuilds the parent links into
the nested span tree ``/tracez`` serves.

A :class:`TraceRing` keeps the N slowest *recent* finished traces: a
fixed-size min-heap keyed on duration, with entries past ``max_age_s``
evicted lazily — one pathological request from an hour ago must not
squat the ring forever.
"""

from __future__ import annotations

import heapq
import threading
import time
import uuid
from typing import Any

__all__ = [
    "DEFAULT_MAX_SPANS",
    "DEFAULT_RING_CAPACITY",
    "RequestTrace",
    "SpanRecord",
    "TraceRing",
    "new_trace_id",
]

#: Span rows kept per trace; further spans are counted as dropped.
DEFAULT_MAX_SPANS = 128

#: Slow traces retained by the ring — enough to page through, bounded.
DEFAULT_RING_CAPACITY = 32

#: Traces older than this fall out of the ring regardless of duration.
DEFAULT_MAX_AGE_S = 600.0


def new_trace_id() -> str:
    """A fresh 16-hex-char request id (collision-safe at ring scale)."""
    return uuid.uuid4().hex[:16]


class SpanRecord:
    """One flat span row inside a request trace."""

    __slots__ = ("name", "parent", "start_ms", "duration_ms", "attrs")

    def __init__(
        self,
        name: str,
        parent: int,
        start_ms: float,
        duration_ms: float | None,
        attrs: dict[str, Any] | None,
    ):
        self.name = name
        self.parent = parent
        self.start_ms = start_ms
        self.duration_ms = duration_ms
        self.attrs = attrs

    def to_dict(self) -> dict[str, Any]:
        """The row as a JSON-ready node (durations rounded to µs)."""
        node: dict[str, Any] = {
            "name": self.name,
            "start_ms": round(self.start_ms, 3),
            "duration_ms": round(self.duration_ms or 0.0, 3),
        }
        if self.attrs:
            node["attrs"] = dict(self.attrs)
        return node


class RequestTrace:
    """One request's id, path attribution, and bounded span rows.

    Span recording is thread-safe (batch fan-out workers append from the
    pool threads); each span row has a single writer, so only the row
    allocation itself locks.
    """

    __slots__ = (
        "trace_id",
        "endpoint",
        "started_unix",
        "path",
        "status",
        "duration_ms",
        "dropped_spans",
        "max_spans",
        "_spans",
        "_t0",
        "_mono",
        "_lock",
    )

    def __init__(
        self,
        endpoint: str,
        *,
        trace_id: str | None = None,
        max_spans: int = DEFAULT_MAX_SPANS,
    ):
        self.trace_id = trace_id if trace_id else new_trace_id()
        self.endpoint = endpoint
        self.started_unix = time.time()
        self.path: str | None = None
        self.status: int | None = None
        self.duration_ms: float | None = None
        self.dropped_spans = 0
        self.max_spans = max_spans
        self._spans: list[SpanRecord] = []
        self._t0 = time.perf_counter()
        self._mono = time.monotonic()
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def begin(self, name: str, *, parent: int = -1, **attrs: Any) -> int:
        """Open a span row; returns its index (or -2 when over the cap)."""
        offset_ms = (time.perf_counter() - self._t0) * 1000.0
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped_spans += 1
                return -2
            index = len(self._spans)
            self._spans.append(
                SpanRecord(name, parent, offset_ms, None, attrs or None)
            )
        return index

    def end(self, index: int, **attrs: Any) -> None:
        """Close the span opened by :meth:`begin` (no-op when dropped)."""
        if index < 0:
            return
        span = self._spans[index]
        span.duration_ms = (
            (time.perf_counter() - self._t0) * 1000.0 - span.start_ms
        )
        if attrs:
            span.attrs = {**(span.attrs or {}), **attrs}

    def add(
        self, name: str, duration_ms: float, *, parent: int = -1, **attrs: Any
    ) -> int:
        """Record an already-measured span in one call."""
        index = self.begin(name, parent=parent, **attrs)
        if index >= 0:
            span = self._spans[index]
            span.start_ms = max(0.0, span.start_ms - duration_ms)
            span.duration_ms = duration_ms
        return index

    def note_path(self, path: str) -> None:
        """Attribute this request to a serving path.

        Single lookups set one of ``plane``/``cache``/``live``/
        ``degraded``; a batch whose addresses rode different paths is
        honestly ``mixed``.
        """
        if self.path is None or self.path == path:
            self.path = path
        else:
            self.path = "mixed"

    def finish(self, *, status: int | None = None) -> None:
        """Freeze the trace's total duration and response status."""
        if self.duration_ms is None:
            self.duration_ms = (time.perf_counter() - self._t0) * 1000.0
        if status is not None:
            self.status = status

    # -- inspection ----------------------------------------------------------

    @property
    def age_s(self) -> float:
        """Seconds since the trace started (monotonic)."""
        return time.monotonic() - self._mono

    def span_count(self) -> int:
        """Span rows actually retained (dropped rows are not counted)."""
        return len(self._spans)

    def to_dict(self) -> dict[str, Any]:
        """The span tree ``/tracez`` serves: root + nested children."""
        with self._lock:
            rows = list(self._spans)
        nodes = [row.to_dict() for row in rows]
        children: list[list[dict[str, Any]]] = [[] for _ in rows]
        roots: list[dict[str, Any]] = []
        for row, node in zip(rows, nodes):
            if 0 <= row.parent < len(rows):
                children[row.parent].append(node)
            else:
                roots.append(node)
        for node, kids in zip(nodes, children):
            if kids:
                node["children"] = kids
        tree: dict[str, Any] = {
            "trace_id": self.trace_id,
            "endpoint": self.endpoint,
            "path": self.path,
            "status": self.status,
            "started_unix": round(self.started_unix, 3),
            "duration_ms": round(self.duration_ms or 0.0, 3),
            "spans": roots,
        }
        if self.dropped_spans:
            tree["dropped_spans"] = self.dropped_spans
        return tree


class TraceRing:
    """The N slowest recent finished traces, bounded and thread-safe."""

    __slots__ = ("capacity", "max_age_s", "_heap", "_seq", "_lock")

    def __init__(
        self,
        capacity: int = DEFAULT_RING_CAPACITY,
        *,
        max_age_s: float = DEFAULT_MAX_AGE_S,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be positive: {capacity!r}")
        self.capacity = capacity
        self.max_age_s = max_age_s
        #: Min-heap of (duration_ms, seq, trace): the fastest retained
        #: trace sits at the root, ready to be displaced.
        self._heap: list[tuple[float, int, RequestTrace]] = []
        self._seq = 0
        self._lock = threading.Lock()

    def _evict_stale(self) -> None:
        # Called under the lock; the ring is tiny, a full filter is fine.
        if any(t.age_s > self.max_age_s for _, _, t in self._heap):
            self._heap = [
                entry for entry in self._heap if entry[2].age_s <= self.max_age_s
            ]
            heapq.heapify(self._heap)

    def record(self, trace: RequestTrace) -> None:
        """Offer a finished trace; kept only if it is among the slowest."""
        duration = trace.duration_ms or 0.0
        with self._lock:
            self._evict_stale()
            self._seq += 1
            entry = (duration, self._seq, trace)
            if len(self._heap) < self.capacity:
                heapq.heappush(self._heap, entry)
            elif duration > self._heap[0][0]:
                heapq.heapreplace(self._heap, entry)

    def slowest(self) -> list[dict[str, Any]]:
        """Retained traces as span trees, slowest first."""
        with self._lock:
            self._evict_stale()
            entries = sorted(self._heap, key=lambda e: (-e[0], -e[1]))
        return [trace.to_dict() for _, _, trace in entries]

    def clear(self) -> None:
        """Drop every retained trace."""
        with self._lock:
            self._heap.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._heap)
