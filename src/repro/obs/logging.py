"""Human-readable stage logging for ``--verbose`` runs.

:class:`StageLogger` is a :class:`~repro.obs.span.Tracer` listener: the
tracer calls it as each span closes, and it prints one aligned line per
stage to stderr (stdout stays reserved for the report itself, so
``repro --verbose run > report.txt`` still captures a clean report).
"""

from __future__ import annotations

import sys
from typing import IO

from repro.obs.span import Span

__all__ = ["StageLogger"]


class StageLogger:
    """Prints ``[repro] <stage> ... <ms> (items, attrs)`` per closed span."""

    def __init__(self, stream: IO[str] | None = None, prefix: str = "[repro]"):
        self._stream = stream if stream is not None else sys.stderr
        self._prefix = prefix

    def __call__(self, span: Span, depth: int) -> None:
        detail = []
        if span.items is not None:
            detail.append(f"items={span.items}")
        detail += [f"{key}={value}" for key, value in span.attributes.items()]
        suffix = f"  ({', '.join(detail)})" if detail else ""
        indent = "  " * depth
        print(
            f"{self._prefix} {indent}{span.name}: {span.duration * 1000:.1f} ms{suffix}",
            file=self._stream,
        )
