"""Observability: tracing spans, metrics, stage logging, run manifests.

The study pipeline runs ten analysis stages over datasets built in six
phases; this package makes that execution observable without touching the
numbers it produces:

* :mod:`repro.obs.span` — nestable tracing spans (:class:`Tracer`) that
  record wall-time, item counts, and attributes, plus a no-op variant
  (:data:`NOOP_TRACER`) that costs nothing when instrumentation is off;
* :mod:`repro.obs.metrics` — process-wide named counters and histograms
  (``geodb.lookups``, ``whois.queries``, per-database resolution counts);
* :mod:`repro.obs.quantiles` — the log-bucketed
  :class:`BucketHistogram` behind every registry histogram: p50/p99
  estimates in bounded memory, summary fields unchanged;
* :mod:`repro.obs.window` — :class:`RollingWindow` per-second ring
  buffers for "how much, lately" rates (RPS, error rate over 10s/60s);
* :mod:`repro.obs.prom` — Prometheus text exposition for the registry
  (``/metricsz``) plus the strict format validator the tests and CI
  scrape through;
* :mod:`repro.obs.reqtrace` — per-request span records
  (:class:`RequestTrace`) and the :class:`TraceRing` of the slowest
  recent requests (``/tracez``);
* :mod:`repro.obs.logging` — a human-readable stage log to stderr, driven
  by span completion (the CLI's ``--verbose``);
* :mod:`repro.obs.manifest` — the JSON *run manifest*: span tree +
  counters + scenario config + result digests in one reproducible
  artifact (the CLI's ``run --metrics PATH``).

Instrumentation is opt-in everywhere: the default tracer is a no-op and
the default metrics registry is ``None``, so uninstrumented runs execute
the exact pre-observability code path.
"""

from repro.obs.logging import StageLogger
from repro.obs.manifest import RunManifest, manifest_from_json
from repro.obs.metrics import CounterCell, MetricsRegistry
from repro.obs.prom import render_prometheus, validate_exposition
from repro.obs.quantiles import BucketHistogram, Histogram
from repro.obs.reqtrace import RequestTrace, TraceRing, new_trace_id
from repro.obs.span import NOOP_TRACER, NoopTracer, Span, Tracer, render_span_tree
from repro.obs.window import RollingWindow

__all__ = [
    "BucketHistogram",
    "CounterCell",
    "Histogram",
    "MetricsRegistry",
    "NOOP_TRACER",
    "NoopTracer",
    "RequestTrace",
    "RollingWindow",
    "RunManifest",
    "Span",
    "StageLogger",
    "TraceRing",
    "Tracer",
    "manifest_from_json",
    "new_trace_id",
    "render_prometheus",
    "render_span_tree",
    "validate_exposition",
]
