"""Observability: tracing spans, metrics, stage logging, run manifests.

The study pipeline runs ten analysis stages over datasets built in six
phases; this package makes that execution observable without touching the
numbers it produces:

* :mod:`repro.obs.span` — nestable tracing spans (:class:`Tracer`) that
  record wall-time, item counts, and attributes, plus a no-op variant
  (:data:`NOOP_TRACER`) that costs nothing when instrumentation is off;
* :mod:`repro.obs.metrics` — process-wide named counters and histograms
  (``geodb.lookups``, ``whois.queries``, per-database resolution counts);
* :mod:`repro.obs.logging` — a human-readable stage log to stderr, driven
  by span completion (the CLI's ``--verbose``);
* :mod:`repro.obs.manifest` — the JSON *run manifest*: span tree +
  counters + scenario config + result digests in one reproducible
  artifact (the CLI's ``run --metrics PATH``).

Instrumentation is opt-in everywhere: the default tracer is a no-op and
the default metrics registry is ``None``, so uninstrumented runs execute
the exact pre-observability code path.
"""

from repro.obs.logging import StageLogger
from repro.obs.manifest import RunManifest, manifest_from_json
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import NOOP_TRACER, NoopTracer, Span, Tracer, render_span_tree

__all__ = [
    "MetricsRegistry",
    "NOOP_TRACER",
    "NoopTracer",
    "RunManifest",
    "Span",
    "StageLogger",
    "Tracer",
    "manifest_from_json",
    "render_span_tree",
]
