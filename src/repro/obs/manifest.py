"""The run manifest: one JSON artifact describing one study run.

A manifest serialises everything needed to understand (and compare) runs
after the fact:

* ``config`` — the scenario knobs the run was a pure function of (seed,
  scale, city_range_km, routing);
* ``spans`` — the span forest (scenario build phases + the ten pipeline
  stages) with wall-times, item counts, and attributes;
* ``counters`` / ``histograms`` — the metrics registry snapshot
  (``geodb.*``, ``whois.*``, ``scenario.*`` families);
* ``digests`` — SHA-256 digests of the rendered reports, so two runs can
  be checked for result-identity without re-running anything.

``RunManifest.from_json(manifest.to_json())`` round-trips exactly; the
longitudinal-study angle (Gouel et al.) is then just diffing manifests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Span

__all__ = ["RunManifest", "manifest_from_json", "sha256_digest"]

MANIFEST_VERSION = 1


def sha256_digest(text: str) -> str:
    """Hex SHA-256 of a rendered artifact (the manifest's digest format)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True, slots=True)
class RunManifest:
    """A finished run's telemetry, ready to serialise."""

    config: Mapping[str, Any]
    spans: tuple[Mapping[str, Any], ...]
    counters: Mapping[str, int]
    histograms: Mapping[str, Mapping[str, float]]
    counter_families: tuple[str, ...]
    digests: Mapping[str, str] = field(default_factory=dict)
    version: int = MANIFEST_VERSION

    @classmethod
    def build(
        cls,
        *,
        config: Mapping[str, Any],
        spans: Sequence[Span | Mapping[str, Any]] = (),
        metrics: MetricsRegistry | None = None,
        digests: Mapping[str, str] | None = None,
    ) -> "RunManifest":
        """Assemble a manifest from live instrumentation objects."""
        span_dicts = tuple(
            span.to_dict() if isinstance(span, Span) else dict(span) for span in spans
        )
        return cls(
            config=dict(config),
            spans=span_dicts,
            counters=metrics.counters_snapshot() if metrics is not None else {},
            histograms=metrics.histograms_snapshot() if metrics is not None else {},
            counter_families=metrics.families() if metrics is not None else (),
            digests=dict(digests) if digests is not None else {},
        )

    def to_dict(self) -> dict[str, Any]:
        """The manifest as plain JSON-ready data."""
        return {
            "version": self.version,
            "config": dict(self.config),
            "spans": [dict(span) for span in self.spans],
            "counters": dict(self.counters),
            "histograms": {name: dict(summary) for name, summary in self.histograms.items()},
            "counter_families": list(self.counter_families),
            "digests": dict(self.digests),
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialise; ``from_json`` inverts this exactly."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunManifest":
        return cls(
            config=dict(payload.get("config", {})),
            spans=tuple(dict(span) for span in payload.get("spans", ())),
            counters=dict(payload.get("counters", {})),
            histograms={
                name: dict(summary)
                for name, summary in payload.get("histograms", {}).items()
            },
            counter_families=tuple(payload.get("counter_families", ())),
            digests=dict(payload.get("digests", {})),
            version=int(payload.get("version", MANIFEST_VERSION)),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls.from_dict(json.loads(text))

    def stage_names(self) -> tuple[str, ...]:
        """Every span name in the manifest, depth-first."""

        def visit(node: Mapping[str, Any]):
            yield str(node["name"])
            for child in node.get("children", ()):
                yield from visit(child)

        names: list[str] = []
        for root in self.spans:
            names.extend(visit(root))
        return tuple(names)


def manifest_from_json(text: str) -> RunManifest:
    """Module-level alias of :meth:`RunManifest.from_json`."""
    return RunManifest.from_json(text)
