"""Named counters and histograms for the study's hot paths.

One :class:`MetricsRegistry` is shared by everything a run instruments —
databases, the whois service, the scenario builder — so a single snapshot
answers "how many lookups, how many misses, what resolutions came back".
Metric names are dotted, ``family.event`` (``geodb.lookups``,
``whois.queries``, ``scenario.probes``); the part before the first dot is
the metric's *family*, the unit the run manifest groups by.  Optional
labels (``database="NetAcuity"``, ``resolution="city"``) split a name
into a family of series.

Instrumented objects hold ``metrics = None`` by default and skip all of
this with one ``is not None`` test, keeping the uninstrumented hot path
identical to the pre-observability code.
"""

from __future__ import annotations

import threading
from typing import Any, Mapping

__all__ = ["Histogram", "MetricsRegistry"]

_LabelKey = tuple[tuple[str, str], ...]


def _series_name(name: str, labels: _LabelKey) -> str:
    if not labels:
        return name
    rendered = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{rendered}}}"


class Histogram:
    """Streaming summary of observed values: count/sum/min/max/mean."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one value into the summary."""
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def observe_many(self, value: float, count: int) -> None:
        """Fold ``count`` identical observations of ``value`` in O(1).

        Equivalent to calling :meth:`observe` ``count`` times — bulk
        consumers (e.g. frame construction replaying per-entry lookup
        counts) use this to keep aggregation out of their hot loop.
        """
        if count <= 0:
            return
        self.count += count
        self.total += value * count
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, float]:
        """JSON-ready summary (just ``{"count": 0}`` when empty)."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": round(self.total, 6),
            "min": self.minimum,
            "max": self.maximum,
            "mean": round(self.mean, 6),
        }


class MetricsRegistry:
    """Process-wide named counters and histograms.

    Typical use: the CLI (or a test) creates one registry per run and
    attaches it to every instrumented object; the registry outlives them
    all and is snapshotted into the run manifest.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, _LabelKey], int] = {}
        self._histograms: dict[tuple[str, _LabelKey], Histogram] = {}
        # The serving layer increments from HTTP handler threads and
        # batch-executor threads concurrently; a read-modify-write on a
        # plain dict would drop counts under that load (the cache-hammer
        # test reconciles hits+misses against request totals exactly).
        self._lock = threading.Lock()

    @staticmethod
    def _key(name: str, labels: Mapping[str, Any]) -> tuple[str, _LabelKey]:
        if not labels:
            return name, ()
        return name, tuple(sorted((key, str(value)) for key, value in labels.items()))

    # -- recording -----------------------------------------------------------

    def inc(self, name: str, value: int = 1, **labels: Any) -> None:
        """Add ``value`` to the counter series ``name`` + ``labels``."""
        key = self._key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record one observation into the histogram ``name`` + ``labels``."""
        key = self._key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram()
            histogram.observe(value)

    def observe_many(self, name: str, value: float, count: int, **labels: Any) -> None:
        """Record ``count`` identical observations in one O(1) update."""
        if count <= 0:
            return
        key = self._key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram()
            histogram.observe_many(value, count)

    # -- inspection ----------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> int:
        """Current value of one counter series (0 if never incremented)."""
        return self._counters.get(self._key(name, labels), 0)

    def counter_total(self, name: str) -> int:
        """Sum of a counter across all of its label series."""
        return sum(
            value for (counter, _), value in self._counters.items() if counter == name
        )

    def families(self) -> tuple[str, ...]:
        """Distinct metric families (name prefix before the first dot)."""
        names = {name for name, _ in self._counters} | {
            name for name, _ in self._histograms
        }
        return tuple(sorted({name.split(".", 1)[0] for name in names}))

    def counters_snapshot(self) -> dict[str, int]:
        """All counter series as ``name{label=value,...} -> count``."""
        return {
            _series_name(name, labels): value
            for (name, labels), value in sorted(self._counters.items())
        }

    def histograms_snapshot(self) -> dict[str, dict[str, float]]:
        """All histogram series as ``name{...} -> summary dict``."""
        return {
            _series_name(name, labels): histogram.to_dict()
            for (name, labels), histogram in sorted(self._histograms.items())
        }

    def render(self) -> str:
        """Counters then histograms, one aligned line per series."""
        counters = self.counters_snapshot()
        histograms = self.histograms_snapshot()
        if not counters and not histograms:
            return "(no metrics recorded)"
        width = max(len(name) for name in [*counters, *histograms])
        lines = [f"{name.ljust(width)}  {value}" for name, value in counters.items()]
        for name, summary in histograms.items():
            rendered = " ".join(f"{key}={value:g}" for key, value in summary.items())
            lines.append(f"{name.ljust(width)}  {rendered}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._counters) + len(self._histograms)
